"""Figure 6b — KNNrp (k=5) distance-call savings on UrbanGB-like data.

Shape target: the Tri-augmented kNN-graph builder saves calls relative to
LAESA and TLAESA at every size, and the absolute counts grow with n.
"""

from repro.harness import percentage_save, render_table, size_sweep

from benchmarks.conftest import urban

SIZES = [48, 96, 160]
K = 5


def test_fig6b_knng_distance_save(benchmark, report):
    out = size_sweep(
        lambda n: urban(n), SIZES, "knng",
        providers=("tri", "laesa", "tlaesa"),
        algorithm_kwargs={"k": K},
    )
    rows = []
    for i, n in enumerate(SIZES):
        tri = out["tri"][i].total_calls
        laesa = out["laesa"][i].total_calls
        tlaesa = out["tlaesa"][i].total_calls
        rows.append([n, tri, laesa, round(percentage_save(laesa, tri), 1),
                     tlaesa, round(percentage_save(tlaesa, tri), 1)])
    report(
        render_table(
            ["n", "Tri total", "LAESA", "save%", "TLAESA", "save%"],
            rows,
            title=f"Fig 6b: kNN-graph (k={K}) oracle calls, UrbanGB-like",
        )
    )
    tri_calls = [out["tri"][i].total_calls for i in range(len(SIZES))]
    assert tri_calls == sorted(tri_calls), "calls grow with n"
    for i in range(len(SIZES)):
        assert out["tri"][i].total_calls <= out["laesa"][i].total_calls

    from repro.harness import run_experiment

    benchmark.pedantic(
        lambda: run_experiment(
            urban(96), "knng", "tri", landmark_bootstrap=True,
            algorithm_kwargs={"k": K},
        ),
        rounds=1,
        iterations=1,
    )
