"""Figure 9 (engine view) — bound-computation CPU: loop vs vectorized kernels.

Two ablations of the bound engine, both output-identical by construction:

* **Tri**: the per-triangle Python loop vs the segmented frontier kernel
  over the graph's flat adjacency mirrors.  Same bounds, same oracle
  calls; only bound CPU moves (≥3x at n=400 with warmed adjacency).
* **SPLUB**: two fresh Dijkstras per query vs per-source trees memoised on
  the graph epoch.  A ``knearest(q, ·)`` frontier pays one tree for ``q``
  instead of one per pair.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.algorithms import knn_graph
from repro.bounds.splub import Splub
from repro.bounds.tri import TriScheme
from repro.core.resolver import SmartResolver
from repro.spaces.vector import EuclideanSpace

N_TRI = 400
DEGREE = 100
N_SPLUB = 90


def _warmed_space_and_edges(n: int, degree: int, seed: int = 7):
    """Random Euclidean space plus a random edge sample of target degree."""
    rng = np.random.default_rng(seed)
    space = EuclideanSpace(rng.uniform(0.0, 1.0, size=(n, 2)))
    edges = set()
    while len(edges) < n * degree // 2:
        i, j = rng.integers(n, size=2)
        if i != j:
            edges.add((min(i, j), max(i, j)))
    return space, sorted(edges)


def _warm_resolver(space, edges, provider_cls, **provider_kwargs):
    resolver = SmartResolver(space.oracle())
    provider = provider_cls(resolver.graph, space.diameter_bound(), **provider_kwargs)
    resolver.bounder = provider
    for i, j in edges:
        resolver.distance(int(i), int(j))
    return resolver, provider


def test_tri_vectorized_kernel_speedup(benchmark, report):
    """Frontier workload (the shape knearest/argmin issue): loop vs batch."""
    space, edges = _warmed_space_and_edges(N_TRI, DEGREE)
    resolver, tri = _warm_resolver(space, edges, TriScheme)
    graph = resolver.graph
    rng = np.random.default_rng(11)
    frontiers = []
    for u in rng.choice(N_TRI, size=40, replace=False).tolist():
        pool = [c for c in range(N_TRI) if c != u and graph.get(u, c) is None]
        frontiers.append([(u, c) for c in pool])

    start = time.perf_counter()
    loop_bounds = [[tri.bounds_scalar(i, j) for i, j in f] for f in frontiers]
    loop_seconds = time.perf_counter() - start

    start = time.perf_counter()
    vector_bounds = [tri.bounds_many(f) for f in frontiers]
    vector_seconds = time.perf_counter() - start

    assert loop_bounds == vector_bounds  # bit-identical intervals
    num_queries = sum(len(f) for f in frontiers)
    speedup = loop_seconds / vector_seconds
    report(
        f"Fig 9 (bound engine): Tri kernels on n={N_TRI}, degree≈{DEGREE}, "
        f"{len(frontiers)} frontiers / {num_queries} pairs\n"
        f"  loop       {loop_seconds * 1e3:8.1f} ms\n"
        f"  vectorized {vector_seconds * 1e3:8.1f} ms   ({speedup:.1f}x)"
    )
    assert speedup >= 3.0

    benchmark.pedantic(lambda: tri.bounds_many(frontiers[0]), rounds=3, iterations=1)


def test_tri_kernels_identical_oracle_calls(report):
    """kNN-graph under scalar-only vs vector-only Tri: identical everything."""
    rng = np.random.default_rng(3)
    space = EuclideanSpace(rng.uniform(0.0, 1.0, size=(150, 2)))
    outcomes = {}
    for label, threshold in (("scalar", math.inf), ("vector", 0)):
        oracle = space.oracle()
        resolver = SmartResolver(oracle)
        tri = TriScheme(resolver.graph, space.diameter_bound())
        tri.vector_threshold = threshold
        resolver.bounder = tri
        result = knn_graph(resolver, k=5)
        outcomes[label] = (result.neighbors, oracle.calls)
    assert outcomes["scalar"][0] == outcomes["vector"][0]
    assert outcomes["scalar"][1] == outcomes["vector"][1]
    report(
        "Fig 9 (bound engine): kNNG n=150 k=5 — scalar vs vector Tri: "
        f"identical neighbours, identical {outcomes['scalar'][1]} oracle calls"
    )


def test_splub_incremental_trees(benchmark, report):
    """Per-query Dijkstras vs epoch-cached trees on a kNN workload."""
    space, edges = _warmed_space_and_edges(N_SPLUB, 12, seed=5)
    runs = {}
    outputs = {}
    timings = {}
    for label, cache in (("per-query", False), ("incremental", True)):
        resolver, splub = _warm_resolver(
            space, edges, Splub, cache_trees=cache
        )
        oracle = resolver.oracle
        calls_before = oracle.calls
        start = time.perf_counter()
        result = [
            resolver.knearest(q, range(N_SPLUB), k=3) for q in range(0, N_SPLUB, 6)
        ]
        timings[label] = time.perf_counter() - start
        outputs[label] = (result, oracle.calls - calls_before)
        runs[label] = splub.dijkstra_runs
    assert outputs["per-query"] == outputs["incremental"]
    assert runs["incremental"] * 2 <= runs["per-query"]
    report(
        f"Fig 9 (bound engine): SPLUB kNN workload on n={N_SPLUB}\n"
        f"  per-query   {runs['per-query']:6d} dijkstras "
        f"{timings['per-query'] * 1e3:8.1f} ms\n"
        f"  incremental {runs['incremental']:6d} dijkstras "
        f"{timings['incremental'] * 1e3:8.1f} ms "
        f"({runs['per-query'] / max(runs['incremental'], 1):.1f}x fewer trees)"
    )

    resolver, _ = _warm_resolver(space, edges, Splub, cache_trees=True)
    benchmark.pedantic(
        lambda: [resolver.knearest(q, range(N_SPLUB), k=3) for q in range(0, N_SPLUB, 30)],
        rounds=1,
        iterations=1,
    )
