"""Figure 3a — relative error of produced bounds vs ADM (SF-like state).

Shape targets: SPLUB error is exactly 0 (same tightest bounds as ADM);
Tri's error is far below LAESA's and TLAESA's, especially for upper bounds.
"""

from repro.harness import bounds_quality_experiment, render_table

from benchmarks.conftest import sf

N = 150
EDGES = 2500


def _rows():
    return bounds_quality_experiment(
        sf(N, road=False), num_edges=EDGES, num_queries=200,
        providers=("splub", "tri", "laesa", "tlaesa", "adm"),
    )


def test_fig3a_relative_bound_error(benchmark, report):
    results = _rows()
    report(
        render_table(
            ["provider", "rel err LB", "rel err UB", "mean gap"],
            [
                [r.provider, round(r.rel_err_lower_vs_adm, 5),
                 round(r.rel_err_upper_vs_adm, 5), round(r.mean_gap, 4)]
                for r in results
            ],
            title=f"Fig 3a: bound error vs ADM (SF-like, n={N}, m={EDGES})",
        )
    )
    by = {r.provider: r for r in results}
    assert by["splub"].rel_err_lower_vs_adm < 1e-9
    assert by["splub"].rel_err_upper_vs_adm < 1e-9
    assert by["tri"].rel_err_upper_vs_adm < by["laesa"].rel_err_upper_vs_adm
    assert by["tri"].rel_err_upper_vs_adm < by["tlaesa"].rel_err_upper_vs_adm

    benchmark.pedantic(_rows, rounds=1, iterations=1)
