"""Figure 5a — LAESA/TLAESA are fast but loose.

Shape targets: the landmark schemes answer bound queries faster than SPLUB
(and ADM's total bill) but their relative error is much higher than the
graph schemes' — the "fast but loose" trade the paper highlights.
"""

from repro.harness import bounds_quality_experiment, render_table

from benchmarks.conftest import sf

N = 150
EDGES = 2500


def test_fig5a_fast_but_loose(benchmark, report):
    results = bounds_quality_experiment(
        sf(N, road=False), num_edges=EDGES, num_queries=200,
        providers=("splub", "tri", "laesa", "tlaesa"),
    )
    report(
        render_table(
            ["provider", "query (µs)", "rel err LB", "rel err UB"],
            [
                [r.provider, round(r.mean_query_seconds * 1e6, 1),
                 round(r.rel_err_lower_vs_adm, 5), round(r.rel_err_upper_vs_adm, 5)]
                for r in results
            ],
            title=f"Fig 5a: landmark schemes — fast but loose (n={N}, m={EDGES})",
        )
    )
    by = {r.provider: r for r in results}
    assert by["laesa"].mean_query_seconds < by["splub"].mean_query_seconds
    assert by["laesa"].rel_err_upper_vs_adm > by["tri"].rel_err_upper_vs_adm

    benchmark.pedantic(
        lambda: bounds_quality_experiment(
            sf(N, road=False), num_edges=EDGES, num_queries=50,
            providers=("laesa",),
        ),
        rounds=1,
        iterations=1,
    )
