"""Shared infrastructure for the per-figure/table benchmark suite.

Every benchmark prints the rows/series of the paper artifact it reproduces
(visible in the terminal even under pytest's capture, via ``report``) and
times a representative unit of work through pytest-benchmark.

Dataset facades are cached per session so the suite stays fast.
"""

from __future__ import annotations

import functools

import pytest

from repro.datasets import flickr_space, sf_poi_space, urbangb_space


@pytest.fixture
def report(capsys):
    """Print experiment tables past pytest's output capture."""

    def _report(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _report


@functools.lru_cache(maxsize=None)
def sf(n: int, road: bool = True):
    """Cached SF-POI-like space."""
    return sf_poi_space(n, road=road)


@functools.lru_cache(maxsize=None)
def urban(n: int, road: bool = True):
    """Cached UrbanGB-like space."""
    return urbangb_space(n, road=road)


@functools.lru_cache(maxsize=None)
def flickr(n: int, dim: int = 256):
    """Cached Flickr-like feature-vector space."""
    return flickr_space(n, dim=dim)


def record_rows(sweep: dict, sizes, value=lambda r: r.total_calls):
    """Convert a size_sweep result into printable rows (one per size)."""
    providers = list(sweep)
    rows = []
    for idx, n in enumerate(sizes):
        rows.append([n] + [value(sweep[p][idx]) for p in providers])
    return ["n", *providers], rows
