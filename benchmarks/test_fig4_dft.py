"""Figures 4a/4b — DFT vs ADM on tiny graphs (comparison-driven Prim).

Shape targets: DFT never needs more distance calls than ADM and both beat
the vanilla run (4a); DFT's CPU time grows explosively with the edge count
while ADM's stays modest (4b).  See EXPERIMENTS.md for the call-count
discussion (in this reproduction DFT ties exact-ADM instead of beating it).
"""

import time

from repro.harness import dft_experiment, render_table
from repro.spaces.matrix import MatrixSpace, random_metric_matrix

import numpy as np

SIZES = [8, 10, 12, 14]


def _space_factory(n):
    matrix = random_metric_matrix(n, np.random.default_rng(n))
    return MatrixSpace(matrix / matrix.max())


def test_fig4_dft_vs_adm(benchmark, report):
    start = time.perf_counter()
    out = dft_experiment(_space_factory, SIZES, providers=("dft", "adm", "adm-inc", "none"))
    rows = []
    for idx, n in enumerate(SIZES):
        rows.append(
            [
                n * (n - 1) // 2,
                out["none"][idx].total_calls,
                out["adm"][idx].total_calls,
                out["adm-inc"][idx].total_calls,
                out["dft"][idx].total_calls,
                round(out["adm"][idx].cpu_seconds, 3),
                round(out["dft"][idx].cpu_seconds, 3),
            ]
        )
    report(
        render_table(
            ["#edges", "vanilla", "ADM", "ADM-inc", "DFT", "ADM s", "DFT s"],
            rows,
            title="Fig 4a/4b: DFT vs ADM — Prim (comparison-driven), tiny graphs",
        )
    )
    for idx in range(len(SIZES)):
        # 4a shape: DFT saves vs vanilla and never exceeds ADM.
        assert out["dft"][idx].total_calls <= out["none"][idx].total_calls
        assert out["dft"][idx].total_calls <= out["adm-inc"][idx].total_calls
        # 4b shape: DFT's CPU time dominates ADM's by a wide margin.
        assert out["dft"][idx].cpu_seconds > out["adm"][idx].cpu_seconds
        # Exactness: identical MSTs.
        assert out["dft"][idx].result.edge_set() == out["none"][idx].result.edge_set()

    benchmark.pedantic(
        lambda: dft_experiment(_space_factory, [8], providers=("dft",)),
        rounds=1,
        iterations=1,
    )
