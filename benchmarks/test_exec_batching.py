"""Acceptance benchmark for the batched oracle execution pipeline.

With a simulated-latency oracle (``cost_per_call > 0``) *and* a small real
per-call sleep, the threaded executor must cut the combined
simulated + real wall-clock of kNN-graph construction by at least 3× versus
the serial executor — at identical oracle call counts and byte-identical
outputs.  The speed-up has two independent sources that this benchmark
exercises together:

* real time: worker threads overlap the sleeps, so a batch of B calls costs
  roughly ``B / workers`` sleeps of wall time instead of ``B``;
* simulated time: :class:`BatchOracle` prices a batch of B fresh calls as
  ``ceil(B / parallelism)`` latency waves and refunds the difference.
"""

import time

from repro.algorithms import knn_graph
from repro.core.oracle import DistanceOracle
from repro.core.resolver import SmartResolver
from repro.exec import BatchOracle, SerialExecutor, ThreadedExecutor
from repro.harness import render_table
from repro.spaces.matrix import MatrixSpace, random_metric_matrix

import numpy as np

N = 32
K = 5
COST_PER_CALL = 1.0  # simulated seconds per fresh oracle call
REAL_SLEEP = 0.002  # real seconds per fresh oracle call
WORKERS = 16


def _space():
    return MatrixSpace(random_metric_matrix(N, np.random.default_rng(23)))


def _run(space, executor):
    def slow_distance(i, j):
        time.sleep(REAL_SLEEP)
        return space.distance(i, j)

    oracle = DistanceOracle(slow_distance, space.n, cost_per_call=COST_PER_CALL)
    with BatchOracle(oracle, executor=executor) as batcher:
        resolver = SmartResolver(oracle, batcher=batcher)
        start = time.perf_counter()
        result = knn_graph(resolver, k=K)
        real = time.perf_counter() - start
    return result, oracle.calls, real, oracle.simulated_seconds


def test_threaded_executor_speedup(benchmark, report):
    space = _space()
    serial_graph, serial_calls, serial_real, serial_sim = _run(
        space, SerialExecutor()
    )
    threaded_graph, threaded_calls, threaded_real, threaded_sim = _run(
        space, ThreadedExecutor(workers=WORKERS)
    )

    # Concurrency must be invisible in the outputs and the accounting.
    for u in range(N):
        assert threaded_graph.neighbor_ids(u) == serial_graph.neighbor_ids(u)
    assert threaded_calls == serial_calls

    serial_total = serial_real + serial_sim
    threaded_total = threaded_real + threaded_sim
    speedup = serial_total / threaded_total
    report(
        render_table(
            ["executor", "oracle calls", "real (s)", "simulated (s)", "total (s)"],
            [
                ["serial", serial_calls, round(serial_real, 3),
                 round(serial_sim, 3), round(serial_total, 3)],
                [f"threaded×{WORKERS}", threaded_calls, round(threaded_real, 3),
                 round(threaded_sim, 3), round(threaded_total, 3)],
                ["speed-up", "", "", "", f"{speedup:.1f}×"],
            ],
            title=f"Batched {K}-NN graph over n={N} "
            f"(cost_per_call={COST_PER_CALL}s simulated + {REAL_SLEEP * 1e3:.0f}ms real)",
        )
    )
    assert speedup >= 3.0

    benchmark.pedantic(
        lambda: _run(space, ThreadedExecutor(workers=WORKERS)),
        rounds=1,
        iterations=1,
    )
