"""Service benchmark — cross-query reuse in a warm engine.

The acceptance experiment for the service layer: 20 mixed kNN/range queries
served by **one** warm :class:`~repro.service.ProximityEngine` must spend at
least 2x fewer oracle calls than the same 20 queries run cold (a fresh
resolver per query), with byte-identical answers.  A second scenario pays
the snapshot/restart/restore cycle and shows that replaying resolved
queries after a restore costs zero additional calls.
"""

from repro.algorithms import k_nearest, range_query
from repro.bounds import TriScheme
from repro.core.resolver import SmartResolver
from repro.harness import render_table
from repro.service import ProximityEngine

from benchmarks.conftest import sf

N = 128
NUM_QUERIES = 20


def _workload(space):
    """20 mixed queries over clustered query points (realistic skew)."""
    jobs = []
    for idx in range(NUM_QUERIES):
        q = (idx * 5) % space.n
        if idx % 2 == 0:
            jobs.append(("knn", {"query": q, "k": 5 + (idx % 3)}))
        else:
            jobs.append(("range", {"query": q, "radius": 2000.0 + 500.0 * (idx % 4)}))
    return jobs


def _cold_run(space, kind, params):
    """One query on a fresh resolver — returns (answer, charged calls)."""
    oracle = space.oracle()
    resolver = SmartResolver(oracle)
    resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
    if kind == "knn":
        answer = k_nearest(resolver, params["query"], params["k"])
    else:
        answer = range_query(resolver, params["query"], params["radius"])
    return answer, oracle.calls


def _warm_run(space, workload):
    """The whole workload through one engine — (answers, total calls, stats)."""
    engine = ProximityEngine.for_space(space, provider="tri", job_workers=2)
    try:
        handles = [engine.submit_job(kind, **params) for kind, params in workload]
        answers = [h.result(300).value for h in handles]
        stats = engine.snapshot_stats()
        return answers, engine.oracle.calls, stats, engine
    except BaseException:
        engine.close(snapshot=False)
        raise


def test_warm_engine_beats_cold_runs_2x(report, benchmark, tmp_path):
    space = sf(N)
    workload = _workload(space)

    cold_answers = []
    cold_total = 0
    for kind, params in workload:
        answer, calls = _cold_run(space, kind, params)
        cold_answers.append(answer)
        cold_total += calls

    warm_answers, warm_total, stats, engine = _warm_run(space, workload)

    # Identical answers, query for query.
    assert warm_answers == cold_answers

    # The headline claim: >= 2x fewer oracle calls on the warm engine.
    assert warm_total * 2 <= cold_total, (
        f"warm engine spent {warm_total} calls, cold runs {cold_total} — "
        "less than the required 2x saving"
    )

    # Snapshot → restart → restore: replaying the workload is free.
    snap = tmp_path / "warm.npz"
    engine.snapshot(str(snap))
    engine.close(snapshot=False)

    engine2 = ProximityEngine.for_space(
        space, provider="tri", job_workers=2, restore_from=str(snap)
    )
    try:
        handles = [engine2.submit_job(kind, **params) for kind, params in workload]
        replay_answers = [h.result(300).value for h in handles]
        assert replay_answers == cold_answers
        assert engine2.oracle.calls == 0, (
            f"restored engine paid {engine2.oracle.calls} calls re-serving "
            "already-resolved queries"
        )
        restored = engine2.snapshot_stats().restored_edges
    finally:
        engine2.close(snapshot=False)

    report(
        render_table(
            ["scenario", "oracle calls", "vs cold"],
            [
                ["20 cold runs", cold_total, "1.0x"],
                ["1 warm engine", warm_total, f"{cold_total / warm_total:.1f}x fewer"],
                ["restored engine (replay)", 0, "free"],
            ],
            title=(
                f"Service reuse on SF-like n={N}: {NUM_QUERIES} mixed "
                f"kNN/range queries (restored {restored} edges, "
                f"{stats.warm_resolutions} warm resolutions)"
            ),
        )
    )

    benchmark.pedantic(
        lambda: _warm_run(space, workload)[3].close(snapshot=False),
        rounds=1,
        iterations=1,
    )
