"""Figure 5b — the ideal-landmark-count selection problem.

Shape target: LAESA/TLAESA total calls are sensitive to the landmark
budget with a non-trivial optimum — too few landmarks give weak bounds,
too many blow the bootstrap budget — and the optimum is not obvious a
priori (the paper found ~3·log n on one dataset, dataset-dependent).
"""

from repro.bounds.landmarks import default_num_landmarks
from repro.harness import landmark_count_sweep, render_table

from benchmarks.conftest import sf

N = 128


def test_fig5b_landmark_selection_problem(benchmark, report):
    base = default_num_landmarks(N)
    counts = [max(1, base // 2), base, 2 * base, 4 * base, 8 * base]
    out = landmark_count_sweep(sf(N), "prim", counts)
    report(
        render_table(
            ["landmarks", "LAESA total", "TLAESA total"],
            [
                [counts[i], out["laesa"][i].total_calls, out["tlaesa"][i].total_calls]
                for i in range(len(counts))
            ],
            title=f"Fig 5b: sensitivity to landmark budget (Prim, SF-like n={N})",
        )
    )
    laesa_calls = [r.total_calls for r in out["laesa"]]
    # The extremes must not both be optimal: the sweep has structure.
    assert min(laesa_calls) < max(laesa_calls)

    benchmark.pedantic(
        lambda: landmark_count_sweep(sf(N), "prim", [base], providers=("laesa",)),
        rounds=1,
        iterations=1,
    )
