"""Kernel acceptance benchmarks — compiled sweeps and the approximate mode.

Two acceptance experiments for the CSR kernel layer
(:mod:`repro.bounds.kernels`):

* the Tri frontier sweep at ``n = 2000`` must run at least **3x** faster
  through the CSR kernel than through the PR-2 per-node-mirror kernel, with
  byte-identical bounds and triangle counts — and a host algorithm run
  under either kernel must produce identical oracle-call counts and
  resolved-edge sequences;
* the approximate resolver mode at ``stretch = 1.5`` must cut oracle calls
  by at least **40%** on a kNN-graph build over a landmark sketch, with the
  realised stretch of every accepted answer within budget (the
  ``repro_answer_stretch`` histogram never exceeds it).

A parity test pins the compiled backend byte-identical to the NumPy
fallback on random CSR fixtures (skipped when numba is absent — the CI
numba leg runs it).

Set ``KERNELS_BENCH_JSON`` to a path to dump the raw measurements for
``scripts/bench_to_json.py`` (CI turns them into ``BENCH_kernels.json``).
"""

import json
import math
import os
import time

import numpy as np
import pytest

from repro.bounds import kernels
from repro.bounds.tri import TriScheme
from repro.core.oracle import DistanceOracle
from repro.core.partial_graph import PartialDistanceGraph
from repro.core.resolver import SmartResolver
from repro.datasets import sf_poi_space
from repro.harness import render_table
from repro.harness.runner import run_experiment
from repro.obs import MetricsRegistry

N_FRONTIER = 2000
M_FRONTIER = 80_000
SPEEDUP_FLOOR = 3.0

STRETCH = 1.5
STRETCH_N = 300
STRETCH_LANDMARKS = 150
SAVINGS_FLOOR_PCT = 40.0

_RAW: dict = {}


def _dump_raw():
    path = os.environ.get("KERNELS_BENCH_JSON")
    if path and _RAW:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(_RAW, fh, indent=2, sort_keys=True)


def _random_edge_graph(n, m, seed):
    """A partial graph holding ``m`` random resolved Euclidean edges."""
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    graph = PartialDistanceGraph(n)
    seen = set()
    while len(seen) < m:
        i, j = (int(v) for v in rng.integers(0, n, 2))
        key = (min(i, j), max(i, j))
        if i != j and key not in seen:
            seen.add(key)
            graph.add_edge(i, j, float(np.linalg.norm(pts[i] - pts[j])))
    return graph


def _best_of(fn, reps=5):
    """Min-of-``reps`` wall time — the noise-robust benchmark statistic."""
    best = math.inf
    out = None
    for _ in range(reps):
        started = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - started)
    return out, best


def test_frontier_sweep_3x_and_identical_decisions(report):
    graph = _random_edge_graph(N_FRONTIER, M_FRONTIER, seed=5)
    tri = TriScheme(graph, max_distance=2.0)
    others = list(range(1, N_FRONTIER))

    tri.frontier_csr_threshold = math.inf  # pin the PR-2 mirror kernel
    tri._bounds_frontier(0, others)
    legacy, legacy_s = _best_of(lambda: tri._bounds_frontier(0, others))

    tri.frontier_csr_threshold = 8  # default: CSR kernel for large frontiers
    tri._bounds_frontier(0, others)
    csr, csr_s = _best_of(lambda: tri._bounds_frontier(0, others))

    assert legacy == csr, "CSR sweep must be byte-identical to the mirror kernel"
    speedup = legacy_s / csr_s
    assert speedup >= SPEEDUP_FLOOR, (
        f"CSR frontier sweep only {speedup:.2f}x vs mirror kernel "
        f"(floor {SPEEDUP_FLOOR}x): {legacy_s * 1e3:.2f} ms -> {csr_s * 1e3:.2f} ms"
    )

    # Kernel choice must be invisible to the host algorithm: same oracle
    # charges, same resolved edges in the same order.
    def run_prim(threshold):
        space = sf_poi_space(n=200, road=False)
        oracle = space.oracle()
        resolver = SmartResolver(oracle)
        scheme = TriScheme(resolver.graph, space.diameter_bound())
        scheme.frontier_csr_threshold = threshold
        resolver.bounder = scheme
        from repro.harness.runner import ALGORITHMS

        ALGORITHMS["prim"](resolver)
        i, j, w = resolver.graph.edge_arrays()
        return oracle.calls, list(zip(i.tolist(), j.tolist(), w.tolist()))

    calls_mirror, edges_mirror = run_prim(math.inf)
    calls_csr, edges_csr = run_prim(8)
    assert calls_mirror == calls_csr
    assert edges_mirror == edges_csr

    report(
        render_table(
            ["kernel", "sweep (ms)", "speedup", "prim oracle calls"],
            [
                ["mirrors (PR-2)", round(legacy_s * 1e3, 2), 1.0, calls_mirror],
                [f"csr ({kernels.backend()})", round(csr_s * 1e3, 2),
                 round(speedup, 2), calls_csr],
            ],
            title=f"Tri frontier sweep, n={N_FRONTIER}, m={M_FRONTIER}",
        )
    )
    _RAW.update(
        {
            "frontier_n": N_FRONTIER,
            "frontier_edges": M_FRONTIER,
            "frontier_mirror_seconds": legacy_s,
            "frontier_csr_seconds": csr_s,
            "frontier_speedup": speedup,
            "kernel_backend": kernels.backend(),
        }
    )
    _dump_raw()


def test_stretch_1_5_cuts_oracle_calls_40pct(report):
    space = sf_poi_space(n=STRETCH_N, road=False)
    registry = MetricsRegistry()
    exact = run_experiment(
        space, "knng", "sketch", num_landmarks=STRETCH_LANDMARKS,
        algorithm_kwargs={"k": 6}, stretch=1.0,
    )
    approx = run_experiment(
        space, "knng", "sketch", num_landmarks=STRETCH_LANDMARKS,
        algorithm_kwargs={"k": 6}, stretch=STRETCH, registry=registry,
    )
    savings = 100.0 * (1 - approx.algorithm_calls / exact.algorithm_calls)
    assert savings >= SAVINGS_FLOOR_PCT, (
        f"stretch={STRETCH} saved only {savings:.1f}% of algorithm-phase "
        f"oracle calls (floor {SAVINGS_FLOOR_PCT}%)"
    )

    # Every accepted estimate's realised stretch stays within budget: all
    # histogram observations land at or below the budget bucket boundary.
    snapshot = registry.snapshot()
    total = snapshot["repro_answer_stretch_count"]
    within = snapshot[f'repro_answer_stretch_bucket{{le="{STRETCH}"}}']
    assert total > 0, "approximate mode accepted no answers"
    assert within == total, (
        f"{total - within} answers exceeded the stretch budget {STRETCH}"
    )

    report(
        render_table(
            ["stretch", "algorithm calls", "approx answers", "savings %"],
            [
                [1.0, exact.algorithm_calls, 0, 0.0],
                [STRETCH, approx.algorithm_calls, int(total), round(savings, 1)],
            ],
            title=f"kNN-graph (k=6) on sf n={STRETCH_N}, "
            f"sketch L={STRETCH_LANDMARKS}",
        )
    )
    _RAW.update(
        {
            "stretch_budget": STRETCH,
            "stretch_n": STRETCH_N,
            "stretch_landmarks": STRETCH_LANDMARKS,
            "stretch_exact_calls": exact.algorithm_calls,
            "stretch_approx_calls": approx.algorithm_calls,
            "stretch_savings_pct": savings,
            "stretch_approx_answers": int(total),
        }
    )
    _dump_raw()


@pytest.mark.skipif(not kernels.HAVE_NUMBA, reason="numba not installed")
def test_compiled_kernels_match_fallback_bitwise():
    graph = _random_edge_graph(400, 4000, seed=11)
    indptr, indices, weights = graph.csr_arrays()
    n = graph.n
    others = np.arange(1, n, dtype=np.int64)

    impls = kernels.implementations("tri_frontier")
    for relaxation in (1.0, 1.15):
        ref = impls["numpy"](indptr, indices, weights, n, 0, others, 2.0, relaxation)
        got = impls["numba"](indptr, indices, weights, n, 0, others, 2.0, relaxation)
        assert np.array_equal(ref[0], got[0]) and np.array_equal(ref[1], got[1])
        assert ref[2] == got[2]

    impls = kernels.implementations("sssp")
    for source in (0, 7, 123):
        ref = impls["numpy"](indptr, indices, weights, n, source)
        got = impls["numba"](indptr, indices, weights, n, source)
        assert np.array_equal(ref, got)

    sp_i = kernels.sssp(indptr, indices, weights, n, 0)
    sp_j = kernels.sssp(indptr, indices, weights, n, 1)
    i_ids, j_ids, w = graph.edge_arrays()
    impls = kernels.implementations("splub_sweep")
    assert impls["numpy"](sp_i, sp_j, i_ids, j_ids, w) == impls["numba"](
        sp_i, sp_j, i_ids, j_ids, w
    )

    rng = np.random.default_rng(3)
    matrix = rng.random((16, 200))
    ii = rng.integers(0, 200, 64).astype(np.int64)
    jj = rng.integers(0, 200, 64).astype(np.int64)
    impls = kernels.implementations("laesa_sweep")
    ref = impls["numpy"](matrix, ii, jj)
    got = impls["numba"](matrix, ii, jj)
    assert np.array_equal(ref[0], got[0]) and np.array_equal(ref[1], got[1])
