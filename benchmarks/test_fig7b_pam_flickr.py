"""Figure 7b — PAM on Flickr-like high-dimensional feature vectors.

Shape target: even in 256 dimensions (where distance concentration makes
triangle bounds weakest), bound pruning still saves a paper-ballpark share
of calls (the paper reports ~20% in its largest setting); Tri and the
landmark schemes are nearly tied at laptop scale.
"""

from repro.harness import percentage_save, render_table, size_sweep

from benchmarks.conftest import flickr

SIZES = [60, 90, 120]
PAM_KWARGS = {"l": 10, "seed": 0, "max_iterations": 4}


def test_fig7b_pam_flickr(benchmark, report):
    out = size_sweep(
        lambda n: flickr(n), SIZES, "pam",
        providers=("none", "tri", "laesa", "tlaesa"),
        algorithm_kwargs=PAM_KWARGS,
    )
    rows = []
    for i, n in enumerate(SIZES):
        vanilla = out["none"][i].total_calls
        tri = out["tri"][i].total_calls
        laesa = out["laesa"][i].total_calls
        tlaesa = out["tlaesa"][i].total_calls
        rows.append([n, vanilla, tri, round(percentage_save(vanilla, tri), 1),
                     laesa, tlaesa])
    report(
        render_table(
            ["n", "vanilla", "Tri total", "save% vs vanilla", "LAESA", "TLAESA"],
            rows,
            title="Fig 7b: PAM oracle calls, Flickr-like 256-d vectors",
        )
    )
    for i in range(len(SIZES)):
        # High-dimensional shape: bound pruning still saves substantially
        # over the vanilla run; Tri and the landmark schemes are close at
        # this scale (see EXPERIMENTS.md for the deviation discussion).
        assert out["tri"][i].total_calls < out["none"][i].total_calls
        assert out["tri"][i].total_calls <= 1.1 * out["laesa"][i].total_calls
        assert out["tri"][i].result.medoids == out["none"][i].result.medoids

    from repro.harness import run_experiment

    benchmark.pedantic(
        lambda: run_experiment(
            flickr(40), "pam", "tri", landmark_bootstrap=True,
            algorithm_kwargs=PAM_KWARGS,
        ),
        rounds=1,
        iterations=1,
    )
