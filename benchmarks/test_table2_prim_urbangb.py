"""Table 2 — oracle calls of Prim's algorithm on UrbanGB-like data.

Columns mirror the paper: Without Plug, TS-NB (Tri, no bootstrap),
Bootstrap (landmark calls), Tri Scheme (algorithm phase), LAESA, TLAESA,
and the save percentages.  Shape target: the bootstrapped Tri Scheme's
total bill undercuts LAESA and TLAESA at every size, with paper-ballpark
save percentages.
"""

from repro.harness import prim_call_table, render_table

from benchmarks.conftest import urban

SIZES = [64, 128, 192]


def test_table2_prim_urbangb(benchmark, report):
    rows = prim_call_table(lambda n: urban(n), SIZES)
    report(
        render_table(
            ["#edges", "WithoutPlug", "TS-NB", "Bootstrap", "TriScheme",
             "LAESA", "Save(%)", "TLAESA", "Save(%)", "landmarks"],
            [
                [
                    r.num_edges,
                    r.without_plug,
                    r.ts_nb,
                    r.bootstrap,
                    r.tri_scheme,
                    r.laesa,
                    round(r.save_vs_laesa, 2),
                    r.tlaesa,
                    round(r.save_vs_tlaesa, 2),
                    r.num_landmarks,
                ]
                for r in rows
            ],
            title="Table 2: Prim's oracle calls, UrbanGB-like (road metric)",
        )
    )
    # Robust paper shape at this scale: bootstrapped Tri's *total* bill
    # undercuts both landmark baselines at every size (see EXPERIMENTS.md
    # for the TS-NB-vs-LAESA ordering discussion).
    for r in rows:
        assert r.ts_nb <= r.without_plug
        assert r.bootstrap + r.tri_scheme <= r.laesa
        assert r.bootstrap + r.tri_scheme <= r.tlaesa

    from repro.harness import run_experiment

    benchmark.pedantic(
        lambda: run_experiment(urban(64), "prim", "tri"), rounds=1, iterations=1
    )
