"""Figures 8c/8d — effect of the cluster count l on distance calls.

Shape targets: CLARANS needs more calls as l grows (more candidate swaps to
price); PAM's count responds to l as well (the paper notes faster
convergence from more local minima); Tri keeps its lead over the landmark
baselines at every l.
"""

import pytest

from repro.harness import parameter_sweep, render_series

from benchmarks.conftest import sf

N = 100
L_VALUES = [3, 5, 8, 12]


@pytest.mark.parametrize(
    "figure,algorithm,base",
    [
        ("8c", "pam", {"seed": 0, "max_iterations": 3}),
        ("8d", "clarans", {"seed": 0, "num_local": 1}),
    ],
)
def test_fig8cd_vary_l_distance_counts(benchmark, report, figure, algorithm, base):
    out = parameter_sweep(
        sf(N, road=False), algorithm, "l", L_VALUES,
        providers=("none", "tri", "laesa", "tlaesa"),
        base_kwargs=base,
    )
    report(
        render_series(
            "l",
            L_VALUES,
            {p: [r.total_calls for r in out[p]] for p in out},
            title=f"Fig {figure}: {algorithm.upper()} oracle calls vs l (SF-like n={N})",
        )
    )
    for i in range(len(L_VALUES)):
        assert out["tri"][i].total_calls <= out["laesa"][i].total_calls
    if algorithm == "clarans":
        # The vanilla curve shows the paper's growth-with-l effect; the
        # augmented curves flatten at laptop scale because pruning power
        # grows alongside l (see EXPERIMENTS.md).
        calls = [r.total_calls for r in out["none"]]
        assert calls[-1] > calls[0], "vanilla CLARANS calls grow with l"

    from repro.harness import run_experiment

    benchmark.pedantic(
        lambda: run_experiment(
            sf(N, road=False), algorithm, "tri", landmark_bootstrap=True,
            algorithm_kwargs={**base, "l": 5},
        ),
        rounds=1,
        iterations=1,
    )
