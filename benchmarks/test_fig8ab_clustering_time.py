"""Figures 8a/8b — PAM and CLARANS completion time varying oracle cost.

Shape target: as the per-call price rises, the Tri-augmented runs pull
ahead of LAESA/TLAESA (paper: PAM saves up to 59%/40% at a 2.5 s oracle).
"""

import pytest

from repro.harness import oracle_cost_sweep, render_series

from benchmarks.conftest import sf

N = 100
COSTS = [0.0, 0.5, 1.0, 2.5]


@pytest.mark.parametrize(
    "figure,algorithm,kwargs",
    [
        ("8a", "pam", {"l": 5, "seed": 0, "max_iterations": 4}),
        ("8b", "clarans", {"l": 5, "seed": 0, "num_local": 1}),
    ],
)
def test_fig8ab_clustering_completion_time(benchmark, report, figure, algorithm, kwargs):
    out = oracle_cost_sweep(
        sf(N, road=False), algorithm, COSTS,
        providers=("tri", "laesa", "tlaesa"),
        algorithm_kwargs=kwargs,
    )
    report(
        render_series(
            "oracle s/call",
            COSTS,
            {p: [round(t, 1) for t in out[p]] for p in out},
            title=f"Fig {figure}: {algorithm.upper()} completion time (s), SF-like n={N}",
        )
    )
    assert out["tri"][-1] < out["laesa"][-1]
    assert out["tri"][-1] < out["tlaesa"][-1]

    from repro.harness import run_experiment

    benchmark.pedantic(
        lambda: run_experiment(
            sf(N, road=False), algorithm, "tri", landmark_bootstrap=True,
            algorithm_kwargs=kwargs,
        ),
        rounds=1,
        iterations=1,
    )
