"""Ablation — landmark selection strategy for the Tri bootstrap.

Max-min (the LAESA default) vs max-sum vs uniform random, measured by the
total Prim bill after a Tri bootstrap with each.  Random selection costs no
selection calls but covers the space worse; the spread criteria pay
selection calls that usually earn themselves back in tighter bounds.
"""

from repro.bounds import TriScheme
from repro.bounds.landmarks import SELECTION_STRATEGIES, bootstrap_with_landmarks
from repro.core.resolver import SmartResolver
from repro.algorithms import prim_mst
from repro.harness import render_table

from benchmarks.conftest import sf

N = 128


def _run(strategy: str) -> tuple[int, int]:
    space = sf(N)
    oracle = space.oracle()
    resolver = SmartResolver(oracle)
    resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
    bootstrap_with_landmarks(resolver, strategy=strategy)
    bootstrap_calls = oracle.calls
    prim_mst(resolver)
    return bootstrap_calls, oracle.calls


def test_ablation_landmark_strategy(benchmark, report):
    rows = []
    totals = {}
    for strategy in SELECTION_STRATEGIES:
        bootstrap_calls, total = _run(strategy)
        totals[strategy] = total
        rows.append([strategy, bootstrap_calls, total - bootstrap_calls, total])
    report(
        render_table(
            ["strategy", "bootstrap", "algorithm", "total"],
            rows,
            title=f"Ablation: landmark selection strategy (Prim + Tri, SF-like n={N})",
        )
    )
    # All strategies must stay comfortably below the vanilla bill.
    assert all(total < N * (N - 1) // 2 for total in totals.values())

    benchmark.pedantic(lambda: _run("maxmin"), rounds=1, iterations=1)
