"""Ablation — composing providers: Tri ∩ LAESA vs each alone.

The framework's provider protocol composes: an ``IntersectionBounder``
returns the tightest interval any member can prove.  This ablation checks
whether combining the Tri Scheme with the LAESA matrix pays for its extra
CPU: the combination can never need *more* calls than the better member.
"""

from repro.bounds import Laesa, TriScheme
from repro.core.bounds import IntersectionBounder
from repro.core.resolver import SmartResolver
from repro.algorithms import prim_mst
from repro.harness import render_table

from benchmarks.conftest import sf

N = 128


def _run(combo: str) -> int:
    space = sf(N, road=False)
    oracle = space.oracle()
    resolver = SmartResolver(oracle)
    cap = space.diameter_bound()
    laesa = Laesa(resolver.graph, cap)
    tri = TriScheme(resolver.graph, cap)
    if combo == "tri":
        resolver.bounder = tri
        # Same landmark spend as the other configurations for a fair bill.
        laesa.bootstrap(resolver)
    elif combo == "laesa":
        resolver.bounder = laesa
        laesa.bootstrap(resolver)
    elif combo == "tri+laesa":
        resolver.bounder = IntersectionBounder(resolver.graph, [tri, laesa], cap)
        laesa.bootstrap(resolver)
    else:
        raise ValueError(combo)
    prim_mst(resolver)
    return oracle.calls


def test_ablation_intersection_bounder(benchmark, report):
    results = {combo: _run(combo) for combo in ("tri", "laesa", "tri+laesa")}
    report(
        render_table(
            ["configuration", "total oracle calls"],
            [[k, v] for k, v in results.items()],
            title=f"Ablation: provider composition on Prim (SF-like n={N})",
        )
    )
    # The intersection is at least as informative as either member.
    assert results["tri+laesa"] <= results["tri"]
    assert results["tri+laesa"] <= results["laesa"]

    benchmark.pedantic(lambda: _run("tri+laesa"), rounds=1, iterations=1)
