"""Sharded-serving benchmark — throughput scaling with an expensive oracle.

The acceptance experiment for the sharded engine: a 16-query kNN workload
against a 6 ms-per-call oracle must run at least **2.5x faster** on a
4-shard :class:`~repro.service.ShardedEngine` than on a single-process
engine, with answers identical query for query and every shard's
resolved-edge sequence byte-identical to a single-process engine run on the
same candidate substream.

The oracle *sleeps* rather than burns CPU — that is the paper's regime (an
expensive distance call is dominated by I/O / external computation, not
local arithmetic), and it is what makes shard processes overlap even on a
single core.

Set ``SHARD_SCALING_JSON`` to a path to dump the raw measurements for
``scripts/bench_to_json.py`` (CI turns them into
``BENCH_shard_scaling.json``).
"""

import json
import os
import time

from repro.datasets import flickr_space
from repro.harness import render_table
from repro.service import ProximityEngine, ShardedEngine
from repro.service.jobs import JobSpec
from repro.spaces.handles import handle_for

N = 64
# 6 ms per call: expensive enough that oracle latency (which shards overlap)
# dominates the per-resolution CPU bookkeeping (which a single core cannot
# parallelise) — the regime the paper's expensive-oracle setting models.
DELAY = 0.006
NUM_QUERIES = 16
SHARDS = 4
SPEEDUP_FLOOR = 2.5


class SlowSpace:
    """Delegate to a real space, but make every distance call sleep."""

    def __init__(self, inner, delay):
        self._inner = inner
        self._delay = delay

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def distance(self, i, j):
        time.sleep(self._delay)
        return self._inner.distance(i, j)

    def oracle(self, cost_per_call=0.0, budget=None):
        from repro.core.oracle import DistanceOracle

        return DistanceOracle(
            self.distance, self._inner.n, cost_per_call=cost_per_call, budget=budget
        )


def slow_flickr(n, dim, seed, delay):
    """Module-level factory: picklable by reference for shard processes."""
    return SlowSpace(flickr_space(n=n, dim=dim, seed=seed), delay)


def _workload():
    return [
        JobSpec(kind="knn", params={"query": (7 * idx) % N, "k": 4 + idx % 3})
        for idx in range(NUM_QUERIES)
    ]


def _timed(engine, workload):
    started = time.perf_counter()
    answers = [engine.run(spec) for spec in workload]
    elapsed = time.perf_counter() - started
    return [r.value for r in answers], elapsed


def test_four_shards_beat_single_process_2_5x(report):
    handle = handle_for(slow_flickr, n=N, dim=6, seed=23, delay=DELAY)
    workload = _workload()

    single = ShardedEngine(handle, num_shards=1, provider="none")
    try:
        single_answers, single_seconds = _timed(single, workload)
    finally:
        single.close()

    sharded = ShardedEngine(handle, num_shards=SHARDS, provider="none")
    try:
        sharded_answers, sharded_seconds = _timed(sharded, workload)

        # Answers must be identical, query for query.
        assert sharded_answers == single_answers

        # Per-shard resolved-edge sequences must be byte-identical to a
        # single-process engine run on the same candidate substream.
        space = handle.space()
        for shard, region in zip(sharded._shards, sharded.plan.regions):
            rows = sharded._call(shard, {"op": "edges", "start": 0})["edges"]
            ref = ProximityEngine.for_space(space, provider="none", job_workers=1)
            try:
                for spec in workload:
                    params = dict(spec.params)
                    params["candidates"] = list(region)
                    ref.run(JobSpec(kind="knn", params=params))
                i, j, w = ref.graph.edge_arrays()
                want = list(zip(i.tolist(), j.tolist(), w.tolist()))
            finally:
                ref.close(snapshot=False)
            assert [tuple(r) for r in rows] == want
    finally:
        sharded.close()

    speedup = single_seconds / sharded_seconds
    report(
        render_table(
            ["shards", "seconds", "throughput (q/s)", "speedup"],
            [
                [1, round(single_seconds, 2),
                 round(NUM_QUERIES / single_seconds, 2), 1.0],
                [SHARDS, round(sharded_seconds, 2),
                 round(NUM_QUERIES / sharded_seconds, 2), round(speedup, 2)],
            ],
            title=f"{NUM_QUERIES} kNN queries, n={N}, "
            f"{DELAY * 1e3:.0f} ms/oracle call",
        )
    )

    dump = os.environ.get("SHARD_SCALING_JSON")
    if dump:
        with open(dump, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "n": N,
                    "queries": NUM_QUERIES,
                    "oracle_delay_seconds": DELAY,
                    "single_seconds": single_seconds,
                    "sharded_seconds": sharded_seconds,
                    "shards": SHARDS,
                    "speedup": speedup,
                    "answers_identical": True,
                    "per_shard_byte_identical": True,
                },
                fh,
                indent=2,
            )

    assert speedup >= SPEEDUP_FLOOR, (
        f"{SHARDS} shards ran the workload only {speedup:.2f}x faster than "
        f"one process — below the {SPEEDUP_FLOOR}x acceptance floor"
    )
