"""Figures 7a/7c — CLARANS distance calls varying dataset size (SF/UrbanGB).

Shape target: Tri saves calls vs LAESA and TLAESA at every size and scales
to the larger settings without giving up the saving.
"""

import pytest

from repro.harness import percentage_save, render_table, size_sweep

from benchmarks.conftest import sf, urban

SIZES = [48, 96, 160]
CLARANS_KWARGS = {"l": 5, "seed": 0, "num_local": 1}


@pytest.mark.parametrize(
    "figure,space_fn,label",
    [("7a", sf, "SF-POI-like"), ("7c", urban, "UrbanGB-like")],
)
def test_fig7ac_clarans_vary_size(benchmark, report, figure, space_fn, label):
    out = size_sweep(
        lambda n: space_fn(n, road=False), SIZES, "clarans",
        providers=("tri", "laesa", "tlaesa"),
        algorithm_kwargs=CLARANS_KWARGS,
    )
    rows = []
    for i, n in enumerate(SIZES):
        tri = out["tri"][i].total_calls
        laesa = out["laesa"][i].total_calls
        tlaesa = out["tlaesa"][i].total_calls
        rows.append([n, tri, laesa, round(percentage_save(laesa, tri), 1),
                     tlaesa, round(percentage_save(tlaesa, tri), 1)])
    report(
        render_table(
            ["n", "Tri total", "LAESA", "save%", "TLAESA", "save%"],
            rows,
            title=f"Fig {figure}: CLARANS (l={CLARANS_KWARGS['l']}) oracle calls, {label}",
        )
    )
    for i in range(len(SIZES)):
        assert out["tri"][i].total_calls <= out["laesa"][i].total_calls
        assert out["tri"][i].result.medoids == out["laesa"][i].result.medoids

    from repro.harness import run_experiment

    benchmark.pedantic(
        lambda: run_experiment(
            space_fn(48, road=False), "clarans", "tri", landmark_bootstrap=True,
            algorithm_kwargs=CLARANS_KWARGS,
        ),
        rounds=1,
        iterations=1,
    )
