"""Figures 6c/6d — PAM distance calls varying dataset size.

6c uses UrbanGB-like data, 6d SF-POI-like.  Shape target: the Tri Scheme's
save percentage vs LAESA/TLAESA grows (or at least persists) as n grows.
"""

import pytest

from repro.harness import percentage_save, render_table, size_sweep

from benchmarks.conftest import sf, urban

SIZES = [40, 80, 120]
PAM_KWARGS = {"l": 5, "seed": 0, "max_iterations": 4}


@pytest.mark.parametrize(
    "figure,space_fn,label",
    [("6c", urban, "UrbanGB-like"), ("6d", sf, "SF-POI-like")],
)
def test_fig6cd_pam_vary_size(benchmark, report, figure, space_fn, label):
    out = size_sweep(
        lambda n: space_fn(n, road=False), SIZES, "pam",
        providers=("tri", "laesa", "tlaesa"),
        algorithm_kwargs=PAM_KWARGS,
    )
    rows = []
    for i, n in enumerate(SIZES):
        tri = out["tri"][i].total_calls
        laesa = out["laesa"][i].total_calls
        tlaesa = out["tlaesa"][i].total_calls
        rows.append([n, tri, laesa, round(percentage_save(laesa, tri), 1),
                     tlaesa, round(percentage_save(tlaesa, tri), 1)])
    report(
        render_table(
            ["n", "Tri total", "LAESA", "save%", "TLAESA", "save%"],
            rows,
            title=f"Fig {figure}: PAM (l={PAM_KWARGS['l']}) oracle calls, {label}",
        )
    )
    for i in range(len(SIZES)):
        assert out["tri"][i].total_calls <= out["laesa"][i].total_calls
        # Outputs identical across providers.
        assert out["tri"][i].result.medoids == out["laesa"][i].result.medoids

    from repro.harness import run_experiment

    benchmark.pedantic(
        lambda: run_experiment(
            space_fn(40, road=False), "pam", "tri", landmark_bootstrap=True,
            algorithm_kwargs=PAM_KWARGS,
        ),
        rounds=1,
        iterations=1,
    )
