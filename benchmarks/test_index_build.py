"""Index-construction benchmark — bound-accelerated navigable-graph builds.

The acceptance experiment for ``repro.graphs``: building the NSG-style
flat graph through a bound-equipped :class:`SmartResolver` costs at least
**2x fewer strong oracle calls** than the naive reference builder while
producing a byte-identical graph (``edges_signature`` equality — same
edges, same order, at ``stretch=1.0`` semantics).  The layered HNSW build
also saves calls (reported, gated only above break-even — beam admission
leaves fewer bound-decidable tests than NSG's occlusion pruning), and the
served search path (``build_index`` → ``search_index`` jobs through a
:class:`ProximityEngine`) answers with **recall@10 ≥ 0.9**, in numeric and
comparison-only mode alike.

Set ``INDEX_BUILD_JSON`` to a path to dump the raw measurements for
``scripts/bench_to_json.py`` (CI turns them into
``BENCH_index_build.json`` and gates them against the committed baseline).
"""

import json
import os

import numpy as np

from repro.bounds import TriScheme
from repro.core.resolver import SmartResolver
from repro.graphs import DirectResolver, build_hnsw, build_nsg, brute_force_knn, recall_at_k
from repro.harness import render_table
from repro.service import ProximityEngine
from repro.service.jobs import JobSpec

from benchmarks.conftest import sf

N = 200
HNSW = {"m": 8, "ef_construction": 32, "seed": 3}
NSG = {"r": 8, "k": 16}
NSG_SAVINGS_FLOOR = 2.0
RECALL_K = 10
RECALL_FLOOR = 0.9
NUM_QUERIES = 30

_RESULTS = {}


def _build_pair(builder, **kwargs):
    """One naive and one bound-accelerated build; (graphs, calls) per mode."""
    space = sf(N, road=False)
    out = {}
    for label in ("naive", "smart"):
        oracle = space.oracle()
        if label == "naive":
            resolver = DirectResolver(oracle)
        else:
            resolver = SmartResolver(oracle)
            resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
        graph = builder(resolver, **kwargs)
        out[label] = (graph, oracle.calls)
    return out


def test_nsg_build_saves_2x_with_identical_graph(report):
    pair = _build_pair(build_nsg, **NSG)
    (naive_graph, naive_calls), (smart_graph, smart_calls) = (
        pair["naive"], pair["smart"],
    )
    identical = naive_graph.edges_signature() == smart_graph.edges_signature()
    savings = naive_calls / max(1, smart_calls)
    report(
        render_table(
            ["builder", "strong calls", "edges"],
            [
                ["naive", naive_calls, naive_graph.num_edges],
                ["smart (tri)", smart_calls, smart_graph.num_edges],
                ["savings", f"{savings:.2f}x", "identical" if identical else "DIVERGED"],
            ],
            title=f"nsg construction: sf-euclid n={N} {NSG}",
        )
    )
    assert identical, "bound-accelerated NSG build diverged from the naive reference"
    assert savings >= NSG_SAVINGS_FLOOR, (
        f"NSG construction saved only {savings:.2f}x strong calls "
        f"(floor {NSG_SAVINGS_FLOOR}x)"
    )
    _RESULTS.update(
        nsg_naive_strong_calls=naive_calls,
        nsg_smart_strong_calls=smart_calls,
        nsg_oracle_savings=savings,
        nsg_identical=identical,
    )


def test_hnsw_build_saves_calls_with_identical_graph(report):
    pair = _build_pair(build_hnsw, **HNSW)
    (naive_graph, naive_calls), (smart_graph, smart_calls) = (
        pair["naive"], pair["smart"],
    )
    identical = naive_graph.edges_signature() == smart_graph.edges_signature()
    savings = naive_calls / max(1, smart_calls)
    report(
        render_table(
            ["builder", "strong calls", "edges"],
            [
                ["naive", naive_calls, naive_graph.num_edges],
                ["smart (tri)", smart_calls, smart_graph.num_edges],
                ["savings", f"{savings:.2f}x", "identical" if identical else "DIVERGED"],
            ],
            title=f"hnsw construction: sf-euclid n={N} {HNSW}",
        )
    )
    assert identical, "bound-accelerated HNSW build diverged from the naive reference"
    # Beam admission leaves fewer bound-decidable comparisons than NSG's
    # occlusion pruning, so HNSW is gated above break-even only.
    assert savings > 1.0, (
        f"HNSW construction must at least break even (got {savings:.2f}x)"
    )
    _RESULTS.update(
        hnsw_naive_strong_calls=naive_calls,
        hnsw_smart_strong_calls=smart_calls,
        hnsw_oracle_savings=savings,
        hnsw_identical=identical,
    )


def test_served_search_recall_and_comparison_mode(report):
    """The engine-served path: build_index job, then recall over searches."""
    space = sf(N, road=False)
    rng = np.random.default_rng(11)
    queries = [int(q) for q in rng.integers(space.n, size=NUM_QUERIES)]
    engine = ProximityEngine.for_space(space, provider="tri", job_workers=1)
    try:
        built = engine.run(JobSpec(kind="build_index", params={
            "graph": "hnsw", "m": HNSW["m"], "ef": HNSW["ef_construction"],
            "seed": HNSW["seed"],
        }))
        assert built.ok, built.error
        numeric, ordinal, comparisons = [], [], 0
        for q in queries:
            truth = brute_force_knn(space.distance, q, range(space.n), RECALL_K)
            found = engine.run(JobSpec(kind="search_index", params={
                "query": q, "k": RECALL_K,
            }))
            assert found.ok, found.error
            numeric.append(recall_at_k(found.value, truth))
            cmp_found = engine.run(JobSpec(kind="search_index", params={
                "query": q, "k": RECALL_K, "mode": "comparison",
            }))
            assert cmp_found.ok, cmp_found.error
            ordinal.append(recall_at_k(cmp_found.value["ids"], truth))
            comparisons += cmp_found.value["comparisons"]
    finally:
        engine.close(snapshot=False)

    recall = sum(numeric) / len(numeric)
    cmp_recall = sum(ordinal) / len(ordinal)
    report(
        render_table(
            ["search mode", f"recall@{RECALL_K}"],
            [
                ["numeric", f"{recall:.3f}"],
                ["comparison-only", f"{cmp_recall:.3f}"],
                ["ordering calls (total)", comparisons],
            ],
            title=f"served hnsw search: n={N}, {NUM_QUERIES} queries",
        )
    )
    assert recall >= RECALL_FLOOR, (
        f"served recall@{RECALL_K} = {recall:.3f} below floor {RECALL_FLOOR}"
    )
    assert cmp_recall >= RECALL_FLOOR, (
        f"comparison-only recall@{RECALL_K} = {cmp_recall:.3f} "
        f"below floor {RECALL_FLOOR}"
    )
    _RESULTS.update(
        recall_at_10=recall,
        comparison_recall_at_10=cmp_recall,
        comparison_calls=comparisons,
    )

    dump = os.environ.get("INDEX_BUILD_JSON")
    if dump:
        payload = {
            "n": N,
            "hnsw_m": HNSW["m"],
            "hnsw_ef_construction": HNSW["ef_construction"],
            "nsg_r": NSG["r"],
            "nsg_k": NSG["k"],
            "recall_k": RECALL_K,
            "num_queries": NUM_QUERIES,
        }
        payload.update(_RESULTS)
        with open(dump, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
