"""Figure 6a — Kruskal's distance-call savings on UrbanGB-like data.

Shape target: Tri (with bootstrap) saves a growing share of calls relative
to LAESA and TLAESA as the dataset grows (the paper reports up to 47%).
"""

from repro.harness import percentage_save, render_table, size_sweep

from benchmarks.conftest import urban

SIZES = [48, 96, 160]


def test_fig6a_kruskal_distance_save(benchmark, report):
    out = size_sweep(lambda n: urban(n), SIZES, "kruskal",
                     providers=("tri", "laesa", "tlaesa"))
    rows = []
    for i, n in enumerate(SIZES):
        tri = out["tri"][i].total_calls
        laesa = out["laesa"][i].total_calls
        tlaesa = out["tlaesa"][i].total_calls
        rows.append(
            [n, tri, laesa, round(percentage_save(laesa, tri), 1),
             tlaesa, round(percentage_save(tlaesa, tri), 1)]
        )
    report(
        render_table(
            ["n", "Tri total", "LAESA", "save%", "TLAESA", "save%"],
            rows,
            title="Fig 6a: Kruskal oracle calls, UrbanGB-like",
        )
    )
    for i in range(len(SIZES)):
        assert out["tri"][i].total_calls <= out["laesa"][i].total_calls
        assert out["tri"][i].total_calls <= out["tlaesa"][i].total_calls

    from repro.harness import run_experiment

    benchmark.pedantic(
        lambda: run_experiment(urban(96), "kruskal", "tri", landmark_bootstrap=True),
        rounds=1,
        iterations=1,
    )
