"""End-to-end wall-clock savings on a *real* expensive oracle.

Every other benchmark prices the oracle on a virtual clock.  This one uses
a genuinely expensive distance — Levenshtein on DNA-length strings, ~10⁴ DP
cells per call — and measures actual wall seconds for exact 4-NN-graph
construction with and without the framework.  The saved calls translate
directly into saved real time, which is the paper's whole point.

(Host choice note: MST hosts are adversarial on tightly clustered discrete
metrics — Kruskal must order the inter-family block exactly, so nearly all
pairs resolve regardless of bounds.  Threshold-driven hosts like the kNN
graph keep their large savings; see EXPERIMENTS.md.)
"""

import numpy as np

from repro.algorithms import knn_graph, knn_graph_brute
from repro.bounds import TriScheme
from repro.core.oracle import WallClockOracle
from repro.core.resolver import SmartResolver
from repro.harness import percentage_save, render_table
from repro.spaces.strings import EditDistanceSpace, random_strings

N = 50
LENGTH = 120
K = 4


def _space():
    strings = random_strings(
        N, length=LENGTH, mutation_rate=0.1, num_seeds=4,
        rng=np.random.default_rng(17),
    )
    return EditDistanceSpace(strings)


def _run(with_tri: bool):
    space = _space()
    oracle = WallClockOracle(space.distance, space.n)
    resolver = SmartResolver(oracle)
    if with_tri:
        resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
        result = knn_graph(resolver, k=K)
    else:
        result = knn_graph_brute(resolver, k=K)
    return oracle.calls, oracle.wall_seconds, result


def test_real_oracle_wall_clock_savings(benchmark, report):
    vanilla_calls, vanilla_seconds, vanilla_graph = _run(False)
    tri_calls, tri_seconds, tri_graph = _run(True)
    for u in range(N):
        assert tri_graph.neighbor_ids(u) == vanilla_graph.neighbor_ids(u)
    report(
        render_table(
            ["configuration", "edit-distance calls", "oracle wall (s)"],
            [
                ["vanilla", vanilla_calls, round(vanilla_seconds, 3)],
                ["Tri Scheme", tri_calls, round(tri_seconds, 3)],
                ["saved", f"{percentage_save(vanilla_calls, tri_calls):.1f}%",
                 f"{percentage_save(vanilla_seconds, tri_seconds):.1f}%"],
            ],
            title=f"Real oracle: {K}-NN graph over {N} length-{LENGTH} strings "
            "(Levenshtein, measured wall time)",
        )
    )
    assert tri_calls < vanilla_calls * 0.6
    assert tri_seconds < vanilla_seconds

    benchmark.pedantic(lambda: _run(True), rounds=1, iterations=1)
