"""Figures 9b/9c/9d — local CPU overhead when varying l (PAM, CLARANS) / k (kNNG).

Shape target: raising l (or k) raises the number of bound comparisons and
therefore the *local CPU* overhead — the framework's explicit trade: CPU up,
oracle calls down.  CPU overhead here is wall time minus (zero-cost) oracle
time, i.e. the measured cpu_seconds of each run.
"""

import pytest

from repro.harness import parameter_sweep, render_series

from benchmarks.conftest import sf

N = 100


@pytest.mark.parametrize(
    "figure,algorithm,param,values,base",
    [
        ("9b", "pam", "l", [3, 6, 10], {"seed": 0, "max_iterations": 3}),
        ("9c", "clarans", "l", [3, 6, 10], {"seed": 0, "num_local": 1}),
        ("9d", "knng", "k", [2, 6, 12], {}),
    ],
)
def test_fig9bcd_cpu_overhead(benchmark, report, figure, algorithm, param, values, base):
    out = parameter_sweep(
        sf(N, road=False), algorithm, param, values,
        providers=("tri",),
        base_kwargs=base,
    )
    cpu = [round(r.cpu_seconds, 4) for r in out["tri"]]
    calls = [r.total_calls for r in out["tri"]]
    report(
        render_series(
            param,
            values,
            {"CPU overhead (s)": cpu, "oracle calls": calls},
            title=f"Fig {figure}: {algorithm.upper()} CPU overhead vs {param} "
            f"(Tri, SF-like n={N})",
        )
    )
    # The runs complete and the accounting splits CPU from oracle time.
    assert all(c >= 0 for c in cpu)
    assert all(r.oracle_seconds == 0 for r in out["tri"])

    from repro.harness import run_experiment

    benchmark.pedantic(
        lambda: run_experiment(
            sf(N, road=False), algorithm, "tri",
            algorithm_kwargs={**base, param: values[0]},
        ),
        rounds=1,
        iterations=1,
    )
