"""Table 3 — oracle calls of Prim's algorithm on SF-POI-like data."""

from repro.harness import prim_call_table, render_table, run_experiment

from benchmarks.conftest import sf

SIZES = [64, 128, 192]


def test_table3_prim_sf(benchmark, report):
    rows = prim_call_table(lambda n: sf(n), SIZES)
    report(
        render_table(
            ["#edges", "WithoutPlug", "TS-NB", "Bootstrap", "TriScheme",
             "LAESA", "Save(%)", "TLAESA", "Save(%)", "landmarks"],
            [
                [
                    r.num_edges,
                    r.without_plug,
                    r.ts_nb,
                    r.bootstrap,
                    r.tri_scheme,
                    r.laesa,
                    round(r.save_vs_laesa, 2),
                    r.tlaesa,
                    round(r.save_vs_tlaesa, 2),
                    r.num_landmarks,
                ]
                for r in rows
            ],
            title="Table 3: Prim's oracle calls, SF-POI-like (road metric)",
        )
    )
    for r in rows:
        assert r.ts_nb <= r.without_plug
        assert r.bootstrap + r.tri_scheme <= r.laesa
        assert r.bootstrap + r.tri_scheme <= r.tlaesa

    benchmark.pedantic(
        lambda: run_experiment(sf(64), "prim", "tri"), rounds=1, iterations=1
    )
