"""Figure 3b — Tri Scheme LB/UB gap as the number of known edges grows.

Shape target: the mean gap shrinks drastically as edges accumulate (the
paper reports a 3.3× reduction between its smallest and largest settings).
"""

from repro.harness import render_table, tri_gap_vs_edges

from benchmarks.conftest import sf

N = 150
EDGE_COUNTS = [800, 1600, 3200, 6000]


def test_fig3b_tri_gap_shrinks(benchmark, report):
    rows = tri_gap_vs_edges(sf(N, road=False), EDGE_COUNTS, num_queries=200)
    report(
        render_table(
            ["#edges", "mean LB", "mean UB", "LB-UB gap"],
            [[r["edges"], round(r["mean_lb"], 4), round(r["mean_ub"], 4),
              round(r["gap"], 4)] for r in rows],
            title=f"Fig 3b: Tri Scheme bounds vs #edges (SF-like, n={N})",
        )
    )
    gaps = [r["gap"] for r in rows]
    assert gaps[-1] < gaps[0], "gap must shrink as edges accumulate"
    assert gaps[0] / max(gaps[-1], 1e-12) > 1.5, "shrinkage should be substantial"

    benchmark.pedantic(
        lambda: tri_gap_vs_edges(sf(N, road=False), [1600], num_queries=50),
        rounds=1,
        iterations=1,
    )
