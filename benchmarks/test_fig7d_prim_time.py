"""Figure 7d — Prim's end-to-end completion time varying oracle cost.

Shape target: under any meaningfully priced oracle, the scheme with the
fewest calls (Tri) completes first; the paper reports ~53% vs LAESA and
~39% vs TLAESA at a 1.2 s oracle.
"""

from repro.harness import oracle_cost_sweep, render_series

from benchmarks.conftest import urban

N = 128
COSTS = [0.0, 0.1, 0.5, 1.2]


def test_fig7d_prim_completion_time(benchmark, report):
    out = oracle_cost_sweep(
        urban(N), "prim", COSTS, providers=("tri", "laesa", "tlaesa")
    )
    report(
        render_series(
            "oracle s/call",
            COSTS,
            {p: [round(t, 1) for t in out[p]] for p in out},
            title=f"Fig 7d: Prim completion time (s), UrbanGB-like n={N}",
        )
    )
    # At the priciest oracle the call-count leader must win end-to-end.
    assert out["tri"][-1] < out["laesa"][-1]
    assert out["tri"][-1] < out["tlaesa"][-1]

    from repro.harness import run_experiment

    benchmark.pedantic(
        lambda: run_experiment(urban(N), "prim", "tri", landmark_bootstrap=True),
        rounds=1,
        iterations=1,
    )
