"""Weak/strong tiering — strong-call reduction on kNN-graph, PAM, and Prim.

The two-tier configuration (arXiv 2310.15863 applied to the paper's
re-authoring framework): a cheap *weak* oracle answers with a declared
multiplicative error band, the banded interval tightens the resolver's
bounds, and the expensive *strong* oracle is consulted only on pairs the
bounds leave inconclusive.  On the SF-POI road metric the weak tier is the
crow-flies distance with band ``(detour_lo, ∞)``.

Assertions: outputs byte-identical to the single-oracle baseline on every
algorithm, and ≥30% fewer strong calls on at least two of the three.
"""

from repro.harness import render_table, run_experiment

from benchmarks.conftest import sf

N = 96
ALGORITHMS = [
    ("knng", {"k": 5}),
    ("pam", {"l": 3, "seed": 0}),
    ("prim", {}),
]
TARGET_SAVE = 30.0
MIN_ALGOS_OVER_TARGET = 2


def _compare(algorithm, kwargs, provider):
    space = sf(N)
    base = run_experiment(space, algorithm, provider, algorithm_kwargs=kwargs)
    weak = run_experiment(
        space, algorithm, provider, algorithm_kwargs=kwargs, weak_oracle=True
    )
    return base, weak


def test_weak_strong_oracle(benchmark, report):
    rows = []
    saves = {}
    for algorithm, kwargs in ALGORITHMS:
        base, weak = _compare(algorithm, kwargs, "none")
        assert weak.result == base.result, f"{algorithm}: tiered output diverged"
        save = weak.save_vs(base)
        saves[algorithm] = save
        rows.append(
            [
                algorithm,
                base.total_calls,
                weak.total_calls,
                round(save, 1),
                weak.weak_calls,
                weak.weak_band,
            ]
        )
    report(
        render_table(
            ["algorithm", "strong-only", "tiered strong", "save(%)",
             "weak calls", "band tightenings"],
            rows,
            title=f"Weak/strong tiering: SF-POI road metric, n={N}",
        )
    )
    hits = sum(1 for save in saves.values() if save >= TARGET_SAVE)
    assert hits >= MIN_ALGOS_OVER_TARGET, saves

    benchmark.pedantic(
        lambda: run_experiment(sf(64), "knng", "none",
                               algorithm_kwargs={"k": 5}, weak_oracle=True),
        rounds=1,
        iterations=1,
    )


def test_weak_tier_composes_with_tri(report):
    """The weak band intersects (never replaces) a Tri-scheme provider."""
    rows = []
    for algorithm, kwargs in ALGORITHMS:
        base, weak = _compare(algorithm, kwargs, "tri")
        assert weak.result == base.result, f"{algorithm}: tiered output diverged"
        # Tighter bounds change *which* pairs an adaptive algorithm resolves,
        # so per-run call counts are not strictly monotone — allow ±1%.
        assert weak.total_calls <= base.total_calls * 1.01 + 1
        rows.append(
            [algorithm, base.total_calls, weak.total_calls,
             round(weak.save_vs(base), 1)]
        )
    report(
        render_table(
            ["algorithm", "tri strong-only", "tri+weak strong", "save(%)"],
            rows,
            title=f"Weak tier ∩ Tri scheme: SF-POI road metric, n={N}",
        )
    )
