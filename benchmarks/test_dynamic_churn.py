"""Dynamic-churn benchmark — incremental maintenance vs cold rebuild.

The acceptance experiment for ``repro.dynamic``: a warm engine holding a
standing kNN-graph subscription absorbs a 10% churn batch with at least
**5x fewer strong oracle calls** than rebuilding the same standing result
from scratch on the final object set — and the post-churn standing answers
are byte-identical to the from-scratch run.

Savings are measured in oracle calls, not wall-clock, so the benchmark is
deterministic; a second sustained-churn test pins that the per-batch
maintenance cost stays bounded across consecutive batches.

Set ``DYNAMIC_CHURN_JSON`` to a path to dump the raw measurements for
``scripts/bench_to_json.py`` (CI turns them into
``BENCH_dynamic_churn.json``).
"""

import json
import os

from repro.datasets import flickr_space
from repro.dynamic import DynamicObjectSet, churn_batch
from repro.harness import render_table
from repro.service import ProximityEngine

N = 80
K = 4
FRACTION = 0.10
PROVIDER = "tri"
SAVINGS_FLOOR = 5.0
SUSTAINED_BATCHES = 3


def _spaces():
    """The frozen universe plus a churnable view holding back a reserve."""
    base = flickr_space(n=N, dim=4, seed=31)
    per_batch = max(1, int(round(FRACTION * N / 2)))
    reserve = SUSTAINED_BATCHES * per_batch
    objects = DynamicObjectSet.wrap(base, initial=N - reserve)
    return base, objects, list(range(N - reserve, N)), per_batch


def _fresh_standing(base, objects):
    """Cold rebuild: a fresh engine's standing kNN-graph on the live set."""
    alive = objects.alive_ids()
    final = DynamicObjectSet(
        [objects.payload(i) for i in alive],
        lambda a, b: base.distance(a, b),
        diameter=base.diameter_bound(),
    )
    engine = ProximityEngine.for_space(final, provider=PROVIDER, job_workers=1)
    try:
        sub = engine.subscribe_knng(K)
        rows = engine.subscriptions.get(sub.sub_id).result
        return rows, engine.oracle.calls, {slot: p for p, slot in enumerate(alive)}
    finally:
        engine.close(snapshot=False)


def test_warm_engine_absorbs_churn_5x_cheaper(report):
    base, objects, reserve, per_batch = _spaces()
    engine = ProximityEngine.for_space(objects, provider=PROVIDER, job_workers=1)
    try:
        sub = engine.subscribe_knng(K)
        build_calls = engine.oracle.calls

        batch = churn_batch(
            objects, fraction=FRACTION, seed=17,
            insert_payloads=reserve[:per_batch],
        )
        result = engine.apply_mutations(batch)
        maintain_calls = result.strong_calls

        standing = engine.subscriptions.get(sub.sub_id).result
    finally:
        engine.close(snapshot=False)

    fresh_rows, rebuild_calls, pos = _fresh_standing(base, objects)

    # Post-churn standing answers byte-identical to the from-scratch run
    # (slot ids map monotonically onto the compacted ids, so even tie
    # ordering is preserved).
    mapped = {
        pos[u]: tuple((d, pos[v]) for d, v in row) for u, row in standing.items()
    }
    answers_identical = mapped == {u: tuple(r) for u, r in fresh_rows.items()}
    assert answers_identical

    savings = rebuild_calls / max(1, maintain_calls)
    report(
        render_table(
            ["stage", "strong calls"],
            [
                ["initial build (standing kNN-graph)", build_calls],
                [f"absorb one {FRACTION:.0%} churn batch", maintain_calls],
                ["cold rebuild on final set", rebuild_calls],
                ["savings", f"{savings:.1f}x"],
            ],
            title=f"dynamic churn: n={N}, k={K}, provider={PROVIDER}",
        )
    )
    assert savings >= SAVINGS_FLOOR, (
        f"incremental maintenance saved only {savings:.1f}x over a cold "
        f"rebuild (floor {SAVINGS_FLOOR}x)"
    )

    dump = os.environ.get("DYNAMIC_CHURN_JSON")
    if dump:
        with open(dump, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "n": N,
                    "k": K,
                    "churn_fraction": FRACTION,
                    "provider": PROVIDER,
                    "build_strong_calls": build_calls,
                    "maintain_strong_calls": maintain_calls,
                    "rebuild_strong_calls": rebuild_calls,
                    "oracle_savings": savings,
                    "answers_identical": answers_identical,
                },
                fh,
                indent=2,
                sort_keys=True,
            )


def test_sustained_churn_stays_incremental(report):
    """Per-batch maintenance cost stays a small fraction of a rebuild."""
    base, objects, reserve, per_batch = _spaces()
    engine = ProximityEngine.for_space(objects, provider=PROVIDER, job_workers=1)
    costs = []
    try:
        engine.subscribe_knng(K)
        for batch_no in range(SUSTAINED_BATCHES):
            fresh = reserve[batch_no * per_batch:(batch_no + 1) * per_batch]
            batch = churn_batch(
                objects, fraction=FRACTION, seed=100 + batch_no,
                insert_payloads=fresh,
            )
            costs.append(engine.apply_mutations(batch).strong_calls)
    finally:
        engine.close(snapshot=False)

    _, rebuild_calls, _ = _fresh_standing(base, objects)
    report(
        render_table(
            ["batch", "maintenance strong calls"],
            [[i, c] for i, c in enumerate(costs)],
            title=f"sustained churn ({SUSTAINED_BATCHES} batches), "
            f"rebuild={rebuild_calls}",
        )
    )
    # Every single batch individually clears the floor against a rebuild.
    for cost in costs:
        assert rebuild_calls / max(1, cost) >= SAVINGS_FLOOR
