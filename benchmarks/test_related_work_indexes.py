"""Related work (§6) — metric indexes vs the framework on query workloads.

VP-trees (and kin) pay a construction bill to make *queries* cheap; the
framework pays nothing up front and amortises savings across whatever the
application does.  This bench runs the same NN-query workload both ways
and reports the break-even: for few queries the framework wins outright,
and its shared graph keeps improving as the workload runs.
"""

import numpy as np

from repro.algorithms.queries import nearest_neighbor
from repro.bounds import TriScheme
from repro.core.resolver import SmartResolver
from repro.index import VpTree
from repro.harness import render_table

from benchmarks.conftest import sf

N = 150
QUERY_COUNTS = [5, 25, 75]


def _framework_calls(space, queries) -> int:
    oracle = space.oracle()
    resolver = SmartResolver(oracle)
    resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
    for q in queries:
        nearest_neighbor(resolver, q)
    return oracle.calls


def _index_calls(space, queries) -> tuple[int, int]:
    oracle = space.oracle()
    tree = VpTree(oracle, rng=np.random.default_rng(0))
    build = tree.construction_calls
    for q in queries:
        tree.nearest(q)
    return build, oracle.calls - build


def test_related_work_vptree_vs_framework(benchmark, report):
    space = sf(N, road=False)
    rng = np.random.default_rng(3)
    rows = []
    for count in QUERY_COUNTS:
        queries = [int(q) for q in rng.integers(N, size=count)]
        fw = _framework_calls(space, queries)
        build, query_calls = _index_calls(space, queries)
        rows.append([count, fw, build, query_calls, build + query_calls])
    report(
        render_table(
            ["#NN queries", "framework total", "VP-tree build",
             "VP-tree queries", "VP-tree total"],
            rows,
            title=f"Related work: Tri-framework vs VP-tree (SF-like n={N})",
        )
    )
    # For small workloads the no-upfront-cost framework must win.
    assert rows[0][1] < rows[0][4]

    benchmark.pedantic(
        lambda: _framework_calls(space, [1, 2, 3]), rounds=1, iterations=1
    )
