"""Ablation — DBSCAN as an additional range-query-driven host algorithm.

Not in the paper's evaluation, but squarely inside its framework claim:
density clustering is nothing but ε-range queries, each of which the
re-authored range query answers partly from bounds.  Exact labelling is
asserted against the vanilla run.
"""

from repro.algorithms.dbscan import dbscan
from repro.bounds import TriScheme
from repro.core.resolver import SmartResolver
from repro.harness import percentage_save, render_table

from benchmarks.conftest import sf

N = 150
EPS = 0.08
MIN_PTS = 4


def _run(with_tri: bool):
    space = sf(N, road=False)
    oracle = space.oracle()
    resolver = SmartResolver(oracle)
    if with_tri:
        resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
    result = dbscan(resolver, eps=EPS, min_pts=MIN_PTS)
    return oracle.calls, result


def test_ablation_dbscan(benchmark, report):
    vanilla_calls, vanilla = _run(False)
    tri_calls, tri = _run(True)
    assert tri.labels == vanilla.labels, "exactness"
    report(
        render_table(
            ["configuration", "oracle calls", "clusters", "noise"],
            [
                ["vanilla", vanilla_calls, vanilla.num_clusters, vanilla.noise_count],
                ["Tri Scheme", tri_calls, tri.num_clusters, tri.noise_count],
                ["save%", round(percentage_save(vanilla_calls, tri_calls), 1), "", ""],
            ],
            title=f"DBSCAN (eps={EPS}, minPts={MIN_PTS}) on SF-like n={N}",
        )
    )
    assert tri_calls < vanilla_calls

    benchmark.pedantic(lambda: _run(True), rounds=1, iterations=1)
