"""Ablation — the paper's §7 extension algorithms under the framework.

The conclusion proposes applying the framework to facility allocation and
travelling-salesman problems.  This bench measures the oracle savings of
the re-authored greedy k-center, single-linkage clustering, and
nearest-neighbour TSP tour, plus the AESA degenerate baseline for scale.
"""

from repro.harness import percentage_save, render_table, run_experiment

from benchmarks.conftest import sf

N = 128
CASES = [
    ("kcenter", {"k": 8}),
    ("linkage", {}),
    ("nn-tour", {}),
]


def test_ablation_extension_algorithms(benchmark, report):
    rows = []
    for algorithm, kwargs in CASES:
        vanilla = run_experiment(sf(N), algorithm, "none", algorithm_kwargs=kwargs)
        tri = run_experiment(sf(N), algorithm, "tri", algorithm_kwargs=kwargs)
        rows.append(
            [
                algorithm,
                vanilla.total_calls,
                tri.total_calls,
                round(percentage_save(vanilla.total_calls, tri.total_calls), 1),
            ]
        )
    aesa = run_experiment(sf(N), "prim", "aesa")
    rows.append(["prim (AESA baseline)", N * (N - 1) // 2, aesa.total_calls, 0.0])
    report(
        render_table(
            ["algorithm", "vanilla calls", "Tri calls", "save%"],
            rows,
            title=f"Extensions: §7 algorithms under the framework (SF-like n={N})",
        )
    )
    for row in rows[:-1]:
        assert row[2] <= row[1], row[0]

    benchmark.pedantic(
        lambda: run_experiment(sf(N), "nn-tour", "tri"), rounds=1, iterations=1
    )
