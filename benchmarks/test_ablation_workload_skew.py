"""Ablation — workload skew and the shared-graph compounding effect.

The framework's per-query bill *drops* as a workload runs, because every
resolution enriches the shared graph.  Skewed workloads (Zipf, focused)
revisit warm regions and compound harder than uniform ones.  The index
pays a flat bill per query regardless.
"""

from repro.algorithms.queries import nearest_neighbor
from repro.bounds import TriScheme
from repro.core.resolver import SmartResolver
from repro.harness import render_table
from repro.harness.workloads import focused_queries, uniform_queries, zipf_queries

from benchmarks.conftest import sf

N = 150
COUNT = 60


def _run(queries) -> tuple[int, int]:
    space = sf(N, road=False)
    oracle = space.oracle()
    resolver = SmartResolver(oracle)
    resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
    half = len(queries) // 2
    for q in queries[:half]:
        nearest_neighbor(resolver, q)
    first_half = oracle.calls
    for q in queries[half:]:
        nearest_neighbor(resolver, q)
    return first_half, oracle.calls - first_half


def test_ablation_workload_skew(benchmark, report):
    workloads = {
        "uniform": uniform_queries(N, COUNT, seed=1),
        "zipf": zipf_queries(N, COUNT, seed=1),
        "focused": focused_queries(N, COUNT, focus_fraction=0.15, seed=1),
    }
    rows = []
    halves = {}
    for label, queries in workloads.items():
        first, second = _run(queries)
        halves[label] = (first, second)
        rows.append([label, first, second, first + second])
    report(
        render_table(
            ["workload", "calls 1st half", "calls 2nd half", "total"],
            rows,
            title=f"Workload skew: NN queries with Tri (SF-like n={N}, {COUNT} queries)",
        )
    )
    # Compounding: the second half is cheaper than the first for every
    # workload shape.
    for label, (first, second) in halves.items():
        assert second <= first, label

    benchmark.pedantic(
        lambda: _run(uniform_queries(N, 10, seed=2)), rounds=1, iterations=1
    )
