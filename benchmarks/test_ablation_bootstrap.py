"""Ablation — how much landmark bootstrap should the Tri Scheme buy?

The paper bootstraps Tri with ``log2(n)`` LAESA landmarks.  This ablation
sweeps the multiplier: zero bootstrap starts cold (more algorithm-phase
calls), while an oversized bootstrap pre-pays edges the algorithm never
needed.  The useful signal is the total bill's U-shape (or plateau).
"""

from repro.bounds.landmarks import default_num_landmarks
from repro.harness import render_table, run_experiment

from benchmarks.conftest import sf

N = 128
MULTIPLIERS = [0, 1, 2, 4, 8]


def test_ablation_bootstrap_budget(benchmark, report):
    base = default_num_landmarks(N)
    rows = []
    totals = []
    for mult in MULTIPLIERS:
        record = run_experiment(
            sf(N), "prim", "tri",
            landmark_bootstrap=mult > 0,
            num_landmarks=max(1, mult * base) if mult else None,
        )
        totals.append(record.total_calls)
        rows.append(
            [f"{mult}·log2(n)", record.bootstrap_calls,
             record.algorithm_calls, record.total_calls]
        )
    report(
        render_table(
            ["bootstrap budget", "bootstrap calls", "algorithm calls", "total"],
            rows,
            title=f"Ablation: Tri bootstrap budget on Prim (SF-like n={N})",
        )
    )
    # An oversized bootstrap must not be the global optimum.
    assert totals[-1] >= min(totals)

    benchmark.pedantic(
        lambda: run_experiment(sf(N), "prim", "tri", landmark_bootstrap=True),
        rounds=1,
        iterations=1,
    )
