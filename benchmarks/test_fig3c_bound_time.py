"""Figure 3c — bound computation time: ADM vs SPLUB vs Tri Scheme.

Shape targets: ADM's update cost dwarfs everyone (it is the reason ADM
"is not scalable"); SPLUB pays per-query shortest paths but no update; the
Tri Scheme improves per-query time by orders of magnitude over both.
"""

from repro.harness import bounds_quality_experiment, render_table

from benchmarks.conftest import sf

N = 150
EDGES = 2500


def test_fig3c_bound_computation_time(benchmark, report):
    results = bounds_quality_experiment(
        sf(N, road=False), num_edges=EDGES, num_queries=200,
        providers=("adm", "splub", "tri"),
    )
    report(
        render_table(
            ["provider", "query (µs)", "update total (ms)"],
            [
                [r.provider, round(r.mean_query_seconds * 1e6, 1),
                 round(r.update_seconds * 1e3, 2)]
                for r in results
            ],
            title=f"Fig 3c: bound computation time (SF-like, n={N}, m={EDGES})",
        )
    )
    by = {r.provider: r for r in results}
    # Tri is far cheaper per query than SPLUB.
    assert by["tri"].mean_query_seconds < by["splub"].mean_query_seconds / 5
    # ADM's update bill exceeds both graph schemes'.
    assert by["adm"].update_seconds > by["tri"].update_seconds
    assert by["adm"].update_seconds > by["splub"].update_seconds

    # Time one Tri query directly as the benchmark unit.
    from repro.bounds import TriScheme
    from repro.core.resolver import SmartResolver

    space = sf(N, road=False)
    resolver = SmartResolver(space.oracle())
    tri = TriScheme(resolver.graph, space.diameter_bound())
    resolver.bounder = tri
    import numpy as np

    rng = np.random.default_rng(0)
    while resolver.graph.num_edges < EDGES:
        i, j = int(rng.integers(N)), int(rng.integers(N))
        if i != j:
            resolver.distance(i, j)
    benchmark(lambda: tri.bounds(3, 77))
