"""Figure 9a — effect of k on the kNN-graph builder's distance calls.

Shape target: more neighbours require resolving more candidates, so calls
rise with k for every scheme, with Tri remaining the cheapest.
"""

from repro.harness import parameter_sweep, render_series

from benchmarks.conftest import sf

N = 130
K_VALUES = [2, 5, 10, 15]


def test_fig9a_knng_vary_k(benchmark, report):
    out = parameter_sweep(
        sf(N, road=False), "knng", "k", K_VALUES,
        providers=("tri", "laesa", "tlaesa"),
    )
    report(
        render_series(
            "k",
            K_VALUES,
            {p: [r.total_calls for r in out[p]] for p in out},
            title=f"Fig 9a: kNN-graph oracle calls vs k (SF-like n={N})",
        )
    )
    tri_calls = [r.total_calls for r in out["tri"]]
    assert tri_calls[-1] >= tri_calls[0], "calls rise with k"
    for i in range(len(K_VALUES)):
        assert out["tri"][i].total_calls <= out["laesa"][i].total_calls

    from repro.harness import run_experiment

    benchmark.pedantic(
        lambda: run_experiment(
            sf(N, road=False), "knng", "tri", landmark_bootstrap=True,
            algorithm_kwargs={"k": 5},
        ),
        rounds=1,
        iterations=1,
    )
