"""Legacy setup shim — enables editable installs where `wheel` is absent."""

from setuptools import setup

setup()
