"""Exactness tests for DBSCAN over expensive oracles."""

import numpy as np
import pytest

from repro.algorithms.dbscan import NOISE, dbscan
from repro.bounds.tri import TriScheme
from repro.spaces.vector import EuclideanSpace

from tests.algorithms.conftest import PROVIDER_CASES, PROVIDER_IDS, build_resolver


@pytest.fixture
def blobs(rng):
    """Two well-separated blobs plus two isolated noise points."""
    a = rng.normal(loc=0.0, scale=0.05, size=(15, 2))
    b = rng.normal(loc=3.0, scale=0.05, size=(15, 2))
    noise = np.array([[10.0, 10.0], [-10.0, -10.0]])
    return EuclideanSpace(np.vstack([a, b, noise]))


class TestClusterStructure:
    def test_finds_two_blobs(self, blobs):
        _, resolver = build_resolver(blobs, TriScheme, False)
        result = dbscan(resolver, eps=0.5, min_pts=4)
        assert result.num_clusters == 2
        assert result.noise_count == 2
        assert result.labels[30] == NOISE
        assert result.labels[31] == NOISE

    def test_blob_members_share_labels(self, blobs):
        _, resolver = build_resolver(blobs, None, False)
        result = dbscan(resolver, eps=0.5, min_pts=4)
        assert len({result.labels[i] for i in range(15)}) == 1
        assert len({result.labels[i] for i in range(15, 30)}) == 1
        assert result.labels[0] != result.labels[15]

    def test_core_flags(self, blobs):
        _, resolver = build_resolver(blobs, None, False)
        result = dbscan(resolver, eps=0.5, min_pts=4)
        assert any(result.core[:15])
        assert not result.core[30] and not result.core[31]

    def test_clusters_listing(self, blobs):
        _, resolver = build_resolver(blobs, None, False)
        result = dbscan(resolver, eps=0.5, min_pts=4)
        clusters = result.clusters()
        assert sorted(len(c) for c in clusters) == [15, 15]


class TestExactness:
    @pytest.mark.parametrize("name, cls, boot", PROVIDER_CASES, ids=PROVIDER_IDS)
    def test_identical_labels_across_providers(self, euclid, name, cls, boot):
        _, vanilla_resolver = build_resolver(euclid, None, False)
        vanilla = dbscan(vanilla_resolver, eps=0.15, min_pts=3)
        _, resolver = build_resolver(euclid, cls, boot)
        augmented = dbscan(resolver, eps=0.15, min_pts=3)
        assert augmented.labels == vanilla.labels
        assert augmented.core == vanilla.core

    def test_matches_eps_semantics(self, blobs):
        # Everything is one cluster at a huge eps; all noise at eps ~ 0.
        _, r_big = build_resolver(blobs, None, False)
        assert dbscan(r_big, eps=100.0, min_pts=4).num_clusters == 1
        _, r_small = build_resolver(blobs, None, False)
        tiny = dbscan(r_small, eps=1e-9, min_pts=2)
        assert tiny.num_clusters == 0
        assert tiny.noise_count == blobs.n


class TestValidation:
    def test_rejects_bad_parameters(self, blobs):
        _, resolver = build_resolver(blobs, None, False)
        with pytest.raises(ValueError):
            dbscan(resolver, eps=-1.0)
        with pytest.raises(ValueError):
            dbscan(resolver, eps=0.5, min_pts=0)


class TestSavings:
    def test_tri_saves_calls(self, blobs):
        oracle_plain, r_plain = build_resolver(blobs, None, False)
        dbscan(r_plain, eps=0.5, min_pts=4)
        oracle_tri, r_tri = build_resolver(blobs, TriScheme, False)
        dbscan(r_tri, eps=0.5, min_pts=4)
        assert oracle_tri.calls < oracle_plain.calls

    def test_vanilla_bounded_by_all_pairs(self, blobs):
        oracle, resolver = build_resolver(blobs, None, False)
        dbscan(resolver, eps=0.5, min_pts=4)
        n = blobs.n
        assert oracle.calls <= n * (n - 1) // 2
