"""Exactness and savings tests for Prim's and Kruskal's re-authored MSTs."""

import itertools

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.kruskal import kruskal_mst
from repro.algorithms.prim import prim_mst, prim_mst_comparisons
from repro.bounds.tri import TriScheme

from tests.algorithms.conftest import PROVIDER_CASES, PROVIDER_IDS, build_resolver


def reference_mst_weight(space):
    """networkx MST weight over the fully materialised complete graph."""
    g = nx.Graph()
    for i, j in itertools.combinations(range(space.n), 2):
        g.add_edge(i, j, weight=space.distance(i, j))
    tree = nx.minimum_spanning_tree(g)
    return sum(d["weight"] for _, _, d in tree.edges(data=True))


class TestPrimCorrectness:
    @pytest.mark.parametrize("name, cls, boot", PROVIDER_CASES, ids=PROVIDER_IDS)
    def test_weight_matches_networkx(self, metric_space, name, cls, boot):
        _, resolver = build_resolver(metric_space, cls, boot)
        result = prim_mst(resolver)
        assert result.total_weight == pytest.approx(reference_mst_weight(metric_space))
        assert result.num_edges == metric_space.n - 1

    @pytest.mark.parametrize("name, cls, boot", PROVIDER_CASES, ids=PROVIDER_IDS)
    def test_edge_set_matches_vanilla(self, euclid, name, cls, boot):
        # Euclidean random points: distinct weights → unique MST.
        _, vanilla_resolver = build_resolver(euclid, None, False)
        vanilla = prim_mst(vanilla_resolver)
        _, resolver = build_resolver(euclid, cls, boot)
        augmented = prim_mst(resolver)
        assert augmented.edge_set() == vanilla.edge_set()

    def test_root_parameter(self, metric_space):
        _, r0 = build_resolver(metric_space, None, False)
        _, r5 = build_resolver(metric_space, None, False)
        w0 = prim_mst(r0, root=0).total_weight
        w5 = prim_mst(r5, root=5).total_weight
        assert w0 == pytest.approx(w5)

    def test_invalid_root_rejected(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        with pytest.raises(ValueError):
            prim_mst(resolver, root=99)

    def test_vanilla_resolves_every_pair(self, metric_space):
        oracle, resolver = build_resolver(metric_space, None, False)
        prim_mst(resolver)
        n = metric_space.n
        assert oracle.calls == n * (n - 1) // 2


class TestPrimSavings:
    def test_tri_scheme_saves_calls(self, euclid):
        oracle_plain, r_plain = build_resolver(euclid, None, False)
        prim_mst(r_plain)
        oracle_tri, r_tri = build_resolver(euclid, TriScheme, False)
        prim_mst(r_tri)
        assert oracle_tri.calls < oracle_plain.calls

    def test_edges_in_result_are_resolved(self, euclid):
        _, resolver = build_resolver(euclid, TriScheme, False)
        result = prim_mst(resolver)
        for u, v, w in result.edges:
            assert resolver.known(u, v) == pytest.approx(w)


class TestPrimComparisons:
    @pytest.mark.parametrize("name, cls, boot", PROVIDER_CASES[:4], ids=PROVIDER_IDS[:4])
    def test_matches_key_based_prim(self, metric_space, name, cls, boot):
        _, r_key = build_resolver(metric_space, None, False)
        key_based = prim_mst(r_key)
        _, r_cmp = build_resolver(metric_space, cls, boot)
        cmp_based = prim_mst_comparisons(r_cmp)
        assert cmp_based.edge_set() == key_based.edge_set()
        assert cmp_based.total_weight == pytest.approx(key_based.total_weight)

    def test_invalid_root(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        with pytest.raises(ValueError):
            prim_mst_comparisons(resolver, root=-1)


class TestKruskalCorrectness:
    @pytest.mark.parametrize("name, cls, boot", PROVIDER_CASES, ids=PROVIDER_IDS)
    def test_weight_matches_networkx(self, metric_space, name, cls, boot):
        _, resolver = build_resolver(metric_space, cls, boot)
        result = kruskal_mst(resolver)
        assert result.total_weight == pytest.approx(reference_mst_weight(metric_space))

    @pytest.mark.parametrize("name, cls, boot", PROVIDER_CASES, ids=PROVIDER_IDS)
    def test_edge_set_matches_prim(self, euclid, name, cls, boot):
        _, r_prim = build_resolver(euclid, None, False)
        prim_result = prim_mst(r_prim)
        _, r_kruskal = build_resolver(euclid, cls, boot)
        kruskal_result = kruskal_mst(r_kruskal)
        assert kruskal_result.edge_set() == prim_result.edge_set()

    def test_edges_sorted_ascending(self, euclid):
        _, resolver = build_resolver(euclid, TriScheme, False)
        result = kruskal_mst(resolver)
        weights = [w for _, _, w in result.edges]
        assert weights == sorted(weights)

    def test_single_object(self, rng):
        from repro.spaces.matrix import MatrixSpace

        space = MatrixSpace(np.zeros((1, 1)))
        _, resolver = build_resolver(space, None, False)
        result = kruskal_mst(resolver)
        assert result.num_edges == 0
        assert result.total_weight == 0.0


class TestKruskalSavings:
    def test_dramatic_savings_with_tri(self, euclid):
        oracle_plain, r_plain = build_resolver(euclid, None, False)
        kruskal_mst(r_plain)
        oracle_tri, r_tri = build_resolver(euclid, TriScheme, False)
        kruskal_mst(r_tri)
        # Kruskal discards intra-component pairs without resolving: big wins.
        assert oracle_tri.calls < oracle_plain.calls

    def test_cycle_discard_requires_no_resolution(self, euclid):
        oracle, resolver = build_resolver(euclid, TriScheme, False)
        kruskal_mst(resolver)
        n = euclid.n
        assert oracle.calls < n * (n - 1) // 2
