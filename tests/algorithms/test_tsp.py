"""Exactness tests for the re-authored TSP heuristics."""

import pytest

from repro.algorithms.tsp import nearest_neighbor_tour, two_opt
from repro.bounds.tri import TriScheme

from tests.algorithms.conftest import PROVIDER_CASES, PROVIDER_IDS, build_resolver


def brute_nn_tour(space, start=0):
    unvisited = [o for o in range(space.n) if o != start]
    order = [start]
    current = start
    total = 0.0
    while unvisited:
        nxt = min(unvisited, key=lambda c: (space.distance(current, c), unvisited.index(c)))
        total += space.distance(current, nxt)
        order.append(nxt)
        unvisited.remove(nxt)
        current = nxt
    total += space.distance(order[-1], start)
    return order, total


class TestNearestNeighborTour:
    @pytest.mark.parametrize("name, cls, boot", PROVIDER_CASES, ids=PROVIDER_IDS)
    def test_matches_vanilla_greedy(self, metric_space, name, cls, boot):
        _, resolver = build_resolver(metric_space, cls, boot)
        result = nearest_neighbor_tour(resolver)
        ref_order, ref_length = brute_nn_tour(metric_space)
        assert list(result.order) == ref_order
        assert result.length == pytest.approx(ref_length)

    def test_visits_everything_once(self, metric_space):
        _, resolver = build_resolver(metric_space, TriScheme, False)
        result = nearest_neighbor_tour(resolver, start=3)
        assert sorted(result.order) == list(range(metric_space.n))
        assert result.order[0] == 3

    def test_invalid_start(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        with pytest.raises(ValueError):
            nearest_neighbor_tour(resolver, start=metric_space.n)

    def test_savings_with_tri(self, euclid):
        oracle_plain, r_plain = build_resolver(euclid, None, False)
        nearest_neighbor_tour(r_plain)
        oracle_tri, r_tri = build_resolver(euclid, TriScheme, False)
        nearest_neighbor_tour(r_tri)
        assert oracle_tri.calls < oracle_plain.calls


class TestTwoOpt:
    def test_never_lengthens(self, euclid):
        _, resolver = build_resolver(euclid, TriScheme, False)
        initial = nearest_neighbor_tour(resolver)
        improved = two_opt(resolver, initial)
        assert improved.length <= initial.length + 1e-9

    def test_matches_vanilla_trajectory(self, metric_space):
        _, r_plain = build_resolver(metric_space, None, False)
        tour_plain = two_opt(r_plain, nearest_neighbor_tour(r_plain))
        _, r_tri = build_resolver(metric_space, TriScheme, False)
        tour_tri = two_opt(r_tri, nearest_neighbor_tour(r_tri))
        assert tour_tri.order == tour_plain.order
        assert tour_tri.length == pytest.approx(tour_plain.length)

    def test_still_a_tour(self, euclid):
        _, resolver = build_resolver(euclid, TriScheme, False)
        improved = two_opt(resolver, nearest_neighbor_tour(resolver))
        assert sorted(improved.order) == list(range(euclid.n))

    def test_tiny_instances_passthrough(self, rng):
        from repro.spaces.matrix import MatrixSpace, random_metric_matrix

        space = MatrixSpace(random_metric_matrix(3, rng))
        _, resolver = build_resolver(space, None, False)
        tour = nearest_neighbor_tour(resolver)
        assert two_opt(resolver, tour).order == tour.order

    def test_improves_a_bad_tour(self, euclid):
        from repro.algorithms.tsp import TourResult, _tour_length

        _, resolver = build_resolver(euclid, None, False)
        # Deliberately terrible tour: identity order on clustered data.
        order = list(range(euclid.n))
        bad = TourResult(order=tuple(order), length=_tour_length(resolver, order))
        improved = two_opt(resolver, bad)
        assert improved.length < bad.length
