"""Exactness tests for single-linkage clustering via the re-authored MST."""

import itertools

import pytest

from repro.algorithms.linkage import single_linkage
from repro.bounds.tri import TriScheme

from tests.algorithms.conftest import PROVIDER_CASES, PROVIDER_IDS, build_resolver


def scipy_reference(space, k):
    """Flat k-clustering from scipy's single-linkage for cross-validation."""
    from scipy.cluster.hierarchy import fcluster, linkage

    n = space.n
    condensed = [space.distance(i, j) for i, j in itertools.combinations(range(n), 2)]
    tree = linkage(condensed, method="single")
    labels = fcluster(tree, t=k, criterion="maxclust")
    clusters = {}
    for obj, label in enumerate(labels):
        clusters.setdefault(label, []).append(obj)
    return sorted(
        (sorted(members) for members in clusters.values()),
        key=lambda m: m[0],
    )


class TestDendrogram:
    def test_merge_count(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        result = single_linkage(resolver)
        assert len(result.merges) == metric_space.n - 1

    def test_heights_non_decreasing(self, metric_space):
        _, resolver = build_resolver(metric_space, TriScheme, False)
        result = single_linkage(resolver)
        heights = result.heights()
        assert heights == sorted(heights)

    @pytest.mark.parametrize("name, cls, boot", PROVIDER_CASES, ids=PROVIDER_IDS)
    def test_identical_across_providers(self, euclid, name, cls, boot):
        _, vanilla_resolver = build_resolver(euclid, None, False)
        vanilla = single_linkage(vanilla_resolver)
        _, resolver = build_resolver(euclid, cls, boot)
        augmented = single_linkage(resolver)
        assert augmented.heights() == pytest.approx(vanilla.heights())


class TestCuts:
    @pytest.mark.parametrize("k", [1, 2, 4, 7])
    def test_cut_k_matches_scipy(self, euclid, k):
        _, resolver = build_resolver(euclid, TriScheme, False)
        result = single_linkage(resolver)
        ours = result.cut_k(k)
        ref = scipy_reference(euclid, k)
        assert ours == ref

    def test_cut_k_cluster_count(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        result = single_linkage(resolver)
        for k in (1, 3, metric_space.n):
            assert len(result.cut_k(k)) == k

    def test_cut_height_extremes(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        result = single_linkage(resolver)
        assert len(result.cut(-1.0)) == metric_space.n        # nothing merged
        top = max(result.heights())
        assert len(result.cut(top)) == 1                      # everything merged

    def test_cut_partitions_universe(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        result = single_linkage(resolver)
        clusters = result.cut_k(4)
        flat = sorted(obj for cluster in clusters for obj in cluster)
        assert flat == list(range(metric_space.n))

    def test_cut_k_validation(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        result = single_linkage(resolver)
        with pytest.raises(ValueError):
            result.cut_k(0)
        with pytest.raises(ValueError):
            result.cut_k(metric_space.n + 1)


class TestSavings:
    def test_whole_hierarchy_at_mst_price(self, euclid):
        from repro.algorithms.kruskal import kruskal_mst

        oracle_mst, r_mst = build_resolver(euclid, TriScheme, False)
        kruskal_mst(r_mst)
        oracle_link, r_link = build_resolver(euclid, TriScheme, False)
        single_linkage(r_link)
        assert oracle_link.calls == oracle_mst.calls
