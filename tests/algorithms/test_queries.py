"""Exactness tests for the re-authored metric-space queries."""


import pytest

from repro.algorithms.queries import (
    farthest_neighbor,
    k_nearest,
    nearest_neighbor,
    range_query,
)
from repro.bounds.tri import TriScheme

from tests.algorithms.conftest import PROVIDER_CASES, PROVIDER_IDS, build_resolver


def warm(resolver, n):
    """Resolve a spanning star so Tri has triangles to work with."""
    for j in range(1, n):
        resolver.distance(0, j)


class TestNearestNeighbor:
    @pytest.mark.parametrize("name, cls, boot", PROVIDER_CASES, ids=PROVIDER_IDS)
    def test_matches_brute(self, metric_space, name, cls, boot):
        _, resolver = build_resolver(metric_space, cls, boot)
        obj, dist = nearest_neighbor(resolver, 3)
        expected = min(
            ((metric_space.distance(3, c), c) for c in range(metric_space.n) if c != 3),
        )
        assert dist == pytest.approx(expected[0])
        assert metric_space.distance(3, obj) == pytest.approx(expected[0])

    def test_candidate_subset(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        obj, dist = nearest_neighbor(resolver, 0, candidates=[5, 9, 12])
        expected = min((metric_space.distance(0, c), c) for c in (5, 9, 12))
        assert (dist, obj) == (pytest.approx(expected[0]), expected[1])

    def test_requires_candidates(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        with pytest.raises(ValueError):
            nearest_neighbor(resolver, 0, candidates=[0])


class TestKNearest:
    def test_matches_brute(self, metric_space):
        _, resolver = build_resolver(metric_space, TriScheme, False)
        result = k_nearest(resolver, 2, 5)
        brute = sorted(
            (metric_space.distance(2, c), c) for c in range(metric_space.n) if c != 2
        )[:5]
        assert result == [(pytest.approx(d), c) for d, c in brute]


class TestRangeQuery:
    @pytest.mark.parametrize("name, cls, boot", PROVIDER_CASES, ids=PROVIDER_IDS)
    def test_matches_brute(self, metric_space, name, cls, boot):
        _, resolver = build_resolver(metric_space, cls, boot)
        radius = 0.45
        hits = range_query(resolver, 1, radius)
        brute = sorted(
            c for c in range(metric_space.n)
            if c != 1 and metric_space.distance(1, c) <= radius
        )
        assert hits == brute

    def test_include_query(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        hits = range_query(resolver, 4, 0.3, include_query=True)
        assert 4 in hits

    def test_zero_radius(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        assert range_query(resolver, 4, 0.0) == []

    def test_negative_radius_rejected(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        with pytest.raises(ValueError):
            range_query(resolver, 0, -0.1)

    def test_certain_inclusion_saves_calls(self, metric_space):
        oracle, resolver = build_resolver(metric_space, TriScheme, False)
        warm(resolver, metric_space.n)
        # A radius covering everything: upper bounds certify inclusion.
        diameter = metric_space.diameter_bound()
        before = oracle.calls
        hits = range_query(resolver, 0, diameter * 2)
        assert len(hits) == metric_space.n - 1
        assert oracle.calls == before  # not a single extra resolution

    def test_certain_exclusion_saves_calls(self, metric_space):
        oracle, resolver = build_resolver(metric_space, TriScheme, False)
        warm(resolver, metric_space.n)
        before = oracle.calls
        tiny = 1e-9
        hits = range_query(resolver, 0, tiny)
        assert hits == []
        # Lower bounds from the star triangles reject most candidates free.
        assert oracle.calls - before < metric_space.n - 1


class TestFarthestNeighbor:
    @pytest.mark.parametrize("name, cls, boot", PROVIDER_CASES, ids=PROVIDER_IDS)
    def test_matches_brute(self, metric_space, name, cls, boot):
        _, resolver = build_resolver(metric_space, cls, boot)
        obj, dist = farthest_neighbor(resolver, 6)
        expected = max(
            metric_space.distance(6, c) for c in range(metric_space.n) if c != 6
        )
        assert dist == pytest.approx(expected)

    def test_requires_candidates(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        with pytest.raises(ValueError):
            farthest_neighbor(resolver, 0, candidates=[0])

    def test_pruning_saves_calls(self, metric_space):
        oracle, resolver = build_resolver(metric_space, TriScheme, False)
        warm(resolver, metric_space.n)
        for j in range(2, metric_space.n):
            resolver.distance(1, j)
        before = oracle.calls
        farthest_neighbor(resolver, 0)
        assert oracle.calls == before  # everything already resolved
