"""Fixtures for the proximity-algorithm tests."""

from __future__ import annotations

import pytest

from repro.bounds import Adm, Laesa, Splub, Tlaesa, TriScheme
from repro.core.resolver import SmartResolver
from repro.spaces.matrix import MatrixSpace, random_metric_matrix
from repro.spaces.vector import EuclideanSpace

#: (name, class, needs_bootstrap) for the parametrised exactness sweeps.
PROVIDER_CASES = [
    ("none", None, False),
    ("tri", TriScheme, False),
    ("splub", Splub, False),
    ("adm", Adm, False),
    ("laesa", Laesa, True),
    ("tlaesa", Tlaesa, True),
]

PROVIDER_IDS = [case[0] for case in PROVIDER_CASES]


def build_resolver(space, provider_cls, needs_bootstrap):
    """Fresh oracle + resolver with the given provider attached."""
    oracle = space.oracle()
    resolver = SmartResolver(oracle)
    if provider_cls is not None:
        provider = provider_cls(resolver.graph, space.diameter_bound())
        resolver.bounder = provider
        if needs_bootstrap:
            provider.bootstrap(resolver)
    return oracle, resolver


@pytest.fixture
def metric_space(rng):
    return MatrixSpace(random_metric_matrix(18, rng))


@pytest.fixture
def euclid(rng):
    centres = rng.uniform(0, 1, size=(3, 2))
    points = centres[rng.integers(3, size=30)] + rng.normal(scale=0.04, size=(30, 2))
    return EuclideanSpace(points)
