"""Exactness and savings tests for the re-authored CLARANS."""

import pytest

from repro.algorithms.clarans import clarans, default_max_neighbors
from repro.algorithms.medoid_common import total_cost
from repro.bounds.tri import TriScheme

from tests.algorithms.conftest import PROVIDER_CASES, PROVIDER_IDS, build_resolver


class TestCorrectness:
    @pytest.mark.parametrize("name, cls, boot", PROVIDER_CASES, ids=PROVIDER_IDS)
    def test_identical_trajectory_across_providers(self, metric_space, name, cls, boot):
        _, r_plain = build_resolver(metric_space, None, False)
        vanilla = clarans(r_plain, l=3, seed=21, num_local=1, max_neighbors=30)
        _, resolver = build_resolver(metric_space, cls, boot)
        augmented = clarans(resolver, l=3, seed=21, num_local=1, max_neighbors=30)
        assert augmented.medoids == vanilla.medoids
        assert augmented.cost == pytest.approx(vanilla.cost)
        assert augmented.iterations == vanilla.iterations

    def test_cost_consistent_with_medoids(self, metric_space):
        _, resolver = build_resolver(metric_space, TriScheme, False)
        result = clarans(resolver, l=3, seed=4, num_local=1, max_neighbors=25)
        _, fresh = build_resolver(metric_space, None, False)
        assert result.cost == pytest.approx(total_cost(fresh, list(result.medoids)))

    def test_num_local_keeps_best(self, metric_space):
        _, r1 = build_resolver(metric_space, None, False)
        single = clarans(r1, l=3, seed=9, num_local=1, max_neighbors=20)
        _, r3 = build_resolver(metric_space, None, False)
        multi = clarans(r3, l=3, seed=9, num_local=3, max_neighbors=20)
        assert multi.cost <= single.cost + 1e-9

    def test_deterministic_given_seed(self, metric_space):
        _, r1 = build_resolver(metric_space, None, False)
        a = clarans(r1, l=3, seed=7, num_local=1, max_neighbors=20)
        _, r2 = build_resolver(metric_space, None, False)
        b = clarans(r2, l=3, seed=7, num_local=1, max_neighbors=20)
        assert a.medoids == b.medoids

    def test_parameter_validation(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        with pytest.raises(ValueError):
            clarans(resolver, l=0)
        with pytest.raises(ValueError):
            clarans(resolver, l=metric_space.n)

    def test_default_max_neighbors_rule(self):
        assert default_max_neighbors(1000, 10) == int(0.0125 * 10 * 990)
        assert default_max_neighbors(30, 2) == 10  # l-proportional floor kicks in


class TestSavings:
    def test_tri_saves_calls(self, euclid):
        oracle_plain, r_plain = build_resolver(euclid, None, False)
        clarans(r_plain, l=4, seed=3, num_local=1, max_neighbors=40)
        oracle_tri, r_tri = build_resolver(euclid, TriScheme, False)
        clarans(r_tri, l=4, seed=3, num_local=1, max_neighbors=40)
        assert oracle_tri.calls < oracle_plain.calls
