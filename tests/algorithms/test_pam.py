"""Exactness and savings tests for the re-authored PAM."""

import pytest

from repro.algorithms.medoid_common import total_cost
from repro.algorithms.pam import pam
from repro.bounds.tri import TriScheme

from tests.algorithms.conftest import PROVIDER_CASES, PROVIDER_IDS, build_resolver


class TestCorrectness:
    @pytest.mark.parametrize("name, cls, boot", PROVIDER_CASES, ids=PROVIDER_IDS)
    def test_identical_output_across_providers(self, metric_space, name, cls, boot):
        _, r_plain = build_resolver(metric_space, None, False)
        vanilla = pam(r_plain, l=3, seed=11)
        _, resolver = build_resolver(metric_space, cls, boot)
        augmented = pam(resolver, l=3, seed=11)
        assert augmented.medoids == vanilla.medoids
        assert augmented.cost == pytest.approx(vanilla.cost)
        assert augmented.assignment == vanilla.assignment

    def test_cost_is_consistent_with_medoids(self, metric_space):
        _, resolver = build_resolver(metric_space, TriScheme, False)
        result = pam(resolver, l=3, seed=5)
        _, fresh = build_resolver(metric_space, None, False)
        assert result.cost == pytest.approx(total_cost(fresh, list(result.medoids)))

    def test_swap_phase_never_worsens(self, metric_space):
        import numpy as np

        rng = np.random.default_rng(11)
        initial = sorted(int(x) for x in rng.choice(metric_space.n, size=3, replace=False))
        _, fresh = build_resolver(metric_space, None, False)
        initial_cost = total_cost(fresh, initial)
        _, resolver = build_resolver(metric_space, None, False)
        result = pam(resolver, l=3, seed=11)
        assert result.cost <= initial_cost + 1e-9

    def test_assignment_points_to_medoids(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        result = pam(resolver, l=4, seed=2)
        assert set(result.assignment) <= set(result.medoids)
        for m in result.medoids:
            assert result.assignment[m] == m

    def test_cluster_members_partition(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        result = pam(resolver, l=3, seed=2)
        members = result.cluster_members()
        all_objs = sorted(obj for lst in members.values() for obj in lst)
        assert all_objs == list(range(metric_space.n))

    def test_build_init(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        result = pam(resolver, l=3, init="build")
        assert len(result.medoids) == 3
        assert result.cost > 0

    def test_parameter_validation(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        with pytest.raises(ValueError):
            pam(resolver, l=0)
        with pytest.raises(ValueError):
            pam(resolver, l=metric_space.n)
        with pytest.raises(ValueError):
            pam(resolver, l=3, init="bogus")


class TestSavings:
    def test_tri_saves_calls(self, euclid):
        oracle_plain, r_plain = build_resolver(euclid, None, False)
        pam(r_plain, l=4, seed=1)
        oracle_tri, r_tri = build_resolver(euclid, TriScheme, False)
        pam(r_tri, l=4, seed=1)
        assert oracle_tri.calls < oracle_plain.calls

    def test_vanilla_never_exceeds_all_pairs(self, euclid):
        oracle, resolver = build_resolver(euclid, None, False)
        pam(resolver, l=4, seed=1)
        n = euclid.n
        assert oracle.calls <= n * (n - 1) // 2
