"""Exactness and savings tests for the kNN-graph builders."""

import pytest

from repro.algorithms.knng import knn_graph, knn_graph_brute
from repro.bounds.tri import TriScheme

from tests.algorithms.conftest import PROVIDER_CASES, PROVIDER_IDS, build_resolver


class TestCorrectness:
    @pytest.mark.parametrize("name, cls, boot", PROVIDER_CASES, ids=PROVIDER_IDS)
    def test_matches_brute_force(self, metric_space, name, cls, boot):
        _, r_brute = build_resolver(metric_space, None, False)
        brute = knn_graph_brute(r_brute, k=4)
        _, resolver = build_resolver(metric_space, cls, boot)
        pruned = knn_graph(resolver, k=4)
        for u in range(metric_space.n):
            assert pruned.neighbor_ids(u) == brute.neighbor_ids(u), f"node {u}"

    def test_distances_ascending(self, euclid):
        _, resolver = build_resolver(euclid, TriScheme, False)
        result = knn_graph(resolver, k=5)
        for u in range(euclid.n):
            dists = [d for d, _ in result.neighbors[u]]
            assert dists == sorted(dists)

    def test_no_self_neighbours(self, euclid):
        _, resolver = build_resolver(euclid, TriScheme, False)
        result = knn_graph(resolver, k=3)
        for u in range(euclid.n):
            assert u not in result.neighbor_ids(u)

    def test_k_validation(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        with pytest.raises(ValueError):
            knn_graph(resolver, k=0)
        with pytest.raises(ValueError):
            knn_graph(resolver, k=metric_space.n)
        with pytest.raises(ValueError):
            knn_graph_brute(resolver, k=0)

    def test_result_metadata(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        result = knn_graph(resolver, k=2)
        assert result.n == metric_space.n
        assert result.k == 2
        assert all(len(row) == 2 for row in result.neighbors)

    def test_edge_set_undirected(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        result = knn_graph(resolver, k=2)
        for i, j in result.edge_set():
            assert i < j


class TestSavings:
    def test_tri_prunes_candidates(self, euclid):
        oracle_brute, r_brute = build_resolver(euclid, None, False)
        knn_graph_brute(r_brute, k=5)
        oracle_tri, r_tri = build_resolver(euclid, TriScheme, False)
        knn_graph(r_tri, k=5)
        assert oracle_tri.calls < oracle_brute.calls

    def test_brute_resolves_all_pairs(self, metric_space):
        oracle, resolver = build_resolver(metric_space, None, False)
        knn_graph_brute(resolver, k=3)
        n = metric_space.n
        assert oracle.calls == n * (n - 1) // 2

    def test_larger_k_needs_more_calls(self, euclid):
        oracle_small, r_small = build_resolver(euclid, TriScheme, False)
        knn_graph(r_small, k=2)
        oracle_large, r_large = build_resolver(euclid, TriScheme, False)
        knn_graph(r_large, k=8)
        assert oracle_large.calls >= oracle_small.calls
