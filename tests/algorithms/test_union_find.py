"""Unit tests for the disjoint-set forest."""

import pytest

from repro.algorithms.union_find import UnionFind


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(5)
        assert uf.components == 5
        assert not uf.connected(0, 1)

    def test_union_connects(self):
        uf = UnionFind(5)
        assert uf.union(0, 1) is True
        assert uf.connected(0, 1)
        assert uf.components == 4

    def test_duplicate_union_is_noop(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        assert uf.union(1, 0) is False
        assert uf.components == 4

    def test_transitivity(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(4, 5)
        assert uf.connected(0, 2)
        assert not uf.connected(0, 4)

    def test_full_merge(self):
        uf = UnionFind(8)
        for i in range(7):
            uf.union(i, i + 1)
        assert uf.components == 1
        assert uf.connected(0, 7)

    def test_find_is_consistent(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(2, 3)
        assert uf.find(0) == uf.find(1)
        assert uf.find(2) == uf.find(3)
        assert uf.find(0) != uf.find(2)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            UnionFind(0)

    def test_path_halving_does_not_break_roots(self):
        uf = UnionFind(16)
        for i in range(1, 16):
            uf.union(0, i)
        roots = {uf.find(i) for i in range(16)}
        assert len(roots) == 1
