"""Unit tests for the shared medoid machinery (assignment, swap cost)."""

import math

import pytest

from repro.algorithms.medoid_common import assign_objects, swap_cost, total_cost
from repro.bounds.tri import TriScheme

from tests.algorithms.conftest import build_resolver


def brute_assignment(space, medoids):
    """Reference nearest/second-nearest from the raw metric."""
    nearest, d1, d2 = [], [], []
    for o in range(space.n):
        if o in medoids:
            nearest.append(o)
            d1.append(0.0)
            d2.append(math.inf)
            continue
        scored = sorted((space.distance(o, m), m) for m in medoids)
        d1.append(scored[0][0])
        nearest.append(scored[0][1])
        d2.append(scored[1][0] if len(scored) > 1 else math.inf)
    return nearest, d1, d2


def brute_cost(space, medoids):
    return sum(min(space.distance(o, m) for m in medoids) for o in range(space.n))


class TestAssignment:
    def test_matches_brute_force(self, metric_space):
        medoids = [1, 5, 11]
        _, resolver = build_resolver(metric_space, TriScheme, False)
        assignment = assign_objects(resolver, medoids)
        ref_nearest, ref_d1, ref_d2 = brute_assignment(metric_space, medoids)
        assert assignment.d1 == pytest.approx(ref_d1)
        for o in range(metric_space.n):
            if o not in medoids:
                assert assignment.nearest[o] == ref_nearest[o]
                assert assignment.d2[o] == pytest.approx(ref_d2[o])

    def test_cost_property(self, metric_space):
        medoids = [0, 9]
        _, resolver = build_resolver(metric_space, None, False)
        assignment = assign_objects(resolver, medoids)
        assert assignment.cost == pytest.approx(brute_cost(metric_space, medoids))

    def test_medoids_map_to_themselves(self, metric_space):
        medoids = [2, 7]
        _, resolver = build_resolver(metric_space, None, False)
        assignment = assign_objects(resolver, medoids)
        for m in medoids:
            assert assignment.nearest[m] == m
            assert assignment.d1[m] == 0.0


class TestSwapCost:
    def test_matches_cost_difference(self, metric_space):
        """TC(m, h) must equal cost(S − m + h) − cost(S), exactly."""
        medoids = [1, 5, 11]
        _, resolver = build_resolver(metric_space, TriScheme, False)
        assignment = assign_objects(resolver, medoids)
        for h in (0, 3, 8, 14):
            for m in medoids:
                delta = swap_cost(resolver, medoids, assignment, m, h)
                after = [x for x in medoids if x != m] + [h]
                expected = brute_cost(metric_space, after) - brute_cost(
                    metric_space, medoids
                )
                assert delta == pytest.approx(expected), (m, h)

    def test_identical_across_providers(self, metric_space):
        medoids = [2, 9, 15]
        _, r_plain = build_resolver(metric_space, None, False)
        a_plain = assign_objects(r_plain, medoids)
        _, r_tri = build_resolver(metric_space, TriScheme, False)
        a_tri = assign_objects(r_tri, medoids)
        for m in medoids:
            for h in (0, 4, 10):
                d_plain = swap_cost(r_plain, medoids, a_plain, m, h)
                d_tri = swap_cost(r_tri, medoids, a_tri, m, h)
                assert d_plain == pytest.approx(d_tri)

    def test_rejects_bad_arguments(self, metric_space):
        medoids = [1, 5]
        _, resolver = build_resolver(metric_space, None, False)
        assignment = assign_objects(resolver, medoids)
        with pytest.raises(ValueError):
            swap_cost(resolver, medoids, assignment, 3, 0)  # 3 not a medoid
        with pytest.raises(ValueError):
            swap_cost(resolver, medoids, assignment, 1, 5)  # 5 already a medoid


class TestTotalCost:
    def test_matches_brute(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        assert total_cost(resolver, [0, 6, 12]) == pytest.approx(
            brute_cost(metric_space, [0, 6, 12])
        )
