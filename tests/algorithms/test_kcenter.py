"""Exactness tests for the re-authored greedy k-center."""

import math

import pytest

from repro.algorithms.kcenter import k_center
from repro.bounds.tri import TriScheme

from tests.algorithms.conftest import PROVIDER_CASES, PROVIDER_IDS, build_resolver


def brute_greedy(space, k, first=0):
    """Reference farthest-first traversal straight off the metric."""
    centers = [first]
    nearest = [math.inf] * space.n
    nearest[first] = 0.0
    while True:
        newest = centers[-1]
        for o in range(space.n):
            d = space.distance(o, newest)
            if d < nearest[o]:
                nearest[o] = d
        if len(centers) == k:
            break
        best, best_d = -1, -math.inf
        for o in range(space.n):
            if o not in centers and nearest[o] > best_d:
                best_d = nearest[o]
                best = o
        centers.append(best)
    return centers, max(nearest)


class TestCorrectness:
    @pytest.mark.parametrize("name, cls, boot", PROVIDER_CASES, ids=PROVIDER_IDS)
    def test_matches_brute_greedy(self, metric_space, name, cls, boot):
        _, resolver = build_resolver(metric_space, cls, boot)
        result = k_center(resolver, k=4)
        ref_centers, ref_radius = brute_greedy(metric_space, 4)
        assert list(result.centers) == ref_centers
        assert result.radius == pytest.approx(ref_radius)

    def test_assignment_is_nearest_center(self, metric_space):
        _, resolver = build_resolver(metric_space, TriScheme, False)
        result = k_center(resolver, k=3)
        for o in range(metric_space.n):
            assigned = metric_space.distance(o, result.assignment[o])
            best = min(metric_space.distance(o, c) for c in result.centers)
            assert assigned == pytest.approx(best)

    def test_radius_covers_everyone(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        result = k_center(resolver, k=3)
        for o in range(metric_space.n):
            nearest = min(metric_space.distance(o, c) for c in result.centers)
            assert nearest <= result.radius + 1e-9

    def test_k_equals_one(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        result = k_center(resolver, k=1, first=5)
        assert result.centers == (5,)

    def test_radius_decreases_with_k(self, metric_space):
        radii = []
        for k in (1, 3, 6):
            _, resolver = build_resolver(metric_space, None, False)
            radii.append(k_center(resolver, k=k).radius)
        assert radii[0] >= radii[1] >= radii[2]

    def test_parameter_validation(self, metric_space):
        _, resolver = build_resolver(metric_space, None, False)
        with pytest.raises(ValueError):
            k_center(resolver, k=0)
        with pytest.raises(ValueError):
            k_center(resolver, k=metric_space.n + 1)
        with pytest.raises(ValueError):
            k_center(resolver, k=2, first=-1)


class TestSavings:
    def test_tri_saves_calls(self, euclid):
        oracle_plain, r_plain = build_resolver(euclid, None, False)
        k_center(r_plain, k=5)
        oracle_tri, r_tri = build_resolver(euclid, TriScheme, False)
        k_center(r_tri, k=5)
        assert oracle_tri.calls <= oracle_plain.calls
