"""Batched execution must be invisible: outputs identical to the serial path.

The guarantee under test is the PR's core contract — routing resolutions
through ``repro.exec`` (any executor, with or without injected faults) never
changes what an algorithm computes, because workers only *evaluate*
distances and every commit happens on the calling thread in canonical-pair
sorted order.
"""

import threading

import pytest

from repro.algorithms import knn_graph, knn_graph_brute, pam, prim_mst
from repro.bounds.tri import TriScheme
from repro.core.oracle import DistanceOracle
from repro.core.resolver import SmartResolver
from repro.exec import BatchOracle, RetryPolicy, SerialExecutor, ThreadedExecutor
from repro.spaces.matrix import MatrixSpace, random_metric_matrix

FAST_RETRY = RetryPolicy(max_attempts=4, base_delay=0.0)


@pytest.fixture
def space(rng):
    return MatrixSpace(random_metric_matrix(24, rng))


def build_serial(space, bounded):
    oracle = space.oracle()
    resolver = SmartResolver(oracle)
    if bounded:
        resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
    return oracle, resolver, None


def build_batched(space, bounded, executor_cls=ThreadedExecutor, distance_fn=None):
    fn = distance_fn or space.distance
    oracle = DistanceOracle(fn, space.n)
    if executor_cls is ThreadedExecutor:
        executor = ThreadedExecutor(workers=4, retry=FAST_RETRY)
    else:
        executor = executor_cls(retry=FAST_RETRY)
    batcher = BatchOracle(oracle, executor=executor)
    resolver = SmartResolver(oracle, batcher=batcher)
    if bounded:
        resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
    return oracle, resolver, batcher


class FlakyDistance:
    """Wraps a distance fn; every third first-attempt call times out once."""

    def __init__(self, fn):
        self.fn = fn
        self.attempts = {}
        self.injected = 0
        self._lock = threading.Lock()

    def __call__(self, i, j):
        key = (min(i, j), max(i, j))
        with self._lock:
            seen = self.attempts.get(key, 0)
            self.attempts[key] = seen + 1
            if seen == 0 and (key[0] + key[1]) % 3 == 0:
                self.injected += 1
                raise TimeoutError(f"injected timeout for {key}")
        return self.fn(i, j)


@pytest.mark.parametrize("bounded", [False, True], ids=["none", "tri"])
@pytest.mark.parametrize("executor_cls", [SerialExecutor, ThreadedExecutor])
class TestByteIdenticalOutputs:
    def test_knn_graph(self, space, bounded, executor_cls):
        _, serial, _ = build_serial(space, bounded)
        expected = knn_graph(serial, k=4)
        o, batched, batcher = build_batched(space, bounded, executor_cls)
        try:
            assert knn_graph(batched, k=4) == expected
        finally:
            batcher.close()
        if not bounded:
            # Uninformative bounds: the frontier equals the serial scan's
            # resolution set, so even the call counts coincide.
            assert o.calls == serial.oracle.calls

    def test_pam(self, space, bounded, executor_cls):
        _, serial, _ = build_serial(space, bounded)
        expected = pam(serial, l=4, seed=3)
        _, batched, batcher = build_batched(space, bounded, executor_cls)
        try:
            assert pam(batched, l=4, seed=3) == expected
        finally:
            batcher.close()

    def test_pam_build_init(self, space, bounded, executor_cls):
        _, serial, _ = build_serial(space, bounded)
        expected = pam(serial, l=3, init="build")
        _, batched, batcher = build_batched(space, bounded, executor_cls)
        try:
            assert pam(batched, l=3, init="build") == expected
        finally:
            batcher.close()

    def test_prim_mst(self, space, bounded, executor_cls):
        _, serial, _ = build_serial(space, bounded)
        expected = prim_mst(serial)
        _, batched, batcher = build_batched(space, bounded, executor_cls)
        try:
            assert prim_mst(batched) == expected
        finally:
            batcher.close()

    def test_knn_graph_brute(self, space, bounded, executor_cls):
        _, serial, _ = build_serial(space, bounded)
        expected = knn_graph_brute(serial, k=4)
        _, batched, batcher = build_batched(space, bounded, executor_cls)
        try:
            assert knn_graph_brute(batched, k=4) == expected
        finally:
            batcher.close()


@pytest.mark.parametrize("executor_cls", [SerialExecutor, ThreadedExecutor])
class TestIdenticalUnderInjectedTimeouts:
    """Retried/timed-out attempts must not leak into results or accounting."""

    def test_knn_graph(self, space, executor_cls):
        _, serial, _ = build_serial(space, bounded=True)
        expected = knn_graph(serial, k=4)
        flaky = FlakyDistance(space.distance)
        oracle, batched, batcher = build_batched(
            space, bounded=True, executor_cls=executor_cls, distance_fn=flaky
        )
        try:
            assert knn_graph(batched, k=4) == expected
        finally:
            batcher.close()
        assert flaky.injected > 0  # faults actually fired
        assert oracle.timeouts == flaky.injected
        assert oracle.retries == flaky.injected

    def test_pam(self, space, executor_cls):
        _, serial, _ = build_serial(space, bounded=True)
        expected = pam(serial, l=4, seed=3)
        flaky = FlakyDistance(space.distance)
        oracle, batched, batcher = build_batched(
            space, bounded=True, executor_cls=executor_cls, distance_fn=flaky
        )
        try:
            assert pam(batched, l=4, seed=3) == expected
        finally:
            batcher.close()
        assert flaky.injected > 0
        assert oracle.retries == flaky.injected

    def test_prim_mst(self, space, executor_cls):
        _, serial, _ = build_serial(space, bounded=True)
        expected = prim_mst(serial)
        flaky = FlakyDistance(space.distance)
        oracle, batched, batcher = build_batched(
            space, bounded=True, executor_cls=executor_cls, distance_fn=flaky
        )
        try:
            assert prim_mst(batched) == expected
        finally:
            batcher.close()
        assert flaky.injected > 0


class TestResolverBatchedEntryPoints:
    def test_resolve_many_matches_serial_state(self, space):
        pairs = [(0, 5), (5, 0), (2, 9), (1, 1), (3, 7)]
        _, serial, _ = build_serial(space, bounded=True)
        serial_out = serial.resolve_many(pairs)
        _, batched, batcher = build_batched(space, bounded=True)
        try:
            batched_out = batched.resolve_many(pairs)
        finally:
            batcher.close()
        assert batched_out == serial_out
        assert sorted(batched.graph.edges()) == sorted(serial.graph.edges())
        assert serial.stats.batched_resolutions == 0
        assert batched.stats.batched_resolutions == len(batched_out)

    def test_prefetch_thresholds_is_noop_without_batcher(self, space):
        _, serial, _ = build_serial(space, bounded=True)
        assert serial.prefetch_thresholds([((0, 1), 10.0)]) == 0
        assert serial.oracle.calls == 0

    def test_prefetch_thresholds_fetches_undecided_frontier(self, space):
        oracle, batched, batcher = build_batched(space, bounded=False)
        try:
            fetched = batched.prefetch_thresholds(
                [((0, 1), 10.0), ((0, 2), 0.0), ((3, 3), 5.0)]
            )
        finally:
            batcher.close()
        # (0, 2) is ruled out by threshold 0; the diagonal never resolves.
        assert fetched == 1
        assert oracle.calls == 1
        assert batched.known(0, 1) is not None

    def test_batcher_must_share_oracle(self, space):
        o1 = space.oracle()
        o2 = space.oracle()
        batcher = BatchOracle(o2)
        with pytest.raises(ValueError):
            SmartResolver(o1, batcher=batcher)
