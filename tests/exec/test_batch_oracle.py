"""Tests for BatchOracle: dedupe, commits, persistence, latency pricing."""

import math

import pytest

from repro.core.oracle import DistanceOracle
from repro.exec import (
    BatchOracle,
    MemoryCacheBackend,
    RetryPolicy,
    SerialExecutor,
    SqliteCacheBackend,
    ThreadedExecutor,
)

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0)


def metric(i, j):
    return float(abs(i - j))


@pytest.fixture
def oracle():
    return DistanceOracle(metric, 20, cost_per_call=1.0)


class TestResolveMany:
    def test_returns_canonical_keyed_values(self, oracle):
        batch = BatchOracle(oracle)
        out = batch.resolve_many([(1, 0), (0, 1), (3, 2), (5, 5)])
        assert out == {(0, 1): 1.0, (2, 3): 1.0}
        assert oracle.calls == 2  # duplicates and the diagonal cost nothing

    def test_skips_already_resolved_pairs(self, oracle):
        oracle(0, 1)
        batch = BatchOracle(oracle)
        out = batch.resolve_many([(0, 1), (0, 2)])
        assert out == {(0, 1): 1.0, (0, 2): 2.0}
        assert oracle.calls == 2

    def test_commits_in_sorted_order(self, oracle):
        committed = []
        oracle.subscribe(lambda i, j, d: committed.append((i, j)))
        batch = BatchOracle(oracle, executor=ThreadedExecutor(workers=4, retry=FAST_RETRY))
        try:
            batch.resolve_many([(9, 8), (0, 5), (3, 1), (0, 2)])
        finally:
            batch.close()
        assert committed == [(0, 2), (0, 5), (1, 3), (8, 9)]

    def test_batch_counter(self, oracle):
        batch = BatchOracle(oracle)
        batch.resolve_many([(0, 1)])
        batch.resolve_many([(0, 1)])  # fully cached — no new dispatch
        batch.resolve_many([(0, 2)])
        assert batch.batches == 2


class TestLatencyPricing:
    def test_serial_charges_full_latency(self, oracle):
        batch = BatchOracle(oracle, executor=SerialExecutor(retry=FAST_RETRY))
        batch.resolve_many([(0, j) for j in range(1, 9)])
        assert oracle.simulated_seconds == 8.0

    def test_threaded_charges_elapsed_waves(self, oracle):
        executor = ThreadedExecutor(workers=4, retry=FAST_RETRY)
        batch = BatchOracle(oracle, executor=executor)
        try:
            batch.resolve_many([(0, j) for j in range(1, 10)])  # 9 fresh pairs
        finally:
            batch.close()
        # ceil(9 / 4) = 3 latency waves; 6 units refunded.
        assert oracle.calls == 9
        assert oracle.simulated_seconds == 3.0
        assert executor.stats.simulated_seconds_saved == 6.0

    def test_refund_skips_free_pairs(self, oracle):
        oracle(0, 1)
        executor = ThreadedExecutor(workers=8, retry=FAST_RETRY)
        batch = BatchOracle(oracle, executor=executor)
        try:
            batch.resolve_many([(0, 1), (0, 2)])  # only one fresh pair
        finally:
            batch.close()
        assert oracle.simulated_seconds == 2.0  # one inline + one batched wave


class TestFaultPropagation:
    def test_retry_and_timeout_counters_reach_oracle(self, oracle):
        attempts = {}

        def flaky(i, j):
            seen = attempts.get((i, j), 0)
            attempts[(i, j)] = seen + 1
            if seen == 0:
                raise TimeoutError("transient")
            return metric(i, j)

        flaky_oracle = DistanceOracle(flaky, 20)
        batch = BatchOracle(flaky_oracle, executor=SerialExecutor(retry=FAST_RETRY))
        out = batch.resolve_many([(0, 1), (0, 2)])
        assert out == {(0, 1): 1.0, (0, 2): 2.0}
        assert flaky_oracle.retries == 2
        assert flaky_oracle.timeouts == 2
        stats = flaky_oracle.stats()
        assert stats.retries == 2
        assert stats.timeouts == 2


class TestPersistentCache:
    def test_write_through_covers_batched_and_inline(self, oracle):
        cache = MemoryCacheBackend()
        batch = BatchOracle(oracle, cache=cache)
        batch.resolve_many([(0, 1), (0, 2)])
        oracle(0, 3)  # inline resolution is persisted too
        assert len(cache) == 3
        assert cache.get(3, 0) == 3.0

    def test_cache_hits_are_free(self, oracle):
        cache = MemoryCacheBackend()
        cache.put_many({(0, 1): 1.0, (0, 2): 2.0})
        batch = BatchOracle(oracle, cache=cache)
        out = batch.resolve_many([(0, 1), (0, 2), (0, 3)])
        assert out == {(0, 1): 1.0, (0, 2): 2.0, (0, 3): 3.0}
        assert oracle.calls == 1
        assert batch.cache_hits == 2

    def test_preload_seeds_everything(self, oracle):
        cache = MemoryCacheBackend()
        cache.put_many({(0, 1): 1.0, (4, 7): 3.0, (100, 101): 1.0})
        batch = BatchOracle(oracle, cache=cache)
        assert batch.preload() == 2  # out-of-universe entries skipped
        assert batch.preloaded == 2
        assert oracle.peek(0, 1) == 1.0
        assert oracle.calls == 0

    def test_sqlite_roundtrip_across_sessions(self, tmp_path):
        path = tmp_path / "distances.db"
        first = DistanceOracle(metric, 20, cost_per_call=1.0)
        batch = BatchOracle(first, cache=SqliteCacheBackend(path))
        batch.resolve_many([(0, 1), (2, 9)])
        batch.close()

        second = DistanceOracle(metric, 20, cost_per_call=1.0)
        resumed = BatchOracle(second, cache=SqliteCacheBackend(path))
        resumed.preload()
        out = resumed.resolve_many([(0, 1), (2, 9)])
        resumed.close()
        assert out == {(0, 1): 1.0, (2, 9): 7.0}
        assert second.calls == 0
        assert second.simulated_seconds == 0.0

    def test_close_unsubscribes_listener(self, oracle):
        cache = MemoryCacheBackend()
        with BatchOracle(oracle, cache=cache) as batch:
            batch.resolve_many([(0, 1)])
        oracle(0, 2)  # after close, charges are no longer persisted
        assert len(cache) == 1


class TestObserversSeeBatchedCommits:
    def test_validating_oracle_checks_batch_commits(self):
        from repro.core.exceptions import MetricViolationError
        from repro.core.validation import ValidatingOracle

        def broken(i, j):
            if (min(i, j), max(i, j)) == (1, 2):
                return 100.0  # violates the triangle with (0,1) and (0,2)
            return metric(i, j)

        oracle = ValidatingOracle(broken, 10)
        batch = BatchOracle(oracle, executor=SerialExecutor(retry=FAST_RETRY))
        with pytest.raises(MetricViolationError):
            batch.resolve_many([(0, 1), (0, 2), (1, 2)])

    def test_tracing_oracle_records_batch_ids(self):
        from repro.harness.tracing import TracingOracle

        oracle = TracingOracle(metric, 10)
        batch = BatchOracle(oracle)
        batch.resolve_many([(0, 1), (0, 2)])
        oracle(0, 3)
        batches = [event.batch for event in oracle.events]
        assert batches == [1, 1, None]


def test_math_consistency_of_wave_formula():
    # The pricing rule the implementation relies on.
    for fresh in range(1, 50):
        for workers in (1, 4, 16):
            waves = math.ceil(fresh / workers)
            assert 1 <= waves <= fresh
