"""Tests for the persistent distance-cache backends."""

import pytest

from repro.exec import CacheBackend, MemoryCacheBackend, SqliteCacheBackend, open_cache


@pytest.fixture(params=["memory", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        cache = MemoryCacheBackend()
    else:
        cache = SqliteCacheBackend(tmp_path / "distances.db")
    yield cache
    cache.close()


class TestBackendContract:
    def test_miss_returns_none(self, backend):
        assert backend.get(0, 1) is None
        assert len(backend) == 0

    def test_put_get_roundtrip(self, backend):
        backend.put(3, 7, 1.5)
        assert backend.get(3, 7) == 1.5
        assert len(backend) == 1

    def test_keys_are_canonical(self, backend):
        backend.put(7, 3, 2.0)
        assert backend.get(3, 7) == 2.0
        assert backend.get(7, 3) == 2.0
        assert list(backend.items()) == [((3, 7), 2.0)]

    def test_overwrite_is_silent(self, backend):
        backend.put(0, 1, 1.0)
        backend.put(1, 0, 4.0)
        assert backend.get(0, 1) == 4.0
        assert len(backend) == 1

    def test_put_many_get_many(self, backend):
        backend.put_many({(0, 1): 1.0, (2, 1): 2.0})
        found = backend.get_many([(1, 0), (1, 2), (5, 6)])
        assert found == {(0, 1): 1.0, (1, 2): 2.0}

    def test_context_manager(self, backend):
        with backend as cache:
            cache.put(0, 1, 1.0)
            assert cache.get(0, 1) == 1.0


class TestSqlitePersistence:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "d.db"
        with SqliteCacheBackend(path) as cache:
            cache.put_many({(0, 1): 1.25, (2, 3): 0.5})
        with SqliteCacheBackend(path) as cache:
            assert cache.get(1, 0) == 1.25
            assert len(cache) == 2
            assert sorted(cache.items()) == [((0, 1), 1.25), ((2, 3), 0.5)]

    def test_path_property(self, tmp_path):
        path = tmp_path / "d.db"
        with SqliteCacheBackend(path) as cache:
            assert cache.path == str(path)


class TestOpenCache:
    def test_none_disables(self):
        assert open_cache(None) is None

    def test_memory_sentinel(self):
        cache = open_cache(":memory:")
        assert isinstance(cache, MemoryCacheBackend)

    def test_path_opens_sqlite(self, tmp_path):
        cache = open_cache(tmp_path / "d.db")
        assert isinstance(cache, SqliteCacheBackend)
        cache.close()

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            CacheBackend().get(0, 1)
