"""Tests for the persistent distance-cache backends."""

import multiprocessing
import pickle

import pytest

from repro.exec import CacheBackend, MemoryCacheBackend, SqliteCacheBackend, open_cache


def _child_put(path, i, j, value):
    """Spawn-target: open the shared cache and write one entry."""
    cache = SqliteCacheBackend(path)
    cache.put(i, j, value)
    cache.close()


def _child_put_pickled(cache, i, j, value):
    """Spawn-target: use a *pickled* backend (connection must reopen)."""
    cache.put(i, j, value)
    cache.close()


@pytest.fixture(params=["memory", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        cache = MemoryCacheBackend()
    else:
        cache = SqliteCacheBackend(tmp_path / "distances.db")
    yield cache
    cache.close()


class TestBackendContract:
    def test_miss_returns_none(self, backend):
        assert backend.get(0, 1) is None
        assert len(backend) == 0

    def test_put_get_roundtrip(self, backend):
        backend.put(3, 7, 1.5)
        assert backend.get(3, 7) == 1.5
        assert len(backend) == 1

    def test_keys_are_canonical(self, backend):
        backend.put(7, 3, 2.0)
        assert backend.get(3, 7) == 2.0
        assert backend.get(7, 3) == 2.0
        assert list(backend.items()) == [((3, 7), 2.0)]

    def test_overwrite_is_silent(self, backend):
        backend.put(0, 1, 1.0)
        backend.put(1, 0, 4.0)
        assert backend.get(0, 1) == 4.0
        assert len(backend) == 1

    def test_put_many_get_many(self, backend):
        backend.put_many({(0, 1): 1.0, (2, 1): 2.0})
        found = backend.get_many([(1, 0), (1, 2), (5, 6)])
        assert found == {(0, 1): 1.0, (1, 2): 2.0}

    def test_context_manager(self, backend):
        with backend as cache:
            cache.put(0, 1, 1.0)
            assert cache.get(0, 1) == 1.0


class TestSqlitePersistence:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "d.db"
        with SqliteCacheBackend(path) as cache:
            cache.put_many({(0, 1): 1.25, (2, 3): 0.5})
        with SqliteCacheBackend(path) as cache:
            assert cache.get(1, 0) == 1.25
            assert len(cache) == 2
            assert sorted(cache.items()) == [((0, 1), 1.25), ((2, 3), 0.5)]

    def test_path_property(self, tmp_path):
        path = tmp_path / "d.db"
        with SqliteCacheBackend(path) as cache:
            assert cache.path == str(path)


class TestSqliteMultiProcess:
    def test_pickle_drops_connection_and_reconnects(self, tmp_path):
        with SqliteCacheBackend(tmp_path / "d.db") as cache:
            cache.put(0, 1, 1.5)
            clone = pickle.loads(pickle.dumps(cache))
            assert clone._conn is None  # the connection never travels
            assert clone.get(0, 1) == 1.5  # ...and reopens lazily on use
            clone.put(2, 3, 2.5)
            assert cache.get(2, 3) == 2.5  # both handles see one file
            clone.close()

    def test_busy_timeout_configured(self, tmp_path):
        with SqliteCacheBackend(tmp_path / "d.db", busy_timeout=7.0) as cache:
            row = cache._connection().execute("PRAGMA busy_timeout").fetchone()
            assert row[0] == 7000

    def test_concurrent_writers_from_other_processes(self, tmp_path):
        path = str(tmp_path / "shared.db")
        parent = SqliteCacheBackend(path)
        parent.put(0, 1, 0.5)
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(target=_child_put, args=(path, 10 + k, 20 + k, float(k)))
            for k in range(3)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        assert len(parent) == 4
        for k in range(3):
            assert parent.get(10 + k, 20 + k) == float(k)
        parent.close()

    def test_pickled_backend_usable_in_child(self, tmp_path):
        parent = SqliteCacheBackend(tmp_path / "shared.db")
        ctx = multiprocessing.get_context("spawn")
        p = ctx.Process(target=_child_put_pickled, args=(parent, 5, 6, 9.25))
        p.start()
        p.join(timeout=60)
        assert p.exitcode == 0
        assert parent.get(5, 6) == 9.25
        parent.close()

    def test_close_in_child_keeps_parent_connection(self, tmp_path):
        # close() must only close the *own-process* connection: a pickled
        # copy closing in another pid leaves the parent's handle working.
        with SqliteCacheBackend(tmp_path / "d.db") as cache:
            cache.put(0, 1, 1.0)
            clone = pickle.loads(pickle.dumps(cache))
            clone._conn_pid = -1  # simulate "opened by another process"
            clone._conn = object()  # sentinel: close() must not touch it
            clone.close()
            assert cache.get(0, 1) == 1.0


class TestOpenCache:
    def test_none_disables(self):
        assert open_cache(None) is None

    def test_memory_sentinel(self):
        cache = open_cache(":memory:")
        assert isinstance(cache, MemoryCacheBackend)

    def test_path_opens_sqlite(self, tmp_path):
        cache = open_cache(tmp_path / "d.db")
        assert isinstance(cache, SqliteCacheBackend)
        cache.close()

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            CacheBackend().get(0, 1)
