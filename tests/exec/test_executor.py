"""Tests for the retry/timeout executors."""

import os
import time

import pytest

from repro.core.exceptions import OracleResolutionError
from repro.exec import (
    ProcessExecutor,
    RetryPolicy,
    SerialExecutor,
    ThreadedExecutor,
    make_executor,
)


def simple_distance(i, j):
    return float(abs(i - j))


class FlakyFn:
    """Fails the first ``failures`` attempts per pair, then succeeds."""

    def __init__(self, failures=1, exc=RuntimeError):
        self.failures = failures
        self.exc = exc
        self.attempts = {}

    def __call__(self, i, j):
        seen = self.attempts.get((i, j), 0)
        self.attempts[(i, j)] = seen + 1
        if seen < self.failures:
            raise self.exc(f"transient failure {seen + 1} for {(i, j)}")
        return simple_distance(i, j)


FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0)


class TestRetryPolicy:
    def test_schedule_is_capped_exponential(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, multiplier=2.0, max_delay=0.3)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.3)  # capped
        assert policy.delay(4) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_executor_rejects_bad_timeout(self):
        with pytest.raises(ValueError):
            SerialExecutor(timeout=0)


@pytest.fixture(params=["serial", "threaded"])
def executor(request):
    built = make_executor(request.param, workers=4, retry=FAST_RETRY)
    yield built
    built.close()


class TestBothExecutors:
    def test_resolves_all_pairs(self, executor):
        pairs = [(i, j) for i in range(6) for j in range(i + 1, 6)]
        values, report = executor.run(simple_distance, pairs)
        assert values == {p: simple_distance(*p) for p in pairs}
        assert report.size == len(pairs)
        assert report.retries == 0
        assert executor.stats.submitted == len(pairs)
        assert executor.stats.resolved == len(pairs)
        assert executor.stats.largest_batch == len(pairs)

    def test_empty_batch(self, executor):
        values, report = executor.run(simple_distance, [])
        assert values == {}
        assert report.size == 0

    def test_retries_transient_failures(self, executor):
        fn = FlakyFn(failures=2)
        values, report = executor.run(fn, [(0, 3), (1, 4)])
        assert values == {(0, 3): 3.0, (1, 4): 3.0}
        assert report.retries == 4
        assert executor.stats.retries == 4

    def test_raises_after_exhausting_attempts(self, executor):
        fn = FlakyFn(failures=10)
        with pytest.raises(OracleResolutionError) as excinfo:
            executor.run(fn, [(0, 1)])
        assert excinfo.value.attempts == FAST_RETRY.max_attempts
        assert excinfo.value.pair == (0, 1)
        assert executor.stats.failures == 1

    def test_timeout_errors_counted(self, executor):
        fn = FlakyFn(failures=1, exc=TimeoutError)
        values, _ = executor.run(fn, [(0, 2)])
        assert values == {(0, 2): 2.0}
        assert executor.stats.timeouts == 1


class TestThreadedExecutor:
    def test_overlaps_slow_calls(self):
        def slow(i, j):
            time.sleep(0.05)
            return simple_distance(i, j)

        with ThreadedExecutor(workers=8, retry=FAST_RETRY) as executor:
            pairs = [(0, j) for j in range(1, 9)]
            start = time.perf_counter()
            values, _ = executor.run(slow, pairs)
            elapsed = time.perf_counter() - start
        assert values == {p: simple_distance(*p) for p in pairs}
        # 8 overlapping 50 ms calls must take far less than 8 × 50 ms.
        assert elapsed < 0.3

    def test_deadline_abandons_hung_call(self):
        calls = {}

        def hang_once(i, j):
            seen = calls.get((i, j), 0)
            calls[(i, j)] = seen + 1
            if seen == 0:
                time.sleep(0.5)
            return simple_distance(i, j)

        executor = ThreadedExecutor(workers=2, retry=FAST_RETRY, timeout=0.05)
        try:
            values, report = executor.run(hang_once, [(0, 4)])
        finally:
            executor.close()
        assert values == {(0, 4): 4.0}
        assert report.timeouts >= 1
        assert executor.stats.timeouts >= 1

    def test_queued_tasks_do_not_expire_before_starting(self):
        # 1 worker, 4 tasks of 40 ms with a 60 ms per-attempt deadline: the
        # deadline clock must start when each call begins executing, so none
        # of the queued tasks may time out.
        def slow(i, j):
            time.sleep(0.04)
            return simple_distance(i, j)

        executor = ThreadedExecutor(workers=1, retry=FAST_RETRY, timeout=0.06)
        try:
            values, report = executor.run(slow, [(0, j) for j in range(1, 5)])
        finally:
            executor.close()
        assert len(values) == 4
        assert report.timeouts == 0

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            ThreadedExecutor(workers=0)


class TestStats:
    def test_merge_sums_and_maxima(self):
        a = SerialExecutor(retry=FAST_RETRY)
        b = SerialExecutor(retry=FAST_RETRY)
        a.run(simple_distance, [(0, 1), (0, 2)])
        b.run(simple_distance, [(0, 3)])
        merged = a.stats.merge(b.stats)
        assert merged.batches == 2
        assert merged.submitted == 3
        assert merged.largest_batch == 2

    def test_copy_is_independent(self):
        executor = SerialExecutor(retry=FAST_RETRY)
        snapshot = executor.stats.copy()
        executor.run(simple_distance, [(0, 1)])
        assert snapshot.submitted == 0
        assert executor.stats.submitted == 1


def always_fail(i, j):
    raise RuntimeError(f"permanent failure for {(i, j)}")


class FailOnceOnDisk:
    """Picklable flaky fn: cross-process attempt state lives in a marker file.

    A worker process can't share ``FlakyFn``'s in-memory attempt counter, so
    the first call (in whatever process) drops a marker and fails; every
    later call, in any process, succeeds.
    """

    def __init__(self, marker):
        self.marker = str(marker)

    def __call__(self, i, j):
        if not os.path.exists(self.marker):
            open(self.marker, "w").close()
            raise RuntimeError("transient failure (first attempt)")
        return simple_distance(i, j)


class TestProcessExecutor:
    def test_resolves_all_pairs(self):
        pairs = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        with ProcessExecutor(workers=2, retry=FAST_RETRY) as executor:
            values, report = executor.run(simple_distance, pairs)
        assert values == {p: simple_distance(*p) for p in pairs}
        assert report.size == len(pairs)
        assert executor.stats.resolved == len(pairs)

    def test_retries_transient_failures(self, tmp_path):
        fn = FailOnceOnDisk(tmp_path / "attempted")
        with ProcessExecutor(workers=2, retry=FAST_RETRY) as executor:
            values, report = executor.run(fn, [(0, 3)])
        assert values == {(0, 3): 3.0}
        assert report.retries >= 1

    def test_raises_after_exhausting_attempts(self):
        with ProcessExecutor(workers=2, retry=FAST_RETRY) as executor:
            with pytest.raises(OracleResolutionError) as excinfo:
                executor.run(always_fail, [(0, 1)])
        assert excinfo.value.pair == (0, 1)
        assert excinfo.value.attempts == FAST_RETRY.max_attempts
        assert "permanent failure" in str(excinfo.value.__cause__)

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            ProcessExecutor(workers=0)

    def test_make_executor_builds_process(self):
        executor = make_executor("process", workers=2, retry=FAST_RETRY)
        try:
            assert isinstance(executor, ProcessExecutor)
            assert executor.name == "process"
        finally:
            executor.close()


def test_make_executor_rejects_unknown_name():
    with pytest.raises(ValueError):
        make_executor("distributed")
