"""End-to-end integration tests across the whole stack."""


import numpy as np
import pytest

from repro import (
    EditDistanceSpace,
    SmartResolver,
    TriScheme,
    clarans,
    knn_graph,
    pam,
    prim_mst,
)
from repro.algorithms import knn_graph_brute
from repro.bounds.landmarks import bootstrap_with_landmarks
from repro.datasets import flickr_space, sf_poi_space, urbangb_space
from repro.harness import run_experiment
from repro.spaces.strings import random_strings


class TestRoadNetworkPipeline:
    """The paper's flagship scenario: MST over maps-API driving distances."""

    def test_prim_with_tri_on_sf_poi(self):
        space = sf_poi_space(60)
        vanilla = run_experiment(space, "prim", "none")
        tri = run_experiment(space, "prim", "tri")
        assert tri.result.total_weight == pytest.approx(vanilla.result.total_weight)
        assert tri.total_calls < vanilla.total_calls

    def test_kruskal_with_bootstrap_on_urbangb(self):
        space = urbangb_space(60)
        vanilla = run_experiment(space, "kruskal", "none")
        tri = run_experiment(space, "kruskal", "tri", landmark_bootstrap=True)
        assert tri.result.total_weight == pytest.approx(vanilla.result.total_weight)
        assert tri.total_calls < vanilla.total_calls


class TestHighDimensionalPipeline:
    def test_pam_on_flickr_features(self):
        space = flickr_space(50, dim=64)
        vanilla = run_experiment(space, "pam", "none", algorithm_kwargs={"l": 4})
        tri = run_experiment(space, "pam", "tri", algorithm_kwargs={"l": 4})
        assert tri.result.medoids == vanilla.result.medoids

    def test_knng_on_flickr_features(self):
        space = flickr_space(40, dim=32)
        oracle = space.oracle()
        resolver = SmartResolver(oracle)
        resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
        pruned = knn_graph(resolver, k=4)
        brute = knn_graph_brute(SmartResolver(space.oracle()), k=4)
        for u in range(space.n):
            assert pruned.neighbor_ids(u) == brute.neighbor_ids(u)


class TestEditDistancePipeline:
    """Bioinformatics scenario: clustering DNA-like strings."""

    def test_clarans_over_edit_distance(self):
        strings = random_strings(35, length=24, num_seeds=3, rng=np.random.default_rng(5))
        space = EditDistanceSpace(strings)
        vanilla = run_experiment(
            space, "clarans", "none",
            algorithm_kwargs={"l": 3, "seed": 2, "num_local": 1, "max_neighbors": 25},
        )
        tri = run_experiment(
            space, "clarans", "tri",
            algorithm_kwargs={"l": 3, "seed": 2, "num_local": 1, "max_neighbors": 25},
        )
        assert tri.result.medoids == vanilla.result.medoids
        assert tri.total_calls <= vanilla.total_calls

    def test_mst_over_edit_distance(self):
        strings = random_strings(30, length=20, rng=np.random.default_rng(9))
        space = EditDistanceSpace(strings, normalise=True)
        vanilla = run_experiment(space, "prim", "none")
        splub = run_experiment(space, "prim", "splub")
        assert splub.result.total_weight == pytest.approx(vanilla.result.total_weight)


class TestSharedGraphSynergy:
    """Resolutions accumulate: later queries get tighter bounds for free."""

    def test_mst_then_knng_reuses_graph(self):
        space = sf_poi_space(50, road=False)
        oracle = space.oracle()
        resolver = SmartResolver(oracle)
        resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
        prim_mst(resolver)
        calls_after_mst = oracle.calls
        knn_graph(resolver, k=3)
        knng_extra = oracle.calls - calls_after_mst

        fresh_oracle = space.oracle()
        fresh = SmartResolver(fresh_oracle)
        fresh.bounder = TriScheme(fresh.graph, space.diameter_bound())
        knn_graph(fresh, k=3)
        assert knng_extra < fresh_oracle.calls  # warm graph beats cold start

    def test_bootstrap_benefits_tri(self):
        space = sf_poi_space(70, road=False)

        cold_oracle = space.oracle()
        cold = SmartResolver(cold_oracle)
        cold.bounder = TriScheme(cold.graph, space.diameter_bound())
        prim_mst(cold)

        warm_oracle = space.oracle()
        warm = SmartResolver(warm_oracle)
        warm.bounder = TriScheme(warm.graph, space.diameter_bound())
        bootstrap_with_landmarks(warm, 6)
        boot_calls = warm_oracle.calls
        prim_mst(warm)
        algo_calls = warm_oracle.calls - boot_calls
        # The bootstrapped run spends fewer calls inside the algorithm.
        assert algo_calls < cold_oracle.calls


class TestBudgetedOracle:
    def test_budget_stops_runaway_algorithms(self):
        from repro.core.exceptions import BudgetExceededError

        space = sf_poi_space(40, road=False)
        oracle = space.oracle(budget=50)
        resolver = SmartResolver(oracle)
        with pytest.raises(BudgetExceededError):
            prim_mst(resolver)

    def test_virtual_clock_accumulates(self):
        space = sf_poi_space(30, road=False)
        record = run_experiment(space, "prim", "tri", oracle_cost=1.5)
        assert record.oracle_seconds == pytest.approx(1.5 * record.total_calls)


class TestFullSchemeMatrix:
    """Every provider × every algorithm on one dataset: outputs all agree."""

    @pytest.mark.parametrize("algorithm,kwargs", [
        ("prim", {}),
        ("kruskal", {}),
        ("knng", {"k": 3}),
        ("pam", {"l": 3, "seed": 0}),
        ("clarans", {"l": 3, "seed": 0, "num_local": 1, "max_neighbors": 15}),
    ])
    def test_all_providers_agree(self, algorithm, kwargs):
        space = sf_poi_space(32, road=False)
        reference = run_experiment(space, algorithm, "none", algorithm_kwargs=kwargs)
        for provider in ("tri", "splub", "adm", "laesa", "tlaesa"):
            record = run_experiment(space, algorithm, provider, algorithm_kwargs=kwargs)
            ref, out = reference.result, record.result
            if algorithm in ("prim", "kruskal"):
                assert out.total_weight == pytest.approx(ref.total_weight), provider
            elif algorithm == "knng":
                for u in range(space.n):
                    assert out.neighbor_ids(u) == ref.neighbor_ids(u), provider
            else:
                assert out.medoids == ref.medoids, provider
