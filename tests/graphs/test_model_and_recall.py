"""NavigableGraph round-trips and the recall-evaluation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    DirectResolver,
    NavigableGraph,
    brute_force_knn,
    build_hnsw_naive,
    evaluate_recall,
    recall_at_k,
)
from repro.spaces.matrix import MatrixSpace, random_metric_matrix


@pytest.fixture(scope="module")
def space():
    return MatrixSpace(random_metric_matrix(25, np.random.default_rng(4)), validate=False)


class TestModel:
    def test_round_trip_preserves_signature(self, space):
        graph = build_hnsw_naive(space.oracle(), m=3, ef_construction=8, seed=5)
        clone = NavigableGraph.from_dict(graph.to_dict())
        assert clone.edges_signature() == graph.edges_signature()
        assert clone.kind == graph.kind
        assert clone.entry_point == graph.entry_point
        assert clone.params == graph.params

    def test_to_dict_is_json_safe(self, space):
        import json

        graph = build_hnsw_naive(space.oracle(), m=3, ef_construction=8, seed=5)
        payload = json.loads(json.dumps(graph.to_dict()))
        assert NavigableGraph.from_dict(payload).edges_signature() == graph.edges_signature()

    def test_summary_counts(self):
        g = NavigableGraph(
            kind="nsg", entry_point=1, layers=[{1: [2], 2: [1, 3], 3: []}]
        )
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert g.max_level == 0
        assert g.summary()["edges"] == 3
        assert list(g.neighbors(2)) == [1, 3]
        assert list(g.neighbors(9)) == []


class TestRecallAtK:
    # Hand-computed ground truth: truth ranking is [4, 2, 7].
    def test_perfect_recall(self):
        assert recall_at_k([4, 2, 7], [4, 2, 7]) == 1.0

    def test_partial_recall(self):
        assert recall_at_k([4, 2, 9], [4, 2, 7]) == pytest.approx(2 / 3)

    def test_zero_recall(self):
        assert recall_at_k([1, 3, 5], [4, 2, 7]) == 0.0

    def test_order_within_topk_does_not_matter(self):
        assert recall_at_k([7, 4, 2], [4, 2, 7]) == 1.0

    def test_k_prefix_is_respected(self):
        # Only the top-2 of each side count when k=2.
        assert recall_at_k([4, 9, 2], [4, 2, 7], k=2) == 0.5

    def test_accepts_distance_id_tuples(self):
        assert recall_at_k([(0.1, 4), (0.2, 2)], [4, 2]) == 1.0

    def test_empty_truth_is_perfect(self):
        assert recall_at_k([1, 2], []) == 1.0


class TestBruteForce:
    def test_matches_hand_computed_ranking(self):
        # A 4-point line: 0 -1- 1 -1- 2 -1- 3, distances are index gaps.
        dist = lambda a, b: abs(a - b)  # noqa: E731
        assert brute_force_knn(dist, 1, range(4), 2) == [0, 2]
        assert brute_force_knn(dist, 0, range(4), 3) == [1, 2, 3]

    def test_ties_break_by_id_and_query_excluded(self):
        dist = lambda a, b: 0.0 if a != b else 0.0  # noqa: E731
        assert brute_force_knn(dist, 2, range(4), 2) == [0, 1]


class TestEvaluateRecall:
    def test_full_beam_recall_is_one(self, space):
        graph = build_hnsw_naive(space.oracle(), m=4, ef_construction=12, seed=5)
        report = evaluate_recall(
            DirectResolver(space.oracle()), graph, [0, 5, 10], 5,
            ef=space.n, distance_fn=space.distance,
        )
        assert report["recall"] == 1.0
        assert report["per_query"] == [1.0, 1.0, 1.0]
        assert report["k"] == 5

    def test_ground_truth_can_run_off_the_resolver(self, space):
        graph = build_hnsw_naive(space.oracle(), m=4, ef_construction=12, seed=5)
        report = evaluate_recall(
            DirectResolver(space.oracle()), graph, [3], 3, ef=space.n,
        )
        assert report["recall"] == 1.0
