"""Search over built graphs: numeric correctness and comparison-only parity."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bounds import TriScheme
from repro.core.oracle import ComparisonOracle
from repro.core.resolver import SmartResolver
from repro.graphs import (
    NavigableGraph,
    build_hnsw_naive,
    build_nsg_naive,
    comparison_search,
    graph_search,
)
from repro.graphs.naive import DirectResolver
from repro.spaces.matrix import MatrixSpace, random_metric_matrix

COMMON_SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _space(n, seed):
    return MatrixSpace(random_metric_matrix(n, np.random.default_rng(seed)), validate=False)


@pytest.fixture(scope="module")
def space():
    return _space(30, 9)


@pytest.fixture(scope="module")
def graph(space):
    return build_hnsw_naive(space.oracle(), m=4, ef_construction=16, seed=2)


class TestNumericSearch:
    def test_returns_ascending_distances_excluding_query(self, space, graph):
        found = graph_search(DirectResolver(space.oracle()), graph, 7, 5)
        assert len(found) == 5
        ids = [v for _, v in found]
        assert 7 not in ids
        assert [d for d, _ in found] == sorted(d for d, _ in found)

    def test_smart_and_naive_search_agree(self, space, graph):
        naive = graph_search(DirectResolver(space.oracle()), graph, 3, 5)
        resolver = SmartResolver(space.oracle())
        resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
        smart = graph_search(resolver, graph, 3, 5)
        assert naive == smart

    def test_full_beam_search_is_exact(self, space, graph):
        # With ef covering the whole space, graph search on a connected
        # graph must return the true k nearest.
        resolver = DirectResolver(space.oracle())
        found = graph_search(resolver, graph, 11, 5, ef=space.n)
        truth = sorted(
            (space.distance(11, v), v) for v in range(space.n) if v != 11
        )[:5]
        assert found == truth


class TestComparisonParity:
    def test_comparison_search_matches_numeric_ids(self, space, graph):
        resolver = DirectResolver(space.oracle())
        cmp = ComparisonOracle(space.distance)
        for q in range(0, space.n, 3):
            numeric = [v for _, v in graph_search(resolver, graph, q, 5)]
            ordinal = comparison_search(cmp, graph, q, 5)
            assert numeric == ordinal, f"query {q} diverged"
        assert cmp.comparisons > 0

    @given(st.integers(10, 24), st.integers(0, 2**31 - 1))
    @settings(**COMMON_SETTINGS)
    def test_parity_on_random_metric_spaces(self, n, seed):
        # Random metric matrices are tie-free almost surely, the regime
        # where the ordering-driven beam provably mirrors the numeric one.
        sp = _space(n, seed)
        g = build_hnsw_naive(sp.oracle(), m=3, ef_construction=8, seed=seed % 13)
        cmp = ComparisonOracle(sp.distance)
        q = seed % n
        numeric = [v for _, v in graph_search(DirectResolver(sp.oracle()), g, q, 3)]
        assert comparison_search(cmp, g, q, 3) == numeric

    @given(st.integers(10, 24), st.integers(0, 2**31 - 1))
    @settings(**COMMON_SETTINGS)
    def test_parity_holds_on_nsg_graphs_too(self, n, seed):
        sp = _space(n, seed)
        g = build_nsg_naive(sp.oracle(), r=3, k=6)
        cmp = ComparisonOracle(sp.distance)
        q = (seed * 7) % n
        numeric = [v for _, v in graph_search(DirectResolver(sp.oracle()), g, q, 3)]
        assert comparison_search(cmp, g, q, 3) == numeric

    def test_bound_accelerated_comparisons_agree(self, space, graph):
        resolver = SmartResolver(space.oracle())
        resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
        cmp = resolver.comparison_view()
        numeric = [v for _, v in graph_search(DirectResolver(space.oracle()), graph, 4, 5)]
        assert comparison_search(cmp, graph, 4, 5) == numeric


class TestEntryEdgeCases:
    def test_query_is_entry_point_still_answers(self, space, graph):
        q = graph.entry_point
        found = graph_search(DirectResolver(space.oracle()), graph, q, 3)
        assert len(found) == 3
        assert q not in [v for _, v in found]

    def test_singleton_graph_returns_empty(self):
        g = NavigableGraph(kind="hnsw", entry_point=0, layers=[{0: []}])
        sp = _space(4, 1)
        assert graph_search(DirectResolver(sp.oracle()), g, 0, 2) == []
        assert comparison_search(ComparisonOracle(sp.distance), g, 0, 2) == []
