"""Builder parity: bound-accelerated builds are byte-identical to naive ones."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bounds import TriScheme
from repro.core.resolver import SmartResolver
from repro.graphs import (
    assign_levels,
    build_hnsw,
    build_hnsw_naive,
    build_nsg,
    build_nsg_naive,
)
from repro.spaces.matrix import MatrixSpace, random_metric_matrix

COMMON_SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _smart_resolver(space):
    resolver = SmartResolver(space.oracle())
    resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
    return resolver


@pytest.fixture(scope="module")
def space():
    return MatrixSpace(random_metric_matrix(40, np.random.default_rng(2)), validate=False)


class TestLevelAssignment:
    def test_deterministic_per_seed(self):
        assert assign_levels(50, 8, 3) == assign_levels(50, 8, 3)
        assert assign_levels(50, 8, 3) != assign_levels(50, 8, 4)

    def test_levels_are_non_negative(self):
        assert all(lv >= 0 for lv in assign_levels(200, 4, 0))


class TestByteIdentity:
    def test_hnsw_smart_matches_naive(self, space):
        naive = build_hnsw_naive(space.oracle(), m=4, ef_construction=12, seed=1)
        smart = build_hnsw(_smart_resolver(space), m=4, ef_construction=12, seed=1)
        assert naive.edges_signature() == smart.edges_signature()
        assert naive.entry_point == smart.entry_point

    def test_nsg_smart_matches_naive(self, space):
        naive = build_nsg_naive(space.oracle(), r=4, k=8)
        smart = build_nsg(_smart_resolver(space), r=4, k=8)
        assert naive.edges_signature() == smart.edges_signature()
        assert naive.entry_point == smart.entry_point
        assert naive.params == smart.params

    def test_smart_build_charges_fewer_nsg_calls(self, space):
        naive_oracle = space.oracle()
        build_nsg_naive(naive_oracle, r=4, k=8)
        resolver = _smart_resolver(space)
        build_nsg(resolver, r=4, k=8)
        assert resolver.oracle.calls < naive_oracle.calls

    @given(st.integers(8, 20), st.integers(0, 2**31 - 1))
    @settings(**COMMON_SETTINGS)
    def test_hnsw_identity_on_random_metric_spaces(self, n, seed):
        sp = MatrixSpace(random_metric_matrix(n, np.random.default_rng(seed)), validate=False)
        naive = build_hnsw_naive(sp.oracle(), m=3, ef_construction=8, seed=seed % 97)
        smart = build_hnsw(_smart_resolver(sp), m=3, ef_construction=8, seed=seed % 97)
        assert naive.edges_signature() == smart.edges_signature()

    @given(st.integers(8, 20), st.integers(0, 2**31 - 1))
    @settings(**COMMON_SETTINGS)
    def test_nsg_identity_on_random_metric_spaces(self, n, seed):
        sp = MatrixSpace(random_metric_matrix(n, np.random.default_rng(seed)), validate=False)
        naive = build_nsg_naive(sp.oracle(), r=3, k=6)
        smart = build_nsg(_smart_resolver(sp), r=3, k=6)
        assert naive.edges_signature() == smart.edges_signature()


class TestStructure:
    def test_hnsw_base_layer_indexes_every_node(self, space):
        graph = build_hnsw_naive(space.oracle(), m=4, ef_construction=12, seed=1)
        assert sorted(graph.nodes()) == list(range(space.n))
        assert graph.max_level >= 0
        # Upper layers only ever hold a subset of the one below.
        for upper, lower in zip(graph.layers[1:], graph.layers):
            assert set(upper) <= set(lower)

    def test_nsg_every_node_reachable_from_entry(self, space):
        graph = build_nsg_naive(space.oracle(), r=3, k=6)
        seen, stack = set(), [graph.entry_point]
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            stack.extend(graph.neighbors(u))
        assert seen == set(range(space.n))

    def test_nsg_degree_cap_holds(self, space):
        graph = build_nsg_naive(space.oracle(), r=3, k=6)
        # The connectivity repair may add edges past the cap; out-degree
        # stays within r + repaired total.
        assert all(len(adj) <= 3 + graph.params["repaired_edges"]
                   for adj in graph.layers[0].values())

    def test_subset_build_indexes_only_requested_nodes(self, space):
        subset = [1, 3, 5, 7, 9, 11, 13, 15]
        graph = build_nsg_naive(space.oracle(), r=3, k=5, nodes=subset)
        assert sorted(graph.nodes()) == subset


class TestValidation:
    def test_hnsw_rejects_degenerate_params(self, space):
        with pytest.raises(ValueError):
            build_hnsw_naive(space.oracle(), m=1)
        with pytest.raises(ValueError):
            build_hnsw_naive(space.oracle(), ef_construction=0)
        with pytest.raises(ValueError):
            build_hnsw_naive(space.oracle(), nodes=[])

    def test_nsg_rejects_degenerate_params(self, space):
        with pytest.raises(ValueError):
            build_nsg_naive(space.oracle(), r=0)
        with pytest.raises(ValueError):
            build_nsg_naive(space.oracle(), r=5, k=3)
        with pytest.raises(ValueError):
            build_nsg_naive(space.oracle(), nodes=[])
