"""The comparison-only oracle mode: orderings in, never a number out."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounds import TriScheme
from repro.core.oracle import ComparisonOracle
from repro.core.resolver import SmartResolver
from repro.obs import MetricsRegistry, comparison_call_counter
from repro.spaces.matrix import MatrixSpace, random_metric_matrix


@pytest.fixture
def space():
    return MatrixSpace(random_metric_matrix(12, np.random.default_rng(5)), validate=False)


class TestSources:
    def test_wraps_a_numeric_callable(self, space):
        cmp = ComparisonOracle(space.distance)
        assert cmp.less((0, 1), (0, 1)) is False
        assert cmp.compare((0, 1), (1, 0)) == 0  # symmetric metric
        assert cmp.comparisons == 2

    def test_wraps_a_resolver(self, space):
        resolver = SmartResolver(space.oracle())
        resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
        cmp = ComparisonOracle(resolver)
        truth = space.distance(2, 3) < space.distance(4, 5)
        assert cmp.less((2, 3), (4, 5)) is truth
        assert cmp.comparisons == 1

    def test_rejects_a_non_source(self):
        with pytest.raises(TypeError):
            ComparisonOracle(42)

    def test_self_pair_is_distance_zero(self, space):
        cmp = ComparisonOracle(space.distance)
        # d(i, i) = 0 is strictly below any positive distance.
        assert cmp.less((3, 3), (0, 1)) is True
        assert cmp.compare((3, 3), (7, 7)) == 0


class TestSemantics:
    def test_compare_sign_matches_ground_truth(self, space):
        cmp = ComparisonOracle(space.distance)
        for a, b in [((0, 1), (2, 3)), ((4, 5), (4, 6)), ((1, 2), (1, 2))]:
            da, db = space.distance(*a), space.distance(*b)
            assert cmp.compare(a, b) == (da > db) - (da < db)

    def test_rank_less_breaks_exact_ties_by_id(self, space):
        cmp = ComparisonOracle(space.distance)
        # An exact tie: both pairs are the same distance, ids decide.
        assert cmp.rank_less(2, 5, 5) is False
        da = space.distance(0, 1)
        db = space.distance(0, 2)
        assert cmp.rank_less(0, 1, 2) is (da < db or (da == db and 1 < 2))

    def test_never_exposes_a_magnitude(self, space):
        cmp = ComparisonOracle(space.distance)
        out = [cmp.less((0, 1), (2, 3)), cmp.compare((0, 1), (2, 3)),
               cmp.rank_less(0, 1, 2)]
        assert all(isinstance(v, (bool, int)) and not isinstance(v, float) for v in out)
        assert not hasattr(cmp, "distance")

    def test_counter_counts_every_query(self, space):
        cmp = ComparisonOracle(space.distance)
        cmp.less((0, 1), (2, 3))
        cmp.compare((0, 1), (2, 3))
        cmp.rank_less(0, 1, 2)
        assert cmp.comparisons == 3

    def test_resolver_comparison_view_and_metric(self, space):
        resolver = SmartResolver(space.oracle())
        resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
        cmp = resolver.comparison_view()
        registry = MetricsRegistry()
        comparison_call_counter(registry, cmp)
        cmp.less((0, 1), (2, 3))
        cmp.rank_less(0, 1, 2)
        text = registry.render_prometheus()
        assert "repro_comparison_calls_total 2" in text
