"""Tests for ``repro.graphs`` — navigable-graph construction and search."""
