"""Property-based tests (hypothesis) on the library's core invariants.

These are the paper's load-bearing guarantees:

* every synthesised ground truth is a true metric;
* every bound provider's interval contains the true distance, always;
* every bound-aware predicate agrees with ground truth, always;
* every augmented algorithm's output matches its vanilla run, always.
"""

from __future__ import annotations


import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import knn_graph, knn_graph_brute, kruskal_mst, pam, prim_mst
from repro.bounds import Adm, AdmIncremental, Laesa, Splub, Tlaesa, TriScheme
from repro.core.bounds import Bounds
from repro.core.resolver import SmartResolver
from repro.spaces.matrix import MatrixSpace, metric_closure, random_metric_matrix
from repro.spaces.strings import levenshtein

COMMON_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def metric_instances(draw, min_n=4, max_n=12):
    """A random ground-truth metric plus a subset of resolved pairs."""
    n = draw(st.integers(min_n, max_n))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    matrix = random_metric_matrix(n, rng)
    num_resolved = draw(st.integers(0, n * (n - 1) // 2))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    picker = np.random.default_rng(seed + 1)
    picker.shuffle(pairs)
    return matrix, pairs[:num_resolved]


class TestMetricSynthesis:
    @given(st.integers(3, 14), st.integers(0, 2**31 - 1))
    @settings(**COMMON_SETTINGS)
    def test_random_metric_satisfies_triangle(self, n, seed):
        m = random_metric_matrix(n, np.random.default_rng(seed))
        for k in range(n):
            through = m[:, k][:, None] + m[k, :][None, :]
            assert np.all(m <= through + 1e-9)

    @given(st.integers(3, 10), st.integers(0, 2**31 - 1))
    @settings(**COMMON_SETTINGS)
    def test_closure_is_idempotent(self, n, seed):
        rng = np.random.default_rng(seed)
        raw = rng.uniform(0.05, 1.0, size=(n, n))
        closed = metric_closure(raw)
        assert np.allclose(metric_closure(closed), closed)


class TestBoundSoundness:
    @given(metric_instances())
    @settings(**COMMON_SETTINGS)
    def test_all_providers_contain_truth(self, instance):
        matrix, resolved = instance
        n = matrix.shape[0]
        space = MatrixSpace(matrix, validate=False)
        resolver = SmartResolver(space.oracle())
        for i, j in resolved:
            resolver.distance(i, j)
        cap = float(matrix.max()) or 1.0
        providers = [
            TriScheme(resolver.graph, cap),
            Splub(resolver.graph, cap),
            Adm(resolver.graph, cap),
        ]
        inc_graph = resolver.graph.copy()
        inc = AdmIncremental(inc_graph, cap)
        providers.append(inc)
        for i in range(n):
            for j in range(i + 1, n):
                truth = matrix[i, j]
                for provider in providers:
                    b = provider.bounds(i, j)
                    assert b.lower - 1e-7 <= truth <= b.upper + 1e-7, (
                        provider.name,
                        (i, j),
                    )

    @given(metric_instances(min_n=5, max_n=10))
    @settings(**COMMON_SETTINGS)
    def test_splub_equals_adm_everywhere(self, instance):
        matrix, resolved = instance
        space = MatrixSpace(matrix, validate=False)
        resolver = SmartResolver(space.oracle())
        for i, j in resolved:
            resolver.distance(i, j)
        cap = float(matrix.max()) or 1.0
        splub = Splub(resolver.graph, cap)
        adm = Adm(resolver.graph, cap)
        n = matrix.shape[0]
        for i in range(n):
            for j in range(i + 1, n):
                bs = splub.bounds(i, j)
                ba = adm.bounds(i, j)
                assert bs.lower == pytest.approx(ba.lower, abs=1e-7)
                assert bs.upper == pytest.approx(ba.upper, abs=1e-7)

    @given(metric_instances(min_n=5, max_n=10))
    @settings(**COMMON_SETTINGS)
    def test_landmark_bounds_contain_truth(self, instance):
        matrix, _ = instance
        n = matrix.shape[0]
        space = MatrixSpace(matrix, validate=False)
        cap = float(matrix.max()) or 1.0
        resolver = SmartResolver(space.oracle())
        laesa = Laesa(resolver.graph, cap, num_landmarks=min(3, n))
        resolver.bounder = laesa
        laesa.bootstrap(resolver)
        tlaesa = Tlaesa(resolver.graph, cap)
        tlaesa.adopt(laesa.landmarks, laesa._matrix.copy())
        for i in range(n):
            for j in range(i + 1, n):
                truth = matrix[i, j]
                for provider in (laesa, tlaesa):
                    b = provider.bounds(i, j)
                    assert b.lower - 1e-7 <= truth <= b.upper + 1e-7


class TestPredicateExactness:
    @given(metric_instances(min_n=5, max_n=10), st.integers(0, 10**6))
    @settings(**COMMON_SETTINGS)
    def test_is_at_least_matches_truth(self, instance, seed):
        matrix, resolved = instance
        n = matrix.shape[0]
        space = MatrixSpace(matrix, validate=False)
        resolver = SmartResolver(space.oracle())
        resolver.bounder = TriScheme(resolver.graph, float(matrix.max()) or 1.0)
        for i, j in resolved:
            resolver.distance(i, j)
        rng = np.random.default_rng(seed)
        for _ in range(10):
            i, j = int(rng.integers(n)), int(rng.integers(n))
            if i == j:
                continue
            t = float(rng.uniform(0, matrix.max() or 1.0))
            assert resolver.is_at_least(i, j, t) == (matrix[i, j] >= t)

    @given(metric_instances(min_n=5, max_n=10), st.integers(0, 10**6))
    @settings(**COMMON_SETTINGS)
    def test_less_matches_truth(self, instance, seed):
        matrix, resolved = instance
        n = matrix.shape[0]
        space = MatrixSpace(matrix, validate=False)
        resolver = SmartResolver(space.oracle())
        resolver.bounder = TriScheme(resolver.graph, float(matrix.max()) or 1.0)
        for i, j in resolved:
            resolver.distance(i, j)
        rng = np.random.default_rng(seed)
        for _ in range(10):
            a = (int(rng.integers(n)), int(rng.integers(n)))
            b = (int(rng.integers(n)), int(rng.integers(n)))
            if a[0] == a[1] or b[0] == b[1]:
                continue
            assert resolver.less(a, b) == (matrix[a] < matrix[b])


class TestAlgorithmExactness:
    @given(metric_instances(min_n=5, max_n=11))
    @settings(**COMMON_SETTINGS)
    def test_mst_weight_invariant_under_providers(self, instance):
        matrix, _ = instance
        space = MatrixSpace(matrix, validate=False)
        cap = float(matrix.max()) or 1.0

        def run(provider_cls, algorithm):
            resolver = SmartResolver(space.oracle())
            if provider_cls is not None:
                resolver.bounder = provider_cls(resolver.graph, cap)
            return algorithm(resolver).total_weight

        reference = run(None, prim_mst)
        assert run(TriScheme, prim_mst) == pytest.approx(reference)
        assert run(TriScheme, kruskal_mst) == pytest.approx(reference)
        assert run(Splub, kruskal_mst) == pytest.approx(reference)

    @given(metric_instances(min_n=6, max_n=11), st.integers(1, 3))
    @settings(**COMMON_SETTINGS)
    def test_knng_invariant_under_providers(self, instance, k):
        matrix, _ = instance
        n = matrix.shape[0]
        if k >= n:
            return
        space = MatrixSpace(matrix, validate=False)
        cap = float(matrix.max()) or 1.0

        brute_resolver = SmartResolver(space.oracle())
        brute = knn_graph_brute(brute_resolver, k=k)
        tri_resolver = SmartResolver(space.oracle())
        tri_resolver.bounder = TriScheme(tri_resolver.graph, cap)
        pruned = knn_graph(tri_resolver, k=k)
        for u in range(n):
            assert pruned.neighbor_ids(u) == brute.neighbor_ids(u)

    @given(metric_instances(min_n=7, max_n=11), st.integers(2, 3), st.integers(0, 100))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_pam_invariant_under_providers(self, instance, l, seed):
        matrix, _ = instance
        space = MatrixSpace(matrix, validate=False)
        cap = float(matrix.max()) or 1.0

        vanilla_resolver = SmartResolver(space.oracle())
        vanilla = pam(vanilla_resolver, l=l, seed=seed)
        tri_resolver = SmartResolver(space.oracle())
        tri_resolver.bounder = TriScheme(tri_resolver.graph, cap)
        augmented = pam(tri_resolver, l=l, seed=seed)
        assert augmented.medoids == vanilla.medoids
        assert augmented.cost == pytest.approx(vanilla.cost)


class TestLevenshteinProperties:
    @given(st.text(max_size=25), st.text(max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(st.text(max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(st.text(max_size=15), st.text(max_size=15), st.text(max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(st.text(max_size=20), st.text(max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_length_difference_lower_bound(self, a, b):
        assert levenshtein(a, b) >= abs(len(a) - len(b))


class TestBoundsValueProperties:
    @given(
        st.floats(0, 10, allow_nan=False),
        st.floats(0, 10, allow_nan=False),
        st.floats(0, 10, allow_nan=False),
        st.floats(0, 10, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_intersection_is_commutative_and_tightening(self, l1, u1, l2, u2):
        if u1 < l1 or u2 < l2:
            return
        a, b = Bounds(l1, u1), Bounds(l2, u2)
        try:
            ab = a.intersect(b)
            ba = b.intersect(a)
        except ValueError:
            # Disjoint intervals: intersection undefined both ways.
            with pytest.raises(ValueError):
                b.intersect(a)
            return
        assert ab.lower == ba.lower and ab.upper == ba.upper
        assert ab.lower >= max(a.lower, b.lower) - 1e-12
        assert ab.upper <= min(a.upper, b.upper) + 1e-12
