"""Tests for provider-maintenance dispatch across mutation batches."""

import math

import pytest

from repro.bounds import Aesa, Laesa, Splub, TriScheme
from repro.bounds.sketch import SketchBoundProvider
from repro.core.bounds import IntersectionBounder
from repro.core.exceptions import ConfigurationError
from repro.core.partial_graph import PartialDistanceGraph
from repro.core.resolver import SmartResolver
from repro.dynamic import MUTABLE_PROVIDERS, apply_provider_mutations
from repro.spaces.matrix import MatrixSpace, random_metric_matrix


@pytest.fixture
def space(rng):
    return MatrixSpace(random_metric_matrix(20, rng))


@pytest.fixture
def resolver(space):
    return SmartResolver(space.oracle())


class TestDispatch:
    def test_stateless_providers_are_noops(self, resolver):
        tri = TriScheme(resolver.graph, 10.0)
        assert apply_provider_mutations(tri, [3], [7]) == {}

    def test_unpatchable_provider_rejected(self, resolver):
        aesa = Aesa(resolver.graph, 10.0)
        with pytest.raises(ConfigurationError, match="does not support"):
            apply_provider_mutations(aesa, [3], [7])

    def test_mutable_provider_names_are_buildable(self):
        assert MUTABLE_PROVIDERS == {"none", "tri", "splub", "laesa", "sketch"}

    def test_intersection_fans_out_and_merges(self, space, resolver):
        splub = Splub(resolver.graph, space.diameter_bound())
        tri = TriScheme(resolver.graph, space.diameter_bound())
        both = IntersectionBounder(resolver.graph, [tri, splub])
        # Warm a tree so SPLUB has state to patch.
        resolver.bounder = both
        resolver.distance(0, 1)
        splub.bounds(0, 5)
        counters = apply_provider_mutations(both, [], [0])
        assert counters.get("splub_trees_dropped", 0) >= 1


class TestSplubMaintenance:
    def test_trees_at_mutated_sources_dropped_rest_patched(self, space, resolver):
        splub = Splub(resolver.graph, space.diameter_bound())
        resolver.bounder = splub
        for pair in [(0, 1), (1, 2), (2, 3), (0, 4)]:
            resolver.distance(*pair)
        splub.bounds(0, 9)  # tree sourced at 0
        splub.bounds(2, 9)  # tree sourced at 2
        counters = splub.apply_mutations([], [0])
        assert counters["splub_trees_dropped"] == 1
        assert counters["splub_trees_patched"] >= 1
        # Patched survivor serves a sound bound with the dead id masked.
        bounds = splub.bounds(2, 3)
        assert bounds.upper >= space.distance(2, 3)


class TestLaesaMaintenance:
    def test_insert_refills_columns_via_resolver(self, space, resolver):
        laesa = Laesa(resolver.graph, space.diameter_bound(), num_landmarks=3)
        laesa.bootstrap(resolver)
        # A recycled insert arrives with its graph edges and cached
        # distances purged (the engine does both before maintenance).
        resolver.graph.remove_node(7)
        resolver.graph.revive(7)
        resolver.oracle.forget(7)
        before = resolver.oracle.calls
        counters = laesa.apply_mutations([7], [], resolver=resolver)
        assert counters["landmark_cols_refilled"] == 1
        # One strong call per surviving landmark.
        assert resolver.oracle.calls - before == len(laesa.landmarks)

    def test_insert_without_resolver_rejected(self, space, resolver):
        laesa = Laesa(resolver.graph, space.diameter_bound(), num_landmarks=3)
        laesa.bootstrap(resolver)
        with pytest.raises(ValueError, match="resolver"):
            laesa.apply_mutations([7], [])

    def test_removed_landmark_drops_its_row(self, space, resolver):
        laesa = Laesa(resolver.graph, space.diameter_bound(), num_landmarks=4)
        laesa.bootstrap(resolver)
        victim = laesa.landmarks[0]
        counters = laesa.apply_mutations([], [victim], resolver=resolver)
        assert counters["landmark_rows_dropped"] == 1
        assert victim not in laesa.landmarks

    def test_heavy_drift_reselects_landmarks(self, space, resolver):
        graph = resolver.graph
        laesa = Laesa(graph, space.diameter_bound(), num_landmarks=3)
        laesa.bootstrap(resolver)
        laesa.drift_threshold = 0.1
        removed = [i for i in range(10) if i not in laesa.landmarks][:5]
        for obj in removed:
            graph.remove_node(obj)
        counters = laesa.apply_mutations([], removed, resolver=resolver)
        assert counters["landmark_reselections"] == 1
        assert all(graph.is_alive(lm) for lm in laesa.landmarks)


class TestSketchMaintenance:
    def test_tree_sketch_masks_mutated_columns(self, space, resolver):
        graph = resolver.graph
        for pair in [(0, 1), (1, 2), (2, 3), (3, 4)]:
            resolver.distance(*pair)
        sketch = SketchBoundProvider.from_graph(
            graph, [0, 2], space.diameter_bound()
        )
        counters = sketch.apply_mutations([], [3])
        assert counters["sketch_rows_dropped"] == 0
        assert math.isinf(sketch._matrix[0, 3])

    def test_dead_landmark_row_dropped(self, space, resolver):
        graph = resolver.graph
        resolver.distance(0, 1)
        sketch = SketchBoundProvider.from_graph(
            graph, [0, 2], space.diameter_bound()
        )
        counters = sketch.apply_mutations([], [2])
        assert counters["sketch_rows_dropped"] == 1
        assert sketch.landmarks == [0]
