"""Tests for the standing-query registry and its delta diffs."""

import pytest

from repro.dynamic import SubscriptionRegistry


@pytest.fixture
def registry():
    return SubscriptionRegistry()


class TestRegistry:
    def test_subscribe_assigns_monotonic_ids(self, registry):
        a = registry.subscribe("knn", {"query": 1, "k": 2}, [(0.5, 3)])
        b = registry.subscribe("knng", {"k": 2}, {0: ((0.5, 1),)})
        assert (a.sub_id, b.sub_id) == (1, 2)
        assert registry.active == 2

    def test_unsubscribe_drops(self, registry):
        sub = registry.subscribe("knn", {"query": 1, "k": 2}, [])
        registry.unsubscribe(sub.sub_id)
        assert registry.active == 0
        with pytest.raises(KeyError):
            registry.get(sub.sub_id)

    def test_unknown_kind_rejected(self, registry):
        with pytest.raises(ValueError, match="kind"):
            registry.subscribe("mst", {}, [])


class TestKnnDiff:
    def test_unchanged_result_records_nothing(self, registry):
        sub = registry.subscribe("knn", {"query": 0, "k": 2}, [(0.5, 3)])
        assert registry.record(sub, [(0.5, 3)], epoch=7) is None
        assert sub.seq == 0
        assert registry.deltas(sub.sub_id) == []

    def test_entered_and_left_members(self, registry):
        sub = registry.subscribe(
            "knn", {"query": 0, "k": 2}, [(0.5, 3), (0.7, 4)]
        )
        delta = registry.record(sub, [(0.4, 9), (0.5, 3)], epoch=8)
        assert delta.entered == ((0.4, 9),)
        assert delta.left == (4,)
        assert not delta.reordered
        assert delta.seq == 1 and delta.epoch == 8
        assert sub.result == [(0.4, 9), (0.5, 3)]

    def test_pure_reorder_flagged(self, registry):
        sub = registry.subscribe(
            "knn", {"query": 0, "k": 2}, [(0.5, 3), (0.5, 4)]
        )
        delta = registry.record(sub, [(0.5, 4), (0.5, 3)], epoch=9)
        assert delta.reordered
        assert delta.entered == () and delta.left == ()

    def test_since_filters_history(self, registry):
        sub = registry.subscribe("knn", {"query": 0, "k": 1}, [(0.5, 3)])
        registry.record(sub, [(0.4, 4)], epoch=1)
        registry.record(sub, [(0.3, 5)], epoch=2)
        assert [d.seq for d in registry.deltas(sub.sub_id)] == [1, 2]
        assert [d.seq for d in registry.deltas(sub.sub_id, since=1)] == [2]


class TestKnngDiff:
    def test_changed_rows_enter_vanished_rows_leave(self, registry):
        sub = registry.subscribe(
            "knng",
            {"k": 1},
            {0: ((0.5, 1),), 1: ((0.5, 0),), 2: ((0.9, 0),)},
        )
        delta = registry.record(
            sub, {0: ((0.5, 1),), 1: ((0.2, 3),), 3: ((0.2, 1),)}, epoch=4
        )
        assert delta.left == (2,)
        entered_rows = dict(delta.entered)
        assert set(entered_rows) == {1, 3}  # changed row + new row
        assert entered_rows[1] == ((0.2, 3),)

    def test_result_dict_shapes(self, registry):
        knn = registry.subscribe("knn", {"query": 0, "k": 1}, [(0.5, 3)])
        knng = registry.subscribe("knng", {"k": 1}, {4: ((0.5, 1),)})
        assert knn.result_dict() == {"neighbors": [[0.5, 3]]}
        assert knng.result_dict() == {"rows": {"4": [[0.5, 1]]}}
