"""Tests for the repro.dynamic mutable-object-set subsystem."""
