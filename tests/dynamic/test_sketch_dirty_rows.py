"""Regression tests for the sketch's delta-aware refresh fast path.

The contract under test (satellite of the dynamic subsystem): with
``track_dirty`` enabled, ``refresh_from_graph(dirty_only=True)`` recomputes
exactly the tree rows whose one-step relaxation improved since the last
refresh — untouched rows are *not* recomputed, pinned via the
``rows_recomputed`` counter.
"""

import numpy as np
import pytest

from repro.bounds.sketch import SketchBoundProvider
from repro.core.partial_graph import PartialDistanceGraph


def _line_graph(n=10, edges=((0, 1), (1, 2), (2, 3))):
    """Chain fragment of the |i-j| line metric on ``n`` points."""
    graph = PartialDistanceGraph(n)
    for i, j in edges:
        graph.add_edge(i, j, float(abs(i - j)))
    return graph


@pytest.fixture
def sketch():
    graph = _line_graph()
    provider = SketchBoundProvider.from_graph(graph, [0, 9], max_distance=9.0)
    provider.track_dirty = True
    return provider


class TestDirtyRowFastPath:
    def test_only_improved_rows_recomputed(self, sketch):
        baseline = sketch.rows_recomputed  # from_graph's full build
        # Edge (3,4) extends the chain: it shortens landmark 0's paths
        # (0→…→3→4) but cannot help landmark 9, which has no known edges.
        sketch.graph.add_edge(3, 4, 1.0)
        sketch.notify_resolved(3, 4, 1.0)
        assert sketch._dirty_rows == {0}
        recomputed = sketch.refresh_from_graph(dirty_only=True)
        assert recomputed == 1
        assert sketch.rows_recomputed == baseline + 1

    def test_untouched_row_state_is_preserved(self, sketch):
        row9_before = sketch._matrix[1].copy()
        sketch.graph.add_edge(3, 4, 1.0)
        sketch.notify_resolved(3, 4, 1.0)
        sketch.refresh_from_graph(dirty_only=True)
        # Landmark 9's row was neither marked dirty nor recomputed.
        assert np.array_equal(sketch._matrix[1, :10], row9_before[:10])
        # Landmark 0's row now reflects the extended chain.
        assert sketch._matrix[0, 4] == 4.0

    def test_no_improvement_means_zero_work(self, sketch):
        baseline = sketch.rows_recomputed
        # A worse parallel path improves no row: 0→1 already costs 1.
        sketch.graph.add_edge(0, 2, 2.0)
        sketch.notify_resolved(0, 2, 2.0)
        assert sketch._dirty_rows == set()
        assert sketch.refresh_from_graph(dirty_only=True) == 0
        assert sketch.rows_recomputed == baseline

    def test_one_step_relaxation_applied_eagerly(self, sketch):
        sketch.graph.add_edge(3, 4, 1.0)
        sketch.notify_resolved(3, 4, 1.0)
        # Even before the refresh, the relaxed cell serves a tighter upper
        # bound (one-step relaxations of a sound row stay sound).
        assert sketch._matrix[0, 4] == 4.0

    def test_full_refresh_clears_dirty_state(self, sketch):
        sketch.graph.add_edge(3, 4, 1.0)
        sketch.notify_resolved(3, 4, 1.0)
        sketch.refresh_from_graph()  # full rebuild, not dirty-only
        assert sketch._dirty_rows == set()
        assert sketch.refresh_from_graph(dirty_only=True) == 0

    def test_new_landmark_set_forces_full_rebuild(self, sketch):
        sketch.graph.add_edge(3, 4, 1.0)
        sketch.notify_resolved(3, 4, 1.0)
        recomputed = sketch.refresh_from_graph([0, 5], dirty_only=True)
        assert recomputed == 2  # incremental state invalid for new landmarks

    def test_exact_sketch_never_marks_dirty(self):
        graph = _line_graph()
        provider = SketchBoundProvider(graph, 9.0, num_landmarks=2)
        provider.adopt([0, 9], np.abs(np.subtract.outer([0, 9], np.arange(10))).astype(float))
        provider.track_dirty = True
        provider.notify_resolved(0, 4, 4.0)
        assert provider._dirty_rows == set()
