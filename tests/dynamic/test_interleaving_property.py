"""Property test: arbitrary mutation/query interleavings stay consistent.

The load-bearing guarantee of the dynamic subsystem: after ANY interleaving
of inserts, removes and queries, a standing kNN subscription holds exactly
what a fresh engine computes over the surviving object set.  Hypothesis
drives random interleavings; the engine is compared against an
independently built reference after every program.
"""

from __future__ import annotations

import numpy as np
import pytest

pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.resolver import SmartResolver
from repro.dynamic import DynamicObjectSet, Insert, Mutation, Remove
from repro.service import ProximityEngine
from repro.spaces.matrix import MatrixSpace, random_metric_matrix

N_UNIVERSE = 16
N_INITIAL = 10

COMMON_SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def programs(draw):
    """A seed plus a short program of insert/remove/query steps."""
    seed = draw(st.integers(0, 2**31 - 1))
    steps = draw(
        st.lists(
            st.sampled_from(["insert", "remove", "query", "batch"]),
            min_size=1,
            max_size=8,
        )
    )
    choices = draw(
        st.lists(st.integers(0, 2**31 - 1), min_size=len(steps), max_size=len(steps))
    )
    return seed, list(zip(steps, choices))


def _fresh_knn(objects, query, k):
    """Reference kNN computed by an independent resolver on the live set."""
    resolver = SmartResolver(objects.oracle())
    pool = [c for c in objects.alive_ids() if c != query]
    return [tuple(e) for e in resolver.knearest(query, pool, k)]


class TestInterleavings:
    @given(programs())
    @settings(**COMMON_SETTINGS)
    def test_standing_knn_equals_fresh_engine(self, program):
        seed, steps = program
        rng = np.random.default_rng(seed)
        space = MatrixSpace(random_metric_matrix(N_UNIVERSE, rng))
        objects = DynamicObjectSet.wrap(space, initial=N_INITIAL)
        reserve = list(range(N_INITIAL, N_UNIVERSE))
        engine = ProximityEngine.for_space(objects, provider="tri", job_workers=1)
        try:
            k = 3
            query = 0  # never removed below, so the subscription survives
            sub = engine.subscribe_knn(query, k)
            for step, choice in steps:
                alive = objects.alive_ids()
                removable = [u for u in alive if u != query]
                batch: list[Mutation] = []
                if step in ("insert", "batch") and reserve:
                    batch.append(Insert(reserve.pop(0)))
                if step in ("remove", "batch") and len(removable) > k + 1:
                    batch.append(Remove(removable[choice % len(removable)]))
                if step == "query":
                    probe = alive[choice % len(alive)]
                    result = engine.submit_job("knn", query=probe, k=2).result(30)
                    assert result.ok
                if batch:
                    engine.apply_mutations(batch)
                standing = [tuple(e) for e in engine.subscriptions.get(sub.sub_id).result]
                assert standing == _fresh_knn(objects, query, k)
        finally:
            engine.close(snapshot=False)

    @given(programs())
    @settings(**COMMON_SETTINGS)
    def test_deltas_replay_to_current_result(self, program):
        """Applying every delta to the initial result rebuilds the final one."""
        seed, steps = program
        rng = np.random.default_rng(seed)
        space = MatrixSpace(random_metric_matrix(N_UNIVERSE, rng))
        objects = DynamicObjectSet.wrap(space, initial=N_INITIAL)
        reserve = list(range(N_INITIAL, N_UNIVERSE))
        engine = ProximityEngine.for_space(objects, provider="tri", job_workers=1)
        try:
            sub = engine.subscribe_knn(0, 3)
            state = {obj for _, obj in sub.result}
            for step, choice in steps:
                removable = [u for u in objects.alive_ids() if u != 0]
                batch: list[Mutation] = []
                if step in ("insert", "batch") and reserve:
                    batch.append(Insert(reserve.pop(0)))
                if step in ("remove", "batch") and len(removable) > 4:
                    batch.append(Remove(removable[choice % len(removable)]))
                if batch:
                    engine.apply_mutations(batch)
            for delta in engine.subscription_deltas(sub.sub_id):
                state -= set(delta.left)
                state |= {obj for _, obj in delta.entered}
            final = engine.subscriptions.get(sub.sub_id).result
            assert state == {obj for _, obj in final}
        finally:
            engine.close(snapshot=False)
