"""Unit tests for DynamicObjectSet: churn, id recycling, fingerprints."""

import math

import pytest

from repro.core.exceptions import InvalidObjectError
from repro.dynamic import DynamicObjectSet
from repro.spaces.matrix import MatrixSpace, random_metric_matrix


def _points_set():
    points = [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (2.0, 2.0)]
    return DynamicObjectSet(
        points, lambda a, b: math.dist(a, b), diameter=10.0
    )


class TestLifecycle:
    def test_insert_appends_new_slot(self):
        objects = _points_set()
        obj_id = objects.insert((3.0, 3.0))
        assert obj_id == 4
        assert objects.n == 5
        assert objects.num_alive == 5
        assert objects.payload(obj_id) == (3.0, 3.0)

    def test_remove_tombstones_without_shifting_ids(self):
        objects = _points_set()
        objects.remove(1)
        assert objects.n == 4  # slot count unchanged
        assert objects.num_alive == 3
        assert not objects.is_alive(1)
        assert objects.alive_ids() == [0, 2, 3]
        # Survivors keep their payloads under the same ids.
        assert objects.payload(3) == (2.0, 2.0)

    def test_insert_recycles_lowest_free_slot(self):
        objects = _points_set()
        objects.remove(2)
        objects.remove(0)
        assert objects.insert((9.0, 9.0)) == 0  # min-heap: lowest slot first
        assert objects.insert((8.0, 8.0)) == 2
        assert objects.insert((7.0, 7.0)) == 4  # heap drained: grow
        assert objects.num_alive == 5

    def test_recycled_slot_bumps_generation(self):
        objects = _points_set()
        gen = objects.generation(1)
        objects.remove(1)
        assert objects.insert((5.0, 5.0)) == 1
        assert objects.generation(1) == gen + 1

    def test_dead_object_access_raises(self):
        objects = _points_set()
        objects.remove(3)
        with pytest.raises(InvalidObjectError):
            objects.distance(0, 3)
        with pytest.raises(InvalidObjectError):
            objects.payload(3)
        with pytest.raises(InvalidObjectError):
            objects.remove(3)

    def test_mutation_count_tracks_churn(self):
        objects = _points_set()
        assert objects.mutation_count == 0
        objects.remove(0)
        objects.insert((4.0, 4.0))
        assert objects.mutation_count == 2


class TestFingerprint:
    def test_fingerprint_changes_on_mutation(self):
        objects = _points_set()
        before = objects.fingerprint()
        objects.remove(1)
        after = objects.fingerprint()
        assert before != after
        assert after.startswith("dynamic:")

    def test_fingerprint_stable_without_mutation(self):
        objects = _points_set()
        assert objects.fingerprint() == objects.fingerprint()


class TestWrap:
    def test_wrap_exposes_frozen_space_distances(self, rng):
        space = MatrixSpace(random_metric_matrix(10, rng))
        objects = DynamicObjectSet.wrap(space)
        assert objects.n == 10
        assert objects.distance(2, 7) == space.distance(2, 7)

    def test_wrap_initial_keeps_a_reserve(self, rng):
        space = MatrixSpace(random_metric_matrix(10, rng))
        objects = DynamicObjectSet.wrap(space, initial=6)
        assert objects.num_alive == 6
        # Reserve ids insert as payloads later.
        obj_id = objects.insert(7)
        assert objects.distance(obj_id, 0) == space.distance(7, 0)

    def test_wrap_initial_out_of_range_rejected(self, rng):
        space = MatrixSpace(random_metric_matrix(5, rng))
        with pytest.raises(ValueError):
            DynamicObjectSet.wrap(space, initial=0)
        with pytest.raises(ValueError):
            DynamicObjectSet.wrap(space, initial=6)
