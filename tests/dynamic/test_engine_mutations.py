"""Engine-level tests: atomic mutation batches and standing queries."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.resolver import SmartResolver
from repro.dynamic import DynamicObjectSet, Insert, Remove, churn_batch
from repro.service import ProximityEngine
from repro.spaces.matrix import MatrixSpace, random_metric_matrix


@pytest.fixture
def space(rng):
    return MatrixSpace(random_metric_matrix(30, rng))


@pytest.fixture
def objects(space):
    # 24 live ids; 24..29 form the insertable reserve.
    return DynamicObjectSet.wrap(space, initial=24)


@pytest.fixture
def engine(objects):
    eng = ProximityEngine.for_space(objects, provider="tri", job_workers=1)
    yield eng
    eng.close(snapshot=False)


def _fresh_knng(objects, k):
    """The standing result an engine built cold on the live set would hold.

    ``knearest`` is exact, so the reference rows are provider-independent.
    """
    resolver = SmartResolver(objects.oracle())
    alive = objects.alive_ids()
    rows = {}
    for u in alive:
        pool = [c for c in alive if c != u]
        rows[u] = tuple(tuple(e) for e in resolver.knearest(u, pool, k))
    return rows


class TestApplyMutations:
    def test_batch_accounting(self, engine, objects):
        result = engine.apply_mutations([Remove(3), Insert(24)])
        assert result.removed_ids == [3]
        assert result.inserted_ids == [3]  # slot 3 recycled in-batch
        assert result.epoch == engine.graph.epoch
        assert objects.payload(3) == 24
        assert engine.graph.mutated

    def test_empty_batch_is_a_noop(self, engine):
        epoch = engine.graph.epoch
        result = engine.apply_mutations([])
        assert result.epoch == epoch
        assert not engine.graph.mutated

    def test_immutable_space_rejected(self, space):
        eng = ProximityEngine.for_space(space, provider="tri", job_workers=1)
        try:
            with pytest.raises(ConfigurationError, match="mutable space"):
                eng.apply_mutations([Remove(0)])
        finally:
            eng.close(snapshot=False)

    def test_unpatchable_provider_rejected(self, objects):
        eng = ProximityEngine.for_space(objects, provider="aesa", job_workers=1)
        try:
            with pytest.raises(ConfigurationError, match="does not support"):
                eng.apply_mutations([Remove(0)])
        finally:
            eng.close(snapshot=False)

    def test_removed_id_rejected_in_queries(self, engine):
        engine.apply_mutations([Remove(5)])
        with pytest.raises(ValueError, match="removed"):
            engine.submit_job("knn", query=5, k=3)

    def test_full_scan_kinds_rejected_after_mutation(self, engine):
        engine.apply_mutations([Remove(5)])
        for kind in ("medoid", "knng", "mst"):
            job = engine.submit_job(kind, **({"k": 3} if kind == "knng" else
                                             {"l": 2, "seed": 0} if kind == "medoid"
                                             else {}))
            result = job.result(30)
            assert not result.ok
            assert "mutated" in result.error

    def test_point_queries_skip_tombstones(self, engine, space):
        engine.apply_mutations([Remove(5)])
        result = engine.submit_job("knn", query=0, k=23).result(30)
        assert result.ok
        assert all(obj != 5 for _, obj in result.value)

    def test_oracle_cache_purged_for_recycled_id(self, engine, objects):
        engine.submit_job("knn", query=3, k=5).result(30)  # warm edges at 3
        engine.apply_mutations([Remove(3), Insert(24)])
        # Slot 3 now holds payload 24; a query through it must resolve
        # payload-24 distances, not the dead incarnation's.
        result = engine.submit_job("knn", query=3, k=3).result(30)
        assert result.ok
        d, obj = result.value[0]
        assert d == pytest.approx(objects.distance(3, obj))


class TestWeakTierRejection:
    def test_weak_engine_rejects_mutations(self, rng):
        from repro.spaces.vector import EuclideanSpace

        pts = rng.uniform(0, 1, size=(20, 3))
        space = EuclideanSpace(pts)
        dyn = DynamicObjectSet.wrap(space)
        dyn.weak_oracle = space.weak_oracle  # expose the native weak tier
        eng = ProximityEngine.for_space(
            dyn, provider="tri", job_workers=1, weak_oracle=True
        )
        try:
            with pytest.raises(ConfigurationError, match="weak"):
                eng.apply_mutations([Remove(0)])
        finally:
            eng.close(snapshot=False)


@pytest.mark.parametrize("provider", ["tri", "splub", "laesa", "sketch"])
class TestStandingQueries:
    def test_knng_tracks_churn_exactly(self, space, provider):
        objects = DynamicObjectSet.wrap(space, initial=24)
        engine = ProximityEngine.for_space(
            objects, provider=provider, job_workers=1
        )
        try:
            sub = engine.subscribe_knng(3)
            for batch_no in range(3):
                batch = churn_batch(objects, fraction=0.2, seed=batch_no)
                engine.apply_mutations(batch)
            standing = engine.subscriptions.get(sub.sub_id).result
            assert standing == _fresh_knng(objects, 3)
        finally:
            engine.close(snapshot=False)

    def test_knn_member_removal_recomputes(self, space, provider):
        objects = DynamicObjectSet.wrap(space, initial=24)
        engine = ProximityEngine.for_space(
            objects, provider=provider, job_workers=1
        )
        try:
            sub = engine.subscribe_knn(0, 3)
            victim = sub.result[0][1]
            engine.apply_mutations([Remove(victim)])
            refreshed = engine.subscriptions.get(sub.sub_id).result
            assert all(obj != victim for _, obj in refreshed)
            deltas = engine.subscription_deltas(sub.sub_id)
            assert deltas and victim in deltas[-1].left
        finally:
            engine.close(snapshot=False)


class TestBoundsFirstRefresh:
    def test_far_insert_costs_no_strong_calls_for_standing_knn(self, rng):
        from repro.spaces.vector import EuclideanSpace

        pts = rng.uniform(0, 1, size=(20, 2)).tolist()
        pts.append([100.0, 100.0])  # reserve payload, far from everything
        space = EuclideanSpace(pts)
        objects = DynamicObjectSet.wrap(space, initial=20)
        engine = ProximityEngine.for_space(
            objects, provider="laesa", job_workers=1
        )
        try:
            sub = engine.subscribe_knn(0, 3)
            result = engine.apply_mutations([Insert(20)])
            # LAESA refills the new column (L calls) but the standing query
            # itself is screened bounds-first: the far insert's lower bound
            # clears the kth distance, so no extra strong resolutions.
            refill = result.invalidation.get("landmark_cols_refilled", 0)
            assert refill == 1
            assert result.strong_calls <= len(engine.bounder.landmarks)
            refreshed = engine.subscriptions.get(sub.sub_id).result
            assert refreshed == sub.result  # unchanged neighbours
            assert engine.subscription_deltas(sub.sub_id) == []
        finally:
            engine.close(snapshot=False)


class TestQueryRemovalEndsSubscription:
    def test_dead_query_empties_result(self, engine):
        sub = engine.subscribe_knn(2, 3)
        engine.apply_mutations([Remove(2)])
        assert engine.subscriptions.get(sub.sub_id).result == []
        deltas = engine.subscription_deltas(sub.sub_id)
        assert deltas and deltas[-1].left


class TestMetrics:
    def test_mutation_counters_exported(self, engine):
        engine.apply_mutations([Remove(1), Insert(25)])
        page = engine.registry.render_prometheus()
        assert 'repro_mutations_total{kind="remove"} 1' in page
        assert 'repro_mutations_total{kind="insert"} 1' in page
        assert "repro_subscription_delta_size" in page

    def test_stats_report_mutations_and_subscriptions(self, engine):
        engine.subscribe_knng(3)
        engine.apply_mutations([Remove(1)])
        stats = engine.snapshot_stats()
        assert stats.mutations_applied == 1
        assert stats.subscriptions_active == 1
