"""Snapshot → mutate → snapshot → restore round-trip for dynamic engines.

The satellite contract: fingerprints change when the object set mutates,
and restoring the post-mutation snapshot into a fresh engine (whose object
set replayed the same mutations) reproduces the mutated graph exactly —
tombstones, epochs and resolved edges included.
"""

import pytest

from repro.core import SnapshotMismatchError
from repro.core.persistence import load_archive
from repro.dynamic import DynamicObjectSet, Insert, Remove
from repro.service import ProximityEngine
from repro.spaces.matrix import MatrixSpace, random_metric_matrix

BATCH = [Remove(2), Remove(7), Insert(20), Insert(21), Insert(22)]


@pytest.fixture
def space(rng):
    return MatrixSpace(random_metric_matrix(24, rng))


def _dyn(space):
    return DynamicObjectSet.wrap(space, initial=20)


def _replayed(space):
    """A fresh object set with the same mutations applied outside an engine."""
    objects = _dyn(space)
    for mut in BATCH:
        if mut.kind == "remove":
            objects.remove(mut.obj_id)
        else:
            objects.insert(mut.payload)
    return objects


class TestRoundTrip:
    def test_fingerprint_changes_on_mutation(self, space, tmp_path):
        objects = _dyn(space)
        engine = ProximityEngine.for_space(objects, provider="tri", job_workers=1)
        try:
            before = engine.current_fingerprint()
            engine.snapshot(str(tmp_path / "pre.npz"))
            engine.apply_mutations(BATCH)
            after = engine.current_fingerprint()
            assert before != after
            engine.snapshot(str(tmp_path / "post.npz"))
            pre, post = (
                load_archive(str(tmp_path / name)) for name in ("pre.npz", "post.npz")
            )
            assert pre.fingerprint == before and pre.version == 2
            assert post.fingerprint == after and post.version == 3
        finally:
            engine.close(snapshot=False)

    def test_restore_replays_identical_post_mutation_graph(self, space, tmp_path):
        objects = _dyn(space)
        engine = ProximityEngine.for_space(objects, provider="tri", job_workers=1)
        path = str(tmp_path / "post.npz")
        try:
            engine.submit_job("knn", query=0, k=5).result(30)  # warm edges
            engine.apply_mutations(BATCH)
            engine.submit_job("knn", query=1, k=5).result(30)  # post-churn edges
            engine.snapshot(path)
            original = engine.graph
            restored_engine = ProximityEngine.for_space(
                _replayed(space),
                provider="tri",
                job_workers=1,
                restore_from=path,
            )
            try:
                restored = restored_engine.graph
                assert restored.n == original.n
                assert restored.mutated
                assert restored.epoch == original.epoch
                for u in range(original.n):
                    assert restored.is_alive(u) == original.is_alive(u)
                    assert restored.node_epoch(u) == original.node_epoch(u)
                assert sorted(restored.edges()) == sorted(original.edges())
            finally:
                restored_engine.close(snapshot=False)
        finally:
            engine.close(snapshot=False)

    def test_restore_into_unreplayed_set_is_rejected(self, space, tmp_path):
        objects = _dyn(space)
        engine = ProximityEngine.for_space(objects, provider="tri", job_workers=1)
        path = str(tmp_path / "post.npz")
        try:
            engine.apply_mutations(BATCH)
            engine.snapshot(path)
        finally:
            engine.close(snapshot=False)
        # A fresh set that never replayed the churn has a different
        # fingerprint — the snapshot must be refused, not silently merged.
        with pytest.raises(SnapshotMismatchError):
            ProximityEngine.for_space(
                _dyn(space), provider="tri", job_workers=1, restore_from=path
            ).close(snapshot=False)

    def test_mutated_snapshot_refused_by_warm_engine(self, space, tmp_path):
        objects = _dyn(space)
        engine = ProximityEngine.for_space(objects, provider="tri", job_workers=1)
        path = str(tmp_path / "post.npz")
        try:
            engine.apply_mutations(BATCH)
            engine.snapshot(path)
            with pytest.raises(SnapshotMismatchError, match="pristine"):
                engine.restore(path)  # engine already mutated: not pristine
        finally:
            engine.close(snapshot=False)
