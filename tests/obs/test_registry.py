"""Unit tests for the thread-safe metrics registry."""

import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    BOUND_GAP_BUCKETS,
    LATENCY_BUCKETS_S,
    CollectingSink,
    JsonlSink,
    MetricsRegistry,
    MetricsSink,
    registry_totals,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("calls_total", "help")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_float_increments(self, registry):
        c = registry.counter("seconds_total")
        c.inc(0.25)
        c.inc(0.5)
        assert c.value == pytest.approx(0.75)

    def test_negative_increment_rejected(self, registry):
        c = registry.counter("calls_total")
        with pytest.raises(ValueError, match="only increase"):
            c.inc(-1)

    def test_idempotent_accessor_returns_same_family(self, registry):
        a = registry.counter("calls_total")
        b = registry.counter("calls_total")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_kind_conflict_raises(self, registry):
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")

    def test_callback_counter_reads_live(self, registry):
        box = {"calls": 3}
        c = registry.counter("calls_total", fn=lambda: box["calls"])
        assert c.value == 3
        box["calls"] = 9
        assert c.value == 9
        with pytest.raises(RuntimeError, match="callback"):
            c.inc()

    def test_second_callback_rejected(self, registry):
        registry.counter("calls_total", fn=lambda: 1)
        with pytest.raises(ValueError, match="callback"):
            registry.counter("calls_total", fn=lambda: 2)

    def test_invalid_metric_name(self, registry):
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad name")


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7

    def test_callback_gauge(self, registry):
        items = [1, 2, 3]
        g = registry.gauge("depth", fn=lambda: len(items))
        assert g.value == 3
        items.pop()
        assert g.value == 2


class TestLabels:
    def test_labeled_children_are_independent(self, registry):
        fam = registry.counter("jobs_total", labelnames=("status",))
        fam.labels(status="done").inc(3)
        fam.labels(status="failed").inc()
        assert fam.labels(status="done").value == 3
        assert fam.labels(status="failed").value == 1

    def test_wrong_labelnames_raise(self, registry):
        fam = registry.counter("jobs_total", labelnames=("status",))
        with pytest.raises(ValueError, match="takes labels"):
            fam.labels(state="done")

    def test_unlabeled_proxy_on_labeled_family_raises(self, registry):
        fam = registry.counter("jobs_total", labelnames=("status",))
        with pytest.raises(ValueError, match="labeled"):
            fam.inc()

    def test_le_label_reserved(self, registry):
        with pytest.raises(ValueError, match="invalid label"):
            registry.histogram("h", labelnames=("le",))

    def test_label_value_escaping(self, registry):
        fam = registry.counter("jobs_total", labelnames=("label",))
        fam.labels(label='say "hi"\nnow').inc()
        text = registry.render_prometheus()
        assert 'label="say \\"hi\\"\\nnow"' in text


class TestHistogram:
    def test_bucketing_is_cumulative(self, registry):
        h = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.cumulative_counts() == [
            (0.1, 1),
            (1.0, 3),
            (10.0, 4),
            (math.inf, 5),
        ]
        assert h.count == 5
        assert h.sum == pytest.approx(56.05)

    def test_upper_bound_inclusive(self, registry):
        h = registry.histogram("lat", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h.cumulative_counts()[0] == (1.0, 1)

    def test_nonfinite_counted_but_not_summed(self, registry):
        h = registry.histogram("gap", buckets=BOUND_GAP_BUCKETS)
        h.observe(math.inf)
        h.observe(0.5)
        assert h.count == 2
        assert h.sum == pytest.approx(0.5)
        assert h.cumulative_counts()[-1] == (math.inf, 2)

    def test_duplicate_buckets_rejected(self, registry):
        with pytest.raises(ValueError, match="distinct"):
            registry.histogram("h", buckets=(1.0, 1.0))

    def test_conflicting_buckets_rejected(self, registry):
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="different buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.floats(
                min_value=0.0,
                max_value=100.0,
                allow_nan=False,
                allow_infinity=False,
            ),
            max_size=80,
        )
    )
    def test_bucket_monotonicity_under_hypothesis(self, values):
        """Cumulative counts never decrease, end at count, sum is exact."""
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=LATENCY_BUCKETS_S)
        for v in values:
            h.observe(v)
        rows = h.cumulative_counts()
        counts = [c for _, c in rows]
        assert counts == sorted(counts)
        assert all(0 <= c <= len(values) for c in counts)
        assert rows[-1] == (math.inf, len(values))
        assert h.sum == pytest.approx(math.fsum(values))
        # every bucket count equals a direct recount at that threshold
        for bound, cumulative in rows[:-1]:
            assert cumulative == sum(1 for v in values if v <= bound)


class TestExposition:
    def test_render_prometheus_shape(self, registry):
        c = registry.counter("calls_total", "Total calls.")
        c.inc(2)
        registry.gauge("depth", "Queue depth.").set(1.5)
        h = registry.histogram("lat", buckets=(0.5,), help_text="Latency.")
        h.observe(0.25)
        text = registry.render_prometheus()
        assert "# HELP calls_total Total calls." in text
        assert "# TYPE calls_total counter" in text
        assert "calls_total 2" in text
        assert "depth 1.5" in text
        assert 'lat_bucket{le="0.5"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 0.25" in text
        assert "lat_count 1" in text
        assert text.endswith("\n")

    def test_snapshot_flattens_samples(self, registry):
        fam = registry.counter("jobs_total", labelnames=("status",))
        fam.labels(status="done").inc(4)
        registry.counter("calls_total").inc()
        snap = registry.snapshot()
        assert snap['jobs_total{status="done"}'] == 4
        assert snap["calls_total"] == 1

    def test_registry_totals_sums_label_sets(self, registry):
        fam = registry.counter("jobs_total", labelnames=("status",))
        fam.labels(status="done").inc(4)
        fam.labels(status="failed").inc(2)
        assert registry_totals(registry.snapshot(), "jobs_total") == 6


class TestConcurrency:
    def test_threaded_increments_are_exact(self, registry):
        """N threads × M increments land exactly — no lost updates."""
        c = registry.counter("calls_total")
        fam = registry.counter("jobs_total", labelnames=("status",))
        h = registry.histogram("lat", buckets=(0.5, 1.0))
        threads, per_thread = 8, 500

        def work(tid):
            child = fam.labels(status=f"s{tid % 2}")
            for k in range(per_thread):
                c.inc()
                child.inc()
                h.observe((k % 3) * 0.4)

        pool = [threading.Thread(target=work, args=(t,)) for t in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        total = threads * per_thread
        assert c.value == total
        assert registry_totals(registry.snapshot(), "jobs_total") == total
        assert h.count == total
        rows = h.cumulative_counts()
        assert rows[-1][1] == total
        counts = [n for _, n in rows]
        assert counts == sorted(counts)


class TestSinks:
    def test_collecting_sink_is_a_metrics_sink(self):
        sink = CollectingSink()
        assert isinstance(sink, MetricsSink)
        sink.export({"a": 1.0})
        sink.export({"a": 2.0})
        assert sink.last == {"a": 2.0}
        assert len(sink.snapshots) == 2

    def test_jsonl_sink_appends_lines(self, tmp_path):
        import json

        path = tmp_path / "metrics.jsonl"
        sink = JsonlSink(path)
        sink.export({"a": 1.0})
        sink.export({"b": 2.0})
        lines = path.read_text().strip().splitlines()
        assert [json.loads(line) for line in lines] == [{"a": 1.0}, {"b": 2.0}]
