"""Tests for span-based tracing: nesting, thread-locality, timing."""

import threading

import pytest

from repro.obs import MetricsRegistry, SpanTracer


class TestNesting:
    def test_default_root(self):
        tracer = SpanTracer()
        assert tracer.current == "default"
        assert tracer.depth == 0

    def test_custom_root(self):
        tracer = SpanTracer(root="engine")
        assert tracer.current == "engine"
        assert tracer.path() == "engine"

    def test_spans_nest_and_unwind(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            assert tracer.current == "outer"
            assert tracer.depth == 1
            with tracer.span("inner"):
                assert tracer.current == "inner"
                assert tracer.depth == 2
                assert tracer.path() == "outer/inner"
            assert tracer.current == "outer"
        assert tracer.current == "default"
        assert tracer.depth == 0

    def test_span_unwinds_on_exception(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("outer"):
                raise RuntimeError("boom")
        assert tracer.current == "default"

    def test_pop_at_root_raises(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError, match="without a matching push"):
            tracer.pop()

    def test_push_pop_round_trip(self):
        tracer = SpanTracer()
        tracer.push("phase")
        assert tracer.current == "phase"
        assert tracer.pop() == "phase"
        assert tracer.current == "default"

    def test_reset_clears_stack(self):
        tracer = SpanTracer()
        tracer.push("a")
        tracer.push("b")
        tracer.reset()
        assert tracer.current == "default"
        assert tracer.depth == 0


class TestThreadLocality:
    def test_stacks_do_not_interleave_across_threads(self):
        """Each thread sees only its own spans — the fix over the old
        engine-global phase stack, which mislabeled concurrent workers."""
        tracer = SpanTracer(root="engine")
        barrier = threading.Barrier(2)
        seen = {}

        def work(label):
            with tracer.span(label):
                barrier.wait(timeout=10)  # both threads inside their span
                seen[label] = (tracer.current, tracer.depth)
                barrier.wait(timeout=10)

        threads = [threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen == {"t0": ("t0", 1), "t1": ("t1", 1)}
        # the spawning thread was never inside any span
        assert tracer.current == "engine"

    def test_fresh_thread_starts_at_root(self):
        tracer = SpanTracer()
        tracer.push("main-only")
        result = {}

        def probe():
            result["current"] = tracer.current
            result["depth"] = tracer.depth

        t = threading.Thread(target=probe)
        t.start()
        t.join()
        assert result == {"current": "default", "depth": 0}
        tracer.pop()


class TestTiming:
    def test_durations_land_in_labeled_histogram(self):
        registry = MetricsRegistry()
        tracer = SpanTracer(registry=registry)
        with tracer.span("bounds"):
            pass
        with tracer.span("bounds"):
            pass
        with tracer.span("oracle"):
            pass
        hist = registry.get("repro_span_seconds")
        assert hist.labels(span="bounds").count == 2
        assert hist.labels(span="oracle").count == 1
        assert hist.labels(span="bounds").sum >= 0.0

    def test_no_registry_means_no_histogram(self):
        tracer = SpanTracer()
        with tracer.span("bounds"):
            pass
        assert tracer._hist is None

    def test_nested_spans_each_record_once(self):
        registry = MetricsRegistry()
        tracer = SpanTracer(registry=registry)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        hist = registry.get("repro_span_seconds")
        assert hist.labels(span="outer").count == 1
        assert hist.labels(span="inner").count == 1
