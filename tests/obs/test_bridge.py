"""Tests for the ResolverStats <-> registry bridge."""

import pytest

from repro.core import ResolverStats
from repro.obs import (
    RESOLVER_METRICS,
    MetricsRegistry,
    oracle_call_counter,
    publish_resolver_stats,
    resolver_stats_view,
)


def make_stats(**overrides):
    stats = ResolverStats(
        decided_by_bounds=7,
        decided_by_oracle=3,
        bound_queries=10,
        resolutions=5,
        oracle_resolutions=3,
        cached_resolutions=2,
        batched_resolutions=1,
        bound_time_s=0.125,
        bound_cache_hits=4,
        vectorized_batches=2,
        dijkstra_runs=6,
    )
    for name, value in overrides.items():
        setattr(stats, name, value)
    return stats


class TestPublish:
    def test_first_publish_lands_absolute_values(self):
        registry = MetricsRegistry()
        publish_resolver_stats(registry, make_stats())
        view = resolver_stats_view(registry)
        assert view == make_stats()

    def test_delta_publish_never_double_counts(self):
        registry = MetricsRegistry()
        stats = make_stats()
        baseline = publish_resolver_stats(registry, stats)
        # publishing the unchanged stats again with the baseline is a no-op
        baseline = publish_resolver_stats(registry, stats, baseline)
        assert resolver_stats_view(registry) == make_stats()
        # new activity adds only the delta
        stats.decided_by_bounds += 5
        stats.bound_time_s += 0.5
        publish_resolver_stats(registry, stats, baseline)
        view = resolver_stats_view(registry)
        assert view.decided_by_bounds == 12
        assert view.bound_time_s == pytest.approx(0.625)
        assert view.decided_by_oracle == 3

    def test_baseline_is_an_independent_copy(self):
        registry = MetricsRegistry()
        stats = make_stats()
        baseline = publish_resolver_stats(registry, stats)
        stats.resolutions += 9
        assert baseline.resolutions == 5

    def test_publish_accumulates_across_disjoint_jobs(self):
        """Per-job absolute stats ARE the delta — the engine publish path."""
        registry = MetricsRegistry()
        publish_resolver_stats(registry, make_stats())
        publish_resolver_stats(registry, make_stats())
        view = resolver_stats_view(registry)
        assert view.decided_by_bounds == 14
        assert view.resolutions == 10

    def test_callback_backed_families_are_skipped(self):
        """A live source already owns dijkstra_runs; publishing must not
        double-write it."""
        registry = MetricsRegistry()
        runs = {"n": 100}
        registry.counter(
            "repro_resolver_dijkstra_runs_total", fn=lambda: runs["n"]
        )
        publish_resolver_stats(registry, make_stats(dijkstra_runs=6))
        view = resolver_stats_view(registry)
        assert view.dijkstra_runs == 100
        # everything else still published normally
        assert view.decided_by_bounds == 7

    def test_comparisons_split_by_label(self):
        registry = MetricsRegistry()
        publish_resolver_stats(registry, make_stats())
        snap = registry.snapshot()
        assert snap['repro_resolver_comparisons_total{decided_by="bounds"}'] == 7
        assert snap['repro_resolver_comparisons_total{decided_by="oracle"}'] == 3

    def test_mapping_covers_every_counted_field(self):
        """Every numeric ResolverStats field must be in RESOLVER_METRICS so
        the view round-trips; a new field without a mapping breaks the
        EngineStats thin-view contract silently."""
        mapped = {field for field, _, _, _ in RESOLVER_METRICS}
        numeric = {
            name
            for name, value in vars(ResolverStats()).items()
            if isinstance(value, (int, float))
        }
        assert numeric == mapped


class TestView:
    def test_empty_registry_views_as_zero_stats(self):
        assert resolver_stats_view(MetricsRegistry()) == ResolverStats()

    def test_int_fields_come_back_as_ints(self):
        registry = MetricsRegistry()
        publish_resolver_stats(registry, make_stats())
        view = resolver_stats_view(registry)
        assert isinstance(view.resolutions, int)
        assert isinstance(view.bound_time_s, float)


class TestOracleCounter:
    def test_tracks_live_oracle_calls(self, small_metric):
        registry = MetricsRegistry()
        _, space = small_metric
        oracle = space.oracle()
        oracle_call_counter(registry, oracle)
        assert registry.get("repro_oracle_calls_total").value == 0
        oracle(0, 1)
        oracle(2, 3)
        assert registry.get("repro_oracle_calls_total").value == 2
        assert registry.snapshot()["repro_oracle_calls_total"] == 2

    def test_counts_charges_made_before_attachment(self, small_metric):
        _, space = small_metric
        oracle = space.oracle()
        oracle(0, 1)
        registry = MetricsRegistry()
        oracle_call_counter(registry, oracle)
        assert registry.get("repro_oracle_calls_total").value == 1

    def test_callback_counter_rejects_inc(self, small_metric):
        registry = MetricsRegistry()
        _, space = small_metric
        oracle_call_counter(registry, space.oracle())
        with pytest.raises(RuntimeError, match="callback"):
            registry.get("repro_oracle_calls_total").inc()
