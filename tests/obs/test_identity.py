"""Observability must not change behaviour: byte-identity guarantees.

The whole design rests on one promise — attaching a registry observes the
run, it never steers it.  These tests pin that promise: the same workload
with and without a registry resolves the same edges in the same order,
makes the same oracle calls, and ends with equal ``ResolverStats``.
"""

import itertools

from repro.bounds import TriScheme
from repro.core.resolver import SmartResolver
from repro.harness import run_experiment
from repro.obs import CollectingSink, MetricsRegistry, registry_totals


def counted_fields(stats):
    """All ResolverStats fields except the wall-clock ``bound_time_s``."""
    fields = dict(vars(stats))
    fields.pop("bound_time_s")
    return fields


def run_workload(space, registry=None):
    """A deterministic comparison + resolution workload; returns artefacts."""
    oracle = space.oracle()
    resolver = SmartResolver(oracle, registry=registry)
    resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
    n = len(space)
    pairs = list(itertools.combinations(range(n), 2))
    decisions = [
        resolver.compare(pairs[k], pairs[(k + 7) % len(pairs)])
        for k in range(0, len(pairs), 3)
    ]
    resolved = [resolver.distance(i, j) for i, j in pairs[: n * 2]]
    stats = resolver.collect_stats()
    edges = sorted(resolver.graph.edges())
    return {
        "decisions": decisions,
        "resolved": resolved,
        "edges": edges,
        "calls": oracle.calls,
        "stats": stats,
    }


class TestResolverIdentity:
    def test_registry_attached_run_is_byte_identical(self, euclid_space):
        plain = run_workload(euclid_space)
        registry = MetricsRegistry()
        observed = run_workload(euclid_space, registry=registry)
        assert observed["decisions"] == plain["decisions"]
        assert observed["resolved"] == plain["resolved"]
        assert observed["edges"] == plain["edges"]
        assert observed["calls"] == plain["calls"]
        # bound_time_s is wall-clock and never reproducible; every counted
        # field must match exactly
        assert counted_fields(observed["stats"]) == counted_fields(plain["stats"])

    def test_published_counters_match_collected_stats(self, euclid_space):
        registry = MetricsRegistry()
        result = run_workload(euclid_space, registry=registry)
        stats = result["stats"]
        snap = registry.snapshot()
        assert (
            registry_totals(snap, "repro_resolver_comparisons_total")
            == stats.decided_by_bounds + stats.decided_by_oracle
        )
        assert snap["repro_resolver_memo_hits_total"] == stats.bound_cache_hits
        assert snap["repro_resolver_resolutions_total"] == stats.resolutions
        assert (
            snap["repro_resolver_oracle_resolutions_total"]
            == stats.oracle_resolutions
        )

    def test_repeat_collect_stats_is_idempotent(self, euclid_space):
        """collect_stats publishes a delta; calling it again adds nothing."""
        registry = MetricsRegistry()
        oracle = space_oracle = euclid_space.oracle()
        resolver = SmartResolver(space_oracle, registry=registry)
        resolver.bounder = TriScheme(resolver.graph, euclid_space.diameter_bound())
        resolver.compare((0, 1), (2, 3))
        resolver.collect_stats()
        first = registry.snapshot()
        resolver.collect_stats()
        assert registry.snapshot() == first
        assert oracle is space_oracle

    def test_bound_gap_histogram_fills_under_registry(self, euclid_space):
        registry = MetricsRegistry()
        run_workload(euclid_space, registry=registry)
        gap = registry.get("repro_bound_gap")
        assert gap is not None
        assert gap.count > 0


class TestHarnessIntegration:
    def test_run_experiment_without_sink_has_no_metrics(self, euclid_space):
        record = run_experiment(euclid_space, "prim", provider="tri")
        assert record.metrics is None

    def test_run_experiment_with_sink_exports_snapshot(self, euclid_space):
        sink = CollectingSink()
        record = run_experiment(
            euclid_space, "prim", provider="tri", metrics_sink=sink
        )
        assert record.metrics is not None
        assert sink.last == record.metrics
        assert record.metrics["repro_oracle_calls_total"] == record.total_calls

    def test_run_experiment_metrics_reconcile_with_stats(self, euclid_space):
        registry = MetricsRegistry()
        record = run_experiment(euclid_space, "prim", provider="tri", registry=registry)
        snap = registry.snapshot()
        stats = record.resolver_stats
        assert snap["repro_resolver_memo_hits_total"] == stats.bound_cache_hits
        assert (
            registry_totals(snap, "repro_resolver_comparisons_total")
            == stats.decided_by_bounds + stats.decided_by_oracle
        )

    def test_registry_does_not_change_experiment_outcome(self, euclid_space):
        plain = run_experiment(euclid_space, "prim", provider="tri")
        observed = run_experiment(
            euclid_space, "prim", provider="tri", registry=MetricsRegistry()
        )
        assert observed.total_calls == plain.total_calls
        assert observed.result == plain.result
        assert counted_fields(observed.resolver_stats) == counted_fields(
            plain.resolver_stats
        )
