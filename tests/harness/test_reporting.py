"""Unit tests for the ASCII reporting helpers."""

from repro.harness.reporting import format_value, render_series, render_table


class TestFormatValue:
    def test_int_thousands(self):
        assert format_value(1234567) == "1,234,567"

    def test_small_float(self):
        assert format_value(0.1234) == "0.1234"

    def test_large_float(self):
        assert format_value(12345.6) == "12,346"

    def test_unit_float(self):
        assert format_value(3.14159) == "3.14"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_string_passthrough(self):
        assert format_value("Tri") == "Tri"

    def test_bool_not_treated_as_int(self):
        assert format_value(True) == "True"


class TestRenderTable:
    def test_structure(self):
        out = render_table(["a", "bb"], [[1, 2], [30, 40]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", "+"}

    def test_title(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_alignment_widths(self):
        out = render_table(["col"], [[123456789]])
        lines = out.splitlines()
        assert len(lines[0]) == len(lines[2])

    def test_empty_rows(self):
        out = render_table(["a"], [])
        assert "a" in out


class TestRenderSeries:
    def test_column_per_series(self):
        out = render_series("n", [10, 20], {"tri": [1, 2], "laesa": [3, 4]})
        header = out.splitlines()[0]
        assert "n" in header and "tri" in header and "laesa" in header
        assert "4" in out

    def test_rows_match_xs(self):
        out = render_series("x", [1, 2, 3], {"s": [9, 8, 7]})
        assert len(out.splitlines()) == 2 + 3
