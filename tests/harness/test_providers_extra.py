"""Extra coverage for the provider factory and bootstrap plumbing."""

import pytest

from repro.bounds import Aesa
from repro.core.resolver import SmartResolver
from repro.harness.providers import LANDMARK_PROVIDERS, attach_provider
from repro.harness.runner import run_experiment
from repro.spaces.matrix import MatrixSpace, random_metric_matrix


@pytest.fixture
def space(rng):
    return MatrixSpace(random_metric_matrix(14, rng))


class TestAesaThroughFactory:
    def test_name_registered_as_landmark_provider(self):
        assert "aesa" in LANDMARK_PROVIDERS

    def test_attach_runs_full_bootstrap(self, space):
        oracle = space.oracle()
        resolver = SmartResolver(oracle)
        provider, calls = attach_provider(resolver, "aesa")
        assert isinstance(provider, Aesa)
        n = space.n
        assert calls == n * (n - 1) // 2

    def test_attach_without_bootstrap(self, space):
        oracle = space.oracle()
        resolver = SmartResolver(oracle)
        _, calls = attach_provider(resolver, "aesa", bootstrap=False)
        assert calls == 0


class TestBootstrapInteractions:
    def test_landmark_bootstrap_flag_ignored_for_landmark_providers(self, space):
        # laesa bootstraps itself; the extra flag must not double-bootstrap.
        record = run_experiment(
            space, "prim", "laesa", num_landmarks=3, landmark_bootstrap=True
        )
        n = space.n
        expected = 3 * (n - 1) - 3  # three maxmin stars
        assert record.bootstrap_calls == expected

    def test_num_landmarks_controls_tri_bootstrap(self, space):
        small = run_experiment(
            space, "prim", "tri", landmark_bootstrap=True, num_landmarks=2
        )
        large = run_experiment(
            space, "prim", "tri", landmark_bootstrap=True, num_landmarks=5
        )
        assert small.bootstrap_calls < large.bootstrap_calls

    def test_splub_provider_runs_inside_algorithms(self, space):
        record = run_experiment(space, "kruskal", "splub")
        vanilla = run_experiment(space, "kruskal", "none")
        assert record.result.total_weight == pytest.approx(
            vanilla.result.total_weight
        )
        assert record.total_calls <= vanilla.total_calls

    def test_new_hosts_run_through_runner(self, space):
        for algorithm, kwargs in (
            ("kcenter", {"k": 3}),
            ("linkage", {}),
            ("nn-tour", {}),
            ("dbscan", {"eps": 0.4, "min_pts": 3}),
        ):
            record = run_experiment(space, algorithm, "tri", algorithm_kwargs=kwargs)
            assert record.algorithm_calls > 0 or record.total_calls >= 0
