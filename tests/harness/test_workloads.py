"""Unit tests for the query-workload generators."""

import numpy as np
import pytest

from repro.harness.workloads import (
    batched_queries,
    focused_queries,
    uniform_queries,
    zipf_queries,
)


class TestUniform:
    def test_count_and_range(self):
        qs = uniform_queries(50, 200, seed=1)
        assert len(qs) == 200
        assert all(0 <= q < 50 for q in qs)

    def test_deterministic(self):
        assert uniform_queries(50, 20, seed=5) == uniform_queries(50, 20, seed=5)

    def test_zero_count(self):
        assert uniform_queries(50, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            uniform_queries(50, -1)


class TestZipf:
    def test_count_and_range(self):
        qs = zipf_queries(50, 300, seed=2)
        assert len(qs) == 300
        assert all(0 <= q < 50 for q in qs)

    def test_skew_concentrates_mass(self):
        qs = zipf_queries(100, 2000, exponent=1.5, seed=3)
        counts = np.bincount(qs, minlength=100)
        top_share = np.sort(counts)[::-1][:10].sum() / len(qs)
        assert top_share > 0.5  # top 10 of 100 objects get most queries

    def test_higher_exponent_is_more_skewed(self):
        def top_share(exponent):
            qs = zipf_queries(100, 2000, exponent=exponent, seed=4)
            counts = np.bincount(qs, minlength=100)
            return np.sort(counts)[::-1][:5].sum() / len(qs)

        assert top_share(2.0) > top_share(0.8)

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            zipf_queries(50, 10, exponent=0.0)


class TestFocused:
    def test_queries_stay_in_block(self):
        qs = focused_queries(200, 500, focus_fraction=0.1, seed=5)
        assert max(qs) - min(qs) <= 20
        assert all(0 <= q < 200 for q in qs)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            focused_queries(50, 10, focus_fraction=0.0)
        with pytest.raises(ValueError):
            focused_queries(50, 10, focus_fraction=1.5)


class TestBatched:
    def test_shape(self):
        batches = batched_queries(40, batches=5, batch_size=8, seed=6)
        assert len(batches) == 5
        assert all(len(b) == 8 for b in batches)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            batched_queries(40, batches=-1, batch_size=8)
