"""Smoke tests for the per-figure experiment definitions (tiny sizes)."""

import math

import pytest

from repro.harness.experiments import (
    bounds_quality_experiment,
    dft_experiment,
    landmark_count_sweep,
    oracle_cost_sweep,
    parameter_sweep,
    prim_call_table,
    size_sweep,
    tri_gap_vs_edges,
)
from repro.spaces.matrix import MatrixSpace, random_metric_matrix


import numpy as np


def space_factory(n):
    return MatrixSpace(random_metric_matrix(n, np.random.default_rng(n)))


@pytest.fixture(scope="module")
def small_space():
    return space_factory(24)


class TestBoundsQuality:
    def test_splub_matches_adm(self, small_space):
        results = bounds_quality_experiment(
            small_space, num_edges=80, num_queries=30, providers=("splub", "adm")
        )
        by_name = {r.provider: r for r in results}
        assert by_name["splub"].rel_err_lower_vs_adm == pytest.approx(0.0, abs=1e-9)
        assert by_name["splub"].rel_err_upper_vs_adm == pytest.approx(0.0, abs=1e-9)

    def test_tri_between_exact_and_landmarks(self, small_space):
        results = bounds_quality_experiment(
            small_space,
            num_edges=120,
            num_queries=40,
            providers=("splub", "tri", "laesa"),
        )
        by_name = {r.provider: r for r in results}
        assert by_name["splub"].mean_gap <= by_name["tri"].mean_gap + 1e-9

    def test_all_queries_unknown_pairs(self, small_space):
        results = bounds_quality_experiment(
            small_space, num_edges=60, num_queries=20, providers=("tri",)
        )
        assert results[0].queries == 20


class TestTriGap:
    def test_gap_shrinks_with_edges(self, small_space):
        rows = tri_gap_vs_edges(small_space, [60, 150, 250], num_queries=40)
        gaps = [row["gap"] for row in rows]
        assert gaps[0] >= gaps[-1]

    def test_row_fields(self, small_space):
        rows = tri_gap_vs_edges(small_space, [50], num_queries=10)
        assert set(rows[0]) == {"edges", "mean_lb", "mean_ub", "gap"}


class TestPrimTable:
    def test_row_shape_and_sanity(self):
        rows = prim_call_table(space_factory, [16, 24])
        assert len(rows) == 2
        for row in rows:
            assert row.without_plug == row.num_edges
            assert row.ts_nb <= row.without_plug
            assert row.bootstrap > 0

    def test_save_percentages_finite(self):
        rows = prim_call_table(space_factory, [16])
        assert math.isfinite(rows[0].save_vs_laesa)
        assert math.isfinite(rows[0].save_vs_tlaesa)


class TestSizeSweep:
    def test_calls_grow_with_size(self):
        sweep = size_sweep(space_factory, [12, 24], "prim", providers=("tri",))
        records = sweep["tri"]
        assert records[0].total_calls < records[1].total_calls


class TestOracleCostSweep:
    def test_monotone_in_cost(self, small_space):
        out = oracle_cost_sweep(small_space, "prim", [0.0, 1.0, 2.0], providers=("tri",))
        times = out["tri"]
        assert times[0] < times[1] < times[2]


class TestParameterSweep:
    def test_records_per_value(self, small_space):
        out = parameter_sweep(
            small_space,
            "knng",
            "k",
            [2, 4],
            providers=("tri",),
        )
        assert len(out["tri"]) == 2
        assert out["tri"][0].params["k"] == 2


class TestLandmarkSweep:
    def test_counts_tracked(self, small_space):
        out = landmark_count_sweep(small_space, "prim", [2, 4], providers=("laesa",))
        assert len(out["laesa"]) == 2
        assert out["laesa"][0].bootstrap_calls < out["laesa"][1].bootstrap_calls


class TestDftExperiment:
    def test_runs_and_stays_exact(self):
        out = dft_experiment(space_factory, [8], providers=("dft", "none"))
        dft_rec = out["dft"][0]
        none_rec = out["none"][0]
        assert dft_rec.result.edge_set() == none_rec.result.edge_set()
        assert dft_rec.total_calls <= none_rec.total_calls
