"""Unit tests for the experiment runner and provider factory."""


import pytest

from repro.core.bounds import TrivialBounder
from repro.core.partial_graph import PartialDistanceGraph
from repro.bounds import Adm, Laesa, Splub, Tlaesa, TriScheme
from repro.harness.providers import PROVIDER_NAMES, attach_provider, make_provider
from repro.harness.runner import percentage_save, run_experiment
from repro.spaces.matrix import MatrixSpace, random_metric_matrix


@pytest.fixture
def space(rng):
    return MatrixSpace(random_metric_matrix(16, rng))


class TestMakeProvider:
    @pytest.mark.parametrize("name", PROVIDER_NAMES)
    def test_all_names_construct(self, name):
        g = PartialDistanceGraph(8)
        provider = make_provider(name, g, max_distance=1.0)
        assert provider.graph is g

    def test_type_mapping(self):
        g = PartialDistanceGraph(8)
        assert isinstance(make_provider("none", g), TrivialBounder)
        assert isinstance(make_provider("tri", g), TriScheme)
        assert isinstance(make_provider("splub", g), Splub)
        assert isinstance(make_provider("adm", g), Adm)
        assert isinstance(make_provider("tlaesa", g), Tlaesa)
        laesa = make_provider("laesa", g)
        assert isinstance(laesa, Laesa) and not isinstance(laesa, Tlaesa)

    def test_unknown_name_rejected(self):
        g = PartialDistanceGraph(8)
        with pytest.raises(ValueError):
            make_provider("bogus", g)

    def test_case_insensitive(self):
        g = PartialDistanceGraph(8)
        assert isinstance(make_provider("TRI", g), TriScheme)


class TestAttachProvider:
    def test_landmark_bootstrap_spends_calls(self, space):
        from repro.core.resolver import SmartResolver

        oracle = space.oracle()
        resolver = SmartResolver(oracle)
        _, calls = attach_provider(resolver, "laesa", num_landmarks=3)
        assert calls > 0
        assert calls == oracle.calls

    def test_graph_provider_spends_nothing(self, space):
        from repro.core.resolver import SmartResolver

        oracle = space.oracle()
        resolver = SmartResolver(oracle)
        _, calls = attach_provider(resolver, "tri")
        assert calls == 0


class TestRunExperiment:
    def test_vanilla_prim_accounting(self, space):
        record = run_experiment(space, "prim", "none")
        n = space.n
        assert record.algorithm_calls == n * (n - 1) // 2
        assert record.bootstrap_calls == 0
        assert record.total_calls == record.algorithm_calls
        assert record.cpu_seconds > 0

    def test_bootstrap_separated(self, space):
        record = run_experiment(space, "prim", "laesa", num_landmarks=3)
        assert record.bootstrap_calls > 0
        assert record.algorithm_calls > 0

    def test_tri_with_landmark_bootstrap(self, space):
        record = run_experiment(
            space, "prim", "tri", landmark_bootstrap=True, num_landmarks=3
        )
        assert record.bootstrap_calls > 0

    def test_completion_time_arithmetic(self, space):
        record = run_experiment(space, "prim", "tri", oracle_cost=0.5)
        expected = record.cpu_seconds + 0.5 * record.total_calls
        assert record.completion_seconds == pytest.approx(expected)
        assert record.completion_at(2.0) == pytest.approx(
            record.cpu_seconds + 2.0 * record.total_calls
        )

    def test_algorithm_kwargs_forwarded(self, space):
        record = run_experiment(space, "knng", "none", algorithm_kwargs={"k": 3})
        assert record.result.k == 3
        assert record.params == {"k": 3}

    def test_unknown_algorithm_rejected(self, space):
        with pytest.raises(ValueError):
            run_experiment(space, "quicksort", "none")

    def test_save_vs(self, space):
        baseline = run_experiment(space, "prim", "none")
        ours = run_experiment(space, "prim", "tri")
        save = ours.save_vs(baseline)
        assert 0 <= save < 100


class TestPercentageSave:
    def test_basic(self):
        assert percentage_save(100, 60) == pytest.approx(40.0)

    def test_zero_baseline(self):
        assert percentage_save(0, 10) == 0.0

    def test_negative_when_worse(self):
        assert percentage_save(100, 150) == pytest.approx(-50.0)
