"""Unit tests for the resolution-tracing oracle."""

import pytest

from repro.algorithms import prim_mst
from repro.bounds import TriScheme
from repro.bounds.landmarks import bootstrap_with_landmarks
from repro.core.resolver import SmartResolver
from repro.harness.tracing import TracingOracle, load_trace
from repro.spaces.matrix import MatrixSpace, random_metric_matrix


@pytest.fixture
def space(rng):
    return MatrixSpace(random_metric_matrix(15, rng))


@pytest.fixture
def oracle(space):
    return TracingOracle(space.distance, space.n)


class TestEventRecording:
    def test_each_charged_call_is_one_event(self, oracle):
        oracle(0, 1)
        oracle(0, 2)
        oracle(0, 1)  # cached — no new event
        assert len(oracle.events) == 2
        assert oracle.calls == 2

    def test_event_fields(self, oracle, space):
        oracle(3, 1)
        event = oracle.events[0]
        assert (event.i, event.j) == (1, 3)  # canonical orientation
        assert event.distance == pytest.approx(space.distance(1, 3))
        assert event.sequence == 0
        assert event.elapsed_seconds >= 0
        assert event.phase == "default"

    def test_self_distance_not_recorded(self, oracle):
        oracle(4, 4)
        assert oracle.events == []


class TestPhases:
    def test_phase_labels_applied(self, oracle):
        with oracle.phase("alpha"):
            oracle(0, 1)
        with oracle.phase("beta"):
            oracle(0, 2)
            oracle(0, 3)
        oracle(0, 4)
        assert oracle.calls_per_phase() == {"alpha": 1, "beta": 2, "default": 1}

    def test_phases_nest_and_restore(self, oracle):
        with oracle.phase("outer"):
            with oracle.phase("inner"):
                oracle(0, 1)
            oracle(0, 2)
        assert oracle.calls_per_phase() == {"inner": 1, "outer": 1}
        assert oracle.current_phase == "default"

    def test_full_run_phase_split(self, space):
        oracle = TracingOracle(space.distance, space.n)
        resolver = SmartResolver(oracle)
        resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
        with oracle.phase("bootstrap"):
            bootstrap_with_landmarks(resolver, 3)
        with oracle.phase("prim"):
            prim_mst(resolver)
        per_phase = oracle.calls_per_phase()
        assert set(per_phase) == {"bootstrap", "prim"}
        assert sum(per_phase.values()) == oracle.calls


class TestSpanTracerPhases:
    """The push/pop shim (deprecated in PR 5) is gone; ``tracer.span(...)``
    is the only stack-shaped phase API."""

    def test_push_pop_shims_removed(self, oracle):
        assert not hasattr(oracle, "push_phase")
        assert not hasattr(oracle, "pop_phase")

    def test_span_api_does_not_warn(self, oracle, recwarn):
        with oracle.tracer.span("alpha"):
            oracle(0, 1)
        assert oracle.calls_per_phase() == {"alpha": 1}
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_phases_are_thread_local(self, oracle):
        """Concurrent workers must not see each other's phases — the old
        shared stack mislabeled calls under concurrency."""
        import threading

        barrier = threading.Barrier(2)
        phases = {}

        def work(label, i, j):
            with oracle.tracer.span(label):
                barrier.wait(timeout=10)
                phases[label] = oracle.current_phase
                oracle(i, j)
                barrier.wait(timeout=10)

        threads = [
            threading.Thread(target=work, args=("left", 0, 1)),
            threading.Thread(target=work, args=("right", 2, 3)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert phases == {"left": "left", "right": "right"}
        assert oracle.calls_per_phase() == {"left": 1, "right": 1}


class TestCsvRoundTrip:
    def test_write_and_load(self, oracle, tmp_path):
        with oracle.phase("x"):
            oracle(0, 1)
            oracle(2, 3)
        path = tmp_path / "trace.csv"
        oracle.write_csv(path)
        events = load_trace(path)
        assert len(events) == 2
        assert events[0].phase == "x"
        assert events[1].sequence == 1

    def test_round_trip_preserves_batch_ids(self, oracle, space, tmp_path):
        with oracle.in_batch(7):
            oracle.record(0, 1, space.distance(0, 1))
            oracle.record(0, 2, space.distance(0, 2))
        oracle(0, 3)  # inline — no batch id
        path = tmp_path / "batched.csv"
        oracle.write_csv(path)
        events = load_trace(path)
        assert [e.batch for e in events] == [7, 7, None]
        assert events == oracle.events

    def test_reset_clears_events(self, oracle):
        oracle(0, 1)
        oracle.reset()
        assert oracle.events == []
        assert oracle.calls == 0


class TestContextManager:
    def test_flushes_csv_on_exit(self, space, tmp_path):
        path = tmp_path / "auto.csv"
        with TracingOracle(space.distance, space.n, csv_path=path) as oracle:
            with oracle.phase("work"):
                oracle(0, 1)
                oracle(2, 3)
        events = load_trace(path)
        assert len(events) == 2
        assert events[0].phase == "work"

    def test_flushes_even_on_error(self, space, tmp_path):
        path = tmp_path / "crash.csv"
        with pytest.raises(RuntimeError, match="boom"):
            with TracingOracle(space.distance, space.n, csv_path=path) as oracle:
                oracle(0, 1)
                raise RuntimeError("boom")
        assert len(load_trace(path)) == 1  # the partial trace survived

    def test_context_requires_csv_path(self, oracle):
        with pytest.raises(ValueError, match="csv_path"):
            with oracle:
                pass

    def test_nested_reentry_flushes_once(self, space, tmp_path):
        """Re-entering the context must not write the CSV (and its header)
        twice — the flush happens only when the outermost exit unwinds."""
        path = tmp_path / "nested.csv"
        with TracingOracle(space.distance, space.n, csv_path=path) as oracle:
            with oracle:
                oracle(0, 1)
            # inner exit: no flush yet, outer context still open
            assert not path.exists()
            oracle(2, 3)
        text = path.read_text()
        assert text.count("sequence") == 1  # exactly one header row
        assert len(load_trace(path)) == 2

    def test_flush_is_idempotent(self, space, tmp_path):
        path = tmp_path / "twice.csv"
        oracle = TracingOracle(space.distance, space.n, csv_path=path)
        oracle(0, 1)
        oracle.flush()
        oracle.flush()
        assert path.read_text().count("sequence") == 1
        assert len(load_trace(path)) == 1

    def test_flush_without_csv_path_raises(self, oracle):
        with pytest.raises(ValueError, match="csv_path"):
            oracle.flush()
