"""Unit tests for the multi-seed statistics helpers."""


import pytest

from repro.harness.stats import compare_schemes, repeat_experiment, summarize


class TestSummarize:
    def test_mean_and_std(self):
        s = summarize([2.0, 4.0, 6.0])
        assert s.mean == pytest.approx(4.0)
        assert s.std == pytest.approx(2.0)
        assert s.count == 3

    def test_confidence_interval_brackets_mean(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.ci_low < s.mean < s.ci_high

    def test_single_value_collapses(self):
        s = summarize([7.0])
        assert s.std == 0.0
        assert s.ci_low == s.ci_high == 7.0

    def test_constant_sample(self):
        s = summarize([5.0] * 10)
        assert s.std == 0.0
        assert s.ci_low == s.ci_high == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_interval_narrows_with_more_samples(self):
        wide = summarize([0.0, 10.0])
        narrow = summarize([0.0, 10.0] * 8)
        assert (narrow.ci_high - narrow.ci_low) < (wide.ci_high - wide.ci_low)


class TestRepeatExperiment:
    def test_factory_called_per_seed(self):
        calls = []

        def factory(seed):
            calls.append(seed)
            return float(seed * 2)

        s = repeat_experiment(factory, [1, 2, 3])
        assert calls == [1, 2, 3]
        assert s.mean == pytest.approx(4.0)

    def test_real_experiment_is_stable(self, rng):
        from repro.datasets import sf_poi_space
        from repro.harness import run_experiment

        def factory(seed):
            space = sf_poi_space(30, seed=seed, road=False)
            return run_experiment(space, "prim", "tri").total_calls

        s = repeat_experiment(factory, [0, 1, 2])
        assert s.count == 3
        assert 0 < s.mean < 30 * 29 / 2


class TestCompareSchemes:
    def test_labelled_summaries(self):
        out = compare_schemes(
            {"a": lambda seed: 1.0, "b": lambda seed: float(seed)},
            seeds=[1, 3],
        )
        assert out["a"].mean == 1.0
        assert out["b"].mean == pytest.approx(2.0)
