"""Property-based tests (hypothesis) for the vectorized bound engine.

Two contracts the engine must never break:

* ``bounds_many(pairs)`` is element-for-element identical to per-pair
  ``bounds`` for every provider with a batch kernel (Tri, SPLUB, LAESA);
* an epoch-cached (possibly stale) resolver interval always contains the
  true distance, at every interleaving of queries and resolutions.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bounds import Laesa, Splub, TriScheme
from repro.core.resolver import SmartResolver
from repro.spaces.matrix import MatrixSpace, random_metric_matrix

COMMON_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def partial_metric_instances(draw, min_n=4, max_n=12):
    """A ground-truth metric, a resolved subset, and a query-pair order."""
    n = draw(st.integers(min_n, max_n))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    matrix = random_metric_matrix(n, rng)
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    picker = np.random.default_rng(seed + 1)
    picker.shuffle(pairs)
    num_resolved = draw(st.integers(0, len(pairs)))
    return matrix, pairs[:num_resolved], pairs


def _provider_matrix(space, resolver, cls):
    provider = cls(resolver.graph, space.diameter_bound())
    if cls is Laesa:
        provider.bootstrap(resolver)
    return provider


class TestBatchEquivalence:
    @given(partial_metric_instances())
    @settings(**COMMON_SETTINGS)
    def test_bounds_many_equals_bounds(self, instance):
        matrix, resolved, all_pairs = instance
        space = MatrixSpace(matrix, validate=False)
        resolver = SmartResolver(space.oracle())
        for i, j in resolved:
            resolver.distance(i, j)
        cap = float(matrix.max()) or 1.0
        providers = [
            TriScheme(resolver.graph, cap),
            Splub(resolver.graph, cap),
        ]
        laesa = Laesa(resolver.graph, cap)
        laesa.bootstrap(resolver)
        providers.append(laesa)
        queries = all_pairs + [(j, i) for i, j in all_pairs[:3]]
        for provider in providers:
            batch = provider.bounds_many(queries)
            for (i, j), b in zip(queries, batch):
                single = provider.bounds(i, j)
                assert b.lower == single.lower, provider.name
                assert b.upper == single.upper, provider.name

    @given(partial_metric_instances())
    @settings(**COMMON_SETTINGS)
    def test_resolver_bounds_many_equals_bounds(self, instance):
        matrix, resolved, all_pairs = instance
        space = MatrixSpace(matrix, validate=False)
        resolver = SmartResolver(space.oracle())
        resolver.bounder = TriScheme(resolver.graph, float(matrix.max()) or 1.0)
        for i, j in resolved:
            resolver.distance(i, j)
        batch = resolver.bounds_many(all_pairs)
        for (i, j), b in zip(all_pairs, batch):
            single = resolver.bounds(i, j)
            assert b.lower == single.lower
            assert b.upper == single.upper


class TestCachedBoundValidity:
    @given(partial_metric_instances(), st.integers(2, 5))
    @settings(**COMMON_SETTINGS)
    def test_epoch_cached_bounds_contain_truth(self, instance, stride):
        """Interleave queries and resolutions; every served interval is valid."""
        matrix, resolved, all_pairs = instance
        space = MatrixSpace(matrix, validate=False)
        resolver = SmartResolver(space.oracle())
        resolver.bounder = TriScheme(resolver.graph, float(matrix.max()) or 1.0)
        for step, (i, j) in enumerate(all_pairs):
            b = resolver.bounds(i, j)
            truth = float(matrix[i, j])
            assert b.lower - 1e-9 <= truth <= b.upper + 1e-9
            if step % stride == 0:
                resolver.distance(i, j)
        # Second sweep: a mix of fresh memo hits and recomputations (tiny
        # instances may legitimately have every entry go stale in between).
        for i, j in all_pairs:
            b = resolver.bounds(i, j)
            truth = float(matrix[i, j])
            assert b.lower - 1e-9 <= truth <= b.upper + 1e-9

    @given(partial_metric_instances())
    @settings(**COMMON_SETTINGS)
    def test_memo_never_changes_oracle_sequence(self, instance):
        """Same predicate stream, memo on vs off: identical calls and edges."""
        matrix, resolved, all_pairs = instance
        space = MatrixSpace(matrix, validate=False)
        threshold = float(np.median(matrix[matrix > 0])) if (matrix > 0).any() else 0.5
        outcomes = {}
        for flag in (True, False):
            oracle = space.oracle()
            resolver = SmartResolver(oracle, bound_cache=flag)
            resolver.bounder = TriScheme(resolver.graph, float(matrix.max()) or 1.0)
            verdicts = []
            for step, (i, j) in enumerate(all_pairs):
                verdicts.append(resolver.is_at_least(i, j, threshold))
                if step % 3 == 0 and len(all_pairs) > 1:
                    other = all_pairs[(step + 1) % len(all_pairs)]
                    verdicts.append(resolver.less((i, j), other))
            outcomes[flag] = (verdicts, oracle.calls, sorted(resolver.graph.edges()))
        assert outcomes[True] == outcomes[False]
