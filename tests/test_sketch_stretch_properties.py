"""Property-based tests (hypothesis) for sketches and the stretch budget.

Three contracts the approximate mode must never break:

* a bootstrapped (exact-row) sketch's interval always contains the true
  distance, and a tree sketch's upper bound is always an over-estimate —
  for random metrics, any landmark subset, and any resolution prefix;
* for any ``stretch >= 1``, every answer the resolver returns is within
  ``[true, stretch * true]`` and never commits an edge into the graph;
* at ``stretch = 1.0`` the resolver is byte-identical to the exact one —
  same answers, same oracle-call count, same resolved-edge sequence
  (pinned against a TriScheme run, the repo's reference configuration).
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bounds import SketchBoundProvider, TriScheme
from repro.core.resolver import SmartResolver
from repro.spaces.matrix import MatrixSpace, random_metric_matrix

COMMON_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def sketch_instances(draw, min_n=4, max_n=12):
    """A metric, a landmark subset, a resolution prefix, and a stretch."""
    n = draw(st.integers(min_n, max_n))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    matrix = random_metric_matrix(n, rng)
    num_landmarks = draw(st.integers(1, n))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    picker = np.random.default_rng(seed + 1)
    picker.shuffle(pairs)
    num_resolved = draw(st.integers(0, len(pairs)))
    stretch = draw(st.floats(1.0, 4.0, allow_nan=False))
    return matrix, num_landmarks, pairs[:num_resolved], pairs, stretch


class TestSketchBoundValidity:
    @given(sketch_instances())
    @settings(**COMMON_SETTINGS)
    def test_exact_rows_bracket_the_distance(self, instance):
        matrix, num_landmarks, resolved, all_pairs, _ = instance
        space = MatrixSpace(matrix, validate=False)
        resolver = SmartResolver(space.oracle())
        sketch = SketchBoundProvider(
            resolver.graph, float(matrix.max()) or 1.0, num_landmarks=num_landmarks
        )
        sketch.bootstrap(resolver)
        resolver.bounder = sketch
        for i, j in resolved:
            resolver.distance(i, j)
        for i, j in all_pairs:
            b = sketch.bounds(i, j)
            true = matrix[i, j]
            assert b.lower <= true + 1e-9
            assert true <= b.upper + 1e-9
        for b, (i, j) in zip(sketch.bounds_many(all_pairs), all_pairs):
            assert b.lower <= matrix[i, j] + 1e-9 <= b.upper + 2e-9

    @given(sketch_instances())
    @settings(**COMMON_SETTINGS)
    def test_tree_rows_upper_bound_the_distance(self, instance):
        matrix, num_landmarks, resolved, all_pairs, _ = instance
        space = MatrixSpace(matrix, validate=False)
        resolver = SmartResolver(space.oracle())
        for i, j in resolved:
            resolver.distance(i, j)
        landmarks = list(range(num_landmarks))
        sketch = SketchBoundProvider.from_graph(
            resolver.graph, landmarks, float(matrix.max()) or 1.0
        )
        assert not sketch.exact_rows
        for i, j in all_pairs:
            b = sketch.bounds(i, j)
            true = matrix[i, j]
            assert b.lower <= true + 1e-9
            assert true <= b.upper + 1e-9


class TestStretchBudget:
    @given(sketch_instances())
    @settings(**COMMON_SETTINGS)
    def test_answers_within_stretch_and_no_graph_commits(self, instance):
        matrix, num_landmarks, _, all_pairs, stretch = instance
        space = MatrixSpace(matrix, validate=False)
        resolver = SmartResolver(space.oracle(), stretch=stretch)
        sketch = SketchBoundProvider(
            resolver.graph, float(matrix.max()) or 1.0, num_landmarks=num_landmarks
        )
        sketch.bootstrap(resolver)
        resolver.bounder = sketch
        for i, j in all_pairs:
            value = resolver.distance(i, j)
            true = matrix[i, j]
            assert true - 1e-9 <= value <= stretch * true + 1e-9
        assert resolver.max_realized_stretch <= stretch + 1e-12
        # Approximate answers never enter the exact-distance graph.
        for key, estimate in resolver._approx_cache.items():
            assert resolver.graph.get(*key) is None
        # Repeat reads see one stable value per pair.
        for i, j in all_pairs:
            assert resolver.distance(i, j) == resolver.distance(j, i)

    @given(sketch_instances())
    @settings(**COMMON_SETTINGS)
    def test_resolve_many_matches_budget_too(self, instance):
        matrix, num_landmarks, _, all_pairs, stretch = instance
        space = MatrixSpace(matrix, validate=False)
        resolver = SmartResolver(space.oracle(), stretch=stretch)
        sketch = SketchBoundProvider(
            resolver.graph, float(matrix.max()) or 1.0, num_landmarks=num_landmarks
        )
        sketch.bootstrap(resolver)
        resolver.bounder = sketch
        for (i, j), value in resolver.resolve_many(all_pairs).items():
            true = matrix[i, j]
            assert true - 1e-9 <= value <= stretch * true + 1e-9


class TestExactModeIsByteIdentical:
    @given(sketch_instances())
    @settings(**COMMON_SETTINGS)
    def test_stretch_one_equals_exact_tri_run(self, instance):
        matrix, _, _, all_pairs, _ = instance
        space = MatrixSpace(matrix, validate=False)

        def run(**kwargs):
            resolver = SmartResolver(space.oracle(), **kwargs)
            resolver.bounder = TriScheme(resolver.graph, float(matrix.max()) or 1.0)
            answers = [resolver.distance(i, j) for i, j in all_pairs]
            i, j, w = resolver.graph.edge_arrays()
            edges = list(zip(i.tolist(), j.tolist(), w.tolist()))
            return answers, resolver.oracle.calls, edges, resolver.stats

        base_answers, base_calls, base_edges, base_stats = run()
        one_answers, one_calls, one_edges, one_stats = run(stretch=1.0)
        assert one_answers == base_answers
        assert one_calls == base_calls
        assert one_edges == base_edges
        assert one_stats.approx_answers == 0
