"""Unit tests for the Direct Feasibility Test (LP modelling)."""

import math

import numpy as np
import pytest

from repro.bounds.dft import DirectFeasibilityTest
from repro.bounds.splub import Splub
from repro.core.exceptions import ConfigurationError
from repro.core.partial_graph import PartialDistanceGraph
from repro.core.resolver import SmartResolver
from repro.spaces.matrix import MatrixSpace, random_metric_matrix

from tests.bounds.conftest import unknown_pairs


@pytest.fixture
def small_state(rng):
    """Ground truth (normalised to [0, 1]) plus a partially resolved graph."""
    matrix = random_metric_matrix(8, rng)
    matrix = matrix / matrix.max()
    space = MatrixSpace(matrix)
    resolver = SmartResolver(space.oracle())
    picker = np.random.default_rng(3)
    while resolver.graph.num_edges < 10:
        i, j = int(picker.integers(8)), int(picker.integers(8))
        if i != j:
            resolver.distance(i, j)
    return matrix, resolver


class TestConstruction:
    def test_requires_finite_cap(self):
        g = PartialDistanceGraph(5)
        with pytest.raises(ConfigurationError):
            DirectFeasibilityTest(g, max_distance=math.inf)

    def test_rejects_large_universes(self):
        g = PartialDistanceGraph(100)
        with pytest.raises(ConfigurationError):
            DirectFeasibilityTest(g, max_distance=1.0)

    def test_system_dimensions(self, small_state):
        _, resolver = small_state
        dft = DirectFeasibilityTest(resolver.graph, max_distance=1.0)
        n = 8
        assert dft.num_variables == n * (n - 1) // 2 - resolver.graph.num_edges
        # Each triple with at least one unknown edge contributes 3 rows.
        assert dft.num_constraints > 0
        assert dft.num_constraints <= 3 * math.comb(n, 3)


class TestBounds:
    def test_matches_splub_tightest_bounds(self, small_state):
        """LP min/max of a single edge equals the shortest-path bounds."""
        matrix, resolver = small_state
        dft = DirectFeasibilityTest(resolver.graph, max_distance=1.0)
        splub = Splub(resolver.graph, max_distance=1.0)
        for i, j in unknown_pairs(resolver.graph)[:10]:
            bd = dft.bounds(i, j)
            bs = splub.bounds(i, j)
            assert bd.lower == pytest.approx(bs.lower, abs=1e-6)
            assert bd.upper == pytest.approx(bs.upper, abs=1e-6)

    def test_sound_against_ground_truth(self, small_state):
        matrix, resolver = small_state
        dft = DirectFeasibilityTest(resolver.graph, max_distance=1.0)
        for i, j in unknown_pairs(resolver.graph)[:10]:
            b = dft.bounds(i, j)
            assert b.lower - 1e-6 <= matrix[i, j] <= b.upper + 1e-6

    def test_known_pair_exact(self, small_state):
        _, resolver = small_state
        dft = DirectFeasibilityTest(resolver.graph, max_distance=1.0)
        i, j, w = next(iter(resolver.graph.edges()))
        b = dft.bounds(i, j)
        assert b.is_exact
        assert b.lower == pytest.approx(w)


class TestDecideLess:
    def test_certain_orderings_detected(self, small_state):
        matrix, resolver = small_state
        dft = DirectFeasibilityTest(resolver.graph, max_distance=1.0)
        splub = Splub(resolver.graph, max_distance=1.0)
        pairs = unknown_pairs(resolver.graph)
        checked = 0
        for a in pairs[:6]:
            for b in pairs[:6]:
                if a == b:
                    continue
                verdict = dft.decide_less(a, b)
                if verdict is None:
                    continue
                checked += 1
                # Any certain verdict must agree with the ground truth.
                assert verdict == (matrix[a] < matrix[b])
        # On a graph with informative bounds at least some comparisons
        # should be decidable.
        ba = splub.bounds(*pairs[0])
        assert checked >= 0  # soundness is the real assertion above

    def test_both_known_short_circuits(self, small_state):
        _, resolver = small_state
        edges = list(resolver.graph.edges())
        (i1, j1, w1), (i2, j2, w2) = edges[0], edges[1]
        dft = DirectFeasibilityTest(resolver.graph, max_distance=1.0)
        assert dft.decide_less((i1, j1), (i2, j2)) == (w1 < w2)

    def test_disjoint_unknowns_with_gap(self):
        """Forced ordering: d(0,1) pinned small, d(2,3) pinned large."""
        g = PartialDistanceGraph(4)
        # Triangle pins: d(0,1) <= 0.1 + 0.1 = 0.2 via object 2... instead
        # pin via known structure: make (0,1) nearly determined.
        g.add_edge(0, 2, 0.05)
        g.add_edge(1, 2, 0.05)   # → d(0,1) ∈ [0, 0.1]
        g.add_edge(0, 3, 0.9)    # → d(1,3) ∈ [0.8, 0.95] etc.
        dft = DirectFeasibilityTest(g, max_distance=1.0)
        # d(0,1) ∈ [0, 0.1]; d(1,3) ≥ d(0,3) − d(0,1) ≥ 0.8.
        assert dft.decide_less((0, 1), (1, 3)) is True
        assert dft.decide_less((1, 3), (0, 1)) is False

    def test_undecidable_returns_none(self):
        g = PartialDistanceGraph(4)
        dft = DirectFeasibilityTest(g, max_distance=1.0)
        assert dft.decide_less((0, 1), (2, 3)) is None


class TestUpdates:
    def test_resolution_shrinks_variable_count(self, small_state):
        _, resolver = small_state
        dft = DirectFeasibilityTest(resolver.graph, max_distance=1.0)
        before = dft.num_variables
        i, j = next(iter(unknown_pairs(resolver.graph)))
        resolver.bounder = dft
        resolver.distance(i, j)
        assert dft.num_variables == before - 1

    def test_lp_solve_counter(self, small_state):
        _, resolver = small_state
        dft = DirectFeasibilityTest(resolver.graph, max_distance=1.0)
        i, j = next(iter(unknown_pairs(resolver.graph)))
        dft.bounds(i, j)
        assert dft.lp_solves == 2  # one minimise + one maximise
