"""Unit tests for landmark selection and the bootstrap routine."""


import numpy as np
import pytest

from repro.bounds.landmarks import (
    bootstrap_with_landmarks,
    default_num_landmarks,
    resolve_landmark_matrix,
    select_landmarks_maxmin,
)
from repro.core.resolver import SmartResolver
from repro.spaces.matrix import MatrixSpace, random_metric_matrix
from repro.spaces.vector import EuclideanSpace


class TestDefaultNumLandmarks:
    def test_log2_rule(self):
        assert default_num_landmarks(1024) == 10
        assert default_num_landmarks(128) == 7

    def test_multiplier(self):
        assert default_num_landmarks(1024, multiplier=3) == 30

    def test_minimum_one(self):
        assert default_num_landmarks(1) == 1
        assert default_num_landmarks(2) == 1


class TestMaxminSelection:
    def test_first_is_seed(self, rng):
        space = MatrixSpace(random_metric_matrix(12, rng))
        r = SmartResolver(space.oracle())
        landmarks = select_landmarks_maxmin(r, 4)
        assert landmarks[0] == 0
        assert len(set(landmarks)) == 4

    def test_second_is_farthest_from_first(self, rng):
        matrix = random_metric_matrix(12, rng)
        space = MatrixSpace(matrix)
        r = SmartResolver(space.oracle())
        landmarks = select_landmarks_maxmin(r, 2)
        assert landmarks[1] == int(np.argmax(matrix[0]))

    def test_spread_on_line(self):
        # Points on a line: maxmin landmarks hit the extremes first.
        pts = np.linspace(0, 1, 11).reshape(-1, 1)
        space = EuclideanSpace(pts)
        r = SmartResolver(space.oracle())
        landmarks = select_landmarks_maxmin(r, 3)
        assert landmarks[:2] == [0, 10]
        assert landmarks[2] == 5  # midpoint maximises min-distance

    def test_invalid_count_rejected(self, rng):
        space = MatrixSpace(random_metric_matrix(5, rng))
        r = SmartResolver(space.oracle())
        with pytest.raises(ValueError):
            select_landmarks_maxmin(r, 0)
        with pytest.raises(ValueError):
            select_landmarks_maxmin(r, 6)


class TestResolveMatrix:
    def test_matrix_matches_space(self, rng):
        matrix = random_metric_matrix(10, rng)
        space = MatrixSpace(matrix)
        r = SmartResolver(space.oracle())
        landmarks = [0, 4, 7]
        lm = resolve_landmark_matrix(r, landmarks)
        assert lm.shape == (3, 10)
        for row, landmark in enumerate(landmarks):
            assert np.allclose(lm[row], matrix[landmark])

    def test_edges_recorded_in_graph(self, rng):
        space = MatrixSpace(random_metric_matrix(10, rng))
        r = SmartResolver(space.oracle())
        resolve_landmark_matrix(r, [2])
        assert r.graph.degree(2) == 9


class TestBootstrap:
    def test_call_budget(self, rng):
        space = MatrixSpace(random_metric_matrix(32, rng))
        oracle = space.oracle()
        r = SmartResolver(oracle)
        landmarks = bootstrap_with_landmarks(r, 5)
        assert len(landmarks) == 5
        # Every landmark row resolved; selection itself reuses those calls.
        expected_edges = 5 * 31 - (5 * 4) // 2  # union of 5 stars
        assert r.graph.num_edges == expected_edges
        assert oracle.calls == expected_edges

    def test_defaults_to_log2(self, rng):
        space = MatrixSpace(random_metric_matrix(32, rng))
        r = SmartResolver(space.oracle())
        landmarks = bootstrap_with_landmarks(r)
        assert len(landmarks) == default_num_landmarks(32)

    def test_count_capped_at_n(self, rng):
        space = MatrixSpace(random_metric_matrix(4, rng))
        r = SmartResolver(space.oracle())
        landmarks = bootstrap_with_landmarks(r, 100)
        assert len(landmarks) == 4
