"""Unit tests for the ADM baselines (full closure and incremental)."""


import pytest

from repro.bounds.adm import Adm, AdmIncremental
from repro.bounds.splub import Splub
from repro.core.partial_graph import PartialDistanceGraph

from tests.bounds.conftest import unknown_pairs


class TestAdmMatchesSplub:
    """ADM and SPLUB must produce the *same* (tightest) bounds."""

    def test_equal_on_running_example(self, running_example_graph):
        adm = Adm(running_example_graph, max_distance=2.0)
        splub = Splub(running_example_graph, max_distance=2.0)
        for i, j in unknown_pairs(running_example_graph):
            ba = adm.bounds(i, j)
            bs = splub.bounds(i, j)
            assert ba.lower == pytest.approx(bs.lower)
            assert ba.upper == pytest.approx(bs.upper)

    def test_equal_on_random_metric(self, partially_resolved):
        matrix, resolver = partially_resolved
        cap = float(matrix.max())
        adm = Adm(resolver.graph, max_distance=cap)
        splub = Splub(resolver.graph, max_distance=cap)
        for i, j in unknown_pairs(resolver.graph):
            ba = adm.bounds(i, j)
            bs = splub.bounds(i, j)
            assert ba.lower == pytest.approx(bs.lower)
            assert ba.upper == pytest.approx(bs.upper)

    def test_incremental_equals_constructor(self, running_example_graph):
        # Building ADM over the filled graph vs replaying insertions must agree.
        replay_graph = PartialDistanceGraph(7)
        adm_replay = Adm(replay_graph, max_distance=2.0)
        for i, j, w in running_example_graph.edges():
            replay_graph.add_edge(i, j, w)
            adm_replay.notify_resolved(i, j, w)
        adm_full = Adm(running_example_graph, max_distance=2.0)
        for i, j in unknown_pairs(running_example_graph):
            assert adm_replay.bounds(i, j).lower == pytest.approx(
                adm_full.bounds(i, j).lower
            )
            assert adm_replay.bounds(i, j).upper == pytest.approx(
                adm_full.bounds(i, j).upper
            )


class TestAdmQueries:
    def test_known_edge_exact(self, running_example_graph):
        adm = Adm(running_example_graph, max_distance=2.0)
        assert adm.bounds(2, 5).is_exact

    def test_self_pair(self, running_example_graph):
        adm = Adm(running_example_graph, max_distance=2.0)
        assert adm.bounds(3, 3).is_exact

    def test_upper_matrix_is_closure(self, running_example_graph):
        adm = Adm(running_example_graph, max_distance=2.0)
        hi = adm.upper_matrix()
        # sp(1, 2) through node 0.
        assert hi[1, 2] == pytest.approx(0.7)
        assert hi[2, 1] == pytest.approx(0.7)

    def test_empty_graph_trivial_bounds(self):
        g = PartialDistanceGraph(5)
        adm = Adm(g, max_distance=1.0)
        b = adm.bounds(0, 1)
        assert b.lower == 0.0
        assert b.upper == 1.0


class TestAdmIncremental:
    def test_sound_against_ground_truth(self, partially_resolved):
        matrix, resolver = partially_resolved
        cap = float(matrix.max())
        graph = PartialDistanceGraph(matrix.shape[0])
        adm_inc = AdmIncremental(graph, max_distance=cap)
        for i, j, w in resolver.graph.edges():
            graph.add_edge(i, j, w)
            adm_inc.notify_resolved(i, j, w)
        for i, j in unknown_pairs(graph):
            b = adm_inc.bounds(i, j)
            assert b.lower - 1e-9 <= matrix[i, j] <= b.upper + 1e-9

    def test_never_tighter_than_full_adm(self, partially_resolved):
        matrix, resolver = partially_resolved
        cap = float(matrix.max())
        full = Adm(resolver.graph, max_distance=cap)
        graph = PartialDistanceGraph(matrix.shape[0])
        inc = AdmIncremental(graph, max_distance=cap)
        for i, j, w in resolver.graph.edges():
            graph.add_edge(i, j, w)
            inc.notify_resolved(i, j, w)
        for i, j in unknown_pairs(graph)[:50]:
            bi = inc.bounds(i, j)
            bf = full.bounds(i, j)
            assert bi.lower <= bf.lower + 1e-9
            assert bi.upper >= bf.upper - 1e-9

    def test_upper_bounds_match_full_adm(self, partially_resolved):
        # The one-pass UB rule is exact; only LBs may lag.
        matrix, resolver = partially_resolved
        cap = float(matrix.max())
        full = Adm(resolver.graph, max_distance=cap)
        graph = PartialDistanceGraph(matrix.shape[0])
        inc = AdmIncremental(graph, max_distance=cap)
        for i, j, w in resolver.graph.edges():
            graph.add_edge(i, j, w)
            inc.notify_resolved(i, j, w)
        for i, j in unknown_pairs(graph)[:50]:
            assert inc.bounds(i, j).upper == pytest.approx(full.bounds(i, j).upper)

    def test_known_edge_exact(self, running_example_graph):
        inc = AdmIncremental(running_example_graph, max_distance=2.0)
        assert inc.bounds(0, 1).is_exact
