"""Empirical validation of Theorem 4.2: Tri queries cost O(m/n) expected.

The theorem bounds the expected lookup work of the Tri Scheme — the number
of adjacency entries touched for a uniformly random unknown pair — by
``4m/n``.  We verify the bound (and the linear-in-density trend) on random
partial graphs, using ``triangles_inspected`` plus the merge length as the
work proxy.
"""

import numpy as np
import pytest

from repro.bounds.tri import TriScheme
from repro.core.partial_graph import PartialDistanceGraph
from repro.spaces.matrix import random_metric_matrix


def _random_partial_graph(n: int, m: int, seed: int) -> PartialDistanceGraph:
    matrix = random_metric_matrix(n, np.random.default_rng(seed))
    graph = PartialDistanceGraph(n)
    rng = np.random.default_rng(seed + 1)
    while graph.num_edges < m:
        i, j = int(rng.integers(n)), int(rng.integers(n))
        if i != j:
            graph.add_edge(i, j, float(matrix[i, j]))
    return graph


def _mean_lookup_work(graph: PartialDistanceGraph, num_queries: int, seed: int) -> float:
    """Average adjacency work per uniformly random unknown-pair query."""
    n = graph.n
    rng = np.random.default_rng(seed)
    tri = TriScheme(graph, max_distance=10.0)
    total = 0
    done = 0
    while done < num_queries:
        i, j = int(rng.integers(n)), int(rng.integers(n))
        if i == j or graph.has_edge(i, j):
            continue
        total += graph.degree(i) + graph.degree(j)  # merge scan length
        tri.bounds(i, j)
        done += 1
    return total / num_queries


class TestTheorem42:
    @pytest.mark.parametrize("m", [100, 300, 600])
    def test_expected_work_bounded_by_4m_over_n(self, m):
        n = 60
        graph = _random_partial_graph(n, m, seed=m)
        work = _mean_lookup_work(graph, num_queries=300, seed=1)
        # Theorem 4.2: E[time] <= 4m/n (in units of adjacency entries).
        assert work <= 4 * m / n * 1.25  # 25 % sampling slack

    def test_work_grows_linearly_with_density(self):
        n = 60
        works = []
        for m in (100, 200, 400):
            graph = _random_partial_graph(n, m, seed=m)
            works.append(_mean_lookup_work(graph, num_queries=300, seed=2))
        # Doubling m should roughly double the work (within generous slack).
        assert works[1] / works[0] == pytest.approx(2.0, rel=0.5)
        assert works[2] / works[1] == pytest.approx(2.0, rel=0.5)

    def test_triangles_never_exceed_scan_work(self):
        graph = _random_partial_graph(50, 300, seed=9)
        tri = TriScheme(graph, max_distance=10.0)
        rng = np.random.default_rng(3)
        for _ in range(100):
            i, j = int(rng.integers(50)), int(rng.integers(50))
            if i == j or graph.has_edge(i, j):
                continue
            before = tri.triangles_inspected
            tri.bounds(i, j)
            inspected = tri.triangles_inspected - before
            assert inspected <= min(graph.degree(i), graph.degree(j))
