"""Unit tests for the AESA full-precomputation baseline."""

import pytest

from repro.bounds.aesa import Aesa
from repro.core.resolver import SmartResolver
from repro.spaces.matrix import MatrixSpace, random_metric_matrix


@pytest.fixture
def space(rng):
    return MatrixSpace(random_metric_matrix(12, rng))


class TestBootstrap:
    def test_resolves_every_pair(self, space):
        oracle = space.oracle()
        resolver = SmartResolver(oracle)
        aesa = Aesa(resolver.graph, space.diameter_bound())
        resolver.bounder = aesa
        calls = aesa.bootstrap(resolver)
        n = space.n
        assert calls == n * (n - 1) // 2
        assert resolver.graph.num_edges == calls

    def test_bounds_exact_after_bootstrap(self, space):
        resolver = SmartResolver(space.oracle())
        aesa = Aesa(resolver.graph, space.diameter_bound())
        resolver.bounder = aesa
        aesa.bootstrap(resolver)
        for i in range(space.n):
            for j in range(i + 1, space.n):
                b = aesa.bounds(i, j)
                assert b.is_exact
                assert b.lower == pytest.approx(space.distance(i, j))


class TestAsBaseline:
    def test_zero_algorithm_phase_calls(self, space):
        from repro.harness import run_experiment

        record = run_experiment(space, "prim", "aesa")
        n = space.n
        assert record.bootstrap_calls == n * (n - 1) // 2
        assert record.algorithm_calls == 0

    def test_output_still_exact(self, space):
        from repro.harness import run_experiment

        vanilla = run_experiment(space, "prim", "none")
        aesa = run_experiment(space, "prim", "aesa")
        assert aesa.result.total_weight == pytest.approx(vanilla.result.total_weight)

    def test_trivial_bounds_before_bootstrap(self, space):
        from repro.core.partial_graph import PartialDistanceGraph

        g = PartialDistanceGraph(space.n)
        aesa = Aesa(g, max_distance=1.0)
        b = aesa.bounds(0, 1)
        assert b.lower == 0.0
        assert b.upper == 1.0
