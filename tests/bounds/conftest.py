"""Fixtures shared by the bound-provider tests."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core.partial_graph import PartialDistanceGraph
from repro.core.resolver import SmartResolver
from repro.spaces.matrix import MatrixSpace, random_metric_matrix

#: Hand-crafted running example in the spirit of the paper's Figure 1:
#: 7 objects, 8 known edges, distances in [0, 1].
RUNNING_EXAMPLE_EDGES = {
    (1, 3): 0.8,
    (3, 4): 0.1,
    (0, 1): 0.3,
    (0, 2): 0.4,
    (2, 3): 0.5,
    (2, 4): 0.45,
    (5, 6): 0.2,
    (2, 5): 0.6,
}


@pytest.fixture
def running_example_graph():
    """The 7-object partial graph with 8 known edges."""
    g = PartialDistanceGraph(7)
    for (i, j), w in RUNNING_EXAMPLE_EDGES.items():
        g.add_edge(i, j, w)
    return g


@pytest.fixture
def partially_resolved(rng):
    """A ground-truth metric plus a resolver holding a random partial graph.

    Returns ``(matrix, resolver)`` with 60 of the 190 pairs resolved.
    """
    matrix = random_metric_matrix(20, rng)
    space = MatrixSpace(matrix)
    resolver = SmartResolver(space.oracle())
    pairs = list(itertools.combinations(range(20), 2))
    picker = random.Random(7)
    for i, j in picker.sample(pairs, 60):
        resolver.distance(i, j)
    return matrix, resolver


def unknown_pairs(graph):
    """All unresolved pairs of a partial graph."""
    return list(graph.unknown_pairs())
