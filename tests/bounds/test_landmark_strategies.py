"""Unit tests for the alternative landmark-selection strategies."""

import pytest

from repro.bounds.landmarks import (
    SELECTION_STRATEGIES,
    bootstrap_with_landmarks,
    select_landmarks,
    select_landmarks_maxsum,
    select_landmarks_random,
)
from repro.core.resolver import SmartResolver
from repro.spaces.matrix import MatrixSpace, random_metric_matrix

import numpy as np


@pytest.fixture
def resolver(rng):
    space = MatrixSpace(random_metric_matrix(20, rng))
    return SmartResolver(space.oracle())


class TestRandomSelection:
    def test_no_selection_calls(self, resolver):
        select_landmarks_random(resolver, 5)
        assert resolver.oracle.calls == 0

    def test_distinct_and_in_range(self, resolver):
        landmarks = select_landmarks_random(resolver, 6, seed=3)
        assert len(set(landmarks)) == 6
        assert all(0 <= lm < 20 for lm in landmarks)

    def test_deterministic_given_seed(self, resolver):
        a = select_landmarks_random(resolver, 5, seed=9)
        b = select_landmarks_random(resolver, 5, seed=9)
        assert a == b

    def test_count_validation(self, resolver):
        with pytest.raises(ValueError):
            select_landmarks_random(resolver, 0)
        with pytest.raises(ValueError):
            select_landmarks_random(resolver, 21)


class TestMaxsumSelection:
    def test_second_maximises_total(self, rng):
        matrix = random_metric_matrix(15, rng)
        space = MatrixSpace(matrix)
        resolver = SmartResolver(space.oracle())
        landmarks = select_landmarks_maxsum(resolver, 2)
        assert landmarks[1] == int(np.argmax(matrix[0]))  # sum == row 0 here

    def test_distinct(self, resolver):
        landmarks = select_landmarks_maxsum(resolver, 6)
        assert len(set(landmarks)) == 6

    def test_count_validation(self, resolver):
        with pytest.raises(ValueError):
            select_landmarks_maxsum(resolver, 0)


class TestDispatch:
    @pytest.mark.parametrize("strategy", SELECTION_STRATEGIES)
    def test_every_strategy_works(self, resolver, strategy):
        landmarks = select_landmarks(resolver, 4, strategy)
        assert len(set(landmarks)) == 4

    def test_unknown_strategy_rejected(self, resolver):
        with pytest.raises(ValueError):
            select_landmarks(resolver, 4, "psychic")

    @pytest.mark.parametrize("strategy", SELECTION_STRATEGIES)
    def test_bootstrap_resolves_rows(self, rng, strategy):
        space = MatrixSpace(random_metric_matrix(16, rng))
        resolver = SmartResolver(space.oracle())
        landmarks = bootstrap_with_landmarks(resolver, 3, strategy=strategy)
        for lm in landmarks:
            assert resolver.graph.degree(lm) == 15
