"""Tests for the Tri Scheme under relaxed triangle inequalities."""

import itertools

import numpy as np
import pytest

from repro.bounds.tri import TriScheme
from repro.core.resolver import SmartResolver
from repro.spaces.vector import EuclideanSpace, SquaredEuclideanSpace


@pytest.fixture
def points(rng):
    return rng.uniform(0, 1, size=(20, 2))


@pytest.fixture
def squared_space(points):
    return SquaredEuclideanSpace(points)


class TestSquaredEuclideanSpace:
    def test_is_square_of_euclidean(self, points):
        sq = SquaredEuclideanSpace(points)
        eu = EuclideanSpace(points)
        for i, j in itertools.combinations(range(8), 2):
            assert sq.distance(i, j) == pytest.approx(eu.distance(i, j) ** 2)

    def test_violates_plain_triangle(self):
        # Collinear 0-1-2 at unit spacing: 4 > 1 + 1.
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        sq = SquaredEuclideanSpace(pts)
        assert sq.distance(0, 2) > sq.distance(0, 1) + sq.distance(1, 2)

    def test_satisfies_two_relaxed_triangle(self, squared_space):
        c = squared_space.triangle_relaxation
        n = squared_space.n
        for i, j, k in itertools.combinations(range(n), 3):
            dij = squared_space.distance(i, j)
            dik = squared_space.distance(i, k)
            dkj = squared_space.distance(k, j)
            assert dij <= c * (dik + dkj) + 1e-9

    def test_diameter_dominates(self, squared_space):
        cap = squared_space.diameter_bound()
        for i, j in itertools.combinations(range(squared_space.n), 2):
            assert squared_space.distance(i, j) <= cap + 1e-9

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            SquaredEuclideanSpace(np.array([1.0, 2.0]))


class TestRelaxedTriScheme:
    def test_relaxed_bounds_contain_truth(self, squared_space):
        resolver = SmartResolver(squared_space.oracle())
        tri = TriScheme(
            resolver.graph, squared_space.diameter_bound(), relaxation=2.0
        )
        resolver.bounder = tri
        for w in range(2, squared_space.n):
            resolver.distance(0, w)
            resolver.distance(1, w)
        b = tri.bounds(0, 1)
        truth = squared_space.distance(0, 1)
        assert b.lower - 1e-9 <= truth <= b.upper + 1e-9

    def test_plain_bounds_would_be_unsound(self, rng):
        """Using c=1 bounds on a 2-relaxed metric must break soundness."""
        pts = np.array([[float(i), 0.0] for i in range(8)])
        space = SquaredEuclideanSpace(pts)
        resolver = SmartResolver(space.oracle())
        wrong = TriScheme(resolver.graph, space.diameter_bound(), relaxation=1.0)
        resolver.bounder = wrong
        for w in range(2, 8):
            resolver.distance(0, w)
            resolver.distance(1, w)
        b = wrong.bounds(0, 1)
        truth = space.distance(0, 1)
        # On collinear squared distances the plain UB underestimates.
        assert not (b.lower - 1e-9 <= truth <= b.upper + 1e-9)

    def test_relaxation_one_matches_original(self, rng):
        space = EuclideanSpace(rng.uniform(0, 1, size=(15, 2)))
        resolver = SmartResolver(space.oracle())
        plain = TriScheme(resolver.graph, space.diameter_bound())
        relaxed = TriScheme(resolver.graph, space.diameter_bound(), relaxation=1.0)
        for w in range(2, 15):
            resolver.distance(0, w)
            resolver.distance(1, w)
        assert plain.bounds(0, 1).lower == relaxed.bounds(0, 1).lower
        assert plain.bounds(0, 1).upper == relaxed.bounds(0, 1).upper

    def test_invalid_relaxation_rejected(self, rng):
        from repro.core.partial_graph import PartialDistanceGraph

        with pytest.raises(ValueError):
            TriScheme(PartialDistanceGraph(4), relaxation=0.9)

    def test_exact_algorithms_on_relaxed_metric(self, squared_space):
        """Prim over a 2-relaxed metric with relaxed Tri: identical output."""
        from repro.algorithms import prim_mst

        vanilla = prim_mst(SmartResolver(squared_space.oracle()))
        oracle = squared_space.oracle()
        resolver = SmartResolver(oracle)
        resolver.bounder = TriScheme(
            resolver.graph, squared_space.diameter_bound(), relaxation=2.0
        )
        augmented = prim_mst(resolver)
        assert augmented.total_weight == pytest.approx(vanilla.total_weight)
        n = squared_space.n
        assert oracle.calls <= n * (n - 1) // 2
