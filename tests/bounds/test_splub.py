"""Unit tests for SPLUB (Algorithm 1) — exact tightest bounds."""

import math

import pytest

from repro.bounds.splub import Splub, dijkstra_distances
from repro.core.partial_graph import PartialDistanceGraph

from tests.bounds.conftest import unknown_pairs


class TestDijkstra:
    def test_simple_path(self):
        g = PartialDistanceGraph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 2.0)
        g.add_edge(0, 2, 5.0)
        dist = dijkstra_distances(g, 0)
        assert dist[0] == 0.0
        assert dist[1] == 1.0
        assert dist[2] == 3.0  # through node 1, not the direct 5.0 edge
        assert math.isinf(dist[3])

    def test_matches_scipy(self, partially_resolved):
        import numpy as np
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import dijkstra as scipy_dijkstra

        _, resolver = partially_resolved
        g = resolver.graph
        n = g.n
        dense = np.zeros((n, n))
        for i, j, w in g.edges():
            dense[i, j] = dense[j, i] = w
        ref = scipy_dijkstra(csr_matrix(dense), directed=False, indices=0)
        ours = dijkstra_distances(g, 0)
        assert np.allclose(ours, ref)


class TestRunningExample:
    def test_upper_bound_is_shortest_path(self, running_example_graph):
        splub = Splub(running_example_graph, max_distance=2.0)
        # sp(1, 2) = 1→0→2 = 0.3 + 0.4 = 0.7.
        assert splub.bounds(1, 2).upper == pytest.approx(0.7)

    def test_lower_bound_wraps_longest_edge(self, running_example_graph):
        splub = Splub(running_example_graph, max_distance=2.0)
        # Edge (1,3)=0.8 wrapped through sp(2,3)=0.5 gives 0.3.
        assert splub.bounds(1, 2).lower == pytest.approx(0.3)

    def test_disconnected_pair_keeps_cap(self, running_example_graph):
        splub = Splub(running_example_graph, max_distance=2.0)
        b = splub.bounds(0, 6)
        # sp(0, 6) = 0→2→5→6 = 0.4 + 0.6 + 0.2 = 1.2.
        assert b.upper == pytest.approx(1.2)
        assert b.lower == 0.0

    def test_known_edge_exact(self, running_example_graph):
        splub = Splub(running_example_graph, max_distance=2.0)
        assert splub.bounds(3, 4).is_exact


class TestTightness:
    def test_bounds_contain_ground_truth(self, partially_resolved):
        matrix, resolver = partially_resolved
        splub = Splub(resolver.graph, max_distance=float(matrix.max()))
        for i, j in unknown_pairs(resolver.graph):
            b = splub.bounds(i, j)
            assert b.lower - 1e-9 <= matrix[i, j] <= b.upper + 1e-9

    def test_upper_bound_is_attained_by_some_metric(self, partially_resolved):
        """Tightness of TUB: setting the edge to its UB stays a metric.

        The shortest-path completion of the partial graph realises every
        upper bound simultaneously, so each TUB must be achievable.
        """
        import numpy as np

        matrix, resolver = partially_resolved
        g = resolver.graph
        n = g.n
        cap = float(matrix.max())
        splub = Splub(g, max_distance=cap * n)
        # Shortest-path completion of the known edges.
        big = np.full((n, n), np.inf)
        np.fill_diagonal(big, 0.0)
        for i, j, w in g.edges():
            big[i, j] = big[j, i] = w
        for k in range(n):
            np.minimum(big, big[:, k][:, None] + big[k, :][None, :], out=big)
        for i, j in unknown_pairs(g)[:30]:
            ub = splub.bounds(i, j).upper
            if np.isfinite(big[i, j]):
                assert ub == pytest.approx(big[i, j])

    def test_lemma_4_1_lower_bound_tightest(self, running_example_graph):
        """Brute-force check of Lemma 4.1 on the running example.

        Enumerate every simple path between the endpoints and every choice
        of 'longest edge' on it; SPLUB's LB must equal the best residue.
        """
        g = running_example_graph
        splub = Splub(g, max_distance=2.0)

        def best_residue(src, dst):
            # max over known edges (k, l) of w − (sp(src,k) + sp(dst,l)).
            from repro.bounds.splub import dijkstra_distances

            sp_s = dijkstra_distances(g, src)
            sp_d = dijkstra_distances(g, dst)
            best = 0.0
            for k, l, w in g.edges():
                best = max(
                    best,
                    w - (sp_s[k] + sp_d[l]),
                    w - (sp_s[l] + sp_d[k]),
                )
            return best

        for i, j in [(1, 2), (0, 3), (1, 4), (0, 4), (2, 6)]:
            if g.has_edge(i, j):
                continue
            assert splub.bounds(i, j).lower == pytest.approx(best_residue(i, j))


class TestTreeCache:
    def test_shared_endpoint_pays_one_dijkstra(self, running_example_graph):
        splub = Splub(running_example_graph, max_distance=2.0)
        splub.bounds(1, 2)
        runs_after_first = splub.dijkstra_runs
        assert runs_after_first == 2  # one tree per endpoint
        splub.bounds(1, 4)
        splub.bounds(1, 6)
        # Node 1's tree is reused; only the new endpoints cost a run.
        assert splub.dijkstra_runs == runs_after_first + 2

    def test_insert_invalidates_all_trees(self, running_example_graph):
        splub = Splub(running_example_graph, max_distance=2.0)
        splub.bounds(1, 2)
        running_example_graph.add_edge(0, 5, 0.3)
        splub.bounds(1, 2)
        assert splub.dijkstra_runs == 4  # both trees recomputed

    def test_cache_off_matches_cache_on(self, partially_resolved):
        matrix, resolver = partially_resolved
        cap = float(matrix.max())
        cached = Splub(resolver.graph, max_distance=cap)
        uncached = Splub(resolver.graph, max_distance=cap, cache_trees=False)
        queries = unknown_pairs(resolver.graph)[:25]
        for i, j in queries:
            assert cached.bounds(i, j) == uncached.bounds(i, j)
        # The uncached provider pays two fresh trees per query.
        assert uncached.dijkstra_runs == 2 * len(queries)
        assert cached.dijkstra_runs < uncached.dijkstra_runs


class TestUpdateIsFree:
    def test_no_stale_state_after_insert(self, running_example_graph):
        splub = Splub(running_example_graph, max_distance=2.0)
        before = splub.bounds(0, 6)
        running_example_graph.add_edge(0, 5, 0.3)
        splub.notify_resolved(0, 5, 0.3)
        after = splub.bounds(0, 6)
        # New edge creates path 0→5→6 = 0.5 < old 1.2.
        assert after.upper == pytest.approx(0.5)
        assert after.upper < before.upper
