"""Scalar-vs-vector Tri kernel equivalence and relaxed-bound correctness."""

import itertools
import math

import pytest

from repro.bounds.tri import TriScheme
from repro.core.resolver import SmartResolver
from repro.spaces.matrix import MatrixSpace, random_metric_matrix
from repro.spaces.vector import SquaredEuclideanSpace


def brute_force_tri_bounds(graph, i, j, c, cap):
    """Reference reduction straight from the relaxed triangle inequality."""
    lb, ub = 0.0, cap
    for w in set(graph.adjacency_list(i)) & set(graph.adjacency_list(j)):
        diw = graph.weight(i, w)
        djw = graph.weight(j, w)
        lb = max(lb, diw / c - djw, djw / c - diw)
        ub = min(ub, c * (diw + djw))
    return lb, min(ub, cap)


@pytest.fixture
def warmed(rng):
    """A Tri provider over a random metric with ~60% of pairs resolved."""
    matrix = random_metric_matrix(18, rng)
    space = MatrixSpace(matrix)
    resolver = SmartResolver(space.oracle())
    tri = TriScheme(resolver.graph, space.diameter_bound())
    resolver.bounder = tri
    for i, j in itertools.combinations(range(18), 2):
        if rng.random() < 0.6:
            resolver.distance(i, j)
    return tri, resolver.graph


class TestKernelEquivalence:
    def test_scalar_equals_vector_everywhere(self, warmed):
        tri, graph = warmed
        for i, j in itertools.combinations(range(18), 2):
            if graph.get(i, j) is not None:
                continue
            loop = tri._bounds_loop(i, j)
            vec = tri._bounds_vector(i, j)
            assert loop.lower == vec.lower  # bit-identical, not approx
            assert loop.upper == vec.upper

    def test_dispatch_threshold_does_not_change_results(self, warmed):
        tri, graph = warmed
        always_vector = TriScheme(graph, tri.max_distance)
        always_vector.vector_threshold = 0
        always_scalar = TriScheme(graph, tri.max_distance)
        always_scalar.vector_threshold = math.inf
        for i, j in itertools.combinations(range(18), 2):
            assert always_vector.bounds(i, j) == always_scalar.bounds(i, j)

    def test_bounds_many_equals_per_pair(self, warmed):
        tri, _ = warmed
        pairs = list(itertools.combinations(range(18), 2))
        batch = tri.bounds_many(pairs)
        for (i, j), b in zip(pairs, batch):
            assert b == tri.bounds(i, j)

    def test_triangle_counter_identical_across_kernels(self, warmed):
        tri, graph = warmed
        pairs = [
            (i, j)
            for i, j in itertools.combinations(range(18), 2)
            if graph.get(i, j) is None
        ]
        loop_counter = TriScheme(graph, tri.max_distance)
        loop_counter.vector_threshold = math.inf
        vec_counter = TriScheme(graph, tri.max_distance)
        vec_counter.vector_threshold = 0
        for i, j in pairs:
            loop_counter.bounds(i, j)
            vec_counter.bounds(i, j)
        assert loop_counter.triangles_inspected == vec_counter.triangles_inspected
        assert loop_counter.triangles_inspected > 0

    def test_bounds_scalar_bypasses_dispatch(self, warmed):
        tri, graph = warmed
        tri.vector_threshold = 0  # bounds() would take the vector kernel
        for i, j in itertools.combinations(range(6), 2):
            assert tri.bounds_scalar(i, j) == tri.bounds(i, j)


class TestRelaxedKernels:
    @pytest.fixture
    def relaxed(self, rng):
        pts = rng.uniform(0, 1, size=(16, 2))
        space = SquaredEuclideanSpace(pts)
        resolver = SmartResolver(space.oracle())
        tri = TriScheme(resolver.graph, space.diameter_bound(), relaxation=2.0)
        resolver.bounder = tri
        for i, j in itertools.combinations(range(16), 2):
            if rng.random() < 0.55:
                resolver.distance(i, j)
        return space, tri, resolver.graph

    def test_relaxed_matches_brute_force(self, relaxed):
        space, tri, graph = relaxed
        for i, j in itertools.combinations(range(16), 2):
            if graph.get(i, j) is not None:
                continue
            lb, ub = brute_force_tri_bounds(graph, i, j, 2.0, tri.max_distance)
            lb = max(lb, 0.0)
            if lb > ub:
                lb = ub
            b = tri.bounds(i, j)
            assert b.lower == pytest.approx(lb, abs=1e-12)
            assert b.upper == pytest.approx(ub, abs=1e-12)

    def test_relaxed_bounds_contain_truth(self, relaxed):
        space, tri, graph = relaxed
        for i, j in itertools.combinations(range(16), 2):
            truth = space.distance(i, j)
            b = tri.bounds(i, j)
            assert b.lower - 1e-9 <= truth <= b.upper + 1e-9

    def test_relaxed_scalar_equals_vector(self, relaxed):
        _, tri, graph = relaxed
        for i, j in itertools.combinations(range(16), 2):
            if graph.get(i, j) is not None:
                continue
            assert tri._bounds_loop(i, j) == tri._bounds_vector(i, j)

    def test_relaxed_bounds_many_equals_per_pair(self, relaxed):
        _, tri, _ = relaxed
        pairs = list(itertools.combinations(range(16), 2))
        for (i, j), b in zip(pairs, tri.bounds_many(pairs)):
            assert b == tri.bounds(i, j)
