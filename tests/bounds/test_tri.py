"""Unit tests for the Tri Scheme (Algorithm 2)."""

import math

import pytest

from repro.bounds.splub import Splub
from repro.bounds.tri import TriScheme
from repro.core.partial_graph import PartialDistanceGraph

from tests.bounds.conftest import unknown_pairs


class TestRunningExample:
    """Hand-computed bounds on the Figure-1-style 7-object example."""

    def test_pair_with_two_triangles(self, running_example_graph):
        # (1, 2) closes triangles through 0 and 3:
        #   via 0: |0.3 − 0.4| = 0.1, 0.3 + 0.4 = 0.7
        #   via 3: |0.8 − 0.5| = 0.3, 0.8 + 0.5 = 1.3
        tri = TriScheme(running_example_graph, max_distance=2.0)
        b = tri.bounds(1, 2)
        assert b.lower == pytest.approx(0.3)
        assert b.upper == pytest.approx(0.7)

    def test_pair_with_single_triangle(self, running_example_graph):
        # (1, 4) has only the triangle through 3: |0.8 − 0.1| / 0.8 + 0.1.
        tri = TriScheme(running_example_graph, max_distance=2.0)
        b = tri.bounds(1, 4)
        assert b.lower == pytest.approx(0.7)
        assert b.upper == pytest.approx(0.9)

    def test_pair_with_no_triangle_gets_trivial_bounds(self, running_example_graph):
        # (0, 6): 0's neighbours {1, 2} and 6's neighbours {5} are disjoint.
        tri = TriScheme(running_example_graph, max_distance=2.0)
        b = tri.bounds(0, 6)
        assert b.lower == 0.0
        assert b.upper == 2.0

    def test_known_edge_returns_exact(self, running_example_graph):
        tri = TriScheme(running_example_graph, max_distance=2.0)
        b = tri.bounds(1, 3)
        assert b.is_exact
        assert b.lower == pytest.approx(0.8)

    def test_self_pair(self, running_example_graph):
        tri = TriScheme(running_example_graph)
        assert tri.bounds(4, 4).is_exact


class TestSoundness:
    def test_bounds_contain_ground_truth(self, partially_resolved):
        matrix, resolver = partially_resolved
        tri = TriScheme(resolver.graph, max_distance=float(matrix.max()))
        for i, j in unknown_pairs(resolver.graph):
            b = tri.bounds(i, j)
            assert b.lower - 1e-9 <= matrix[i, j] <= b.upper + 1e-9

    def test_never_tighter_than_splub(self, partially_resolved):
        matrix, resolver = partially_resolved
        cap = float(matrix.max())
        tri = TriScheme(resolver.graph, max_distance=cap)
        splub = Splub(resolver.graph, max_distance=cap)
        for i, j in unknown_pairs(resolver.graph)[:40]:
            bt = tri.bounds(i, j)
            bs = splub.bounds(i, j)
            assert bt.lower <= bs.lower + 1e-9
            assert bt.upper >= bs.upper - 1e-9


class TestUpdates:
    def test_new_edge_improves_bounds(self):
        g = PartialDistanceGraph(4)
        tri = TriScheme(g, max_distance=1.0)
        assert tri.bounds(0, 1).gap == 1.0
        g.add_edge(0, 2, 0.2)
        g.add_edge(1, 2, 0.3)
        tri.notify_resolved(0, 2, 0.2)  # no-op, but part of the protocol
        b = tri.bounds(0, 1)
        assert b.lower == pytest.approx(0.1)
        assert b.upper == pytest.approx(0.5)

    def test_monotone_tightening(self, rng):
        # Adding triangles can only tighten Tri bounds.
        from repro.spaces.matrix import random_metric_matrix

        matrix = random_metric_matrix(10, rng)
        g = PartialDistanceGraph(10)
        tri = TriScheme(g, max_distance=float(matrix.max()))
        previous = tri.bounds(0, 1)
        for w in range(2, 10):
            g.add_edge(0, w, matrix[0, w])
            g.add_edge(1, w, matrix[1, w])
            current = tri.bounds(0, 1)
            assert current.lower >= previous.lower - 1e-12
            assert current.upper <= previous.upper + 1e-12
            previous = current


class TestAccounting:
    def test_triangle_counter(self, running_example_graph):
        tri = TriScheme(running_example_graph, max_distance=2.0)
        tri.bounds(1, 2)
        assert tri.triangles_inspected == 2
        tri.bounds(1, 4)
        assert tri.triangles_inspected == 3

    def test_default_cap_is_infinite(self):
        g = PartialDistanceGraph(3)
        tri = TriScheme(g)
        assert math.isinf(tri.bounds(0, 1).upper)
