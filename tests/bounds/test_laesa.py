"""Unit tests for the LAESA landmark bound provider."""

import numpy as np
import pytest

from repro.bounds.laesa import Laesa
from repro.bounds.splub import Splub
from repro.core.partial_graph import PartialDistanceGraph
from repro.core.resolver import SmartResolver
from repro.spaces.matrix import MatrixSpace, random_metric_matrix

from tests.bounds.conftest import unknown_pairs


@pytest.fixture
def bootstrapped(rng):
    """Ground truth, resolver, and a bootstrapped LAESA over 18 objects."""
    matrix = random_metric_matrix(18, rng)
    space = MatrixSpace(matrix)
    resolver = SmartResolver(space.oracle())
    laesa = Laesa(resolver.graph, max_distance=float(matrix.max()), num_landmarks=4)
    resolver.bounder = laesa
    laesa.bootstrap(resolver)
    return matrix, resolver, laesa


class TestBootstrap:
    def test_reports_call_count(self, rng):
        matrix = random_metric_matrix(18, rng)
        space = MatrixSpace(matrix)
        resolver = SmartResolver(space.oracle())
        laesa = Laesa(resolver.graph, num_landmarks=4)
        calls = laesa.bootstrap(resolver)
        assert calls == resolver.oracle.calls
        assert calls == 4 * 17 - (4 * 3) // 2

    def test_landmark_rows_match_truth(self, bootstrapped):
        matrix, _, laesa = bootstrapped
        for row, lm in enumerate(laesa.landmarks):
            assert np.allclose(laesa._matrix[row], matrix[lm])


class TestBounds:
    def test_formula_matches_manual(self, bootstrapped):
        matrix, resolver, laesa = bootstrapped
        i, j = next(iter(unknown_pairs(resolver.graph)))
        b = laesa.bounds(i, j)
        rows = np.array([matrix[lm] for lm in laesa.landmarks])
        expected_lb = np.abs(rows[:, i] - rows[:, j]).max()
        expected_ub = (rows[:, i] + rows[:, j]).min()
        assert b.lower == pytest.approx(expected_lb)
        assert b.upper == pytest.approx(min(expected_ub, laesa.max_distance))

    def test_sound_against_ground_truth(self, bootstrapped):
        matrix, resolver, laesa = bootstrapped
        for i, j in unknown_pairs(resolver.graph):
            b = laesa.bounds(i, j)
            assert b.lower - 1e-9 <= matrix[i, j] <= b.upper + 1e-9

    def test_never_tighter_than_splub_on_same_graph(self, bootstrapped):
        # SPLUB sees all landmark edges, so it dominates LAESA's 2-hop view.
        matrix, resolver, laesa = bootstrapped
        splub = Splub(resolver.graph, max_distance=float(matrix.max()))
        for i, j in unknown_pairs(resolver.graph)[:40]:
            bl = laesa.bounds(i, j)
            bs = splub.bounds(i, j)
            assert bl.lower <= bs.lower + 1e-9
            assert bl.upper >= bs.upper - 1e-9

    def test_unbootstrapped_returns_trivial(self, rng):
        g = PartialDistanceGraph(6)
        laesa = Laesa(g, max_distance=1.5)
        b = laesa.bounds(0, 1)
        assert b.lower == 0.0
        assert b.upper == 1.5

    def test_known_pair_exact(self, bootstrapped):
        _, resolver, laesa = bootstrapped
        lm = laesa.landmarks[0]
        other = (lm + 1) % resolver.oracle.n
        assert laesa.bounds(lm, other).is_exact


class TestUpdates:
    def test_landmark_edge_refreshes_matrix(self, rng):
        matrix = random_metric_matrix(10, rng)
        g = PartialDistanceGraph(10)
        laesa = Laesa(g, max_distance=float(matrix.max()))
        fake = np.full((1, 10), 0.5)
        fake[0, 3] = 0.0
        laesa.adopt([3], fake)
        laesa.notify_resolved(3, 7, 0.123)
        assert laesa._matrix[0, 7] == pytest.approx(0.123)

    def test_non_landmark_edge_ignored(self, bootstrapped):
        _, _, laesa = bootstrapped
        before = laesa._matrix.copy()
        non_landmarks = [o for o in range(18) if o not in laesa.landmarks]
        laesa.notify_resolved(non_landmarks[0], non_landmarks[1], 0.5)
        assert np.array_equal(before, laesa._matrix)


class TestAdopt:
    def test_shape_mismatch_rejected(self):
        g = PartialDistanceGraph(5)
        laesa = Laesa(g)
        with pytest.raises(ValueError):
            laesa.adopt([0, 1], np.zeros((3, 5)))
