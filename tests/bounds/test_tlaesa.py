"""Unit tests for the TLAESA tree-descending landmark provider."""

import pytest

from repro.bounds.laesa import Laesa
from repro.bounds.tlaesa import Tlaesa
from repro.core.partial_graph import PartialDistanceGraph
from repro.core.resolver import SmartResolver
from repro.spaces.matrix import MatrixSpace, random_metric_matrix

from tests.bounds.conftest import unknown_pairs


@pytest.fixture
def bootstrapped(rng):
    matrix = random_metric_matrix(20, rng)
    space = MatrixSpace(matrix)
    resolver = SmartResolver(space.oracle())
    tlaesa = Tlaesa(resolver.graph, max_distance=float(matrix.max()), num_landmarks=6)
    resolver.bounder = tlaesa
    tlaesa.bootstrap(resolver)
    return matrix, resolver, tlaesa


class TestBootstrap:
    def test_same_budget_as_laesa(self, rng):
        matrix = random_metric_matrix(20, rng)
        space = MatrixSpace(matrix)

        r1 = SmartResolver(space.oracle())
        laesa = Laesa(r1.graph, num_landmarks=6)
        laesa_calls = laesa.bootstrap(r1)

        r2 = SmartResolver(space.oracle())
        tlaesa = Tlaesa(r2.graph, num_landmarks=6)
        tlaesa_calls = tlaesa.bootstrap(r2)
        assert tlaesa_calls == laesa_calls

    def test_tree_built(self, bootstrapped):
        _, _, tlaesa = bootstrapped
        assert tlaesa._root is not None


class TestBounds:
    def test_sound_against_ground_truth(self, bootstrapped):
        matrix, resolver, tlaesa = bootstrapped
        for i, j in unknown_pairs(resolver.graph):
            b = tlaesa.bounds(i, j)
            assert b.lower - 1e-9 <= matrix[i, j] <= b.upper + 1e-9

    def test_never_tighter_than_full_laesa(self, rng):
        # TLAESA evaluates a subset of the landmark rows, so its bounds can
        # never beat a full-scan LAESA over the same landmarks.
        matrix = random_metric_matrix(20, rng)
        space = MatrixSpace(matrix)
        resolver = SmartResolver(space.oracle())
        tlaesa = Tlaesa(resolver.graph, max_distance=float(matrix.max()), num_landmarks=6)
        resolver.bounder = tlaesa
        tlaesa.bootstrap(resolver)
        laesa = Laesa(resolver.graph, max_distance=float(matrix.max()))
        laesa.adopt(tlaesa.landmarks, tlaesa._matrix.copy())
        for i, j in unknown_pairs(resolver.graph)[:40]:
            bt = tlaesa.bounds(i, j)
            bl = laesa.bounds(i, j)
            assert bt.lower <= bl.lower + 1e-9
            assert bt.upper >= bl.upper - 1e-9

    def test_visits_subset_of_rows(self, bootstrapped):
        _, resolver, tlaesa = bootstrapped
        i, j = next(iter(unknown_pairs(resolver.graph)))
        rows = tlaesa._collect_rows(i, j)
        assert 0 < len(rows) <= len(tlaesa.landmarks)
        assert len(set(rows)) == len(rows)

    def test_known_pair_exact(self, bootstrapped):
        _, _, tlaesa = bootstrapped
        lm = tlaesa.landmarks[0]
        assert tlaesa.bounds(lm, (lm + 1) % 20).is_exact

    def test_unbootstrapped_trivial(self):
        g = PartialDistanceGraph(5)
        t = Tlaesa(g, max_distance=1.0)
        b = t.bounds(0, 1)
        assert b.upper == 1.0

    def test_single_landmark(self, rng):
        matrix = random_metric_matrix(8, rng)
        space = MatrixSpace(matrix)
        resolver = SmartResolver(space.oracle())
        t = Tlaesa(resolver.graph, max_distance=float(matrix.max()), num_landmarks=1)
        resolver.bounder = t
        t.bootstrap(resolver)
        for i, j in unknown_pairs(resolver.graph)[:10]:
            b = t.bounds(i, j)
            assert b.lower - 1e-9 <= matrix[i, j] <= b.upper + 1e-9
