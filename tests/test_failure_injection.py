"""Failure-injection tests: the library under misbehaving oracles.

Expensive oracles fail in practice — rate limits, corrupt answers,
timeouts.  These tests pin down what the library guarantees in each case.
"""

import math

import pytest

from repro.algorithms import knn_graph, pam, prim_mst
from repro.bounds import TriScheme
from repro.core.exceptions import BudgetExceededError, MetricViolationError
from repro.core.oracle import DistanceOracle
from repro.core.resolver import SmartResolver
from repro.core.validation import ValidatingOracle
from repro.spaces.matrix import MatrixSpace, random_metric_matrix


@pytest.fixture
def matrix(rng):
    return random_metric_matrix(15, rng)


class FlakyOracleError(RuntimeError):
    """Stand-in for a network/timeout failure from the oracle."""


class TestTransientFailures:
    def test_exception_propagates_cleanly(self, matrix):
        calls = {"count": 0}

        def flaky(i, j):
            calls["count"] += 1
            if calls["count"] == 10:
                raise FlakyOracleError("simulated timeout")
            return float(matrix[i, j])

        oracle = DistanceOracle(flaky, 15)
        resolver = SmartResolver(oracle)
        resolver.bounder = TriScheme(resolver.graph, float(matrix.max()))
        with pytest.raises(FlakyOracleError):
            prim_mst(resolver)

    def test_failed_call_is_not_cached_or_charged(self, matrix):
        attempts = {"count": 0}

        def flaky(i, j):
            attempts["count"] += 1
            if attempts["count"] == 1:
                raise FlakyOracleError
            return float(matrix[i, j])

        oracle = DistanceOracle(flaky, 15)
        with pytest.raises(FlakyOracleError):
            oracle(0, 1)
        assert oracle.calls == 0  # failed attempts are not charged
        assert not oracle.is_resolved(0, 1)
        # A retry succeeds, returns the right value, and charges once.
        assert oracle(0, 1) == matrix[0, 1]
        assert oracle.calls == 1

    def test_resolver_state_survives_failure_and_can_resume(self, matrix):
        toggle = {"fail": False}

        def flaky(i, j):
            if toggle["fail"]:
                raise FlakyOracleError
            return float(matrix[i, j])

        oracle = DistanceOracle(flaky, 15)
        resolver = SmartResolver(oracle)
        resolver.bounder = TriScheme(resolver.graph, float(matrix.max()))
        for j in range(1, 10):
            resolver.distance(0, j)
        edges_before = resolver.graph.num_edges
        toggle["fail"] = True
        with pytest.raises(FlakyOracleError):
            resolver.distance(3, 7)
        toggle["fail"] = False
        # Nothing corrupted: the graph kept its edges and new work succeeds.
        assert resolver.graph.num_edges == edges_before
        result = prim_mst(resolver)
        assert result.num_edges == 14


class TestBudgetExhaustion:
    def test_partial_graph_remains_usable(self, matrix):
        space = MatrixSpace(matrix)
        oracle = space.oracle(budget=40)
        resolver = SmartResolver(oracle)
        resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
        with pytest.raises(BudgetExceededError):
            knn_graph(resolver, k=3)
        # Everything resolved before exhaustion is still known and sound.
        assert resolver.graph.num_edges == 40
        for i, j, w in resolver.graph.edges():
            assert w == pytest.approx(matrix[i, j])

    def test_budget_scoped_to_oracle_not_resolver(self, matrix):
        space = MatrixSpace(matrix)
        oracle = space.oracle(budget=40)
        resolver = SmartResolver(oracle)
        with pytest.raises(BudgetExceededError):
            pam(resolver, l=3, seed=0)
        # A fresh oracle with the same resolver graph carries on.
        fresh = space.oracle()
        resumed = SmartResolver(fresh, graph=resolver.graph)
        result = pam(resumed, l=3, seed=0)
        assert len(result.medoids) == 3


class TestCorruptAnswers:
    def test_nan_distance_rejected_at_the_oracle(self, matrix):
        oracle = DistanceOracle(lambda i, j: math.nan, 5)
        with pytest.raises(ValueError, match="invalid distance"):
            oracle(0, 1)

    def test_infinite_distance_rejected_at_the_oracle(self, matrix):
        oracle = DistanceOracle(lambda i, j: math.inf, 5)
        with pytest.raises(ValueError, match="invalid distance"):
            oracle(0, 1)

    def test_validating_oracle_catches_corruption_early(self, matrix):
        corrupted = matrix.copy()
        corrupted[2, 3] = corrupted[3, 2] = 100.0  # non-metric spike

        oracle = ValidatingOracle(lambda i, j: float(corrupted[i, j]), 15)
        resolver = SmartResolver(oracle)
        resolver.bounder = TriScheme(resolver.graph, 200.0)
        with pytest.raises(MetricViolationError):
            prim_mst(resolver)

    def test_unvalidated_corruption_still_yields_spanning_tree(self, matrix):
        """Without validation the library cannot promise exactness — but it
        must not crash or hang; it still returns *a* spanning tree."""
        corrupted = matrix.copy()
        corrupted[2, 3] = corrupted[3, 2] = 100.0

        oracle = DistanceOracle(lambda i, j: float(corrupted[i, j]), 15)
        resolver = SmartResolver(oracle)
        resolver.bounder = TriScheme(resolver.graph, 200.0)
        result = prim_mst(resolver)
        assert result.num_edges == 14


class TestNegativeAndAsymmetric:
    def test_negative_distance_rejected_at_the_oracle(self):
        oracle = DistanceOracle(lambda i, j: -1.0, 4)
        with pytest.raises(ValueError):
            oracle(0, 1)

    def test_asymmetric_function_is_canonicalised(self, rng):
        # The oracle always evaluates the canonical (min, max) orientation,
        # so an asymmetric function cannot produce inconsistent answers.
        def asymmetric(i, j):
            return float(i * 10 + j)  # only ever called with i < j

        oracle = DistanceOracle(asymmetric, 6)
        assert oracle(5, 2) == oracle(2, 5) == 25.0
