"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.resolver import SmartResolver
from repro.spaces.matrix import MatrixSpace, random_metric_matrix
from repro.spaces.vector import EuclideanSpace


@pytest.fixture
def rng():
    """Deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_metric(rng):
    """Ground-truth random metric on 10 objects (matrix + space)."""
    matrix = random_metric_matrix(10, rng)
    return matrix, MatrixSpace(matrix)


@pytest.fixture
def medium_metric(rng):
    """Ground-truth random metric on 25 objects (matrix + space)."""
    matrix = random_metric_matrix(25, rng)
    return matrix, MatrixSpace(matrix)


@pytest.fixture
def euclid_space(rng):
    """40 clustered 2-D points under the Euclidean metric."""
    centres = rng.uniform(0, 1, size=(4, 2))
    points = centres[rng.integers(4, size=40)] + rng.normal(scale=0.05, size=(40, 2))
    return EuclideanSpace(points)


@pytest.fixture
def resolver_factory():
    """Factory building (oracle, resolver) for a space, optionally bounded."""

    def build(space, bounder_cls=None, **bounder_kwargs):
        oracle = space.oracle()
        resolver = SmartResolver(oracle)
        if bounder_cls is not None:
            resolver.bounder = bounder_cls(
                resolver.graph, space.diameter_bound(), **bounder_kwargs
            )
        return oracle, resolver

    return build


def all_pairs(n):
    """All ``(i, j)`` with ``i < j`` — helper shared by several test modules."""
    return list(itertools.combinations(range(n), 2))
