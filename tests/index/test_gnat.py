"""Unit tests for the GNAT comparator."""

import numpy as np
import pytest

from repro.index.gnat import Gnat
from repro.spaces.matrix import MatrixSpace, random_metric_matrix
from repro.spaces.vector import EuclideanSpace


@pytest.fixture
def space(rng):
    return MatrixSpace(random_metric_matrix(40, rng))


@pytest.fixture
def tree(space):
    return Gnat(space.oracle(), arity=4, leaf_size=5, rng=np.random.default_rng(8))


class TestConstruction:
    def test_size(self, tree, space):
        assert len(tree) == space.n

    def test_construction_calls_counted(self, tree):
        assert tree.construction_calls > 0

    def test_parameter_validation(self, space):
        with pytest.raises(ValueError):
            Gnat(space.oracle(), arity=1)
        with pytest.raises(ValueError):
            Gnat(space.oracle(), leaf_size=0)

    def test_tiny_collection_is_one_bucket(self, rng):
        space = MatrixSpace(random_metric_matrix(4, rng))
        tree = Gnat(space.oracle(), leaf_size=6)
        assert len(tree) == 4


class TestRange:
    @pytest.mark.parametrize("radius", [0.0, 0.25, 0.5, 0.9])
    def test_matches_brute_force(self, tree, space, radius):
        for q in (0, 17, 33):
            hits = tree.range(q, radius)
            brute = sorted(
                c for c in range(space.n) if space.distance(q, c) <= radius
            )
            assert hits == brute

    def test_negative_radius_rejected(self, tree):
        with pytest.raises(ValueError):
            tree.range(0, -0.1)


class TestNearest:
    def test_matches_brute_force(self, tree, space):
        for q in range(space.n):
            _, dist = tree.nearest(q)
            expected = min(space.distance(q, c) for c in range(space.n) if c != q)
            assert dist == pytest.approx(expected)

    def test_excludes_query(self, tree):
        obj, _ = tree.nearest(20)
        assert obj != 20


class TestPruning:
    def test_range_ranges_prune_subtrees(self, rng):
        centres = rng.uniform(0, 1, size=(5, 2))
        points = centres[rng.integers(5, size=80)] + rng.normal(scale=0.02, size=(80, 2))
        space = EuclideanSpace(points)
        oracle = space.oracle()
        tree = Gnat(oracle, arity=4, leaf_size=5, rng=np.random.default_rng(2))
        oracle.reset()  # count query calls from scratch
        tree.range(0, 0.05)
        assert oracle.calls < 80
