"""Unit tests for the M-tree comparator."""

import numpy as np
import pytest

from repro.index.mtree import MTree
from repro.spaces.matrix import MatrixSpace, random_metric_matrix
from repro.spaces.vector import EuclideanSpace


@pytest.fixture
def space(rng):
    return MatrixSpace(random_metric_matrix(40, rng))


@pytest.fixture
def tree(space):
    return MTree(space.oracle(), capacity=4, rng=np.random.default_rng(5))


class TestConstruction:
    def test_size(self, tree, space):
        assert len(tree) == space.n

    def test_construction_calls_counted(self, tree):
        assert tree.construction_calls > 0

    def test_subset_indexing(self, space):
        tree = MTree(space.oracle(), objects=[1, 4, 9, 16, 25, 36])
        assert len(tree) == 6

    def test_invalid_capacity(self, space):
        with pytest.raises(ValueError):
            MTree(space.oracle(), capacity=1)

    def test_small_capacity_still_correct(self, space):
        tree = MTree(space.oracle(), capacity=2, rng=np.random.default_rng(1))
        hits = tree.range(0, 0.4)
        brute = sorted(
            c for c in range(space.n) if space.distance(0, c) <= 0.4
        )
        assert hits == brute


class TestRange:
    @pytest.mark.parametrize("radius", [0.0, 0.2, 0.5, 0.9])
    def test_matches_brute_force(self, tree, space, radius):
        for q in (0, 13, 27):
            hits = tree.range(q, radius)
            brute = sorted(
                c for c in range(space.n) if space.distance(q, c) <= radius
            )
            assert hits == brute

    def test_negative_radius_rejected(self, tree):
        with pytest.raises(ValueError):
            tree.range(0, -0.5)


class TestNearest:
    def test_matches_brute_force(self, tree, space):
        for q in range(space.n):
            _, dist = tree.nearest(q)
            expected = min(space.distance(q, c) for c in range(space.n) if c != q)
            assert dist == pytest.approx(expected)

    def test_excludes_query(self, tree):
        obj, _ = tree.nearest(11)
        assert obj != 11

    def test_two_objects(self, rng):
        space = MatrixSpace(random_metric_matrix(2, rng))
        tree = MTree(space.oracle())
        obj, dist = tree.nearest(0)
        assert obj == 1
        assert dist == pytest.approx(space.distance(0, 1))


class TestPruning:
    def test_parent_distance_rule_saves_calls(self, rng):
        # Clustered Euclidean data: range queries should not touch every
        # object once the tree is built.
        centres = rng.uniform(0, 1, size=(5, 2))
        points = centres[rng.integers(5, size=80)] + rng.normal(scale=0.02, size=(80, 2))
        space = EuclideanSpace(points)
        oracle = space.oracle()
        tree = MTree(oracle, capacity=6, rng=np.random.default_rng(2))
        # Drop the cache so query calls are really counted.
        oracle.reset()
        tree.oracle = oracle
        before = oracle.calls
        tree.range(0, 0.05)
        assert oracle.calls - before < 80
