"""Unit tests for the Burkhard–Keller tree comparator."""

import pytest

from repro.index.bktree import BkTree
from repro.spaces.strings import EditDistanceSpace, random_strings


@pytest.fixture
def space(rng):
    return EditDistanceSpace(random_strings(25, length=12, rng=rng))


@pytest.fixture
def tree(space):
    return BkTree(space.oracle())


class TestConstruction:
    def test_size(self, tree, space):
        assert len(tree) <= space.n  # duplicates collapse
        assert len(tree) > 0

    def test_construction_calls_counted(self, tree):
        assert tree.construction_calls > 0

    def test_duplicate_insert_is_noop(self, space):
        tree = BkTree(space.oracle(), objects=[0, 1, 2])
        size = len(tree)
        tree.insert(1)
        assert len(tree) == size

    def test_rejects_non_integer_metric(self, rng):
        from repro.spaces.vector import EuclideanSpace

        space = EuclideanSpace(rng.random((5, 2)))
        with pytest.raises(ValueError):
            BkTree(space.oracle())


class TestRange:
    def test_matches_brute_force(self, tree, space):
        for q in (0, 7, 13):
            for tol in (1, 3, 6):
                hits = tree.range(q, tol)
                # Duplicate strings collapse in the index (and the query's
                # own string is excluded), so compare deduplicated content.
                brute_content = {
                    (int(space.distance(q, c)), space.strings[c])
                    for c in range(space.n)
                    if space.strings[c] != space.strings[q]
                    and space.distance(q, c) <= tol
                }
                hit_content = {(d, space.strings[o]) for d, o in hits}
                assert hit_content == brute_content

    def test_negative_tolerance_rejected(self, tree):
        with pytest.raises(ValueError):
            tree.range(0, -1)

    def test_sorted_output(self, tree):
        hits = tree.range(2, 8)
        assert hits == sorted(hits)


class TestNearest:
    def test_matches_brute_force(self, tree, space):
        # The index holds one representative per distinct string (the first
        # occurrence); nearest() answers over exactly that set, minus q.
        representatives = {}
        for obj, text in enumerate(space.strings):
            representatives.setdefault(text, obj)
        indexed = set(representatives.values())
        for q in range(0, space.n, 5):
            _, dist = tree.nearest(q)
            expected = min(
                int(space.distance(q, c)) for c in indexed if c != q
            )
            assert dist == expected

    def test_empty_index_rejected(self, space):
        tree = BkTree(space.oracle(), objects=[])
        with pytest.raises(ValueError):
            tree.nearest(0)

    def test_query_pruning(self, space):
        oracle = space.oracle()
        tree = BkTree(oracle)
        before = oracle.calls
        tree.nearest(0)
        assert oracle.calls - before <= len(tree)
