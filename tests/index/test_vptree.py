"""Unit tests for the vantage-point tree comparator."""

import numpy as np
import pytest

from repro.index.vptree import VpTree
from repro.spaces.matrix import MatrixSpace, random_metric_matrix
from repro.spaces.vector import EuclideanSpace


@pytest.fixture
def space(rng):
    return MatrixSpace(random_metric_matrix(30, rng))


@pytest.fixture
def tree(space):
    return VpTree(space.oracle(), rng=np.random.default_rng(2))


class TestConstruction:
    def test_size(self, tree, space):
        assert len(tree) == space.n

    def test_construction_calls_counted(self, tree, space):
        assert 0 < tree.construction_calls <= space.n * (space.n - 1) // 2

    def test_subset_indexing(self, space):
        tree = VpTree(space.oracle(), objects=[0, 3, 5, 9, 12])
        assert len(tree) == 5

    def test_invalid_leaf_size(self, space):
        with pytest.raises(ValueError):
            VpTree(space.oracle(), leaf_size=0)


class TestNearest:
    def test_matches_brute_force(self, tree, space):
        for q in range(space.n):
            obj, dist = tree.nearest(q)
            expected = min(
                space.distance(q, c) for c in range(space.n) if c != q
            )
            assert dist == pytest.approx(expected)

    def test_excludes_query_itself(self, tree, space):
        obj, dist = tree.nearest(7)
        assert obj != 7

    def test_single_other_object(self, rng):
        space = MatrixSpace(random_metric_matrix(2, rng))
        tree = VpTree(space.oracle())
        obj, dist = tree.nearest(0)
        assert obj == 1
        assert dist == pytest.approx(space.distance(0, 1))


class TestRange:
    def test_matches_brute_force(self, tree, space):
        for q in (0, 5, 11):
            for radius in (0.2, 0.5, 0.9):
                hits = tree.range(q, radius)
                brute = sorted(
                    c for c in range(space.n) if space.distance(q, c) <= radius
                )
                assert hits == brute

    def test_zero_radius_returns_self_only(self, tree):
        assert tree.range(4, 0.0) == [4]

    def test_negative_radius_rejected(self, tree):
        with pytest.raises(ValueError):
            tree.range(0, -0.1)


class TestQueryCost:
    def test_queries_prune_candidates(self, rng):
        # Clustered data: NN queries should touch far fewer than n objects.
        centres = rng.uniform(0, 1, size=(4, 2))
        points = centres[rng.integers(4, size=60)] + rng.normal(scale=0.02, size=(60, 2))
        space = EuclideanSpace(points)
        oracle = space.oracle()
        tree = VpTree(oracle, rng=np.random.default_rng(1))
        before = oracle.calls
        tree.nearest(0)
        per_query = oracle.calls - before
        assert per_query < 60
