"""Unit tests for the metric-space protocol helpers."""

import pytest

from repro.core.exceptions import MetricViolationError
from repro.spaces.base import BaseSpace, MetricSpace, check_metric_axioms
from repro.spaces.vector import EuclideanSpace


class _BrokenSpace(BaseSpace):
    """A deliberately non-metric space for validating the checker."""

    def __init__(self, n, mode):
        super().__init__(n)
        self.mode = mode

    def distance(self, i, j):
        if self.mode == "identity" and i == j:
            return 1.0
        if i == j:
            return 0.0
        if self.mode == "asymmetric":
            return float(i * 10 + j)
        if self.mode == "negative":
            return -1.0
        if self.mode == "triangle":
            # d(0,2) huge, everything else tiny.
            if {i, j} == {0, 2}:
                return 100.0
            return 1.0
        return 1.0


class TestCheckMetricAxioms:
    def test_accepts_euclidean(self, rng):
        check_metric_axioms(EuclideanSpace(rng.normal(size=(10, 3))))

    def test_detects_identity_violation(self):
        with pytest.raises(MetricViolationError, match="!= 0"):
            check_metric_axioms(_BrokenSpace(5, "identity"))

    def test_detects_asymmetry(self):
        with pytest.raises(MetricViolationError, match="asymmetry"):
            check_metric_axioms(_BrokenSpace(5, "asymmetric"))

    def test_detects_negative(self):
        with pytest.raises(MetricViolationError, match="negative"):
            check_metric_axioms(_BrokenSpace(5, "negative"))

    def test_detects_triangle_violation(self):
        with pytest.raises(MetricViolationError, match="triangle"):
            check_metric_axioms(_BrokenSpace(5, "triangle"))

    def test_sampled_triples_only(self, rng):
        space = _BrokenSpace(10, "triangle")
        # A sample that avoids the bad triple passes.
        check_metric_axioms(space, sample_triples=[(1, 3, 5)])
        with pytest.raises(MetricViolationError):
            check_metric_axioms(space, sample_triples=[(0, 1, 2)])


class TestBaseSpace:
    def test_protocol_conformance(self, rng):
        space = EuclideanSpace(rng.normal(size=(5, 2)))
        assert isinstance(space, MetricSpace)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            _BrokenSpace(0, "identity")

    def test_default_diameter_is_infinite(self):
        space = _BrokenSpace(5, "ok")
        assert space.diameter_bound() == float("inf")

    def test_oracle_factory(self, rng):
        space = EuclideanSpace(rng.normal(size=(5, 2)))
        oracle = space.oracle(budget=3)
        assert oracle.n == 5
