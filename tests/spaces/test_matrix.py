"""Unit tests for the explicit-matrix space and metric repair utilities."""

import numpy as np
import pytest

from repro.core.exceptions import MetricViolationError
from repro.spaces.base import check_metric_axioms
from repro.spaces.matrix import MatrixSpace, metric_closure, random_metric_matrix


class TestMatrixSpace:
    def test_lookup(self):
        m = np.array([[0.0, 1.0], [1.0, 0.0]])
        space = MatrixSpace(m)
        assert space.distance(0, 1) == 1.0

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            MatrixSpace(np.zeros((2, 3)))

    def test_rejects_nonzero_diagonal(self):
        m = np.array([[0.5, 1.0], [1.0, 0.0]])
        with pytest.raises(MetricViolationError):
            MatrixSpace(m)

    def test_rejects_asymmetry(self):
        m = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(MetricViolationError):
            MatrixSpace(m)

    def test_rejects_negative(self):
        m = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(MetricViolationError):
            MatrixSpace(m)

    def test_rejects_triangle_violation(self):
        m = np.array(
            [
                [0.0, 1.0, 10.0],
                [1.0, 0.0, 1.0],
                [10.0, 1.0, 0.0],
            ]
        )
        with pytest.raises(MetricViolationError):
            MatrixSpace(m)

    def test_validate_false_skips_checks(self):
        m = np.array([[0.0, 1.0], [2.0, 0.0]])
        space = MatrixSpace(m, validate=False)
        assert space.distance(0, 1) == 1.0

    def test_diameter_bound_is_max(self, rng):
        m = random_metric_matrix(8, rng)
        assert MatrixSpace(m).diameter_bound() == m.max()


class TestMetricClosure:
    def test_fixes_triangle_violations(self):
        raw = np.array(
            [
                [0.0, 1.0, 10.0],
                [1.0, 0.0, 1.0],
                [10.0, 1.0, 0.0],
            ]
        )
        fixed = metric_closure(raw)
        assert fixed[0, 2] == pytest.approx(2.0)  # shortest path 0→1→2
        MatrixSpace(fixed)  # validates

    def test_idempotent_on_metrics(self, rng):
        m = random_metric_matrix(10, rng)
        again = metric_closure(m)
        assert np.allclose(m, again)

    def test_never_increases_distances(self, rng):
        raw = rng.uniform(0.1, 1.0, size=(8, 8))
        raw = (raw + raw.T) / 2
        np.fill_diagonal(raw, 0.0)
        closed = metric_closure(raw)
        assert np.all(closed <= raw + 1e-12)

    def test_symmetrises(self):
        raw = np.array([[0.0, 3.0], [1.0, 0.0]])
        closed = metric_closure(raw)
        assert closed[0, 1] == closed[1, 0] == 1.0

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            metric_closure(np.zeros((2, 3)))


class TestRandomMetricMatrix:
    def test_produces_valid_metric(self, rng):
        m = random_metric_matrix(15, rng)
        check_metric_axioms(MatrixSpace(m))

    def test_deterministic_given_generator(self):
        a = random_metric_matrix(6, np.random.default_rng(1))
        b = random_metric_matrix(6, np.random.default_rng(1))
        assert np.array_equal(a, b)

    def test_respects_range_cap(self, rng):
        m = random_metric_matrix(10, rng, low=0.2, high=0.5)
        off_diag = m[~np.eye(10, dtype=bool)]
        assert off_diag.max() <= 0.5 + 1e-12
        assert off_diag.min() > 0.0
