"""Unit tests for graph-derived metric spaces (shortest path, ultrametric)."""

import itertools

import numpy as np
import pytest

from repro.spaces.base import check_metric_axioms
from repro.spaces.graphs import GraphShortestPathSpace, UltrametricSpace, random_ultrametric


class TestGraphShortestPathSpace:
    @pytest.fixture
    def path_graph(self):
        # 0 - 1 - 2 - 3 chain plus a long shortcut 0-3.
        return GraphShortestPathSpace(
            4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 10.0)]
        )

    def test_shortest_path_wins(self, path_graph):
        assert path_graph.distance(0, 3) == pytest.approx(3.0)

    def test_metric_axioms(self, path_graph):
        check_metric_axioms(path_graph)

    def test_symmetry(self, path_graph):
        assert path_graph.distance(1, 3) == path_graph.distance(3, 1)

    def test_diameter_dominates(self, path_graph):
        cap = path_graph.diameter_bound()
        for i, j in itertools.combinations(range(4), 2):
            assert path_graph.distance(i, j) <= cap + 1e-9

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError, match="components"):
            GraphShortestPathSpace(4, [(0, 1, 1.0)])

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValueError):
            GraphShortestPathSpace(2, [(0, 1, 0.0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            GraphShortestPathSpace(2, [(0, 5, 1.0)])

    def test_works_with_framework(self):
        from repro.algorithms import prim_mst
        from repro.bounds import TriScheme
        from repro.core.resolver import SmartResolver

        rng = np.random.default_rng(4)
        edges = [(i, i + 1, float(rng.uniform(0.5, 2.0))) for i in range(19)]
        edges += [
            (int(rng.integers(20)), int(rng.integers(20)), float(rng.uniform(1, 3)))
            for _ in range(15)
        ]
        edges = [(u, v, w) for u, v, w in edges if u != v]
        space = GraphShortestPathSpace(20, edges)
        vanilla = prim_mst(SmartResolver(space.oracle()))
        resolver = SmartResolver(space.oracle())
        resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
        augmented = prim_mst(resolver)
        assert augmented.total_weight == pytest.approx(vanilla.total_weight)


class TestUltrametric:
    @pytest.fixture
    def matrix(self, rng):
        return random_ultrametric(20, rng)

    def test_generator_produces_ultrametric(self, matrix):
        n = matrix.shape[0]
        for i, j, k in itertools.combinations(range(n), 3):
            assert matrix[i, j] <= max(matrix[i, k], matrix[k, j]) + 1e-9

    def test_space_validates(self, matrix):
        space = UltrametricSpace(matrix)
        check_metric_axioms(space)

    def test_non_ultrametric_rejected(self):
        bad = np.array(
            [
                [0.0, 1.0, 3.0],
                [1.0, 0.0, 1.0],
                [3.0, 1.0, 0.0],
            ]
        )
        with pytest.raises(ValueError, match="ultrametric"):
            UltrametricSpace(bad)

    def test_generator_deterministic(self):
        a = random_ultrametric(8, np.random.default_rng(3))
        b = random_ultrametric(8, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_tri_bounds_sound_and_informative(self, matrix):
        """Tri bounds stay sound on ultrametrics and tighten with triangles.

        (Note: the *ultrametric* inference d(i,j) = max(d(i,w), d(j,w)) when
        the two differ is strictly stronger than the triangle bounds; plain
        Tri only certifies the |difference| / sum interval.)
        """
        from repro.bounds import TriScheme
        from repro.core.resolver import SmartResolver

        space = UltrametricSpace(matrix)
        resolver = SmartResolver(space.oracle())
        tri = TriScheme(resolver.graph, space.diameter_bound())
        resolver.bounder = tri
        n = space.n
        for w in range(2, n):
            resolver.distance(0, w)
            resolver.distance(1, w)
        b = resolver.bounds(0, 1)
        truth = matrix[0, 1]
        assert b.lower - 1e-9 <= truth <= b.upper + 1e-9
        assert b.gap < space.diameter_bound()  # genuinely informative

    def test_exact_mst_on_ultrametric(self, matrix):
        from repro.algorithms import kruskal_mst, prim_mst
        from repro.bounds import TriScheme
        from repro.core.resolver import SmartResolver

        space = UltrametricSpace(matrix)
        vanilla = prim_mst(SmartResolver(space.oracle()))
        oracle = space.oracle()
        resolver = SmartResolver(oracle)
        resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
        augmented = kruskal_mst(resolver)
        assert augmented.total_weight == pytest.approx(vanilla.total_weight)
