"""Unit tests for the edit-distance space."""

import itertools

import numpy as np
import pytest

from repro.spaces.base import check_metric_axioms
from repro.spaces.strings import EditDistanceSpace, levenshtein, random_strings


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a, b, expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("", "xyz", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("a", "b", 1),
            ("abcdef", "azced", 3),
        ],
    )
    def test_known_values(self, a, b, expected):
        assert levenshtein(a, b) == expected

    def test_symmetric(self):
        assert levenshtein("sunday", "saturday") == levenshtein("saturday", "sunday")

    def test_bounded_by_longer_length(self, rng):
        strings = random_strings(10, length=20, rng=rng)
        for a, b in itertools.combinations(strings, 2):
            assert levenshtein(a, b) <= max(len(a), len(b))


class TestEditDistanceSpace:
    def test_distance_matches_function(self):
        space = EditDistanceSpace(["kitten", "sitting", "mitten"])
        assert space.distance(0, 1) == 3
        assert space.distance(0, 2) == 1

    def test_metric_axioms(self, rng):
        space = EditDistanceSpace(random_strings(10, length=16, rng=rng))
        check_metric_axioms(space)

    def test_normalised_distances_in_unit_interval(self, rng):
        space = EditDistanceSpace(random_strings(8, length=12, rng=rng), normalise=True)
        for i, j in itertools.combinations(range(8), 2):
            assert 0.0 <= space.distance(i, j) <= 1.0

    def test_diameter_bound(self, rng):
        raw = EditDistanceSpace(random_strings(8, length=12, rng=rng))
        assert raw.diameter_bound() == 12
        norm = EditDistanceSpace(random_strings(8, length=12, rng=rng), normalise=True)
        assert norm.diameter_bound() == 1.0


class TestRandomStrings:
    def test_count_and_length(self, rng):
        strings = random_strings(20, length=30, rng=rng)
        assert len(strings) == 20
        assert all(len(s) == 30 for s in strings)

    def test_alphabet_respected(self, rng):
        strings = random_strings(10, length=15, alphabet="AB", rng=rng)
        assert all(set(s) <= {"A", "B"} for s in strings)

    def test_family_structure(self, rng):
        # With zero mutation, strings collapse onto the seed sequences.
        strings = random_strings(30, length=20, mutation_rate=0.0, num_seeds=3, rng=rng)
        assert len(set(strings)) <= 3

    def test_deterministic(self):
        a = random_strings(5, rng=np.random.default_rng(9))
        b = random_strings(5, rng=np.random.default_rng(9))
        assert a == b
