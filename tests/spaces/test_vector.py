"""Unit tests for the vector (Minkowski/angular) metric spaces."""

import itertools

import numpy as np
import pytest
from scipy.spatial.distance import chebyshev, cityblock, euclidean

from repro.spaces.base import check_metric_axioms
from repro.spaces.vector import (
    ChebyshevSpace,
    CosineAngularSpace,
    EuclideanSpace,
    ManhattanSpace,
    MinkowskiSpace,
)


@pytest.fixture
def points(rng):
    return rng.normal(size=(15, 4))


class TestMinkowskiDistances:
    def test_euclidean_matches_scipy(self, points):
        space = EuclideanSpace(points)
        for i, j in itertools.combinations(range(6), 2):
            assert space.distance(i, j) == pytest.approx(euclidean(points[i], points[j]))

    def test_manhattan_matches_scipy(self, points):
        space = ManhattanSpace(points)
        for i, j in itertools.combinations(range(6), 2):
            assert space.distance(i, j) == pytest.approx(cityblock(points[i], points[j]))

    def test_chebyshev_matches_scipy(self, points):
        space = ChebyshevSpace(points)
        for i, j in itertools.combinations(range(6), 2):
            assert space.distance(i, j) == pytest.approx(chebyshev(points[i], points[j]))

    def test_symmetry(self, points):
        space = EuclideanSpace(points)
        assert space.distance(3, 7) == space.distance(7, 3)

    def test_identity(self, points):
        space = EuclideanSpace(points)
        assert space.distance(5, 5) == 0.0

    def test_metric_axioms_hold(self, points):
        for space in (EuclideanSpace(points), ManhattanSpace(points), ChebyshevSpace(points)):
            check_metric_axioms(space)


class TestDiameterBound:
    def test_euclidean_diameter_dominates_all_pairs(self, points):
        space = EuclideanSpace(points)
        cap = space.diameter_bound()
        for i, j in itertools.combinations(range(space.n), 2):
            assert space.distance(i, j) <= cap + 1e-12

    def test_manhattan_diameter_dominates_all_pairs(self, points):
        space = ManhattanSpace(points)
        cap = space.diameter_bound()
        for i, j in itertools.combinations(range(space.n), 2):
            assert space.distance(i, j) <= cap + 1e-12

    def test_chebyshev_diameter_dominates_all_pairs(self, points):
        space = ChebyshevSpace(points)
        cap = space.diameter_bound()
        for i, j in itertools.combinations(range(space.n), 2):
            assert space.distance(i, j) <= cap + 1e-12


class TestValidation:
    def test_rejects_one_dimensional_input(self):
        with pytest.raises(ValueError):
            EuclideanSpace(np.array([1.0, 2.0, 3.0]))

    def test_rejects_p_below_one(self, points):
        with pytest.raises(ValueError):
            MinkowskiSpace(points, p=0.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EuclideanSpace(np.empty((0, 2)))

    def test_len_and_n(self, points):
        space = EuclideanSpace(points)
        assert len(space) == space.n == 15


class TestCosineAngular:
    def test_distance_in_unit_interval(self, rng):
        space = CosineAngularSpace(rng.normal(size=(10, 8)))
        for i, j in itertools.combinations(range(10), 2):
            assert 0.0 <= space.distance(i, j) <= 1.0

    def test_identical_directions_are_zero(self):
        pts = np.array([[1.0, 0.0], [2.0, 0.0], [0.0, 3.0]])
        space = CosineAngularSpace(pts)
        assert space.distance(0, 1) == pytest.approx(0.0, abs=1e-9)

    def test_opposite_directions_are_one(self):
        pts = np.array([[1.0, 0.0], [-1.0, 0.0]])
        space = CosineAngularSpace(pts)
        assert space.distance(0, 1) == pytest.approx(1.0)

    def test_orthogonal_is_half(self):
        pts = np.array([[1.0, 0.0], [0.0, 1.0]])
        space = CosineAngularSpace(pts)
        assert space.distance(0, 1) == pytest.approx(0.5)

    def test_metric_axioms_hold(self, rng):
        space = CosineAngularSpace(rng.normal(size=(12, 5)))
        check_metric_axioms(space)

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            CosineAngularSpace(np.array([[0.0, 0.0], [1.0, 0.0]]))


class TestOracleBridge:
    def test_oracle_wraps_space(self, points):
        space = EuclideanSpace(points)
        oracle = space.oracle()
        assert oracle.n == space.n
        assert oracle(0, 1) == pytest.approx(space.distance(0, 1))

    def test_oracle_cost_passthrough(self, points):
        oracle = EuclideanSpace(points).oracle(cost_per_call=2.0)
        oracle(0, 1)
        assert oracle.simulated_seconds == pytest.approx(2.0)
