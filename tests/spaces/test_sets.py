"""Unit tests for the set/sequence metric spaces (Hausdorff, Jaccard, Hamming)."""

import itertools

import numpy as np
import pytest

from repro.spaces.base import check_metric_axioms
from repro.spaces.sets import HammingSpace, HausdorffSpace, JaccardSpace


class TestHausdorff:
    @pytest.fixture
    def space(self, rng):
        sets = [rng.uniform(0, 1, size=(rng.integers(3, 10), 2)) for _ in range(12)]
        return HausdorffSpace(sets)

    def test_metric_axioms(self, space):
        check_metric_axioms(space)

    def test_identical_sets_zero(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        space = HausdorffSpace([pts, pts.copy()])
        assert space.distance(0, 1) == pytest.approx(0.0)

    def test_known_value(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0]])
        space = HausdorffSpace([a, b])
        assert space.distance(0, 1) == pytest.approx(5.0)

    def test_asymmetric_coverage(self):
        # A inside B's hull but B has a far outlier: H = outlier's distance.
        a = np.array([[0.0, 0.0]])
        b = np.array([[0.0, 0.0], [10.0, 0.0]])
        space = HausdorffSpace([a, b])
        assert space.distance(0, 1) == pytest.approx(10.0)

    def test_diameter_dominates(self, space):
        cap = space.diameter_bound()
        for i, j in itertools.combinations(range(space.n), 2):
            assert space.distance(i, j) <= cap + 1e-9

    def test_rejects_empty_set(self):
        with pytest.raises(ValueError):
            HausdorffSpace([np.empty((0, 2)), np.array([[0.0, 0.0]])])

    def test_rejects_mixed_dimensions(self):
        with pytest.raises(ValueError):
            HausdorffSpace([np.zeros((2, 2)), np.zeros((2, 3))])


class TestJaccard:
    @pytest.fixture
    def space(self):
        return JaccardSpace([
            {1, 2, 3},
            {2, 3, 4},
            {1, 2, 3},
            set(),
            {9},
        ])

    def test_metric_axioms(self, space):
        check_metric_axioms(space)

    def test_known_value(self, space):
        # |{2,3}| / |{1,2,3,4}| = 2/4 → distance 0.5.
        assert space.distance(0, 1) == pytest.approx(0.5)

    def test_identical_sets(self, space):
        assert space.distance(0, 2) == 0.0

    def test_disjoint_sets(self, space):
        assert space.distance(0, 4) == 1.0

    def test_empty_vs_empty(self):
        space = JaccardSpace([set(), set()])
        assert space.distance(0, 1) == 0.0

    def test_empty_vs_nonempty(self, space):
        assert space.distance(0, 3) == 1.0

    def test_diameter(self, space):
        assert space.diameter_bound() == 1.0


class TestHamming:
    def test_known_value(self):
        space = HammingSpace(["ACGT", "ACGA", "TCGA"])
        assert space.distance(0, 1) == 1
        assert space.distance(0, 2) == 2
        assert space.distance(1, 2) == 1

    def test_metric_axioms(self, rng):
        codes = ["".join(rng.choice(list("01"), size=12)) for _ in range(10)]
        check_metric_axioms(HammingSpace(codes))

    def test_normalised(self):
        space = HammingSpace(["0000", "1111"], normalise=True)
        assert space.distance(0, 1) == pytest.approx(1.0)
        assert space.diameter_bound() == 1.0

    def test_raw_diameter(self):
        space = HammingSpace(["0000", "1111"])
        assert space.diameter_bound() == 4.0

    def test_rejects_ragged_codes(self):
        with pytest.raises(ValueError):
            HammingSpace(["abc", "ab"])

    def test_accepts_tuples(self):
        space = HammingSpace([(1, 2, 3), (1, 0, 3)])
        assert space.distance(0, 1) == 1


class TestOracleIntegration:
    def test_clustering_over_jaccard(self, rng):
        from repro.algorithms import pam
        from repro.bounds import TriScheme
        from repro.core.resolver import SmartResolver

        universe = list(range(30))
        sets = [set(rng.choice(universe, size=8, replace=False)) for _ in range(25)]
        space = JaccardSpace(sets)
        vanilla = pam(SmartResolver(space.oracle()), l=3, seed=0)
        resolver = SmartResolver(space.oracle())
        resolver.bounder = TriScheme(resolver.graph, 1.0)
        augmented = pam(resolver, l=3, seed=0)
        assert augmented.medoids == vanilla.medoids
