"""Unit tests for the simulated road-network (maps API substitute) space."""

import itertools

import numpy as np
import pytest

from repro.spaces.base import check_metric_axioms
from repro.spaces.roadnet import RoadNetworkSpace


@pytest.fixture
def space(rng):
    points = rng.uniform(0, 1, size=(25, 2))
    return RoadNetworkSpace(points, rng=np.random.default_rng(3))


class TestRoadNetwork:
    def test_metric_axioms(self, space):
        check_metric_axioms(space)

    def test_all_pairs_reachable(self, space):
        for i, j in itertools.combinations(range(space.n), 2):
            assert np.isfinite(space.distance(i, j))

    def test_dominates_crow_flies(self, space):
        # Roads detour, so driving distance >= Euclidean distance.
        pts = space.points
        for i, j in itertools.combinations(range(10), 2):
            euclid = float(np.linalg.norm(pts[i] - pts[j]))
            assert space.distance(i, j) >= euclid - 1e-9

    def test_symmetry(self, space):
        assert space.distance(3, 9) == pytest.approx(space.distance(9, 3))

    def test_diameter_bound_dominates(self, space):
        cap = space.diameter_bound()
        for i, j in itertools.combinations(range(space.n), 2):
            assert space.distance(i, j) <= cap + 1e-9

    def test_row_cache_reuse(self, space):
        space.distance(0, 5)
        assert 0 in space._row_cache
        # Querying (7, 0) should reuse row 0 rather than computing row 7.
        space.distance(7, 0)
        assert 7 not in space._row_cache

    def test_deterministic_given_seed(self, rng):
        points = rng.uniform(0, 1, size=(15, 2))
        a = RoadNetworkSpace(points, rng=np.random.default_rng(7))
        b = RoadNetworkSpace(points, rng=np.random.default_rng(7))
        assert a.distance(2, 11) == pytest.approx(b.distance(2, 11))

    def test_num_roads_positive(self, space):
        assert space.num_roads >= space.n - 1  # at least a spanning structure


class TestValidation:
    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            RoadNetworkSpace(np.zeros((5, 3)))

    def test_rejects_bad_detour_range(self, rng):
        points = rng.uniform(0, 1, size=(5, 2))
        with pytest.raises(ValueError):
            RoadNetworkSpace(points, detour_range=(0.5, 1.2))
        with pytest.raises(ValueError):
            RoadNetworkSpace(points, detour_range=(1.5, 1.2))

    def test_single_point(self):
        space = RoadNetworkSpace(np.array([[0.3, 0.4]]))
        assert space.distance(0, 0) == 0.0
