"""Tests for picklable space handles."""

import pickle

from repro.datasets.facades import flickr_space
from repro.spaces.handles import SpaceHandle, handle_for


class TestSpaceHandle:
    def test_builds_the_described_space(self):
        handle = handle_for(flickr_space, n=12, dim=4, seed=3)
        space = handle.space()
        assert space.n == 12
        assert space.distance(0, 1) == flickr_space(n=12, dim=4, seed=3).distance(0, 1)

    def test_space_is_memoised_per_process(self):
        a = handle_for(flickr_space, n=12, dim=4, seed=3)
        b = handle_for(flickr_space, n=12, dim=4, seed=3)
        assert a.space() is b.space()
        assert a.key() == b.key()

    def test_different_args_different_key(self):
        a = handle_for(flickr_space, n=12, dim=4, seed=3)
        b = handle_for(flickr_space, n=12, dim=4, seed=4)
        assert a.key() != b.key()

    def test_pickle_round_trip_rebuilds_identically(self):
        handle = handle_for(flickr_space, n=12, dim=4, seed=3)
        clone = pickle.loads(pickle.dumps(handle))
        assert isinstance(clone, SpaceHandle)
        assert clone.key() == handle.key()
        assert clone.distance(2, 7) == handle.space().distance(2, 7)

    def test_distance_is_the_picklable_oracle_fn(self):
        handle = handle_for(flickr_space, n=12, dim=4, seed=3)
        fn = pickle.loads(pickle.dumps(handle)).distance
        assert fn(0, 5) == handle.space().distance(0, 5)
