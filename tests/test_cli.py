"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.dataset == "sf"
        assert args.algorithm == "prim"
        assert args.n == 100

    def test_sweep_requires_sizes(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])

    def test_unknown_provider_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--providers", "bogus"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "mars"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRunCommand:
    def test_prim_table_printed(self, capsys):
        code = main([
            "run", "--dataset", "sf-euclid", "--n", "40",
            "--algorithm", "prim", "--providers", "none", "tri",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "tri" in out
        assert "total" in out

    def test_clustering_with_l(self, capsys):
        code = main([
            "run", "--dataset", "sf-euclid", "--n", "30",
            "--algorithm", "pam", "--l", "3", "--providers", "none", "tri",
        ])
        assert code == 0
        assert "pam" in capsys.readouterr().out

    def test_knng_with_k(self, capsys):
        code = main([
            "run", "--dataset", "flickr", "--n", "30",
            "--algorithm", "knng", "--k", "3", "--providers", "tri",
        ])
        assert code == 0

    def test_oracle_cost_column(self, capsys):
        code = main([
            "run", "--dataset", "sf-euclid", "--n", "30",
            "--algorithm", "prim", "--providers", "tri",
            "--oracle-cost", "0.5",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "completion" in out

    def test_bootstrap_flag(self, capsys):
        code = main([
            "run", "--dataset", "sf-euclid", "--n", "40",
            "--algorithm", "prim", "--providers", "tri", "--bootstrap",
        ])
        assert code == 0


class TestSweepCommand:
    def test_sweep_prints_rows(self, capsys):
        code = main([
            "sweep", "--dataset", "sf-euclid", "--sizes", "20", "30",
            "--algorithm", "kruskal", "--providers", "tri",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "20" in out and "30" in out


class TestBoundsCommand:
    def test_bounds_table(self, capsys):
        code = main([
            "bounds", "--dataset", "sf-euclid", "--n", "40",
            "--edges", "200", "--queries", "30",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "splub" in out
        assert "rel err" in out


class TestIndexesCommand:
    def test_comparison_table(self, capsys):
        code = main([
            "indexes", "--dataset", "sf-euclid", "--n", "40", "--queries", "5",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "framework" in out
        assert "VP-tree" in out
        assert "GNAT" in out
