"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.dataset == "sf"
        assert args.algorithm == "prim"
        assert args.n == 100

    def test_sweep_requires_sizes(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])

    def test_unknown_provider_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--providers", "bogus"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "mars"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestValidation:
    def test_zero_workers_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workers", "0"])
        assert "at least 1" in capsys.readouterr().err

    def test_negative_workers_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workers", "-3"])

    def test_non_integer_workers_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workers", "two"])
        assert "integer" in capsys.readouterr().err

    def test_valid_workers_accepted(self):
        args = build_parser().parse_args(["run", "--workers", "4"])
        assert args.workers == 4

    def test_oracle_cache_missing_parent_rejected(self, capsys, tmp_path):
        bad = tmp_path / "no" / "such" / "dir" / "cache.sqlite"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--oracle-cache", str(bad)])
        err = capsys.readouterr().err
        assert "does not exist" in err
        assert ":memory:" in err  # the friendly message suggests the fix

    def test_oracle_cache_memory_accepted(self):
        args = build_parser().parse_args(["run", "--oracle-cache", ":memory:"])
        assert args.oracle_cache == ":memory:"

    def test_oracle_cache_existing_parent_accepted(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        args = build_parser().parse_args(["run", "--oracle-cache", str(path)])
        assert args.oracle_cache == str(path)

    def test_serve_validates_job_workers(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--socket", "/tmp/s.sock", "--job-workers", "0"]
            )


class TestServeSubmitParsers:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--socket", "/tmp/x.sock"])
        assert args.provider == "tri"
        assert args.job_workers == 2
        assert args.snapshot_path is None

    def test_serve_requires_socket(self, capsys):
        # Unix transport (the default) validates at runtime, not parse time:
        # tcp serving is legal with no socket path at all.
        code = main(["serve"])
        assert code == 2
        assert "--socket" in capsys.readouterr().err

    def test_serve_tcp_requires_port(self, capsys):
        code = main(["serve", "--transport", "tcp"])
        assert code == 2
        assert "--port" in capsys.readouterr().err

    def test_submit_params_parsed_and_typed(self):
        args = build_parser().parse_args([
            "submit", "--socket", "/tmp/x.sock", "--kind", "range",
            "--param", "query=3", "--param", "radius=0.5",
            "--param", "label=abc",
        ])
        assert dict(args.param) == {"query": 3, "radius": 0.5, "label": "abc"}

    def test_submit_bad_param_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "submit", "--socket", "/tmp/x.sock", "--kind", "mst",
                "--param", "nonsense",
            ])
        assert "key=value" in capsys.readouterr().err

    def test_submit_without_kind_or_stats_errors(self, capsys):
        code = main(["submit", "--socket", "/tmp/definitely-missing.sock"])
        assert code == 2
        assert "one of --kind/--stats" in capsys.readouterr().err


class TestServeSubmitEndToEnd:
    def test_serve_then_submit(self, tmp_path):
        import threading

        sock = str(tmp_path / "engine.sock")
        snap = str(tmp_path / "warm.npz")
        serve = threading.Thread(
            target=main,
            args=([
                "serve", "--dataset", "sf-euclid", "--n", "30",
                "--socket", sock, "--serve-seconds", "3",
                "--snapshot-path", snap,
            ],),
        )
        serve.start()
        try:
            import os
            import time

            deadline = time.monotonic() + 5
            while not os.path.exists(sock) and time.monotonic() < deadline:
                time.sleep(0.05)
            code = main([
                "submit", "--socket", sock, "--kind", "knn",
                "--param", "query=3", "--param", "k=4",
            ])
            assert code == 0
            code = main(["submit", "--socket", sock, "--stats"])
            assert code == 0
        finally:
            serve.join(timeout=30)
        assert os.path.exists(snap)  # shutdown snapshot landed


class TestRunCommand:
    def test_prim_table_printed(self, capsys):
        code = main([
            "run", "--dataset", "sf-euclid", "--n", "40",
            "--algorithm", "prim", "--providers", "none", "tri",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "tri" in out
        assert "total" in out

    def test_clustering_with_l(self, capsys):
        code = main([
            "run", "--dataset", "sf-euclid", "--n", "30",
            "--algorithm", "pam", "--l", "3", "--providers", "none", "tri",
        ])
        assert code == 0
        assert "pam" in capsys.readouterr().out

    def test_knng_with_k(self, capsys):
        code = main([
            "run", "--dataset", "flickr", "--n", "30",
            "--algorithm", "knng", "--k", "3", "--providers", "tri",
        ])
        assert code == 0

    def test_oracle_cost_column(self, capsys):
        code = main([
            "run", "--dataset", "sf-euclid", "--n", "30",
            "--algorithm", "prim", "--providers", "tri",
            "--oracle-cost", "0.5",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "completion" in out

    def test_bootstrap_flag(self, capsys):
        code = main([
            "run", "--dataset", "sf-euclid", "--n", "40",
            "--algorithm", "prim", "--providers", "tri", "--bootstrap",
        ])
        assert code == 0


class TestSweepCommand:
    def test_sweep_prints_rows(self, capsys):
        code = main([
            "sweep", "--dataset", "sf-euclid", "--sizes", "20", "30",
            "--algorithm", "kruskal", "--providers", "tri",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "20" in out and "30" in out


class TestBoundsCommand:
    def test_bounds_table(self, capsys):
        code = main([
            "bounds", "--dataset", "sf-euclid", "--n", "40",
            "--edges", "200", "--queries", "30",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "splub" in out
        assert "rel err" in out


class TestIndexesCommand:
    def test_comparison_table(self, capsys):
        code = main([
            "indexes", "--dataset", "sf-euclid", "--n", "40", "--queries", "5",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "framework" in out
        assert "VP-tree" in out
        assert "GNAT" in out
