"""Unit tests for the benchmark trend gate (``scripts/bench_trend.py``)."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "bench_trend.py"
_spec = importlib.util.spec_from_file_location("bench_trend", _SCRIPT)
bench_trend = importlib.util.module_from_spec(_spec)
sys.modules["bench_trend"] = bench_trend
_spec.loader.exec_module(bench_trend)


def _artifact(metrics):
    return {"schema_version": 1, "benchmark": "t", "metrics": metrics}


class TestDirections:
    def test_seconds_and_ms_are_lower_better(self):
        assert bench_trend.metric_direction("frontier_csr_seconds") == "lower"
        assert bench_trend.metric_direction("sweep_ms") == "lower"

    def test_speedup_savings_throughput_are_higher_better(self):
        assert bench_trend.metric_direction("frontier_speedup") == "higher"
        assert bench_trend.metric_direction("stretch_savings_pct") == "higher"
        assert bench_trend.metric_direction("throughput_qps") == "higher"

    def test_recall_is_higher_better(self):
        assert bench_trend.metric_direction("recall_at_10") == "higher"
        assert bench_trend.metric_direction("comparison_recall_at_10") == "higher"

    def test_descriptive_metrics_are_ungated(self):
        assert bench_trend.metric_direction("frontier_n") is None
        assert bench_trend.metric_direction("kernel_backend") is None


class TestCompare:
    def test_within_tolerance_passes(self):
        rows = bench_trend.compare(
            _artifact({"x_seconds": 1.2}), _artifact({"x_seconds": 1.0}), 0.25
        )
        assert not any(r["regressed"] for r in rows)

    def test_slower_seconds_beyond_tolerance_fails(self):
        rows = bench_trend.compare(
            _artifact({"x_seconds": 1.3}), _artifact({"x_seconds": 1.0}), 0.25
        )
        assert [r["metric"] for r in rows if r["regressed"]] == ["x_seconds"]

    def test_faster_seconds_never_fails(self):
        rows = bench_trend.compare(
            _artifact({"x_seconds": 0.1}), _artifact({"x_seconds": 1.0}), 0.25
        )
        assert not any(r["regressed"] for r in rows)

    def test_dropped_speedup_beyond_tolerance_fails(self):
        rows = bench_trend.compare(
            _artifact({"speedup": 2.0}), _artifact({"speedup": 4.0}), 0.25
        )
        assert [r["metric"] for r in rows if r["regressed"]] == ["speedup"]

    def test_improved_speedup_never_fails(self):
        rows = bench_trend.compare(
            _artifact({"speedup": 9.0}), _artifact({"speedup": 4.0}), 0.25
        )
        assert not any(r["regressed"] for r in rows)

    def test_new_or_missing_metrics_are_informative_only(self):
        rows = bench_trend.compare(
            _artifact({"fresh_seconds": 1.0}), _artifact({"gone_seconds": 1.0}), 0.25
        )
        assert not any(r["regressed"] for r in rows)
        assert {r["metric"] for r in rows} == {"fresh_seconds", "gone_seconds"}

    def test_booleans_and_strings_are_never_gated(self):
        rows = bench_trend.compare(
            _artifact({"ok_seconds": True, "backend": "numpy"}),
            _artifact({"ok_seconds": False, "backend": "numba"}),
            0.25,
        )
        assert not any(r["regressed"] for r in rows)


class TestMain:
    def _write(self, tmp_path, name, metrics):
        path = tmp_path / name
        path.write_text(json.dumps(_artifact(metrics)))
        return str(path)

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        cur = self._write(tmp_path, "cur.json", {"x_seconds": 1.0, "speedup": 4.0})
        base = self._write(tmp_path, "base.json", {"x_seconds": 1.0, "speedup": 4.0})
        assert bench_trend.main([cur, "--baseline", base]) == 0
        assert "OK" in capsys.readouterr().out

    def test_exit_one_on_injected_regression(self, tmp_path, capsys):
        cur = self._write(tmp_path, "cur.json", {"x_seconds": 10.0})
        base = self._write(tmp_path, "base.json", {"x_seconds": 1.0})
        assert bench_trend.main([cur, "--baseline", base]) == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "x_seconds" in captured.err

    def test_custom_tolerance(self, tmp_path):
        cur = self._write(tmp_path, "cur.json", {"x_seconds": 1.4})
        base = self._write(tmp_path, "base.json", {"x_seconds": 1.0})
        assert bench_trend.main([cur, "--baseline", base]) == 1
        assert bench_trend.main([cur, "--baseline", base, "--tolerance", "0.5"]) == 0
