"""Property-based tests, wave 2: invariants of the extension subsystems.

Covers the algorithms, indexes, and infrastructure added beyond the paper's
§5 scope — the same exactness discipline, under randomly generated metric
instances.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import k_center, single_linkage
from repro.algorithms.dbscan import dbscan
from repro.algorithms.queries import farthest_neighbor, range_query
from repro.algorithms.tsp import nearest_neighbor_tour, two_opt
from repro.bounds import TriScheme
from repro.core.partial_graph import PartialDistanceGraph
from repro.core.persistence import load_graph, save_graph
from repro.core.resolver import SmartResolver
from repro.index import Gnat, MTree, VpTree
from repro.spaces.graphs import random_ultrametric
from repro.spaces.matrix import MatrixSpace, random_metric_matrix

COMMON = dict(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])


@st.composite
def metric_spaces(draw, min_n=5, max_n=12):
    n = draw(st.integers(min_n, max_n))
    seed = draw(st.integers(0, 2**31 - 1))
    matrix = random_metric_matrix(n, np.random.default_rng(seed))
    return MatrixSpace(matrix, validate=False), matrix


def _pair(space):
    oracle = space.oracle()
    vanilla = SmartResolver(oracle)
    tri_oracle = space.oracle()
    tri = SmartResolver(tri_oracle)
    tri.bounder = TriScheme(tri.graph, space.diameter_bound())
    return vanilla, tri


class TestExtensionAlgorithmExactness:
    @given(metric_spaces(), st.floats(0.05, 0.9), st.integers(2, 5))
    @settings(**COMMON)
    def test_dbscan_labels_invariant(self, instance, eps_frac, min_pts):
        space, matrix = instance
        eps = eps_frac * float(matrix.max())
        vanilla, tri = _pair(space)
        a = dbscan(vanilla, eps=eps, min_pts=min_pts)
        b = dbscan(tri, eps=eps, min_pts=min_pts)
        assert a.labels == b.labels
        assert a.core == b.core

    @given(metric_spaces(), st.integers(1, 4))
    @settings(**COMMON)
    def test_k_center_invariant(self, instance, k):
        space, _ = instance
        if k > space.n:
            return
        vanilla, tri = _pair(space)
        a = k_center(vanilla, k=k)
        b = k_center(tri, k=k)
        assert a.centers == b.centers
        assert a.radius == pytest.approx(b.radius)

    @given(metric_spaces())
    @settings(**COMMON)
    def test_tour_invariant(self, instance):
        space, _ = instance
        vanilla, tri = _pair(space)
        a = nearest_neighbor_tour(vanilla)
        b = nearest_neighbor_tour(tri)
        assert a.order == b.order
        assert a.length == pytest.approx(b.length)

    @given(metric_spaces(min_n=5, max_n=9))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_two_opt_invariant_and_improving(self, instance):
        space, _ = instance
        vanilla, tri = _pair(space)
        a0 = nearest_neighbor_tour(vanilla)
        b0 = nearest_neighbor_tour(tri)
        a = two_opt(vanilla, a0)
        b = two_opt(tri, b0)
        assert a.order == b.order
        assert a.length <= a0.length + 1e-9

    @given(metric_spaces())
    @settings(**COMMON)
    def test_linkage_heights_invariant(self, instance):
        space, _ = instance
        vanilla, tri = _pair(space)
        a = single_linkage(vanilla)
        b = single_linkage(tri)
        assert a.heights() == pytest.approx(b.heights())

    @given(metric_spaces(), st.floats(0.0, 1.0), st.integers(0, 11))
    @settings(**COMMON)
    def test_range_query_matches_brute(self, instance, radius_frac, q):
        space, matrix = instance
        if q >= space.n:
            return
        radius = radius_frac * float(matrix.max())
        _, tri = _pair(space)
        hits = range_query(tri, q, radius)
        brute = sorted(
            c for c in range(space.n) if c != q and matrix[q, c] <= radius
        )
        assert hits == brute

    @given(metric_spaces(), st.integers(0, 11))
    @settings(**COMMON)
    def test_farthest_matches_brute(self, instance, q):
        space, matrix = instance
        if q >= space.n:
            return
        _, tri = _pair(space)
        _, dist = farthest_neighbor(tri, q)
        assert dist == pytest.approx(max(matrix[q, c] for c in range(space.n) if c != q))


class TestIndexCorrectness:
    @given(metric_spaces(min_n=6, max_n=14), st.integers(0, 2**16))
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_vptree_nearest_matches_brute(self, instance, seed):
        space, matrix = instance
        tree = VpTree(space.oracle(), rng=np.random.default_rng(seed))
        for q in range(space.n):
            _, dist = tree.nearest(q)
            assert dist == pytest.approx(
                min(matrix[q, c] for c in range(space.n) if c != q)
            )

    @given(metric_spaces(min_n=6, max_n=14), st.integers(0, 2**16), st.floats(0.0, 1.0))
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_mtree_range_matches_brute(self, instance, seed, frac):
        space, matrix = instance
        radius = frac * float(matrix.max())
        tree = MTree(space.oracle(), capacity=3, rng=np.random.default_rng(seed))
        for q in (0, space.n // 2):
            hits = tree.range(q, radius)
            brute = sorted(c for c in range(space.n) if matrix[q, c] <= radius)
            assert hits == brute

    @given(metric_spaces(min_n=6, max_n=14), st.integers(0, 2**16), st.floats(0.0, 1.0))
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_gnat_range_matches_brute(self, instance, seed, frac):
        space, matrix = instance
        radius = frac * float(matrix.max())
        tree = Gnat(space.oracle(), arity=3, leaf_size=3, rng=np.random.default_rng(seed))
        for q in (0, space.n - 1):
            hits = tree.range(q, radius)
            brute = sorted(c for c in range(space.n) if matrix[q, c] <= radius)
            assert hits == brute


class TestInfrastructureProperties:
    @given(metric_spaces(), st.integers(0, 2**16))
    @settings(**COMMON)
    def test_persistence_round_trip(self, instance, seed):
        import tempfile

        space, _ = instance
        resolver = SmartResolver(space.oracle())
        rng = np.random.default_rng(seed)
        for _ in range(20):
            i, j = int(rng.integers(space.n)), int(rng.integers(space.n))
            if i != j:
                resolver.distance(i, j)
        with tempfile.NamedTemporaryFile(suffix=".npz") as handle:
            save_graph(resolver.graph, handle.name)
            loaded = load_graph(handle.name)
        assert set(loaded.edges()) == set(resolver.graph.edges())

    @given(st.integers(2, 20), st.integers(0, 2**31 - 1))
    @settings(**COMMON)
    def test_random_ultrametric_is_ultrametric(self, n, seed):
        matrix = random_ultrametric(n, np.random.default_rng(seed))
        rng = np.random.default_rng(seed + 1)
        for _ in range(30):
            i, j, k = rng.integers(n, size=3)
            assert matrix[i, j] <= max(matrix[i, k], matrix[k, j]) + 1e-9
        assert np.allclose(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0)

    @given(metric_spaces(), st.lists(st.tuples(st.integers(0, 11), st.integers(0, 11)), max_size=15))
    @settings(**COMMON)
    def test_batch_matches_individual_calls(self, instance, raw_pairs):
        space, matrix = instance
        pairs = [(i % space.n, j % space.n) for i, j in raw_pairs]
        batch_oracle = space.oracle()
        batched = batch_oracle.batch(pairs)
        single_oracle = space.oracle()
        individual = [single_oracle(i, j) for i, j in pairs]
        assert batched == individual
        assert batch_oracle.calls == single_oracle.calls

    @given(metric_spaces(), st.floats(1.0, 3.0))
    @settings(**COMMON)
    def test_relaxed_tri_is_looser_but_sound(self, instance, c):
        space, matrix = instance
        graph = PartialDistanceGraph(space.n)
        rng = np.random.default_rng(1)
        for _ in range(30):
            i, j = int(rng.integers(space.n)), int(rng.integers(space.n))
            if i != j and not graph.has_edge(i, j):
                graph.add_edge(i, j, float(matrix[i, j]))
        strict = TriScheme(graph, float(matrix.max()))
        relaxed = TriScheme(graph, float(matrix.max()), relaxation=c)
        for i in range(space.n):
            for j in range(i + 1, space.n):
                if graph.has_edge(i, j):
                    continue
                bs = strict.bounds(i, j)
                br = relaxed.bounds(i, j)
                # A metric is also a c-relaxed metric, so both are sound,
                # and the relaxed interval can never be tighter.
                assert br.lower <= bs.lower + 1e-9
                assert br.upper >= bs.upper - 1e-9
                assert br.lower - 1e-9 <= matrix[i, j] <= br.upper + 1e-9
