"""The engine/server metrics surface must reconcile exactly with EngineStats.

Three layers are pinned here:

* the registry totals equal the engine's own accounting after a concurrent
  soak (no lost updates, no double counts),
* the ``{"op": "metrics"}`` socket verb returns the same exposition text as
  ``engine.render_metrics()``, and
* a raw HTTP ``GET /metrics`` over the Unix socket answers 200 with a
  parseable Prometheus body whose samples match the stats op.
"""

import socket
import threading

import pytest

from repro.obs import MetricsRegistry, registry_totals
from repro.service import JobSpec, ProximityEngine, ProximityServer, send_request
from repro.spaces.matrix import MatrixSpace, random_metric_matrix


@pytest.fixture
def space(rng):
    return MatrixSpace(random_metric_matrix(24, rng))


@pytest.fixture
def engine(space):
    eng = ProximityEngine.for_space(space, provider="tri", job_workers=3)
    yield eng
    eng.close(snapshot=False)


def parse_prometheus(text):
    """Parse exposition text into ``{sample_name{labels}: float}``."""
    out = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, raw = line.rpartition(" ")
        out[name] = float("inf") if raw == "+Inf" else float(raw)
    return out


def soak(engine, jobs_per_thread=4, threads=3):
    """Submit a mixed workload from several threads and wait it out."""
    handles = []
    lock = threading.Lock()

    def work(tid):
        for k in range(jobs_per_thread):
            if k % 2 == 0:
                job = engine.submit_job("knn", query=(tid * 5 + k) % 24, k=3)
            else:
                job = engine.submit_job("nearest", query=(tid * 7 + k) % 24)
            with lock:
                handles.append(job)

    pool = [threading.Thread(target=work, args=(t,)) for t in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    for job in handles:
        job.result(timeout=30)
    return handles


class TestRegistryReconciliation:
    def test_soak_totals_match_engine_stats(self, engine):
        handles = soak(engine)
        stats = engine.snapshot_stats()
        snap = engine.registry.snapshot()

        assert snap["repro_oracle_calls_total"] == stats.oracle_calls
        assert snap["repro_jobs_submitted_total"] == len(handles)
        assert snap["repro_jobs_submitted_total"] == stats.jobs_submitted
        assert snap['repro_jobs_total{status="completed"}'] == stats.jobs_completed
        assert (
            registry_totals(snap, "repro_jobs_total")
            == stats.jobs_completed
            + stats.jobs_partial
            + stats.jobs_failed
            + stats.jobs_cancelled
            + stats.jobs_expired
        )
        assert snap["repro_job_latency_seconds_count"] == stats.jobs_completed
        assert snap["repro_warm_resolutions_total"] == stats.warm_resolutions
        assert snap["repro_resolver_memo_hits_total"] == stats.bound_cache_hits
        assert snap["repro_queue_depth"] == stats.queue_depth == 0
        assert snap["repro_graph_edges"] == stats.graph_edges

    def test_merged_resolver_stats_equal_registry_view(self, engine):
        soak(engine)
        resolver = engine.snapshot_stats().resolver
        snap = engine.registry.snapshot()
        assert (
            registry_totals(snap, "repro_resolver_comparisons_total")
            == resolver.decided_by_bounds + resolver.decided_by_oracle
        )
        assert snap["repro_resolver_resolutions_total"] == resolver.resolutions
        assert (
            snap["repro_resolver_oracle_resolutions_total"]
            == resolver.oracle_resolutions
        )
        assert (
            snap["repro_resolver_cached_resolutions_total"]
            == resolver.cached_resolutions
        )
        assert snap["repro_resolver_dijkstra_runs_total"] == resolver.dijkstra_runs

    def test_fresh_engine_exposes_documented_names_at_zero(self, engine):
        snap = engine.registry.snapshot()
        assert snap["repro_resolver_memo_hits_total"] == 0
        assert snap["repro_oracle_calls_total"] == engine.snapshot_stats().oracle_calls
        assert snap["repro_job_latency_seconds_count"] == 0
        assert snap["repro_jobs_submitted_total"] == 0

    def test_span_histogram_records_job_phases(self, engine):
        engine.run(JobSpec(kind="knn", params={"query": 1, "k": 3}), timeout=30)
        hist = engine.registry.get("repro_job_phase_seconds")
        assert hist is not None
        assert hist.labels(span="knn").count == 1

    def test_injected_registry_is_used(self, space):
        registry = MetricsRegistry()
        eng = ProximityEngine.for_space(
            space, provider="tri", job_workers=1, registry=registry
        )
        try:
            assert eng.registry is registry
            eng.run(JobSpec(kind="nearest", params={"query": 0}), timeout=30)
            assert registry.snapshot()["repro_jobs_submitted_total"] == 1
        finally:
            eng.close(snapshot=False)


class TestMetricsOp:
    def test_metrics_op_returns_exposition_text(self, engine, tmp_path):
        sock = str(tmp_path / "engine.sock")
        with ProximityServer(engine, sock):
            engine.run(JobSpec(kind="knn", params={"query": 0, "k": 3}), timeout=30)
            response = send_request(sock, {"op": "metrics"})
        assert response["ok"]
        parsed = parse_prometheus(response["metrics"])
        assert "repro_oracle_calls_total" in parsed
        assert "repro_resolver_memo_hits_total" in parsed
        assert 'repro_jobs_total{status="completed"}' in parsed

    def test_render_metrics_matches_stats_op(self, engine, tmp_path):
        sock = str(tmp_path / "engine.sock")
        with ProximityServer(engine, sock):
            engine.run(JobSpec(kind="mst", params={}), timeout=60)
            stats = send_request(sock, {"op": "stats"})["stats"]
            parsed = parse_prometheus(send_request(sock, {"op": "metrics"})["metrics"])
        assert parsed["repro_oracle_calls_total"] == stats["oracle_calls"]
        assert parsed["repro_jobs_submitted_total"] == stats["jobs_submitted"]
        assert (
            parsed["repro_resolver_memo_hits_total"] == stats["bound_cache_hits"]
        )


class TestHttpScrape:
    def http_get(self, sock_path, target, method="GET"):
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as client:
            client.settimeout(10)
            client.connect(sock_path)
            request = f"{method} {target} HTTP/1.1\r\nHost: localhost\r\n\r\n"
            client.sendall(request.encode("ascii"))
            chunks = []
            while True:
                chunk = client.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        raw = b"".join(chunks).decode("utf-8")
        head, _, body = raw.partition("\r\n\r\n")
        status_line, _, header_text = head.partition("\r\n")
        headers = {}
        for line in header_text.split("\r\n"):
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        return status_line, headers, body

    def test_get_metrics_returns_prometheus_text(self, engine, tmp_path):
        sock = str(tmp_path / "engine.sock")
        with ProximityServer(engine, sock):
            engine.run(JobSpec(kind="knn", params={"query": 2, "k": 3}), timeout=30)
            status, headers, body = self.http_get(sock, "/metrics")
        assert status.startswith("HTTP/1.0 200")
        assert headers["content-type"].startswith("text/plain")
        assert int(headers["content-length"]) == len(body.encode("utf-8"))
        parsed = parse_prometheus(body)
        assert parsed["repro_oracle_calls_total"] > 0
        assert "repro_resolver_memo_hits_total" in parsed
        assert 'repro_job_latency_seconds_bucket{le="+Inf"}' in parsed

    def test_http_body_reconciles_with_engine_stats(self, engine, tmp_path):
        sock = str(tmp_path / "engine.sock")
        with ProximityServer(engine, sock):
            soak(engine, jobs_per_thread=2, threads=2)
            status, _, body = self.http_get(sock, "/metrics")
            stats = engine.snapshot_stats()
        assert status.startswith("HTTP/1.0 200")
        parsed = parse_prometheus(body)
        assert parsed["repro_oracle_calls_total"] == stats.oracle_calls
        assert parsed["repro_jobs_submitted_total"] == stats.jobs_submitted
        assert (
            parsed['repro_job_latency_seconds_bucket{le="+Inf"}']
            == stats.jobs_completed
        )

    def test_head_metrics_has_no_body(self, engine, tmp_path):
        sock = str(tmp_path / "engine.sock")
        with ProximityServer(engine, sock):
            status, headers, body = self.http_get(sock, "/metrics", method="HEAD")
        assert status.startswith("HTTP/1.0 200")
        assert int(headers["content-length"]) > 0
        assert body == ""

    def test_unknown_path_is_404(self, engine, tmp_path):
        sock = str(tmp_path / "engine.sock")
        with ProximityServer(engine, sock):
            status, _, _ = self.http_get(sock, "/nope")
        assert status.startswith("HTTP/1.0 404")

    def test_json_protocol_still_works_alongside_http(self, engine, tmp_path):
        sock = str(tmp_path / "engine.sock")
        with ProximityServer(engine, sock):
            self.http_get(sock, "/metrics")
            assert send_request(sock, {"op": "ping"})["ok"]
