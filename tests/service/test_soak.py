"""Concurrency soak test: interleaved jobs must equal serial cold runs.

The engine's whole claim is that sharing one partial distance graph across
concurrent queries saves oracle calls *without changing a single answer*.
This test hammers one engine from several submitting threads with a mixed
kNN/range workload and checks every result byte-for-byte against a fresh
serial resolver run per query — the strongest form of the exactness
invariant under interleaving.
"""

import threading

import pytest

from repro.algorithms import k_nearest, range_query
from repro.bounds import TriScheme
from repro.core.resolver import SmartResolver
from repro.service import ProximityEngine
from repro.spaces.matrix import MatrixSpace, random_metric_matrix


@pytest.fixture
def space(rng):
    return MatrixSpace(random_metric_matrix(40, rng))


def _serial_answer(space, kind, params):
    """Run one query on a fresh, cold resolver — the reference output."""
    oracle = space.oracle()
    resolver = SmartResolver(oracle)
    resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
    if kind == "knn":
        return k_nearest(resolver, params["query"], params["k"])
    assert kind == "range"
    return range_query(resolver, params["query"], params["radius"])


def _workload(n, threads, per_thread):
    """Deterministic mixed workload, distinct per (thread, slot)."""
    jobs = []
    for t in range(threads):
        for s in range(per_thread):
            q = (t * per_thread + s * 7) % n
            if (t + s) % 2 == 0:
                jobs.append(("knn", {"query": q, "k": 3 + (s % 4)}))
            else:
                jobs.append(("range", {"query": q, "radius": 0.4 + 0.1 * (s % 3)}))
    return jobs


@pytest.mark.parametrize("job_workers", [1, 4])
def test_interleaved_results_identical_to_serial(space, job_workers):
    threads = 4
    per_thread = 6
    workload = _workload(space.n, threads, per_thread)

    engine = ProximityEngine.for_space(
        space, provider="tri", job_workers=job_workers
    )
    results = {}
    errors = []
    lock = threading.Lock()

    def submitter(thread_idx):
        try:
            chunk = workload[
                thread_idx * per_thread : (thread_idx + 1) * per_thread
            ]
            handles = [
                engine.submit_job(kind, **params) for kind, params in chunk
            ]
            for (kind, params), handle in zip(chunk, handles):
                outcome = handle.result(120)
                with lock:
                    results[(thread_idx, kind, tuple(sorted(params.items())))] = (
                        outcome
                    )
        except Exception as exc:  # pragma: no cover - failure reporting
            with lock:
                errors.append(exc)

    try:
        submitters = [
            threading.Thread(target=submitter, args=(t,)) for t in range(threads)
        ]
        for t in submitters:
            t.start()
        for t in submitters:
            t.join(timeout=180)
        assert not errors, errors
        assert len(results) == threads * per_thread

        # Every interleaved answer equals a cold serial run of that query.
        for (thread_idx, kind, param_items), outcome in results.items():
            assert outcome.ok, (kind, param_items, outcome.error)
            expected = _serial_answer(space, kind, dict(param_items))
            assert outcome.value == expected, (kind, param_items)

        # And the sharing actually happened: the engine resolved each pair
        # at most once, so its total charge is below the sum of cold runs.
        stats = engine.snapshot_stats()
        assert stats.oracle_calls == engine.graph.num_edges
        assert stats.jobs_completed == threads * per_thread
    finally:
        engine.close(snapshot=False)


def test_soak_with_threaded_oracle_executor(space):
    """Same invariant with the batched executor path switched on."""
    workload = _workload(space.n, 2, 4)
    engine = ProximityEngine.for_space(
        space,
        provider="tri",
        job_workers=2,
        executor="threaded",
        oracle_workers=4,
    )
    try:
        handles = [engine.submit_job(kind, **params) for kind, params in workload]
        for (kind, params), handle in zip(workload, handles):
            outcome = handle.result(120)
            assert outcome.ok
            assert outcome.value == _serial_answer(space, kind, params)
    finally:
        engine.close(snapshot=False)
