"""build_index / search_index jobs: engine, server ops, persistence, shards."""

import json

import pytest

from repro.bounds import TriScheme
from repro.core.resolver import SmartResolver
from repro.graphs import build_hnsw, graph_search
from repro.service import JobSpec, JobStatus, ProximityEngine
from repro.service.server import handle_engine_request
from repro.spaces.matrix import MatrixSpace, random_metric_matrix


@pytest.fixture
def space(rng):
    return MatrixSpace(random_metric_matrix(30, rng))


@pytest.fixture
def engine(space):
    eng = ProximityEngine.for_space(space, provider="tri", job_workers=2)
    yield eng
    eng.close(snapshot=False)


def _built(engine, **params):
    params.setdefault("graph", "hnsw")
    result = engine.submit_job("build_index", **params).result(60)
    assert result.ok, result.error
    return result


class TestBuildIndexJob:
    def test_build_hnsw_matches_offline_builder(self, engine, space):
        result = _built(engine, m=4, ef=12, seed=2)
        assert result.value["kind"] == "hnsw"
        assert result.value["name"] == "hnsw"
        assert result.value["nodes"] == space.n
        resolver = SmartResolver(space.oracle())
        resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
        offline = build_hnsw(resolver, m=4, ef_construction=12, seed=2)
        assert engine.indexes["hnsw"].edges_signature() == offline.edges_signature()

    def test_build_nsg_and_custom_name(self, engine):
        result = _built(engine, graph="nsg", r=4, k=8, name="flat")
        assert result.value["name"] == "flat"
        assert engine.indexes["flat"].kind == "nsg"

    def test_unknown_graph_kind_fails_the_job(self, engine):
        result = engine.submit_job("build_index", graph="kdtree").result(60)
        assert result.status is JobStatus.FAILED
        assert "kdtree" in result.error

    def test_graph_param_is_required(self, engine):
        with pytest.raises(ValueError):
            JobSpec(kind="build_index")

    def test_rebuild_on_warm_engine_is_free(self, engine):
        first = _built(engine, m=4, ef=12, seed=2)
        assert first.charged_calls > 0
        again = _built(engine, m=4, ef=12, seed=2, name="warm")
        assert again.charged_calls == 0
        assert again.warm_resolutions > 0


class TestSearchIndexJob:
    def test_numeric_search_matches_direct_graph_search(self, engine, space):
        _built(engine, m=4, ef=12, seed=2)
        result = engine.submit_job("search_index", query=5, k=4).result(60)
        assert result.ok
        resolver = SmartResolver(space.oracle())
        resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
        expected = graph_search(resolver, engine.indexes["hnsw"], 5, 4)
        assert result.value == expected

    def test_comparison_mode_returns_ids_only(self, engine):
        _built(engine, m=4, ef=12, seed=2)
        numeric = engine.submit_job("search_index", query=7, k=4).result(60)
        ordinal = engine.submit_job(
            "search_index", query=7, k=4, mode="comparison"
        ).result(60)
        assert ordinal.ok
        assert ordinal.value["ids"] == [v for _, v in numeric.value]
        assert ordinal.value["comparisons"] > 0
        assert "distances" not in ordinal.value

    def test_single_index_fallback_and_named_lookup(self, engine):
        _built(engine, graph="nsg", r=4, k=8, name="only")
        unnamed = engine.submit_job("search_index", query=2, k=3).result(60)
        named = engine.submit_job("search_index", query=2, k=3, name="only").result(60)
        assert unnamed.ok and named.ok
        assert unnamed.value == named.value

    def test_missing_index_fails_with_guidance(self, engine):
        result = engine.submit_job("search_index", query=2, k=3).result(60)
        assert result.status is JobStatus.FAILED
        assert "build_index" in result.error

    def test_metrics_surface_builds_searches_and_comparisons(self, engine):
        _built(engine, m=4, ef=12, seed=2)
        engine.submit_job("search_index", query=1, k=3).result(60)
        engine.submit_job("search_index", query=1, k=3, mode="comparison").result(60)
        text = engine.render_metrics()
        assert 'repro_indexes_built_total{kind="hnsw"} 1' in text
        assert "repro_index_searches_total 2" in text
        assert "repro_indexes_stored 1" in text
        comparison_lines = [
            line for line in text.splitlines()
            if line.startswith("repro_comparison_calls_total")
        ]
        assert comparison_lines and int(comparison_lines[0].split()[-1]) > 0


class TestPersistence:
    def test_snapshot_restores_built_indexes(self, engine, space, tmp_path):
        _built(engine, m=4, ef=12, seed=2, name="keep")
        path = str(tmp_path / "snap.npz")
        engine.snapshot(path)

        other = ProximityEngine.for_space(space, provider="tri", job_workers=1)
        try:
            other.restore(path)
            assert other.indexes["keep"].edges_signature() == (
                engine.indexes["keep"].edges_signature()
            )
            # A restored graph serves searches without rebuilding.
            found = other.submit_job("search_index", query=3, k=3, name="keep").result(60)
            assert found.ok and len(found.value) == 3
        finally:
            other.close(snapshot=False)


class TestShardedRouting:
    @pytest.fixture(scope="class")
    def sharded(self):
        from repro.datasets.facades import flickr_space
        from repro.service import ShardedEngine
        from repro.spaces.handles import handle_for

        engine = ShardedEngine(
            handle_for(flickr_space, n=40, dim=5, seed=13),
            num_shards=2,
            provider="tri",
        )
        yield engine
        engine.close()

    def test_sticky_owner_routing_end_to_end(self, sharded, tmp_path_factory):
        # Round-robin ownership: two builds land on two different shards.
        for name, graph in (("a", "hnsw"), ("b", "nsg")):
            params = {"graph": graph, "name": name}
            if graph == "hnsw":
                params.update(m=4, ef=12)
            else:
                params.update(r=4, k=8)
            result = sharded.run(JobSpec(kind="build_index", params=params))
            assert result.ok, result.error
        listing = sharded.handle_request({"op": "indexes"})
        assert listing["indexes"] == ["a", "b"]
        assert sorted(listing["owners"].values()) == [0, 1]

        # Searches route to the shard that built the graph.
        for name in ("a", "b"):
            found = sharded.run(
                JobSpec(kind="search_index", params={"query": 3, "k": 4, "name": name})
            )
            assert found.ok and len(found.value) == 4
        ordinal = sharded.run(JobSpec(
            kind="search_index",
            params={"query": 3, "k": 4, "name": "a", "mode": "comparison"},
        ))
        assert ordinal.ok and len(ordinal.value["ids"]) == 4

        with pytest.raises(ValueError, match="no shard owns"):
            sharded.run(
                JobSpec(kind="search_index", params={"query": 3, "k": 4, "name": "zzz"})
            )

        # Restore into a fresh coordinator rebuilds the owner map.
        base = str(tmp_path_factory.mktemp("idx") / "warm")
        sharded.snapshot(base)
        from repro.datasets.facades import flickr_space
        from repro.service import ShardedEngine
        from repro.spaces.handles import handle_for

        second = ShardedEngine(
            handle_for(flickr_space, n=40, dim=5, seed=13),
            num_shards=2,
            provider="tri",
        )
        try:
            second.restore(base)
            listing = second.handle_request({"op": "indexes"})
            assert listing["indexes"] == ["a", "b"]
            found = second.run(
                JobSpec(kind="search_index", params={"query": 3, "k": 4, "name": "b"})
            )
            assert found.ok and len(found.value) == 4
        finally:
            second.close()


class TestServerOps:
    def test_build_index_op_builds_and_lists(self, engine):
        reply = handle_engine_request(
            engine, {"op": "build_index", "graph": "nsg", "params": {"r": 4, "k": 8}}
        )
        assert reply["ok"] and reply["result"]["status"] == "completed"
        assert reply["result"]["value"]["name"] == "nsg"
        listing = handle_engine_request(engine, {"op": "indexes"})
        assert listing == {"ok": True, "indexes": ["nsg"]}

    def test_search_via_submit_op_round_trips_json(self, engine):
        handle_engine_request(
            engine, {"op": "build_index", "graph": "hnsw", "params": {"m": 4, "ef": 12}}
        )
        reply = handle_engine_request(
            engine,
            {"op": "submit",
             "spec": {"kind": "search_index", "params": {"query": 4, "k": 3}}},
        )
        assert reply["ok"] and reply["result"]["status"] == "completed"
        payload = json.loads(json.dumps(reply))
        assert len(payload["result"]["value"]) == 3
