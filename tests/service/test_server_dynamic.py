"""JSON-lines protocol tests for the dynamic verbs (insert/remove/subscribe)."""

import pytest

from repro.dynamic import DynamicObjectSet
from repro.service import ProximityEngine, ProximityServer, send_request
from repro.service.server import mutation_from_dict
from repro.spaces.matrix import MatrixSpace, random_metric_matrix


@pytest.fixture
def space(rng):
    return MatrixSpace(random_metric_matrix(20, rng))


@pytest.fixture
def served(space, tmp_path):
    objects = DynamicObjectSet.wrap(space, initial=16)
    engine = ProximityEngine.for_space(objects, provider="tri", job_workers=1)
    sock = str(tmp_path / "dyn.sock")
    with ProximityServer(engine, sock):
        yield engine, objects, sock
    engine.close(snapshot=False)


class TestMutationVerbs:
    def test_insert_returns_assigned_id(self, served):
        _, objects, sock = served
        reply = send_request(sock, {"op": "insert", "payload": 16})
        assert reply["ok"]
        assert reply["id"] == 16  # fresh slot appended
        assert objects.payload(16) == 16

    def test_remove_then_recycled_insert(self, served):
        _, objects, sock = served
        assert send_request(sock, {"op": "remove", "id": 3})["ok"]
        assert not objects.is_alive(3)
        reply = send_request(sock, {"op": "insert", "payload": 17})
        assert reply["id"] == 3  # lowest tombstone recycled

    def test_mutate_batch_is_atomic(self, served):
        _, objects, sock = served
        reply = send_request(
            sock,
            {
                "op": "mutate",
                "mutations": [
                    {"kind": "remove", "id": 5},
                    {"kind": "insert", "payload": 18},
                ],
            },
        )
        assert reply["ok"]
        assert reply["result"]["removed_ids"] == [5]
        assert reply["result"]["inserted_ids"] == [5]

    def test_remove_unknown_id_answers_error(self, served):
        _, _, sock = served
        reply = send_request(sock, {"op": "remove", "id": 99})
        assert not reply["ok"]


class TestSubscriptionVerbs:
    def test_subscribe_knn_and_poll_deltas(self, served):
        _, _, sock = served
        sub = send_request(
            sock, {"op": "subscribe", "kind": "knn", "query": 0, "k": 3}
        )
        assert sub["ok"] and sub["kind"] == "knn"
        assert len(sub["result"]["neighbors"]) == 3
        victim = sub["result"]["neighbors"][0][1]
        send_request(sock, {"op": "remove", "id": int(victim)})
        polled = send_request(
            sock, {"op": "deltas", "sub_id": sub["sub_id"], "since": 0}
        )
        assert polled["ok"] and polled["deltas"]
        assert int(victim) in polled["deltas"][-1]["left"]
        assert all(
            int(obj) != int(victim)
            for _, obj in polled["result"]["neighbors"]
        )

    def test_subscribe_knng_rows_cover_live_set(self, served):
        engine, objects, sock = served
        sub = send_request(sock, {"op": "subscribe", "kind": "knng", "k": 2})
        assert sub["ok"]
        rows = sub["result"]["rows"]
        assert sorted(int(u) for u in rows) == objects.alive_ids()

    def test_unsubscribe_stops_tracking(self, served):
        engine, _, sock = served
        sub = send_request(
            sock, {"op": "subscribe", "kind": "knn", "query": 1, "k": 2}
        )
        reply = send_request(sock, {"op": "unsubscribe", "sub_id": sub["sub_id"]})
        assert reply["ok"]
        assert engine.subscriptions.active == 0

    def test_unknown_subscription_kind_answers_error(self, served):
        _, _, sock = served
        reply = send_request(sock, {"op": "subscribe", "kind": "mst"})
        assert not reply["ok"]


class TestMutationFromDict:
    def test_accepts_id_and_obj_id_spellings(self):
        assert mutation_from_dict({"kind": "remove", "id": 4}).obj_id == 4
        assert mutation_from_dict({"kind": "remove", "obj_id": 9}).obj_id == 9

    def test_insert_payload_passthrough(self):
        mut = mutation_from_dict({"kind": "insert", "payload": {"x": 1}})
        assert mut.kind == "insert" and mut.payload == {"x": 1}
