"""Tests for the sharded multi-process engine and its landmark plan."""

import os

import pytest

from repro.core.exceptions import ConfigurationError
from repro.datasets.facades import flickr_space
from repro.service import ProximityEngine, ShardedEngine, plan_shards
from repro.service.jobs import JobSpec, JobStatus
from repro.spaces.handles import handle_for

N = 48


@pytest.fixture(scope="module")
def handle():
    return handle_for(flickr_space, n=N, dim=6, seed=11)


@pytest.fixture(scope="module")
def space(handle):
    return handle.space()


@pytest.fixture(scope="module")
def sharded(handle):
    engine = ShardedEngine(handle, num_shards=2, provider="none")
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def reference(space):
    engine = ProximityEngine.for_space(space, provider="none", job_workers=1)
    yield engine
    engine.close(snapshot=False)


class TestShardPlan:
    def test_regions_partition_universe(self, space):
        plan = plan_shards(N, 3, space=space)
        seen = sorted(obj for region in plan.regions for obj in region)
        assert seen == list(range(N))
        for region in plan.regions:
            assert list(region) == sorted(region)  # ascending within a shard

    def test_block_partition_without_space(self):
        plan = plan_shards(10, 3)
        assert [len(r) for r in plan.regions] == [3, 3, 4]
        assert plan.regions[0] == tuple(range(3))

    def test_single_shard_owns_everything(self):
        plan = plan_shards(7, 1)
        assert plan.num_shards == 1
        assert plan.regions[0] == tuple(range(7))

    def test_digest_is_deterministic_and_plan_sensitive(self, space):
        a = plan_shards(N, 2, space=space)
        b = plan_shards(N, 2, space=space)
        c = plan_shards(N, 3, space=space)
        assert a.digest == b.digest
        assert a.digest != c.digest

    def test_shard_fingerprint_encodes_position(self, space):
        plan = plan_shards(N, 2, space=space)
        fp = plan.shard_fingerprint("base-fp", 1)
        assert fp == f"base-fp|plan={plan.digest}|shard=1/2"
        assert plan.shard_fingerprint("base-fp", 0) != fp


class TestScatterIdentity:
    @pytest.mark.parametrize("query", [0, 7, 29, N - 1])
    def test_knn_matches_single_engine(self, sharded, reference, query):
        spec = JobSpec(kind="knn", params={"query": query, "k": 5})
        got = sharded.run(spec)
        want = reference.run(spec)
        assert got.status is JobStatus.COMPLETED
        assert got.value == want.value

    def test_range_matches_single_engine(self, sharded, reference, space):
        radius = space.distance(4, 5) * 1.1
        spec = JobSpec(kind="range", params={"query": 4, "radius": radius})
        assert sharded.run(spec).value == reference.run(spec).value

    def test_range_include_query(self, sharded, reference, space):
        radius = space.distance(9, 10) * 1.1
        spec = JobSpec(
            kind="range",
            params={"query": 9, "radius": radius, "include_query": True},
        )
        got = sharded.run(spec).value
        assert 9 in got
        assert got == reference.run(spec).value

    def test_nearest_matches_single_engine(self, sharded, reference):
        spec = JobSpec(kind="nearest", params={"query": 17})
        assert tuple(sharded.run(spec).value) == tuple(reference.run(spec).value)

    def test_explicit_candidates_respected(self, sharded, reference):
        candidates = [1, 3, 20, 30, 41]  # spans both regions
        spec = JobSpec(
            kind="knn", params={"query": 2, "k": 3, "candidates": candidates}
        )
        got = sharded.run(spec)
        assert got.value == reference.run(spec).value
        assert {obj for _, obj in got.value} <= set(candidates)

    def test_repeat_query_is_fully_warm(self, sharded):
        spec = JobSpec(kind="knn", params={"query": 11, "k": 4})
        first = sharded.run(spec)
        again = sharded.run(spec)
        assert again.value == first.value
        # Every pair the first run resolved is in each shard's graph now.
        assert again.charged_calls == 0


class TestGlobalKinds:
    def test_medoid_routes_whole(self, sharded, reference):
        spec = JobSpec(kind="medoid", params={})
        assert sharded.run(spec).value == reference.run(spec).value

    def test_mst_completes(self, sharded):
        result = sharded.run(JobSpec(kind="mst", params={}))
        assert result.status is JobStatus.COMPLETED


class TestCoordinatorSurface:
    def test_stats_shape(self, sharded):
        stats = sharded.stats()
        assert stats["sharded"] is True
        assert len(stats["shards"]) == 2
        assert stats["plan"]["num_shards"] == 2
        assert stats["aggregate"]["graph_edges"] == sum(
            s["graph_edges"] for s in stats["shards"]
        )

    def test_store_accumulates_resolved_edges(self, sharded):
        sharded.run(JobSpec(kind="knn", params={"query": 23, "k": 3}))
        assert sharded.store.num_edges > 0
        # The coordinator dedups: store size never exceeds all pairs.
        assert sharded.store.num_edges <= N * (N - 1) // 2

    def test_metrics_carry_shard_labels(self, sharded):
        text = sharded.render_metrics()
        assert 'shard="0"' in text and 'shard="1"' in text
        assert "repro_router_jobs_total" in text
        # Families merged across pages: one TYPE header per family.
        assert text.count("# TYPE repro_jobs_submitted_total") == 1

    def test_handle_request_matches_server_protocol(self, sharded):
        assert sharded.handle_request({"op": "ping"})["shards"] == 2
        reply = sharded.handle_request(
            {"op": "submit", "spec": {"kind": "knn", "params": {"query": 3, "k": 2}}}
        )
        assert reply["ok"] and reply["result"]["status"] == "completed"
        assert sharded.handle_request({"op": "bogus"})["ok"] is False

    def test_rejects_zero_shards(self, handle):
        with pytest.raises(ConfigurationError):
            ShardedEngine(handle, num_shards=0)


class TestPerShardByteIdentity:
    def test_shard_edge_sequences_replay_substream(self, handle, space):
        # Each shard must resolve exactly the edges (in exactly the order)
        # that a single-process engine produces on the same candidate
        # substream — the acceptance bar for answer/provenance parity.
        engine = ShardedEngine(handle, num_shards=2, provider="none")
        try:
            spec = JobSpec(kind="knn", params={"query": 5, "k": 4})
            engine.run(spec)
            for shard, region in zip(engine._shards, engine.plan.regions):
                rows = engine._call(shard, {"op": "edges", "start": 0})["edges"]
                ref = ProximityEngine.for_space(
                    space, provider="none", job_workers=1
                )
                try:
                    ref.run(
                        JobSpec(
                            kind="knn",
                            params={
                                "query": 5,
                                "k": 4,
                                "candidates": list(region),
                            },
                        )
                    )
                    i, j, w = ref.graph.edge_arrays()
                    want = list(zip(i.tolist(), j.tolist(), w.tolist()))
                finally:
                    ref.close(snapshot=False)
                assert [tuple(r) for r in rows] == want
        finally:
            engine.close()


class TestSnapshotRestore:
    def test_round_trip_with_per_shard_fingerprints(self, handle, tmp_path):
        base = str(tmp_path / "warm")
        first = ShardedEngine(handle, num_shards=2, provider="none")
        try:
            first.run(JobSpec(kind="knn", params={"query": 2, "k": 4}))
            first.run(JobSpec(kind="nearest", params={"query": 40}))
            edges_before = first.stats()["aggregate"]["graph_edges"]
            paths = first.snapshot(base)
            assert os.path.exists(paths["store"])
            assert len(paths["shards"]) == 2
        finally:
            first.close()
        assert edges_before > 0

        second = ShardedEngine(handle, num_shards=2, provider="none")
        try:
            added = second.restore(base)
            assert added == edges_before
            assert second.stats()["aggregate"]["graph_edges"] == edges_before
            assert second.store.num_edges == edges_before
        finally:
            second.close()

    def test_restore_rejects_swapped_shard_archives(self, handle, tmp_path):
        # Shard archives carry per-shard fingerprints (dataset + plan digest
        # + position); feeding shard 1's archive to shard 0 must fail.
        base = str(tmp_path / "warm")
        engine = ShardedEngine(handle, num_shards=2, provider="none")
        try:
            engine.run(JobSpec(kind="knn", params={"query": 2, "k": 4}))
            engine.snapshot(base)
            p0, p1 = engine.shard_snapshot_paths(base)
            os.rename(p0, p0 + ".tmp")
            os.rename(p1, p0)
            os.rename(p0 + ".tmp", p1)
            with pytest.raises(RuntimeError, match="[Ss]napshot[Mm]ismatch"):
                engine.restore(base)
        finally:
            engine.close()

    def test_warm_from_attaches_store_archive(self, handle, tmp_path):
        base = str(tmp_path / "warm")
        first = ShardedEngine(handle, num_shards=2, provider="none")
        try:
            first.run(JobSpec(kind="knn", params={"query": 2, "k": 4}))
            first.snapshot(base)
            edges = first.store.num_edges
        finally:
            first.close()
        warmed = ShardedEngine(
            handle, num_shards=2, provider="none", warm_from=f"{base}.store.npz"
        )
        try:
            assert warmed.store.num_edges == edges
            # Warm edges pre-seed every shard: re-running the same query
            # must charge nothing new.
            result = warmed.run(JobSpec(kind="knn", params={"query": 2, "k": 4}))
            assert result.charged_calls == 0
        finally:
            warmed.close()
