"""Tests for the asyncio front-end on Unix and TCP transports."""

import json
import os
import socket

import pytest

from repro.service import AsyncProximityServer, ProximityEngine, send_request
from repro.service.server import parse_target
from repro.spaces.matrix import MatrixSpace, random_metric_matrix


@pytest.fixture
def engine(rng):
    built = ProximityEngine.for_space(
        MatrixSpace(random_metric_matrix(20, rng)), provider="tri", job_workers=2
    )
    yield built
    built.close(snapshot=False)


@pytest.fixture
def served(engine, tmp_path):
    sock = str(tmp_path / "aserve.sock")
    with AsyncProximityServer(engine, socket_path=sock, port=0) as server:
        yield server, sock


class TestParseTarget:
    def test_host_port(self):
        assert parse_target("example.org:9000") == ("tcp", ("example.org", 9000))

    def test_bare_port_means_localhost(self):
        assert parse_target(":9000") == ("tcp", ("127.0.0.1", 9000))

    def test_paths_are_unix(self):
        assert parse_target("/tmp/engine.sock") == ("unix", "/tmp/engine.sock")
        # Even with a colon in the name: a path containing "/" stays unix.
        assert parse_target("/tmp/a:b.sock") == ("unix", "/tmp/a:b.sock")

    def test_non_numeric_port_is_a_path(self):
        assert parse_target("engine.sock:main") == ("unix", "engine.sock:main")


class TestTransports:
    def test_requires_some_transport(self, engine):
        with pytest.raises(ValueError):
            AsyncProximityServer(engine)

    def test_ephemeral_port_is_reported(self, served):
        server, _ = served
        assert server.port not in (None, 0)

    def test_ping_over_unix(self, served):
        _, sock = served
        assert send_request(sock, {"op": "ping"}) == {"ok": True, "op": "ping"}

    def test_ping_over_tcp(self, served):
        server, _ = served
        reply = send_request(f"127.0.0.1:{server.port}", {"op": "ping"})
        assert reply == {"ok": True, "op": "ping"}

    def test_submit_identical_on_both_transports(self, served):
        server, sock = served
        request = {
            "op": "submit",
            "spec": {"kind": "knn", "params": {"query": 2, "k": 3}},
        }
        over_unix = send_request(sock, request)["result"]["value"]
        over_tcp = send_request(f"127.0.0.1:{server.port}", request)["result"]["value"]
        assert over_unix == over_tcp

    def test_many_requests_per_connection(self, served):
        server, _ = served
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as c:
            stream = c.makefile("rwb")
            for _ in range(3):
                stream.write((json.dumps({"op": "ping"}) + "\n").encode())
                stream.flush()
                assert json.loads(stream.readline())["ok"]

    def test_socket_file_removed_on_close(self, engine, tmp_path):
        sock = str(tmp_path / "gone.sock")
        with AsyncProximityServer(engine, socket_path=sock):
            assert os.path.exists(sock)
        assert not os.path.exists(sock)

    def test_bind_conflict_raises_in_caller(self, engine):
        first = AsyncProximityServer(engine, port=0).start()
        try:
            with pytest.raises(OSError):
                AsyncProximityServer(engine, port=first.port).start()
        finally:
            first.close()


class TestProtocolErrors:
    def test_unknown_op(self, served):
        _, sock = served
        reply = send_request(sock, {"op": "frobnicate"})
        assert reply["ok"] is False

    def test_malformed_json_answers_error(self, served):
        server, _ = served
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as c:
            c.sendall(b"{not json}\n")
            reply = json.loads(c.makefile("rb").readline())
        assert reply["ok"] is False
        assert "JSONDecodeError" in reply["error"]

    def test_handler_exception_answers_error(self, served):
        _, sock = served
        # A submit spec without a kind raises inside the backend; the
        # connection must answer with ok=False rather than reset.
        reply = send_request(sock, {"op": "submit", "spec": {}})
        assert reply["ok"] is False
        assert "KeyError" in reply["error"]


def _http_get(port, path, method="GET"):
    with socket.create_connection(("127.0.0.1", port), timeout=10) as c:
        c.sendall(
            f"{method} {path} HTTP/1.0\r\nHost: localhost\r\n\r\n".encode()
        )
        payload = b""
        while True:
            chunk = c.recv(65536)
            if not chunk:
                break
            payload += chunk
    head, _, body = payload.partition(b"\r\n\r\n")
    return head.decode(), body.decode()


class TestHttpMetrics:
    def test_get_metrics(self, served):
        server, _ = served
        head, body = _http_get(server.port, "/metrics")
        assert "200 OK" in head
        assert "repro_jobs_submitted_total" in body

    def test_head_metrics_has_no_body(self, served):
        server, _ = served
        head, body = _http_get(server.port, "/metrics", method="HEAD")
        assert "200 OK" in head
        assert body == ""

    def test_unknown_path_404(self, served):
        server, _ = served
        head, _ = _http_get(server.port, "/nope")
        assert "404" in head
