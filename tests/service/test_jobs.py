"""Unit tests for the job model."""

import pytest

from repro.service.jobs import (
    JOB_KINDS,
    Job,
    JobResult,
    JobSpec,
    JobStatus,
    TERMINAL_STATUSES,
)


class TestJobSpec:
    def test_valid_specs(self):
        JobSpec(kind="knn", params={"query": 0, "k": 3})
        JobSpec(kind="range", params={"query": 1, "radius": 0.5})
        JobSpec(kind="nearest", params={"query": 2})
        JobSpec(kind="medoid")
        JobSpec(kind="knng")
        JobSpec(kind="mst")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            JobSpec(kind="teleport")

    @pytest.mark.parametrize("kind", sorted(JOB_KINDS))
    def test_missing_required_params_rejected(self, kind):
        required = JOB_KINDS[kind]
        if not required:
            pytest.skip("kind has no required params")
        with pytest.raises(ValueError, match="requires parameter"):
            JobSpec(kind=kind)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            JobSpec(kind="mst", oracle_budget=-1)

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            JobSpec(kind="mst", deadline=0)

    def test_zero_budget_allowed(self):
        spec = JobSpec(kind="mst", oracle_budget=0)
        assert spec.oracle_budget == 0


class TestJobHandle:
    def test_lifecycle(self):
        job = Job(1, JobSpec(kind="mst"))
        assert job.status is JobStatus.PENDING
        assert not job.done()
        assert job._mark_running()
        assert job.status is JobStatus.RUNNING
        job._finish(JobResult(status=JobStatus.COMPLETED, value=42))
        assert job.done()
        assert job.result(0.1).value == 42
        assert job.status is JobStatus.COMPLETED

    def test_cancel_before_run(self):
        job = Job(1, JobSpec(kind="mst"))
        assert job.cancel()
        assert job.cancel_requested
        assert not job._mark_running()

    def test_cancel_after_done_returns_false(self):
        job = Job(1, JobSpec(kind="mst"))
        job._finish(JobResult(status=JobStatus.COMPLETED))
        assert not job.cancel()

    def test_result_timeout(self):
        job = Job(1, JobSpec(kind="mst"))
        with pytest.raises(TimeoutError):
            job.result(timeout=0.01)

    def test_deadline_expiry(self):
        job = Job(1, JobSpec(kind="mst", deadline=100.0))
        assert not job.expired()
        assert job.expired(now=job.deadline_at + 1)

    def test_no_deadline_never_expires(self):
        job = Job(1, JobSpec(kind="mst"))
        assert not job.expired(now=1e12)

    def test_terminal_statuses(self):
        assert JobStatus.PENDING not in TERMINAL_STATUSES
        assert JobStatus.RUNNING not in TERMINAL_STATUSES
        assert JobStatus.PARTIAL in TERMINAL_STATUSES

    def test_result_ok_only_when_completed(self):
        assert JobResult(status=JobStatus.COMPLETED).ok
        assert not JobResult(status=JobStatus.PARTIAL).ok
