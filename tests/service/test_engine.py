"""Unit tests for the ProximityEngine."""

import pytest

from repro.algorithms import k_nearest, knn_graph, prim_mst, range_query
from repro.bounds import TriScheme
from repro.core import SnapshotMismatchError
from repro.core.exceptions import ConfigurationError
from repro.core.resolver import SmartResolver
from repro.service import JobSpec, JobStatus, ProximityEngine
from repro.spaces.matrix import MatrixSpace, random_metric_matrix


@pytest.fixture
def space(rng):
    return MatrixSpace(random_metric_matrix(30, rng))


@pytest.fixture
def engine(space):
    eng = ProximityEngine.for_space(space, provider="tri", job_workers=2)
    yield eng
    eng.close(snapshot=False)


def _serial_resolver(space):
    oracle = space.oracle()
    resolver = SmartResolver(oracle)
    resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
    return oracle, resolver


class TestJobKinds:
    def test_knn_matches_serial(self, engine, space):
        result = engine.submit_job("knn", query=3, k=4).result(30)
        assert result.ok
        _, resolver = _serial_resolver(space)
        assert result.value == k_nearest(resolver, 3, 4)

    def test_range_matches_serial(self, engine, space):
        result = engine.submit_job("range", query=5, radius=0.6).result(30)
        assert result.ok
        _, resolver = _serial_resolver(space)
        assert result.value == range_query(resolver, 5, 0.6)

    def test_nearest(self, engine):
        result = engine.submit_job("nearest", query=0).result(30)
        assert result.ok
        obj, dist = result.value
        assert obj != 0 and dist > 0

    def test_mst_matches_serial(self, engine, space):
        result = engine.submit_job("mst").result(30)
        assert result.ok
        _, resolver = _serial_resolver(space)
        expected = prim_mst(resolver)
        assert result.value.total_weight == pytest.approx(expected.total_weight)
        assert result.value.edges == expected.edges

    def test_knng_matches_serial(self, engine, space):
        result = engine.submit_job("knng", k=3).result(60)
        assert result.ok
        _, resolver = _serial_resolver(space)
        assert result.value == knn_graph(resolver, k=3)

    def test_medoid_runs(self, engine):
        result = engine.submit_job("medoid", l=2, seed=0).result(60)
        assert result.ok
        assert len(result.value.medoids) == 2

    def test_out_of_range_query_rejected_at_submit(self, engine):
        with pytest.raises(ValueError, match="out of range"):
            engine.submit_job("knn", query=999, k=3)

    def test_failed_job_does_not_kill_worker(self, engine):
        bad = engine.submit_job("knng", k=29_000)  # k >= n inside the job
        result = bad.result(30)
        assert result.status is JobStatus.FAILED
        assert "k must be" in result.error
        # The worker survives and serves the next job.
        assert engine.submit_job("nearest", query=1).result(30).ok


class TestWarmReuse:
    def test_repeat_query_charges_nothing(self, engine):
        first = engine.submit_job("knn", query=2, k=5).result(30)
        again = engine.submit_job("knn", query=2, k=5).result(30)
        assert again.value == first.value
        assert again.charged_calls == 0
        assert again.warm_resolutions > 0

    def test_warm_total_aggregates(self, engine):
        engine.submit_job("mst").result(60)
        engine.submit_job("mst").result(60)
        stats = engine.snapshot_stats()
        assert stats.warm_resolutions > 0
        assert stats.jobs_completed == 2


class TestBudgets:
    def test_budget_exhaustion_yields_partial(self, engine):
        result = engine.submit_job("mst", oracle_budget=3).result(30)
        assert result.status is JobStatus.PARTIAL
        assert result.charged_calls <= 3
        assert len(result.unresolved) > 0
        assert all(i < j for i, j in result.unresolved)

    def test_partial_leaves_engine_consistent(self, engine, space):
        engine.submit_job("mst", oracle_budget=5).result(30)
        # A later unbudgeted job still gets the exact answer.
        result = engine.submit_job("mst").result(60)
        assert result.ok
        _, resolver = _serial_resolver(space)
        assert result.value.total_weight == pytest.approx(
            prim_mst(resolver).total_weight
        )

    def test_budget_large_enough_completes(self, engine):
        result = engine.submit_job("nearest", query=4, oracle_budget=10_000).result(30)
        assert result.ok


class TestCancellation:
    def test_cancel_pending_job(self, space):
        # Single worker + a long job in front keeps the victim pending.
        eng = ProximityEngine.for_space(space, provider="tri", job_workers=1)
        try:
            blocker = eng.submit_job("knng", k=5)
            victim = eng.submit_job("mst")
            assert victim.cancel()
            assert blocker.result(60).ok
            assert victim.result(30).status is JobStatus.CANCELLED
        finally:
            eng.close(snapshot=False)

    def test_expired_deadline(self, space):
        eng = ProximityEngine.for_space(space, provider="tri", job_workers=1)
        try:
            blocker = eng.submit_job("knng", k=5)
            victim = eng.submit_job("mst", deadline=1e-6)
            assert blocker.result(60).ok
            assert victim.result(30).status is JobStatus.EXPIRED
        finally:
            eng.close(snapshot=False)

    def test_close_cancels_queued_jobs(self, space):
        eng = ProximityEngine.for_space(space, provider="tri", job_workers=1)
        eng.submit_job("knng", k=5)
        tail = [eng.submit_job("mst") for _ in range(3)]
        eng.close(snapshot=False)
        statuses = {j.result(1).status for j in tail}
        assert statuses <= {JobStatus.CANCELLED, JobStatus.COMPLETED}

    def test_submit_after_close_rejected(self, space):
        eng = ProximityEngine.for_space(space, provider="tri")
        eng.close(snapshot=False)
        with pytest.raises(RuntimeError, match="closed"):
            eng.submit_job("mst")


class TestPriorities:
    def test_higher_priority_runs_first(self, space):
        eng = ProximityEngine.for_space(space, provider="tri", job_workers=1)
        try:
            blocker = eng.submit_job("knng", k=5)
            low = eng.submit_job("nearest", query=1, priority=0)
            high = eng.submit_job("nearest", query=2, priority=9)
            blocker.result(60)
            low_result = low.result(30)
            high_result = high.result(30)
            assert low_result.ok and high_result.ok
        finally:
            eng.close(snapshot=False)


class TestPersistence:
    def test_snapshot_restore_pays_zero(self, space, tmp_path):
        path = tmp_path / "warm.npz"
        eng = ProximityEngine.for_space(space, provider="tri", snapshot_path=str(path))
        baseline = eng.submit_job("knn", query=1, k=6).result(30)
        eng.close()  # writes the final snapshot
        assert path.exists()

        eng2 = ProximityEngine.for_space(
            space, provider="tri", restore_from=str(path)
        )
        try:
            replay = eng2.submit_job("knn", query=1, k=6).result(30)
            assert replay.value == baseline.value
            assert replay.charged_calls == 0
            assert eng2.oracle.calls == 0
            assert eng2.snapshot_stats().restored_edges > 0
        finally:
            eng2.close(snapshot=False)

    def test_fingerprint_mismatch_rejected(self, space, rng, tmp_path):
        path = tmp_path / "warm.npz"
        eng = ProximityEngine.for_space(space, provider="tri", snapshot_path=str(path))
        eng.submit_job("nearest", query=0).result(30)
        eng.close()

        other = MatrixSpace(random_metric_matrix(30, rng))
        eng2 = ProximityEngine.for_space(other, provider="tri")
        try:
            with pytest.raises(SnapshotMismatchError):
                eng2.restore(str(path))
        finally:
            eng2.close(snapshot=False)

    def test_size_mismatch_rejected(self, space, rng, tmp_path):
        path = tmp_path / "warm.npz"
        eng = ProximityEngine.for_space(space, provider="tri", snapshot_path=str(path))
        eng.submit_job("nearest", query=0).result(30)
        eng.close()

        small = MatrixSpace(random_metric_matrix(10, rng))
        eng2 = ProximityEngine.for_space(small, provider="tri")
        try:
            with pytest.raises(SnapshotMismatchError):
                eng2.restore(str(path))
        finally:
            eng2.close(snapshot=False)

    def test_periodic_snapshots(self, space, tmp_path):
        path = tmp_path / "periodic.npz"
        eng = ProximityEngine.for_space(
            space, provider="tri", snapshot_path=str(path), snapshot_every=10
        )
        try:
            eng.submit_job("mst").result(60)
            stats = eng.snapshot_stats()
            assert stats.snapshots_written >= 1
            assert path.exists()
        finally:
            eng.close(snapshot=False)

    def test_snapshot_without_path_rejected(self, engine):
        with pytest.raises(ConfigurationError, match="snapshot path"):
            engine.snapshot()


class TestStats:
    def test_snapshot_stats_coherent(self, engine):
        engine.submit_job("knn", query=0, k=3).result(30)
        engine.submit_job("knn", query=0, k=3).result(30)
        stats = engine.snapshot_stats()
        assert stats.jobs_submitted == 2
        assert stats.jobs_completed == 2
        assert stats.oracle_calls == engine.oracle.calls
        assert stats.graph_edges == engine.graph.num_edges
        assert stats.graph_epoch == engine.graph.epoch
        assert stats.latency_p50_s > 0
        assert stats.latency_p95_s >= stats.latency_p50_s
        assert 0 <= stats.bound_memo_hit_rate <= 1
        d = stats.to_dict()
        assert d["jobs_completed"] == 2
        assert isinstance(d["resolver"], dict)

    def test_engine_validates_workers(self, space):
        with pytest.raises(ConfigurationError, match="at least 1"):
            ProximityEngine.for_space(space, job_workers=0)


class TestLandmarkBootstrap:
    def test_laesa_engine_bootstraps_and_serves(self, space):
        eng = ProximityEngine.for_space(
            space, provider="laesa", num_landmarks=3, job_workers=2
        )
        try:
            assert eng.bootstrap_calls > 0
            result = eng.submit_job("nearest", query=2).result(30)
            assert result.ok
            stats = eng.snapshot_stats()
            assert stats.bootstrap_calls == eng.bootstrap_calls
        finally:
            eng.close(snapshot=False)
