"""Tests for dynamic (mutable) mode of the sharded multi-process engine."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.datasets.facades import flickr_space
from repro.service import ShardedEngine
from repro.service.jobs import JobSpec
from repro.spaces.handles import handle_for

N = 36


@pytest.fixture(scope="module")
def handle():
    return handle_for(flickr_space, n=N, dim=4, seed=11)


@pytest.fixture(scope="module")
def dynamic(handle):
    engine = ShardedEngine(handle, num_shards=2, provider="tri", dynamic=True)
    yield engine
    engine.close()


class TestStaticModeGuard:
    def test_static_coordinator_rejects_mutations(self, handle):
        engine = ShardedEngine(handle, num_shards=2, provider="none")
        try:
            with pytest.raises(ConfigurationError, match="dynamic=True"):
                engine.apply_mutations([{"kind": "remove", "id": 0}])
        finally:
            engine.close()


class TestBroadcastMutations:
    def test_batch_applies_identically_on_every_shard(self, dynamic):
        result = dynamic.apply_mutations(
            [
                {"kind": "remove", "id": 4},
                {"kind": "remove", "id": 21},
                {"kind": "insert", "payload": 4},
            ]
        )
        assert result["removed_ids"] == [4, 21]
        assert result["inserted_ids"] == [4]  # deterministic min-slot recycle
        # Every shard reports the same post-batch graph epoch.
        stats = dynamic.stats()
        epochs = {row["graph_epoch"] for row in stats["shards"]
                  if "graph_epoch" in row}
        assert len(epochs) <= 1

    def test_mutation_marks_store_stale(self, dynamic):
        assert dynamic.stats()["store_stale"] is True

    def test_tombstone_leaves_routing_regions(self, dynamic):
        regions = [list(r) for r in dynamic._regions]
        flat = [obj for region in regions for obj in region]
        assert 21 not in flat
        assert 4 in flat  # recycled slot rejoined its owner's region

    def test_point_query_skips_tombstones(self, dynamic):
        result = dynamic.run(JobSpec(kind="knn", params={"query": 0, "k": 30}))
        assert result.ok
        assert all(obj != 21 for _, obj in result.value)

    def test_snapshot_skips_stale_store(self, dynamic, tmp_path):
        base = str(tmp_path / "snap")
        files = dynamic.snapshot(base)
        assert not any(path.endswith(".store.npz") for path in files)


class TestShardedSubscriptions:
    def test_subscribe_and_deltas_round_trip(self, dynamic):
        sub = dynamic.subscribe({"kind": "knn", "query": 0, "k": 3})
        assert sub["sub_id"] >= 1 and "result" in sub
        victim = int(sub["result"]["neighbors"][0][1])
        dynamic.apply_mutations([{"kind": "remove", "id": victim},
                                 {"kind": "insert", "payload": victim}])
        polled = dynamic.subscription_deltas(sub["sub_id"], since=0)
        assert polled["sub_id"] == sub["sub_id"]
        assert polled["deltas"]  # the victim's removal surfaced a delta
        dynamic.unsubscribe(sub["sub_id"])

    def test_unknown_sub_id_raises(self, dynamic):
        with pytest.raises(KeyError):
            dynamic.subscription_deltas(9999, since=0)


class TestStatsLabels:
    def test_per_shard_rows_carry_shard_index(self, dynamic):
        stats = dynamic.stats()
        assert stats["dynamic"] is True
        assert [row["shard"] for row in stats["shards"]] == [0, 1]
        assert "mutations_applied" in stats["aggregate"]

    def test_metric_labels_match_stats_rows(self, dynamic):
        page = dynamic.render_metrics()
        stats = dynamic.stats()
        for row in stats["shards"]:
            assert f'shard="{row["shard"]}"' in page

    def test_handle_request_verbs(self, dynamic):
        assert dynamic.handle_request({"op": "ping"})["ok"]
        reply = dynamic.handle_request(
            {"op": "mutate", "mutations": [{"kind": "remove", "id": 7},
                                           {"kind": "insert", "payload": 7}]}
        )
        assert reply["ok"] and reply["result"]["removed_ids"] == [7]
        sub = dynamic.handle_request(
            {"op": "subscribe", "kind": "knn", "query": 0, "k": 2}
        )
        assert sub["ok"]
        polled = dynamic.handle_request(
            {"op": "deltas", "sub_id": sub["sub_id"], "since": 0}
        )
        assert polled["ok"]
        assert dynamic.handle_request(
            {"op": "unsubscribe", "sub_id": sub["sub_id"]}
        )["ok"]
