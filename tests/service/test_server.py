"""Unit tests for the local-socket server and its JSON-lines protocol."""

import json
import socket

import pytest

from repro.service import ProximityEngine, ProximityServer, send_request
from repro.service.server import jsonable, result_to_dict, spec_from_dict
from repro.service.jobs import JobResult, JobStatus
from repro.spaces.matrix import MatrixSpace, random_metric_matrix


@pytest.fixture
def space(rng):
    return MatrixSpace(random_metric_matrix(20, rng))


@pytest.fixture
def served(space, tmp_path):
    engine = ProximityEngine.for_space(space, provider="tri", job_workers=2)
    sock = str(tmp_path / "engine.sock")
    with ProximityServer(engine, sock) as server:
        yield engine, server, sock
    engine.close(snapshot=False)


class TestProtocol:
    def test_ping(self, served):
        _, _, sock = served
        assert send_request(sock, {"op": "ping"}) == {"ok": True, "op": "ping"}

    def test_submit_round_trip(self, served, space):
        engine, _, sock = served
        response = send_request(
            sock,
            {"op": "submit", "spec": {"kind": "knn", "params": {"query": 2, "k": 3}}},
        )
        assert response["ok"]
        assert response["result"]["status"] == "completed"
        assert len(response["result"]["value"]) == 3
        # The engine really warmed up from the socket-submitted job.
        assert engine.graph.num_edges > 0

    def test_stats(self, served):
        _, _, sock = served
        response = send_request(sock, {"op": "stats"})
        assert response["ok"]
        assert "oracle_calls" in response["stats"]
        assert "resolver" in response["stats"]

    def test_snapshot_op(self, served, tmp_path):
        _, _, sock = served
        target = str(tmp_path / "via-socket.npz")
        send_request(
            sock, {"op": "submit", "spec": {"kind": "nearest", "params": {"query": 0}}}
        )
        response = send_request(sock, {"op": "snapshot", "path": target})
        assert response["ok"]
        assert response["path"] == target

    def test_unknown_op(self, served):
        _, _, sock = served
        response = send_request(sock, {"op": "fly"})
        assert not response["ok"]
        assert "unknown op" in response["error"]

    def test_invalid_spec_answers_instead_of_crashing(self, served):
        _, _, sock = served
        response = send_request(sock, {"op": "submit", "spec": {"kind": "teleport"}})
        assert not response["ok"]
        assert "unknown job kind" in response["error"]

    def test_malformed_json_answers_error(self, served):
        _, _, sock_path = served
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as client:
            client.settimeout(10)
            client.connect(sock_path)
            client.sendall(b"this is not json\n")
            line = client.makefile().readline()
        response = json.loads(line)
        assert not response["ok"]

    def test_many_requests_one_connection(self, served):
        _, server, _ = served
        for _ in range(3):
            assert server.handle_request({"op": "ping"})["ok"]


class TestSerialisation:
    def test_jsonable_handles_result_shapes(self):
        from repro.algorithms.base import MstResult

        mst = MstResult(edges=((0, 1, 0.5),), total_weight=0.5)
        data = jsonable(mst)
        assert data["total_weight"] == 0.5
        assert data["edges"] == [[0, 1, 0.5]]
        assert jsonable({(0, 1): 2.0}) == {"(0, 1)": 2.0}
        assert jsonable(None) is None
        json.dumps(jsonable(object()))  # falls back to repr, stays encodable

    def test_result_to_dict(self):
        result = JobResult(
            status=JobStatus.PARTIAL,
            unresolved=((0, 3), (1, 2)),
            charged_calls=7,
            error="budget",
        )
        data = result_to_dict(result)
        assert data["status"] == "partial"
        assert data["unresolved"] == [[0, 3], [1, 2]]
        assert data["charged_calls"] == 7
        json.dumps(data)

    def test_spec_from_dict_defaults(self):
        spec = spec_from_dict({"kind": "mst"})
        assert spec.kind == "mst"
        assert spec.priority == 0
        spec = spec_from_dict(
            {"kind": "knn", "params": {"query": 1, "k": 2}, "oracle_budget": 5}
        )
        assert spec.oracle_budget == 5
