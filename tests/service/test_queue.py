"""Unit tests for the priority job queue."""

import threading

import pytest

from repro.service.jobs import Job, JobSpec
from repro.service.queue import JobQueue


def _job(job_id, priority=0):
    return Job(job_id, JobSpec(kind="mst", priority=priority))


def _never_skip(job):
    return False


class TestOrdering:
    def test_priority_order(self):
        q = JobQueue()
        q.push(_job(1, priority=0))
        q.push(_job(2, priority=5))
        q.push(_job(3, priority=1))
        assert [q.pop(_never_skip).id for _ in range(3)] == [2, 3, 1]

    def test_fifo_within_priority(self):
        q = JobQueue()
        for i in range(1, 5):
            q.push(_job(i, priority=7))
        assert [q.pop(_never_skip).id for _ in range(4)] == [1, 2, 3, 4]


class TestSkip:
    def test_skip_drops_and_continues(self):
        q = JobQueue()
        q.push(_job(1, priority=2))
        q.push(_job(2, priority=1))
        skipped = []

        def skip(job):
            if job.id == 1:
                skipped.append(job.id)
                return True
            return False

        assert q.pop(skip).id == 2
        assert skipped == [1]
        assert len(q) == 0


class TestClose:
    def test_push_after_close_raises(self):
        q = JobQueue()
        q.close()
        with pytest.raises(RuntimeError):
            q.push(_job(1))

    def test_close_returns_drained_jobs(self):
        q = JobQueue()
        q.push(_job(1))
        q.push(_job(2))
        drained = q.close()
        assert sorted(j.id for j in drained) == [1, 2]
        assert len(q) == 0

    def test_pop_returns_none_after_close(self):
        q = JobQueue()
        q.close()
        assert q.pop(_never_skip) is None

    def test_close_wakes_blocked_popper(self):
        q = JobQueue()
        result = []

        def popper():
            result.append(q.pop(_never_skip))

        t = threading.Thread(target=popper)
        t.start()
        q.close()
        t.join(timeout=5)
        assert not t.is_alive()
        assert result == [None]


class TestConcurrency:
    def test_many_producers_and_consumers(self):
        q = JobQueue()
        total = 60
        seen = []
        lock = threading.Lock()

        def consumer():
            while True:
                job = q.pop(_never_skip)
                if job is None:
                    return
                with lock:
                    seen.append(job.id)

        consumers = [threading.Thread(target=consumer) for _ in range(4)]
        for t in consumers:
            t.start()
        for i in range(total):
            q.push(_job(i))
        # Drain, then close so consumers exit.
        import time

        deadline = time.monotonic() + 10
        while len(q) and time.monotonic() < deadline:
            time.sleep(0.001)
        q.close()
        for t in consumers:
            t.join(timeout=5)
        # close() may race the last pops; every job is seen exactly once or
        # was drained by close.
        assert len(seen) == len(set(seen))
        assert len(seen) <= total
