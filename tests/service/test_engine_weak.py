"""Engine-level tests for the weak/strong oracle tier."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.service import ProximityEngine
from repro.service.server import spec_from_dict
from repro.spaces.matrix import MatrixSpace, random_metric_matrix
from repro.spaces.vector import MinkowskiSpace


@pytest.fixture
def space(rng):
    points = rng.normal(size=(30, 4))
    return MinkowskiSpace(points, p=2)


@pytest.fixture
def strong_engine(space):
    eng = ProximityEngine.for_space(space, provider="tri", job_workers=1)
    yield eng
    eng.close(snapshot=False)


@pytest.fixture
def weak_engine(space):
    eng = ProximityEngine.for_space(
        space, provider="tri", job_workers=1, weak_oracle=True
    )
    yield eng
    eng.close(snapshot=False)


class TestWeakEngineParity:
    def test_results_identical_to_strong_only(self, strong_engine, weak_engine):
        jobs = [
            ("knn", dict(query=3, k=5)),
            ("range", dict(query=7, radius=1.5)),
            ("nearest", dict(query=0)),
            ("mst", dict()),
        ]
        for kind, params in jobs:
            strong = strong_engine.submit_job(kind, **params).result(60)
            weak = weak_engine.submit_job(kind, **params).result(60)
            assert strong.ok and weak.ok
            assert weak.value == strong.value, kind

    def test_weak_tier_saves_strong_calls(self, space):
        strong_eng = ProximityEngine.for_space(space, provider="none", job_workers=1)
        weak_eng = ProximityEngine.for_space(
            space, provider="none", job_workers=1, weak_oracle=True
        )
        try:
            for eng in (strong_eng, weak_eng):
                eng.submit_job("knng", k=4).result(120)
            baseline = strong_eng.snapshot_stats().oracle_calls
            tiered = weak_eng.snapshot_stats().oracle_calls
            assert tiered < baseline
        finally:
            strong_eng.close(snapshot=False)
            weak_eng.close(snapshot=False)


class TestWeakStats:
    def test_snapshot_and_metrics_carry_weak_counters(self, weak_engine):
        weak_engine.submit_job("knn", query=2, k=5).result(60)
        stats = weak_engine.snapshot_stats()
        assert stats.weak_calls > 0
        assert stats.resolver.weak_calls == stats.weak_calls
        assert stats.weak_band >= 0
        text = weak_engine.render_metrics()
        assert "repro_resolver_weak_calls_total" in text
        assert "repro_resolver_weak_band_total" in text

    def test_strong_only_engine_reports_zero_weak(self, strong_engine):
        strong_engine.submit_job("knn", query=2, k=5).result(60)
        stats = strong_engine.snapshot_stats()
        assert stats.weak_calls == 0
        assert stats.weak_band == 0


class TestUseWeakOptOut:
    def test_opt_out_job_never_consults_weak_tier(self, space):
        eng = ProximityEngine.for_space(
            space, provider="tri", job_workers=1, weak_oracle=True
        )
        try:
            result = eng.submit_job("knn", query=4, k=5, use_weak=False).result(60)
            assert result.ok
            assert eng.snapshot_stats().weak_calls == 0
        finally:
            eng.close(snapshot=False)

    def test_opt_out_matches_opt_in_answers(self, weak_engine):
        opt_in = weak_engine.submit_job("range", query=1, radius=2.0).result(60)
        opt_out = weak_engine.submit_job(
            "range", query=1, radius=2.0, use_weak=False
        ).result(60)
        assert opt_in.value == opt_out.value

    def test_use_weak_ignored_without_weak_oracle(self, strong_engine):
        result = strong_engine.submit_job("knn", query=2, k=3, use_weak=True).result(60)
        assert result.ok


class TestWeakConfiguration:
    def test_space_without_weak_oracle_rejected(self, rng):
        space = MatrixSpace(random_metric_matrix(10, rng))
        with pytest.raises(ConfigurationError):
            ProximityEngine.for_space(space, weak_oracle=True)

    def test_explicit_weak_oracle_instance_accepted(self, space):
        weak = space.weak_oracle()
        eng = ProximityEngine.for_space(space, provider="tri", weak_oracle=weak)
        try:
            assert eng.tiered is not None
            assert eng.tiered.weak is weak
        finally:
            eng.close(snapshot=False)


class TestSpecWire:
    def test_spec_from_dict_parses_use_weak(self):
        spec = spec_from_dict({"kind": "medoid", "use_weak": False})
        assert spec.use_weak is False
        assert spec_from_dict({"kind": "medoid"}).use_weak is True
