"""Unit tests for the synthetic generators and dataset facades."""

import numpy as np
import pytest

from repro.datasets.facades import flickr_space, sf_poi_space, urbangb_space
from repro.datasets.synthetic import clustered_points, ring_points, uniform_points
from repro.spaces.roadnet import RoadNetworkSpace
from repro.spaces.vector import EuclideanSpace


class TestUniformPoints:
    def test_shape_and_range(self, rng):
        pts = uniform_points(50, dim=3, low=-1, high=2, rng=rng)
        assert pts.shape == (50, 3)
        assert pts.min() >= -1 and pts.max() <= 2

    def test_deterministic(self):
        a = uniform_points(10, rng=np.random.default_rng(1))
        b = uniform_points(10, rng=np.random.default_rng(1))
        assert np.array_equal(a, b)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            uniform_points(0)


class TestClusteredPoints:
    def test_shape(self, rng):
        pts = clustered_points(60, dim=4, num_clusters=3, rng=rng)
        assert pts.shape == (60, 4)

    def test_cluster_structure_visible(self, rng):
        pts = clustered_points(100, num_clusters=2, spread=0.01, rng=rng)
        # Nearest-neighbour distances are far below the global scale.
        from scipy.spatial.distance import pdist

        d = pdist(pts)
        assert np.percentile(d, 10) < np.percentile(d, 90) / 3

    def test_rejects_bad_params(self, rng):
        with pytest.raises(ValueError):
            clustered_points(0, rng=rng)
        with pytest.raises(ValueError):
            clustered_points(10, num_clusters=0, rng=rng)


class TestRingPoints:
    def test_on_circle(self, rng):
        pts = ring_points(80, radius=2.0, noise=0.0, rng=rng)
        radii = np.linalg.norm(pts, axis=1)
        assert np.allclose(radii, 2.0)

    def test_rejects_nonpositive_n(self, rng):
        with pytest.raises(ValueError):
            ring_points(0, rng=rng)


class TestFacades:
    def test_sf_road_and_euclid_variants(self):
        road = sf_poi_space(40)
        euclid = sf_poi_space(40, road=False)
        assert isinstance(road, RoadNetworkSpace)
        assert isinstance(euclid, EuclideanSpace)
        assert road.n == euclid.n == 40

    def test_urbangb_variants(self):
        assert isinstance(urbangb_space(30), RoadNetworkSpace)
        assert isinstance(urbangb_space(30, road=False), EuclideanSpace)

    def test_flickr_dimension(self):
        space = flickr_space(25, dim=64)
        assert space.points.shape == (25, 64)

    def test_deterministic_given_seed(self):
        a = sf_poi_space(30, seed=9, road=False)
        b = sf_poi_space(30, seed=9, road=False)
        assert np.array_equal(a.points, b.points)

    def test_different_seeds_differ(self):
        a = sf_poi_space(30, seed=1, road=False)
        b = sf_poi_space(30, seed=2, road=False)
        assert not np.array_equal(a.points, b.points)

    def test_road_distances_metric(self):
        from repro.spaces.base import check_metric_axioms

        space = urbangb_space(20)
        check_metric_axioms(space)
