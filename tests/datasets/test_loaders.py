"""Unit tests for the user-data loaders."""

import numpy as np
import pytest

from repro.datasets.loaders import (
    load_distance_matrix_csv,
    load_points_csv,
    load_sequences,
    space_from_points_csv,
)
from repro.core.exceptions import MetricViolationError
from repro.spaces.matrix import random_metric_matrix


class TestLoadPointsCsv:
    def test_plain_numeric_csv(self, tmp_path):
        path = tmp_path / "pts.csv"
        path.write_text("0.1,0.2\n0.3,0.4\n")
        points = load_points_csv(path)
        assert points.shape == (2, 2)
        assert points[1, 1] == pytest.approx(0.4)

    def test_header_autodetected(self, tmp_path):
        path = tmp_path / "pts.csv"
        path.write_text("x,y\n1,2\n3,4\n")
        points = load_points_csv(path)
        assert points.shape == (2, 2)

    def test_column_selection(self, tmp_path):
        path = tmp_path / "pts.csv"
        path.write_text("id,lat,lon\n7,51.5,-0.1\n8,48.9,2.3\n")
        points = load_points_csv(path, columns=["lat", "lon"])
        assert points.shape == (2, 2)
        assert points[0, 0] == pytest.approx(51.5)

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "pts.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="not found"):
            load_points_csv(path, columns=["z"])

    def test_columns_without_header_rejected(self, tmp_path):
        path = tmp_path / "pts.csv"
        path.write_text("1,2\n3,4\n")
        with pytest.raises(ValueError, match="header"):
            load_points_csv(path, columns=["x"], skip_header=False)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "pts.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            load_points_csv(path)

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "pts.csv"
        path.write_text("x,y\n")
        with pytest.raises(ValueError, match="no data"):
            load_points_csv(path)


class TestSpaceFromCsv:
    @pytest.fixture
    def csv_path(self, tmp_path):
        path = tmp_path / "pts.csv"
        rng = np.random.default_rng(1)
        rows = "\n".join(f"{x},{y}" for x, y in rng.random((20, 2)))
        path.write_text(rows + "\n")
        return path

    def test_euclidean(self, csv_path):
        space = space_from_points_csv(csv_path)
        assert space.n == 20

    def test_manhattan_and_minkowski(self, csv_path):
        assert space_from_points_csv(csv_path, metric="manhattan").n == 20
        assert space_from_points_csv(csv_path, metric="minkowski:3").p == 3.0

    def test_road(self, csv_path):
        space = space_from_points_csv(csv_path, metric="road")
        assert space.num_roads > 0

    def test_unknown_metric(self, csv_path):
        with pytest.raises(ValueError, match="unknown metric"):
            space_from_points_csv(csv_path, metric="hyperbolic")


class TestLoadSequences:
    def test_plain_lines(self, tmp_path):
        path = tmp_path / "seqs.txt"
        path.write_text("ACGT\nTTTT\n\nGGGG\n")
        space = load_sequences(path)
        assert space.n == 3
        assert space.distance(0, 1) == 3

    def test_fasta_records_concatenate(self, tmp_path):
        path = tmp_path / "seqs.fasta"
        path.write_text(">one\nACG\nT\n>two\nTTTT\n")
        space = load_sequences(path)
        assert space.n == 2
        assert space.strings[0] == "ACGT"

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "seqs.txt"
        path.write_text(">header only\n")
        with pytest.raises(ValueError):
            load_sequences(path)


class TestLoadDistanceMatrix:
    def test_round_trip(self, tmp_path, rng):
        matrix = random_metric_matrix(8, rng)
        path = tmp_path / "dist.csv"
        np.savetxt(path, matrix, delimiter=",")
        space = load_distance_matrix_csv(path)
        assert space.n == 8
        assert space.distance(1, 5) == pytest.approx(matrix[1, 5])

    def test_validation_catches_non_metric(self, tmp_path):
        bad = np.array([[0.0, 1.0, 9.0], [1.0, 0.0, 1.0], [9.0, 1.0, 0.0]])
        path = tmp_path / "bad.csv"
        np.savetxt(path, bad, delimiter=",")
        with pytest.raises(MetricViolationError):
            load_distance_matrix_csv(path)
        # validate=False loads it anyway (caller's responsibility).
        space = load_distance_matrix_csv(path, validate=False)
        assert space.distance(0, 2) == 9.0
