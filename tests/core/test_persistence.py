"""Unit tests for graph persistence and run resumption."""

import numpy as np
import pytest

from repro.core.oracle import DistanceOracle
from repro.core.partial_graph import PartialDistanceGraph
from repro.core.persistence import (
    load_archive,
    load_graph,
    resume_resolver,
    save_graph,
    seed_oracle_cache,
)
from repro.core.resolver import SmartResolver
from repro.spaces.matrix import MatrixSpace, random_metric_matrix


@pytest.fixture
def populated_graph(rng):
    g = PartialDistanceGraph(12)
    matrix = random_metric_matrix(12, rng)
    picker = np.random.default_rng(1)
    while g.num_edges < 20:
        i, j = int(picker.integers(12)), int(picker.integers(12))
        if i != j and not g.has_edge(i, j):
            g.add_edge(i, j, float(matrix[i, j]))
    return g


class TestRoundTrip:
    def test_save_and_load(self, populated_graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_graph(populated_graph, path)
        loaded = load_graph(path)
        assert loaded.n == populated_graph.n
        assert set(loaded.edges()) == set(populated_graph.edges())

    def test_empty_graph(self, tmp_path):
        g = PartialDistanceGraph(5)
        path = tmp_path / "empty.npz"
        save_graph(g, path)
        loaded = load_graph(path)
        assert loaded.n == 5
        assert loaded.num_edges == 0

    def test_bad_version_rejected(self, populated_graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_graph(populated_graph, path)
        data = dict(np.load(path))
        data["version"] = np.int64(99)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError):
            load_graph(path)

    def test_single_edge_graph(self, tmp_path):
        g = PartialDistanceGraph(4)
        g.add_edge(1, 3, 2.5)
        path = tmp_path / "one.npz"
        save_graph(g, path)
        loaded = load_graph(path)
        assert list(loaded.edges()) == [(1, 3, 2.5)]
        assert loaded.epoch == 1

    def test_large_graph_round_trip(self, tmp_path):
        # 10k edges — the dense end of what a warm service accumulates.
        n = 150
        g = PartialDistanceGraph(n)
        count = 0
        for i in range(n):
            for j in range(i + 1, n):
                g.add_edge(i, j, float(i + j) / n)
                count += 1
                if count >= 10_000:
                    break
            if count >= 10_000:
                break
        path = tmp_path / "big.npz"
        save_graph(g, path)
        loaded = load_graph(path)
        assert loaded.num_edges == 10_000
        assert loaded.epoch == g.epoch
        assert set(loaded.edges()) == set(g.edges())


class TestArchiveV2:
    def test_metadata_round_trip(self, populated_graph, tmp_path):
        path = tmp_path / "meta.npz"
        meta = {"fingerprint": "MatrixSpace:12:abc", "oracle": "DistanceOracle"}
        save_graph(populated_graph, path, metadata=meta)
        archive = load_archive(path)
        assert archive.version == 2
        assert archive.metadata == meta
        assert archive.fingerprint == "MatrixSpace:12:abc"
        assert archive.epoch == populated_graph.epoch

    def test_no_metadata_default(self, populated_graph, tmp_path):
        path = tmp_path / "bare.npz"
        save_graph(populated_graph, path)
        archive = load_archive(path)
        assert archive.metadata == {}
        assert archive.fingerprint is None

    def test_epoch_counters_stored(self, populated_graph, tmp_path):
        path = tmp_path / "epochs.npz"
        save_graph(populated_graph, path)
        with np.load(path) as data:
            assert int(data["epoch"]) == populated_graph.epoch
            stored = list(data["node_epochs"])
        expected = [populated_graph.node_epoch(i) for i in range(populated_graph.n)]
        assert stored == expected

    def test_v1_archive_still_loads(self, populated_graph, tmp_path):
        # Simulate a v1 writer: edge arrays only, no epochs, no metadata.
        path = tmp_path / "v1.npz"
        edges = list(populated_graph.edges())
        np.savez_compressed(
            path,
            version=np.int64(1),
            n=np.int64(populated_graph.n),
            i=np.array([e[0] for e in edges], dtype=np.int64),
            j=np.array([e[1] for e in edges], dtype=np.int64),
            w=np.array([e[2] for e in edges], dtype=np.float64),
        )
        archive = load_archive(path)
        assert archive.version == 1
        assert archive.metadata == {}
        assert set(archive.graph.edges()) == set(edges)

    def test_corrupt_epoch_detected(self, populated_graph, tmp_path):
        path = tmp_path / "corrupt.npz"
        save_graph(populated_graph, path)
        data = dict(np.load(path))
        data["epoch"] = np.int64(int(data["epoch"]) + 5)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="corrupt archive"):
            load_archive(path)

    def test_corrupt_node_epochs_detected(self, populated_graph, tmp_path):
        path = tmp_path / "corrupt2.npz"
        save_graph(populated_graph, path)
        data = dict(np.load(path))
        node_epochs = data["node_epochs"].copy()
        node_epochs[0] += 1
        node_epochs[1] -= 1  # keep the global sum consistent
        data["node_epochs"] = node_epochs
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="corrupt archive"):
            load_archive(path)


class TestSeeding:
    def test_seeded_pairs_are_free(self, populated_graph, rng):
        matrix = random_metric_matrix(12, rng)
        oracle = DistanceOracle(lambda i, j: float(matrix[i, j]), 12)
        seeded = seed_oracle_cache(oracle, populated_graph)
        assert seeded == populated_graph.num_edges
        i, j, w = next(iter(populated_graph.edges()))
        assert oracle(i, j) == w
        assert oracle.calls == 0  # answered from the seeded cache

    def test_size_mismatch_rejected(self, populated_graph, rng):
        oracle = DistanceOracle(lambda i, j: 1.0, 5)
        with pytest.raises(ValueError):
            seed_oracle_cache(oracle, populated_graph)


class TestResume:
    def test_resumed_run_pays_only_the_remainder(self, rng, tmp_path):
        from repro.algorithms import prim_mst
        from repro.bounds import TriScheme

        matrix = random_metric_matrix(15, rng)
        space = MatrixSpace(matrix)

        # Session 1: run, persist.
        oracle1 = space.oracle()
        resolver1 = SmartResolver(oracle1)
        resolver1.bounder = TriScheme(resolver1.graph, space.diameter_bound())
        result1 = prim_mst(resolver1)
        path = tmp_path / "session.npz"
        save_graph(resolver1.graph, path)

        # Session 2: resume and re-run — zero new oracle calls.
        oracle2 = space.oracle()
        resolver2 = resume_resolver(oracle2, path)
        resolver2.bounder = TriScheme(resolver2.graph, space.diameter_bound())
        result2 = prim_mst(resolver2)
        assert oracle2.calls == 0
        assert result2.total_weight == pytest.approx(result1.total_weight)

    def test_resume_size_mismatch(self, populated_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(populated_graph, path)
        oracle = DistanceOracle(lambda i, j: 1.0, 99)
        with pytest.raises(ValueError):
            resume_resolver(oracle, path)


class TestArchiveV3:
    """Mutated graphs (tombstones, monotone epochs) round-trip as v3."""

    def test_mutated_graph_writes_v3(self, populated_graph, tmp_path):
        populated_graph.remove_node(3)
        path = tmp_path / "v3.npz"
        save_graph(populated_graph, path)
        archive = load_archive(path)
        assert archive.version == 3
        assert not archive.graph.is_alive(3)
        assert archive.graph.mutated

    def test_pristine_graph_still_writes_v2(self, populated_graph, tmp_path):
        path = tmp_path / "v2.npz"
        save_graph(populated_graph, path)
        assert load_archive(path).version == 2

    def test_epochs_survive_round_trip(self, populated_graph, tmp_path):
        epoch_before_churn = populated_graph.epoch
        populated_graph.remove_node(5)
        populated_graph.revive(5)
        populated_graph.add_edge(5, 0, 1.5)
        path = tmp_path / "v3.npz"
        save_graph(populated_graph, path)
        restored = load_archive(path).graph
        assert restored.epoch == populated_graph.epoch
        assert restored.epoch > epoch_before_churn
        for u in range(populated_graph.n):
            assert restored.node_epoch(u) == populated_graph.node_epoch(u)
        assert restored.num_edges == populated_graph.num_edges

    def test_grown_universe_round_trips(self, populated_graph, tmp_path):
        n = populated_graph.n
        populated_graph.grow(3)
        populated_graph.add_edge(n, 0, 2.0)
        path = tmp_path / "v3.npz"
        save_graph(populated_graph, path)
        restored = load_archive(path).graph
        assert restored.n == n + 3
        assert restored.get(n, 0) == 2.0

    def test_edge_on_tombstone_detected(self, populated_graph, tmp_path):
        populated_graph.remove_node(3)
        path = tmp_path / "v3.npz"
        save_graph(populated_graph, path)
        with np.load(path) as data:
            payload = dict(data)
        # Corrupt: mark a node dead while its edges remain in the columns.
        alive = payload["alive"].copy()
        alive[int(payload["i"][0])] = False
        payload["alive"] = alive
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="tombstoned"):
            load_archive(path)

    def test_epoch_behind_edges_detected(self, populated_graph, tmp_path):
        populated_graph.remove_node(3)
        path = tmp_path / "v3.npz"
        save_graph(populated_graph, path)
        with np.load(path) as data:
            payload = dict(data)
        payload["epoch"] = np.int64(0)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="behind"):
            load_archive(path)
