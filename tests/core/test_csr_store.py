"""Tests for the shared-memory columnar resolved-edge store."""

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.core.csr_store import CSRStore
from repro.core.exceptions import SnapshotMismatchError
from repro.core.partial_graph import PartialDistanceGraph
from repro.core.persistence import load_columns


EDGES = [(0, 1, 0.5), (1, 2, 0.3), (0, 2, 0.6), (3, 4, 1.25), (2, 5, 0.9)]


@pytest.fixture
def store():
    s = CSRStore.create(6, segment_capacity=4)
    yield s
    s.unlink()


def _filled(store):
    for i, j, w in EDGES:
        store.append(i, j, w)
    return store


class TestCreateAppend:
    def test_empty_store(self, store):
        assert store.n == 6
        assert store.num_edges == 0
        assert store.writable
        assert list(store.iter_edges()) == []

    def test_append_and_read_back(self, store):
        _filled(store)
        assert store.num_edges == len(EDGES)
        assert list(store.iter_edges()) == [(i, j, w) for i, j, w in EDGES]

    def test_appends_spill_into_new_segments(self, store):
        _filled(store)  # 5 edges, capacity 4 → 2 segments
        assert store.num_segments == 2
        i, j, w = store.edge_columns()
        assert list(i) == [e[0] for e in EDGES]
        assert list(w) == [e[2] for e in EDGES]

    def test_append_canonicalises_pairs(self, store):
        store.append(4, 1, 2.0)
        assert list(store.iter_edges()) == [(1, 4, 2.0)]

    def test_degrees_and_csr(self, store):
        _filled(store)
        degrees = store.degrees()
        assert list(degrees) == [2, 2, 3, 1, 1, 1]
        indptr, indices, weights = store.csr()
        assert indptr[-1] == 2 * len(EDGES)  # both directions materialised
        # neighbours of 2: {0, 1, 5}
        row = indices[indptr[2]:indptr[3]]
        assert sorted(row.tolist()) == [0, 1, 5]

    def test_not_picklable(self, store):
        with pytest.raises(TypeError, match="do not pickle"):
            pickle.dumps(store)


class TestAttach:
    def test_attach_sees_existing_edges(self, store):
        _filled(store)
        reader = CSRStore.attach(store.name)
        try:
            assert not reader.writable
            assert reader.num_edges == len(EDGES)
            assert list(reader.iter_edges()) == list(store.iter_edges())
        finally:
            reader.close()

    def test_refresh_observes_later_appends(self, store):
        reader = CSRStore.attach(store.name)
        try:
            assert reader.num_edges == 0
            _filled(store)  # spills past the reader's attached segments
            assert reader.num_edges == 0  # snapshot view until refresh
            assert reader.refresh() == len(EDGES)
            assert list(reader.iter_edges()) == list(store.iter_edges())
        finally:
            reader.close()

    def test_attached_handle_rejects_writes(self, store):
        reader = CSRStore.attach(store.name)
        try:
            with pytest.raises(PermissionError):
                reader.append(0, 1, 1.0)
        finally:
            reader.close()

    def test_reader_close_does_not_destroy(self, store):
        _filled(store)
        reader = CSRStore.attach(store.name)
        reader.close()
        again = CSRStore.attach(store.name)  # segments must still exist
        try:
            assert again.num_edges == len(EDGES)
        finally:
            again.close()


class TestGraphInterop:
    def test_from_graph_round_trip(self):
        graph = PartialDistanceGraph(6)
        for i, j, w in EDGES:
            graph.add_edge(i, j, w)
        store = CSRStore.from_graph(graph)
        try:
            assert list(store.iter_edges()) == list(
                zip(*(c.tolist() for c in graph.edge_arrays()))
            )
        finally:
            store.unlink()

    def test_writable_store_mirrors_graph_appends(self, store):
        graph = PartialDistanceGraph(6)
        graph.attach_store(store)
        graph.add_edge(0, 3, 0.75)
        assert list(store.iter_edges()) == [(0, 3, 0.75)]

    def test_to_graph_replays_edges(self, store):
        _filled(store)
        graph = store.to_graph()
        assert graph.num_edges == len(EDGES)
        assert graph.weight(1, 0) == 0.5

    def test_edge_arrays_served_zero_copy_when_synced(self, store):
        _filled(store)
        graph = store.to_graph()
        i1, _, _ = graph.edge_arrays()
        i2, _, _ = store.edge_columns()
        assert np.shares_memory(i1, i2)

    def test_read_only_graph_syncs_from_store(self, store):
        reader = CSRStore.attach(store.name)
        try:
            graph = reader.to_graph()
            _filled(store)
            assert graph.sync_from_store() == len(EDGES)
            assert graph.num_edges == len(EDGES)
        finally:
            reader.close()


class TestArchives:
    def test_save_and_from_archive(self, store, tmp_path):
        _filled(store)
        path = tmp_path / "snap.npz"
        store.save(path, metadata={"fingerprint": "fp-1"})
        loaded = CSRStore.from_archive(path, expected_fingerprint="fp-1")
        try:
            assert loaded.n == store.n
            assert list(loaded.iter_edges()) == list(store.iter_edges())
            assert loaded.metadata["fingerprint"] == "fp-1"
            assert loaded.num_segments == 1  # right-sized single segment
        finally:
            loaded.unlink()

    def test_from_archive_rejects_wrong_fingerprint(self, store, tmp_path):
        _filled(store)
        path = tmp_path / "snap.npz"
        store.save(path, metadata={"fingerprint": "fp-1"})
        with pytest.raises(SnapshotMismatchError):
            CSRStore.from_archive(path, expected_fingerprint="fp-other")

    def test_archive_is_v2_columnar(self, store, tmp_path):
        _filled(store)
        path = tmp_path / "snap.npz"
        store.save(path)
        cols = load_columns(path)
        assert cols.version == 2
        assert cols.epoch == len(EDGES)
        assert list(cols.w) == [e[2] for e in EDGES]


def _reader_main(name, expected, queue):
    """Spawn-target: attach the store by name and report what it sees."""
    store = CSRStore.attach(name)
    try:
        store.refresh()
        queue.put(list(store.iter_edges()))
    finally:
        store.close()


class TestCrossProcess:
    def test_child_process_sees_writer_edges(self, store):
        _filled(store)
        ctx = multiprocessing.get_context("spawn")
        queue = ctx.Queue()
        p = ctx.Process(target=_reader_main, args=(store.name, len(EDGES), queue))
        p.start()
        seen = queue.get(timeout=60)
        p.join(timeout=60)
        assert p.exitcode == 0
        assert seen == [(i, j, w) for i, j, w in EDGES]
        # The child's exit must not have destroyed the segments (the
        # resource-tracker unregister path): the writer still reads fine.
        assert list(store.iter_edges()) == [(i, j, w) for i, j, w in EDGES]
