"""Unit tests for the metric-validating oracle."""

import pytest

from repro.core.exceptions import MetricViolationError
from repro.core.validation import ValidatingOracle
from repro.spaces.matrix import random_metric_matrix


def oracle_from_matrix(matrix, **kwargs):
    return ValidatingOracle(
        lambda i, j: float(matrix[i, j]), matrix.shape[0], **kwargs
    )


class TestHonestOracle:
    def test_accepts_true_metric(self, rng):
        matrix = random_metric_matrix(12, rng)
        oracle = oracle_from_matrix(matrix)
        for i in range(12):
            for j in range(i + 1, 12):
                oracle(i, j)
        assert oracle.calls == 66
        assert oracle.triangles_checked > 0

    def test_counting_still_works(self, rng):
        matrix = random_metric_matrix(8, rng)
        oracle = oracle_from_matrix(matrix)
        oracle(0, 1)
        oracle(0, 1)
        assert oracle.calls == 1
        assert oracle.cache_hits == 1


class TestViolationDetection:
    def test_detects_direct_violation(self, rng):
        matrix = random_metric_matrix(6, rng)
        matrix = matrix.copy()
        matrix[0, 1] = matrix[1, 0] = 100.0  # breaks every triangle through 0-1
        oracle = oracle_from_matrix(matrix)
        oracle(0, 2)
        oracle(1, 2)
        with pytest.raises(MetricViolationError):
            oracle(0, 1)

    def test_detects_violation_on_third_edge(self, rng):
        # The corrupted edge arrives first; the violation surfaces when the
        # closing edge of the triangle is resolved.
        matrix = random_metric_matrix(6, rng)
        matrix = matrix.copy()
        matrix[0, 1] = matrix[1, 0] = 100.0
        oracle = oracle_from_matrix(matrix)
        oracle(0, 1)
        oracle(0, 2)
        with pytest.raises(MetricViolationError):
            oracle(1, 2)

    def test_order_independent_of_unrelated_edges(self, rng):
        matrix = random_metric_matrix(8, rng).copy()
        matrix[3, 4] = matrix[4, 3] = 50.0
        oracle = oracle_from_matrix(matrix)
        oracle(0, 1)  # unrelated, fine
        oracle(3, 5)
        oracle(4, 5)
        with pytest.raises(MetricViolationError):
            oracle(3, 4)


class TestRelaxedTriangle:
    def test_relaxation_admits_near_metrics(self, rng):
        # A distance 1.5× over the triangle cap passes with relaxation=2.
        matrix = random_metric_matrix(6, rng).copy()
        cap = matrix[0, 2] + matrix[2, 1]
        matrix[0, 1] = matrix[1, 0] = 1.5 * cap
        strict = oracle_from_matrix(matrix)
        strict(0, 2)
        strict(1, 2)
        with pytest.raises(MetricViolationError):
            strict(0, 1)
        relaxed = oracle_from_matrix(matrix, relaxation=2.0)
        relaxed(0, 2)
        relaxed(1, 2)
        assert relaxed(0, 1) == pytest.approx(1.5 * cap)

    def test_invalid_parameters(self, rng):
        matrix = random_metric_matrix(4, rng)
        with pytest.raises(ValueError):
            oracle_from_matrix(matrix, relaxation=0.5)
        with pytest.raises(ValueError):
            oracle_from_matrix(matrix, tolerance=-1.0)


class TestReset:
    def test_reset_clears_consistency_state(self, rng):
        matrix = random_metric_matrix(6, rng)
        oracle = oracle_from_matrix(matrix)
        oracle(0, 1)
        oracle(0, 2)
        oracle.reset()
        assert oracle.triangles_checked == 0
        assert oracle.calls == 0
        oracle(1, 2)  # would close a triangle if state survived reset
        assert oracle.triangles_checked == 0


class TestIntegrationWithResolver:
    def test_resolver_runs_on_validating_oracle(self, rng):
        from repro.algorithms import prim_mst
        from repro.core.resolver import SmartResolver

        matrix = random_metric_matrix(10, rng)
        oracle = oracle_from_matrix(matrix)
        result = prim_mst(SmartResolver(oracle))
        assert result.num_edges == 9
