"""Unit tests for the partial distance graph."""

import pytest

from repro.core.exceptions import InvalidObjectError, UnknownDistanceError
from repro.core.partial_graph import PartialDistanceGraph


@pytest.fixture
def graph():
    g = PartialDistanceGraph(6)
    g.add_edge(0, 1, 0.5)
    g.add_edge(1, 2, 0.3)
    g.add_edge(0, 2, 0.6)
    return g


class TestConstruction:
    def test_rejects_empty_universe(self):
        with pytest.raises(InvalidObjectError):
            PartialDistanceGraph(0)

    def test_starts_with_no_edges(self):
        g = PartialDistanceGraph(4)
        assert g.num_edges == 0
        assert len(g) == 0


class TestAddEdge:
    def test_add_and_lookup(self, graph):
        assert graph.weight(0, 1) == 0.5
        assert graph.weight(1, 0) == 0.5  # symmetric lookup

    def test_add_returns_true_when_new(self):
        g = PartialDistanceGraph(3)
        assert g.add_edge(0, 1, 0.4) is True

    def test_reinsert_same_value_is_noop(self, graph):
        assert graph.add_edge(0, 1, 0.5) is False
        assert graph.num_edges == 3

    def test_conflicting_reinsert_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.add_edge(0, 1, 0.9)

    def test_self_loop_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.add_edge(2, 2, 0.0)

    def test_negative_weight_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.add_edge(3, 4, -0.1)

    def test_out_of_range_rejected(self, graph):
        with pytest.raises(InvalidObjectError):
            graph.add_edge(0, 6, 0.1)


class TestQueries:
    def test_weight_of_unknown_raises(self, graph):
        with pytest.raises(UnknownDistanceError):
            graph.weight(3, 4)

    def test_self_distance_is_zero(self, graph):
        assert graph.weight(2, 2) == 0.0
        assert graph.get(2, 2) == 0.0

    def test_get_with_default(self, graph):
        assert graph.get(3, 4) is None
        assert graph.get(3, 4, 1.0) == 1.0
        assert graph.get(0, 1) == 0.5

    def test_has_edge_and_contains(self, graph):
        assert graph.has_edge(2, 1)
        assert (1, 2) in graph
        assert not graph.has_edge(3, 5)

    def test_degree(self, graph):
        assert graph.degree(0) == 2
        assert graph.degree(1) == 2
        assert graph.degree(5) == 0


class TestAdjacency:
    def test_adjacency_stays_sorted(self):
        g = PartialDistanceGraph(8)
        for other in (5, 2, 7, 1):
            g.add_edge(3, other, 0.1)
        assert g.adjacency_list(3) == [1, 2, 5, 7]

    def test_neighbor_items_pairs(self, graph):
        items = dict(graph.neighbor_items(1))
        assert items == {0: 0.5, 2: 0.3}

    def test_common_neighbors(self, graph):
        assert list(graph.common_neighbors(0, 1)) == [2]
        assert list(graph.common_neighbors(0, 5)) == []

    def test_common_neighbors_bisect_path(self):
        # One endpoint has a much longer adjacency list, exercising the
        # bisect branch of the intersection.
        g = PartialDistanceGraph(100)
        for other in range(2, 95):
            g.add_edge(0, other, 0.1)
        for other in (10, 50, 90):
            g.add_edge(1, other, 0.2)
        assert list(g.common_neighbors(0, 1)) == [10, 50, 90]
        assert list(g.common_neighbors(1, 0)) == [10, 50, 90]


class TestIteration:
    def test_edges_iteration(self, graph):
        edges = set(graph.edges())
        assert edges == {(0, 1, 0.5), (1, 2, 0.3), (0, 2, 0.6)}

    def test_unknown_pairs_complement(self, graph):
        unknown = set(graph.unknown_pairs())
        assert (0, 1) not in unknown
        assert (3, 4) in unknown
        assert len(unknown) == 6 * 5 // 2 - 3

    def test_copy_is_independent(self, graph):
        clone = graph.copy()
        clone.add_edge(4, 5, 0.2)
        assert not graph.has_edge(4, 5)
        assert clone.has_edge(4, 5)
        assert clone.weight(0, 1) == 0.5
