"""Unit tests for the weak/strong tiered oracle surface."""

import math

import pytest

from repro.core.bounds import IntersectionBounder, TrivialBounder
from repro.core.oracle import DistanceOracle, Oracle
from repro.core.partial_graph import PartialDistanceGraph
from repro.core.resolver import SmartResolver
from repro.core.tiering import TieredOracle, WeakBand, WeakBoundProvider, WeakOracle
from repro.exec.batch_oracle import BatchOracle
from repro.obs import MetricsRegistry


def manhattan_1d(i, j):
    return float(abs(i - j))


def half_manhattan(i, j):
    return 0.5 * abs(i - j)


def make_weak(n=10, band=(1.0, 2.0)):
    return WeakOracle(half_manhattan, n, band, name="half")


class TestOracleProtocol:
    def test_concrete_oracles_satisfy_protocol(self):
        strong = DistanceOracle(manhattan_1d, 10)
        assert isinstance(strong, Oracle)
        assert isinstance(make_weak(), Oracle)
        assert isinstance(TieredOracle(strong, make_weak()), Oracle)

    def test_non_oracles_rejected(self):
        assert not isinstance(object(), Oracle)


class TestWeakBand:
    def test_interval_scales_estimate(self):
        band = WeakBand(0.5, 2.0)
        b = band.interval(4.0)
        assert (b.lower, b.upper) == (2.0, 8.0)

    def test_zero_estimate_under_infinite_hi_is_not_nan(self):
        b = WeakBand(1.0, math.inf).interval(0.0)
        assert b.lower == 0.0
        assert b.upper == math.inf

    def test_lo_factor_above_one_is_legal(self):
        # A road network with detour >= 1.2 systematically under-estimates.
        b = WeakBand(1.2, math.inf).interval(10.0)
        assert b.lower == pytest.approx(12.0)

    def test_invalid_bands_rejected(self):
        with pytest.raises(ValueError):
            WeakBand(-0.1, 2.0)
        with pytest.raises(ValueError):
            WeakBand(2.0, 1.0)
        with pytest.raises(ValueError):
            WeakBand(math.inf, math.inf)

    def test_negative_estimate_rejected(self):
        with pytest.raises(ValueError):
            WeakBand(1.0, 2.0).interval(-1.0)

    def test_tuple_coercion(self):
        weak = WeakOracle(half_manhattan, 5, (1.0, 3.0))
        assert weak.band == WeakBand(1.0, 3.0)


class TestWeakOracle:
    def test_counts_separately_from_strong(self):
        strong = DistanceOracle(manhattan_1d, 10)
        weak = make_weak()
        weak(0, 4)
        weak(0, 4)  # cached
        assert weak.calls == 1
        assert strong.calls == 0

    def test_interval_contains_truth(self):
        weak = make_weak()  # estimate = d/2, band (1, 2) -> [d/2, d]
        b = weak.interval(0, 8)
        assert b.lower == pytest.approx(4.0)
        assert b.upper == pytest.approx(8.0)
        assert b.contains(manhattan_1d(0, 8))

    def test_self_pair_interval_is_exact_zero(self):
        b = make_weak().interval(3, 3)
        assert (b.lower, b.upper) == (0.0, 0.0)


class TestWeakBoundProvider:
    def test_bounds_intersect_band_with_trivial(self):
        graph = PartialDistanceGraph(10)
        provider = WeakBoundProvider(graph, make_weak(), max_distance=9.0)
        b = provider.bounds(0, 8)
        assert b.lower == pytest.approx(4.0)
        assert b.upper == pytest.approx(8.0)
        assert provider.weak_band == 1
        assert provider.weak_calls == 1

    def test_known_edges_stay_exact(self):
        graph = PartialDistanceGraph(10)
        graph.add_edge(0, 8, 8.0)
        weak = make_weak()
        provider = WeakBoundProvider(graph, weak)
        b = provider.bounds(0, 8)
        assert b.is_exact
        assert weak.calls == 0  # exact answers never consult the weak tier

    def test_bounds_many_prefetches_through_batcher(self):
        graph = PartialDistanceGraph(10)
        weak = make_weak()
        batcher = BatchOracle(weak)
        provider = WeakBoundProvider(graph, weak, batcher=batcher)
        pairs = [(0, 5), (1, 7), (2, 9), (3, 3)]
        results = provider.bounds_many(pairs)
        assert len(results) == 4
        for (i, j), b in zip(pairs, results):
            assert b.contains(manhattan_1d(i, j))
        assert weak.calls == 3  # the self-pair is free

    def test_universe_mismatch_rejected(self):
        with pytest.raises(ValueError):
            WeakBoundProvider(PartialDistanceGraph(5), make_weak(n=6))

    def test_foreign_batcher_rejected(self):
        other = BatchOracle(make_weak())
        with pytest.raises(ValueError):
            WeakBoundProvider(PartialDistanceGraph(10), make_weak(), batcher=other)


class TestTieredOracle:
    def test_exact_resolution_delegates_to_strong(self):
        strong = DistanceOracle(manhattan_1d, 10)
        tiered = TieredOracle(strong, make_weak())
        assert tiered(2, 7) == 5.0
        assert tiered.calls == 1
        assert tiered.strong_calls == 1
        assert tiered.weak_calls == 0
        assert tiered.resolve_batch([(0, 3)]) == [3.0]
        assert tiered.stats().calls == strong.stats().calls
        tiered.close()

    def test_universe_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TieredOracle(DistanceOracle(manhattan_1d, 5), make_weak(n=6))

    def test_bounder_composes_with_base(self):
        strong = DistanceOracle(manhattan_1d, 10)
        with TieredOracle(strong, make_weak()) as tiered:
            graph = PartialDistanceGraph(10)
            base = TrivialBounder(graph)
            bounder = tiered.bounder(graph, base=base, max_distance=9.0)
            assert isinstance(bounder, IntersectionBounder)
            b = bounder.bounds(0, 8)
            assert b.lower == pytest.approx(4.0)
            assert bounder.weak_calls == 1
            assert bounder.weak_band == tiered.weak_band == 1

    def test_attach_wraps_resolver_bounder(self):
        strong = DistanceOracle(manhattan_1d, 10)
        with TieredOracle(strong, make_weak()) as tiered:
            resolver = SmartResolver(strong)
            tiered.attach(resolver, max_distance=9.0)
            # decide_less(0-1 vs 0-9) is now conclusive from weak bounds
            # alone: ub(0,1)=1 < lb(0,9)=4.5.
            assert resolver.less((0, 1), (0, 9)) is True
            assert strong.calls == 0
            stats = resolver.collect_stats()
            assert stats.weak_calls == tiered.weak_calls > 0
            assert stats.strong_calls == 0

    def test_strong_fallback_on_inconclusive_bounds(self):
        strong = DistanceOracle(manhattan_1d, 10)
        with TieredOracle(strong, make_weak()) as tiered:
            resolver = SmartResolver(strong)
            tiered.attach(resolver, max_distance=9.0)
            # Overlapping weak intervals: [3, 6] vs [2.5, 5] — inconclusive,
            # so the strong tier must settle it, and the verdict is exact.
            assert resolver.less((0, 6), (0, 5)) is False
            assert strong.calls > 0
            assert resolver.collect_stats().strong_calls == strong.calls


class TestInstrumentConvention:
    """Every instrumentable object: ``registry=`` kwarg + ``instrument()``."""

    def test_all_surfaces_accept_registry_kwarg(self):
        strong = DistanceOracle(manhattan_1d, 10)
        registry = MetricsRegistry()
        resolver = SmartResolver(strong, registry=registry)
        assert resolver.registry is registry
        graph = PartialDistanceGraph(10, registry=MetricsRegistry())
        assert graph.n == 10
        batcher = BatchOracle(DistanceOracle(manhattan_1d, 10), registry=MetricsRegistry())
        batcher.close()
        with TieredOracle(
            DistanceOracle(manhattan_1d, 10), make_weak(), registry=MetricsRegistry()
        ) as tiered:
            assert tiered.registry is not None

    def test_instrument_methods_publish(self):
        registry = MetricsRegistry()
        strong = DistanceOracle(manhattan_1d, 10)
        weak = make_weak()
        with TieredOracle(strong, weak) as tiered:
            tiered.instrument(registry)
            tiered(0, 4)
            weak(0, 2)
            snapshot = registry.snapshot()
            assert snapshot["repro_strong_oracle_calls_total"] == 1
            assert snapshot["repro_weak_oracle_calls_total"] == 1
            assert "repro_weak_band_tightenings_total" in snapshot

    def test_instrument_is_uniform_across_objects(self):
        strong = DistanceOracle(manhattan_1d, 10)
        objects = [
            SmartResolver(strong),
            PartialDistanceGraph(10),
            BatchOracle(DistanceOracle(manhattan_1d, 10)),
            TieredOracle(DistanceOracle(manhattan_1d, 10), make_weak()),
        ]
        for obj in objects:
            registry = MetricsRegistry()
            obj.instrument(registry)
            assert registry.snapshot(), f"{type(obj).__name__} published nothing"
