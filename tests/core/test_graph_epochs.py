"""Unit tests for the graph's epochs, flat NumPy mirrors, and intersection paths."""

import itertools

import numpy as np

from repro.core.partial_graph import PartialDistanceGraph


class TestEpochs:
    def test_global_epoch_counts_edges(self):
        g = PartialDistanceGraph(5)
        assert g.epoch == 0
        g.add_edge(0, 1, 0.5)
        g.add_edge(1, 2, 0.3)
        assert g.epoch == 2
        assert g.epoch == g.num_edges

    def test_reinsert_does_not_advance_epoch(self):
        g = PartialDistanceGraph(4)
        g.add_edge(0, 1, 0.5)
        g.add_edge(0, 1, 0.5)  # no-op reinsert
        assert g.epoch == 1

    def test_node_epoch_is_per_endpoint(self):
        g = PartialDistanceGraph(5)
        g.add_edge(0, 1, 0.5)
        assert g.node_epoch(0) == 1
        assert g.node_epoch(1) == 1
        assert g.node_epoch(2) == 0
        g.add_edge(0, 2, 0.4)
        assert g.node_epoch(0) == 2
        assert g.node_epoch(1) == 1
        assert g.node_epoch(2) == 1

    def test_node_epoch_strictly_increases_per_touching_insert(self):
        g = PartialDistanceGraph(6)
        history = []
        for other in (3, 1, 5, 2):
            g.add_edge(0, other, 0.1)
            history.append(g.node_epoch(0))
        assert history == [1, 2, 3, 4]


class TestAdjacencyArrays:
    def test_mirrors_match_adjacency(self):
        g = PartialDistanceGraph(8)
        weights = {5: 0.5, 2: 0.2, 7: 0.7, 1: 0.1}
        for other, w in weights.items():
            g.add_edge(3, other, w)
        ids, ws = g.adjacency_arrays(3)
        assert ids.dtype == np.int64
        assert ws.dtype == np.float64
        assert ids.tolist() == [1, 2, 5, 7]
        assert ws.tolist() == [0.1, 0.2, 0.5, 0.7]

    def test_mirror_is_cached_until_insert(self):
        g = PartialDistanceGraph(6)
        g.add_edge(0, 1, 0.5)
        ids_a, ws_a = g.adjacency_arrays(0)
        ids_b, ws_b = g.adjacency_arrays(0)
        assert ids_a is ids_b and ws_a is ws_b  # same epoch -> same arrays
        g.add_edge(0, 2, 0.4)
        ids_c, _ = g.adjacency_arrays(0)
        assert ids_c is not ids_a
        assert ids_c.tolist() == [1, 2]

    def test_insert_on_other_node_keeps_mirror(self):
        g = PartialDistanceGraph(6)
        g.add_edge(0, 1, 0.5)
        ids_a, _ = g.adjacency_arrays(0)
        g.add_edge(2, 3, 0.2)  # does not touch node 0
        ids_b, _ = g.adjacency_arrays(0)
        assert ids_a is ids_b

    def test_empty_node(self):
        g = PartialDistanceGraph(3)
        ids, ws = g.adjacency_arrays(2)
        assert ids.size == 0 and ws.size == 0


class TestEdgeArrays:
    def test_matches_insertion_order(self):
        g = PartialDistanceGraph(6)
        inserted = [(0, 1, 0.5), (3, 2, 0.3), (4, 0, 0.9)]
        for i, j, w in inserted:
            g.add_edge(i, j, w)
        i_ids, j_ids, ws = g.edge_arrays()
        got = list(zip(i_ids.tolist(), j_ids.tolist(), ws.tolist()))
        assert got == [(0, 1, 0.5), (2, 3, 0.3), (0, 4, 0.9)]  # canonical pairs

    def test_cached_per_epoch(self):
        g = PartialDistanceGraph(4)
        g.add_edge(0, 1, 0.5)
        a = g.edge_arrays()
        b = g.edge_arrays()
        assert a[0] is b[0]
        g.add_edge(1, 2, 0.2)
        c = g.edge_arrays()
        assert c[0] is not a[0]
        assert c[2].tolist() == [0.5, 0.2]


class TestMirrorCounters:
    """Regression: read-only workloads must not re-materialise the mirrors."""

    def test_read_only_workload_keeps_counters_stable(self):
        g = PartialDistanceGraph(8)
        for i, j, w in [(0, 1, 0.5), (1, 2, 0.3), (2, 3, 0.4), (0, 4, 0.9)]:
            g.add_edge(i, j, w)
        g.edge_arrays()
        g.csr_arrays()
        assert g.edge_mirror_rebuilds == 1
        assert g.csr_mirror_rebuilds == 1
        # Any number of read-only calls after materialisation is free: no
        # rebuild, no append, regardless of interleaving or epoch reads.
        for _ in range(25):
            g.edge_arrays()
            g.csr_arrays()
            g.adjacency_arrays(1)
            g.get(0, 1)
            _ = g.epoch
        assert g.edge_mirror_rebuilds == 1
        assert g.csr_mirror_rebuilds == 1
        assert g.edge_mirror_appends == 0

    def test_insert_appends_to_edge_mirror_without_rebuild(self):
        g = PartialDistanceGraph(8)
        g.add_edge(0, 1, 0.5)
        g.edge_arrays()
        assert (g.edge_mirror_rebuilds, g.edge_mirror_appends) == (1, 0)
        g.add_edge(1, 2, 0.3)
        g.add_edge(2, 3, 0.4)
        i_ids, _, ws = g.edge_arrays()
        # Inserts extend the existing buffer in place; the one-time full
        # rebuild never repeats.
        assert g.edge_mirror_rebuilds == 1
        assert g.edge_mirror_appends == 2
        assert i_ids.tolist() == [0, 1, 2]
        assert ws.tolist() == [0.5, 0.3, 0.4]

    def test_csr_rebuild_is_once_per_epoch_not_per_call(self):
        g = PartialDistanceGraph(8)
        g.add_edge(0, 1, 0.5)
        for _ in range(5):
            g.csr_arrays()
        assert g.csr_mirror_rebuilds == 1
        g.add_edge(1, 2, 0.3)
        for _ in range(5):
            g.csr_arrays()
        assert g.csr_mirror_rebuilds == 2


class TestUnknownPairs:
    def test_matches_bruteforce_complement(self, rng):
        g = PartialDistanceGraph(12)
        for i, j in itertools.combinations(range(12), 2):
            if rng.random() < 0.4:
                g.add_edge(i, j, float(rng.uniform(0.1, 1.0)))
        expected = [
            (i, j)
            for i, j in itertools.combinations(range(12), 2)
            if g.get(i, j) is None
        ]
        assert list(g.unknown_pairs()) == expected

    def test_full_graph_has_none(self):
        g = PartialDistanceGraph(5)
        for i, j in itertools.combinations(range(5), 2):
            g.add_edge(i, j, 1.0)
        assert list(g.unknown_pairs()) == []

    def test_empty_graph_has_all(self):
        g = PartialDistanceGraph(4)
        assert list(g.unknown_pairs()) == list(itertools.combinations(range(4), 2))


class TestCommonNeighborsCrossover:
    """Direct coverage of the bisect-vs-merge dispatch (ratio > 8)."""

    def _brute(self, g, i, j):
        return sorted(set(g.adjacency_list(i)) & set(g.adjacency_list(j)))

    def test_merge_path_balanced_lists(self):
        g = PartialDistanceGraph(30)
        for other in range(2, 20):
            g.add_edge(0, other, 0.1)
        for other in range(10, 28):
            g.add_edge(1, other, 0.2)
        # Balanced degrees (18 vs 18): stays on the linear-merge path.
        assert list(g.common_neighbors(0, 1)) == self._brute(g, 0, 1)

    def test_bisect_path_skewed_lists(self):
        g = PartialDistanceGraph(200)
        for other in range(3, 180):
            g.add_edge(0, other, 0.1)
        for other in (5, 50, 120, 179):
            g.add_edge(1, other, 0.2)
        # Degree ratio 177:4 > 8: takes the bisect-probe path.
        assert list(g.common_neighbors(0, 1)) == [5, 50, 120, 179]
        assert list(g.common_neighbors(1, 0)) == [5, 50, 120, 179]

    def test_just_below_and_above_crossover_agree(self):
        # len(long) crosses 8 * len(short) between the two graphs; both
        # dispatches must return the same intersection.
        for long_len in (8, 9, 16, 17):
            g = PartialDistanceGraph(100)
            for other in range(2, 2 + long_len):
                g.add_edge(0, other, 0.1)
            g.add_edge(1, 3, 0.2)  # short list: exactly one entry
            expected = self._brute(g, 0, 1)
            assert list(g.common_neighbors(0, 1)) == expected
            assert list(g.common_neighbors(1, 0)) == expected

    def test_randomised_agreement_across_skews(self, rng):
        for short_deg, long_deg in [(1, 7), (1, 9), (3, 23), (3, 25), (5, 60)]:
            g = PartialDistanceGraph(300)
            long_nbrs = rng.choice(np.arange(2, 300), size=long_deg, replace=False)
            for other in long_nbrs.tolist():
                g.add_edge(0, int(other), 0.1)
            short_nbrs = rng.choice(long_nbrs, size=short_deg, replace=False)
            for other in short_nbrs.tolist():
                g.add_edge(1, int(other), 0.2)
            expected = self._brute(g, 0, 1)
            assert list(g.common_neighbors(0, 1)) == expected
            assert list(g.common_neighbors(1, 0)) == expected


class TestNumEdges:
    def test_counts_weights_not_iterator(self):
        g = PartialDistanceGraph(10)
        for k in range(1, 8):
            g.add_edge(0, k, float(k))
        assert g.num_edges == 7
        assert len(g) == 7

    def test_copy_preserves_mirrors_and_epochs(self):
        g = PartialDistanceGraph(6)
        g.add_edge(0, 1, 0.5)
        g.add_edge(0, 2, 0.3)
        clone = g.copy()
        assert clone.epoch == g.epoch
        assert clone.node_epoch(0) == g.node_epoch(0)
        ids, ws = clone.adjacency_arrays(0)
        assert ids.tolist() == [1, 2]
        clone.add_edge(0, 3, 0.1)
        assert g.node_epoch(0) == 2  # original untouched
        assert g.adjacency_arrays(0)[0].tolist() == [1, 2]
