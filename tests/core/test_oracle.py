"""Unit tests for the distance oracle accounting layer."""

import math

import pytest

from repro.core.exceptions import BudgetExceededError, InvalidObjectError
from repro.core.oracle import DistanceOracle, WallClockOracle, canonical_pair


def manhattan_1d(i, j):
    return float(abs(i - j))


class TestCanonicalPair:
    def test_orders_ascending(self):
        assert canonical_pair(5, 2) == (2, 5)

    def test_keeps_sorted_input(self):
        assert canonical_pair(2, 5) == (2, 5)

    def test_identity_pair(self):
        assert canonical_pair(3, 3) == (3, 3)


class TestDistanceOracle:
    def test_returns_distance(self):
        oracle = DistanceOracle(manhattan_1d, 10)
        assert oracle(2, 7) == 5.0

    def test_self_distance_is_zero_and_free(self):
        oracle = DistanceOracle(manhattan_1d, 10)
        assert oracle(4, 4) == 0.0
        assert oracle.calls == 0

    def test_counts_uncached_calls(self):
        oracle = DistanceOracle(manhattan_1d, 10)
        oracle(1, 2)
        oracle(3, 4)
        assert oracle.calls == 2

    def test_cache_prevents_double_charge(self):
        oracle = DistanceOracle(manhattan_1d, 10)
        oracle(1, 2)
        oracle(1, 2)
        oracle(2, 1)  # symmetric request hits the same cache entry
        assert oracle.calls == 1
        assert oracle.cache_hits == 2

    def test_symmetric_consistency(self):
        oracle = DistanceOracle(manhattan_1d, 10)
        assert oracle(3, 8) == oracle(8, 3)

    def test_simulated_latency_accumulates(self):
        oracle = DistanceOracle(manhattan_1d, 10, cost_per_call=0.5)
        oracle(0, 1)
        oracle(0, 2)
        oracle(0, 1)  # cached: not charged
        assert oracle.simulated_seconds == pytest.approx(1.0)

    def test_budget_enforced(self):
        oracle = DistanceOracle(manhattan_1d, 10, budget=2)
        oracle(0, 1)
        oracle(0, 2)
        with pytest.raises(BudgetExceededError):
            oracle(0, 3)

    def test_budget_allows_cached_requests(self):
        oracle = DistanceOracle(manhattan_1d, 10, budget=1)
        oracle(0, 1)
        assert oracle(0, 1) == 1.0  # cached, no budget charge

    def test_out_of_range_index_rejected(self):
        oracle = DistanceOracle(manhattan_1d, 10)
        with pytest.raises(InvalidObjectError):
            oracle(0, 10)
        with pytest.raises(InvalidObjectError):
            oracle(-1, 3)

    def test_negative_distance_rejected(self):
        oracle = DistanceOracle(lambda i, j: -1.0, 5)
        with pytest.raises(ValueError):
            oracle(0, 1)

    def test_peek_never_charges(self):
        oracle = DistanceOracle(manhattan_1d, 10)
        assert oracle.peek(1, 2) is None
        oracle(1, 2)
        assert oracle.peek(2, 1) == 1.0
        assert oracle.calls == 1

    def test_peek_self_pair(self):
        oracle = DistanceOracle(manhattan_1d, 10)
        assert oracle.peek(3, 3) == 0.0

    def test_is_resolved(self):
        oracle = DistanceOracle(manhattan_1d, 10)
        assert not oracle.is_resolved(1, 2)
        oracle(1, 2)
        assert oracle.is_resolved(2, 1)

    def test_stats_snapshot_subtraction(self):
        oracle = DistanceOracle(manhattan_1d, 10, cost_per_call=1.0)
        oracle(0, 1)
        before = oracle.stats()
        oracle(0, 2)
        oracle(0, 3)
        delta = oracle.stats() - before
        assert delta.calls == 2
        assert delta.simulated_seconds == pytest.approx(2.0)

    def test_reset_clears_everything(self):
        oracle = DistanceOracle(manhattan_1d, 10, cost_per_call=1.0)
        oracle(0, 1)
        oracle.reset()
        assert oracle.calls == 0
        assert oracle.simulated_seconds == 0.0
        assert not oracle.is_resolved(0, 1)

    def test_invalid_construction(self):
        with pytest.raises(InvalidObjectError):
            DistanceOracle(manhattan_1d, 0)
        with pytest.raises(ValueError):
            DistanceOracle(manhattan_1d, 5, cost_per_call=-1)
        with pytest.raises(ValueError):
            DistanceOracle(manhattan_1d, 5, budget=-1)


class TestKeywordOnlyConstructor:
    """The positional cost/budget shim (deprecated in PR 1) is gone:
    ``cost_per_call`` and ``budget`` are keyword-only."""

    def test_positional_cost_rejected(self):
        with pytest.raises(TypeError):
            DistanceOracle(manhattan_1d, 10, 0.5)

    def test_positional_budget_rejected(self):
        with pytest.raises(TypeError):
            DistanceOracle(manhattan_1d, 10, 0.0, 1)

    def test_keyword_form_does_not_warn(self):
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            oracle = DistanceOracle(manhattan_1d, 10, cost_per_call=0.5, budget=3)
        assert oracle.cost_per_call == 0.5
        oracle(0, 1)
        assert oracle.simulated_seconds == pytest.approx(0.5)


class TestBatchedExecutionSurface:
    """The commit/seed/observe API used by the repro.exec pipeline."""

    def test_record_charges_like_call(self):
        oracle = DistanceOracle(manhattan_1d, 10, cost_per_call=1.0)
        assert oracle.record(1, 0, 1.0) == 1.0
        assert oracle.calls == 1
        assert oracle.simulated_seconds == 1.0
        assert oracle.peek(0, 1) == 1.0

    def test_record_is_idempotent_on_cached_pairs(self):
        oracle = DistanceOracle(manhattan_1d, 10)
        oracle(0, 1)
        assert oracle.record(0, 1, 999.0) == 1.0  # cached value wins
        assert oracle.calls == 1

    def test_record_validates_value_and_indices(self):
        oracle = DistanceOracle(manhattan_1d, 10)
        with pytest.raises(ValueError):
            oracle.record(0, 1, -2.0)
        with pytest.raises(InvalidObjectError):
            oracle.record(0, 10, 1.0)
        assert oracle.record(4, 4, 0.0) == 0.0  # diagonal: free no-op

    def test_seed_is_free_and_reports_novelty(self):
        oracle = DistanceOracle(manhattan_1d, 10, cost_per_call=1.0)
        assert oracle.seed(0, 1, 1.0) is True
        assert oracle.seed(1, 0, 2.0) is False  # already known
        assert oracle.seed(3, 3, 0.0) is False  # diagonal
        assert oracle.calls == 0
        assert oracle.simulated_seconds == 0.0
        with pytest.raises(ValueError):
            oracle.seed(0, 2, math.inf)

    def test_resolve_batch_preserves_input_order(self):
        oracle = DistanceOracle(manhattan_1d, 10)
        assert oracle.resolve_batch([(0, 3), (5, 1), (0, 3)]) == [3.0, 4.0, 3.0]
        assert oracle.calls == 2

    def test_refund_simulated(self):
        oracle = DistanceOracle(manhattan_1d, 10, cost_per_call=1.0)
        oracle(0, 1)
        oracle(0, 2)
        oracle.refund_simulated(1.5)
        assert oracle.simulated_seconds == pytest.approx(0.5)
        with pytest.raises(ValueError):
            oracle.refund_simulated(-1.0)

    def test_note_retries_and_timeouts(self):
        oracle = DistanceOracle(manhattan_1d, 10)
        oracle.note_retries(2)
        oracle.note_timeouts()
        assert oracle.retries == 2
        assert oracle.timeouts == 1
        with pytest.raises(ValueError):
            oracle.note_retries(-1)
        stats = oracle.stats()
        assert (stats.retries, stats.timeouts) == (2, 1)

    def test_stats_subtraction_covers_fault_counters(self):
        oracle = DistanceOracle(manhattan_1d, 10)
        before = oracle.stats()
        oracle.note_retries(3)
        oracle.note_timeouts(2)
        delta = oracle.stats() - before
        assert delta.retries == 3
        assert delta.timeouts == 2

    def test_subscribe_and_unsubscribe(self):
        oracle = DistanceOracle(manhattan_1d, 10)
        seen = []
        listener = lambda i, j, d: seen.append((i, j, d))  # noqa: E731
        oracle.subscribe(listener)
        oracle(1, 0)
        oracle(1, 0)  # cache hit: listeners not re-notified
        oracle.unsubscribe(listener)
        oracle(0, 2)
        assert seen == [(0, 1, 1.0)]

    def test_listeners_survive_reset(self):
        oracle = DistanceOracle(manhattan_1d, 10)
        seen = []
        oracle.subscribe(lambda i, j, d: seen.append((i, j)))
        oracle.reset()
        oracle(0, 1)
        assert seen == [(0, 1)]

    def test_in_batch_labels_and_restores(self):
        oracle = DistanceOracle(manhattan_1d, 10)
        assert oracle.active_batch is None
        with oracle.in_batch(7):
            assert oracle.active_batch == 7
        assert oracle.active_batch is None


class TestWallClockOracle:
    def test_measures_real_time(self):
        import time

        def slow(i, j):
            time.sleep(0.002)
            return 1.0

        oracle = WallClockOracle(slow, 5)
        oracle(0, 1)
        oracle(0, 2)
        assert oracle.wall_seconds >= 0.004
        assert oracle.calls == 2

    def test_cache_skips_timer(self):
        oracle = WallClockOracle(manhattan_1d, 5)
        oracle(0, 1)
        first = oracle.wall_seconds
        oracle(0, 1)
        assert oracle.wall_seconds == first
