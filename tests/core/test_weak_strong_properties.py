"""Property-based tests (hypothesis) for the weak/strong oracle tier.

The tier's two load-bearing guarantees:

* any weak answer inside its declared error band yields a valid interval —
  the band-scaled bounds always contain the true distance;
* a tiered run is *output-identical* to a strong-only run on every
  workload, because weak answers only ever tighten bounds.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import pam
from repro.algorithms.queries import k_nearest, range_query
from repro.core.partial_graph import PartialDistanceGraph
from repro.core.resolver import SmartResolver
from repro.core.tiering import TieredOracle, WeakBand, WeakBoundProvider, WeakOracle
from repro.spaces.matrix import MatrixSpace, random_metric_matrix

COMMON_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def banded_estimates(draw):
    """A true distance, a legal band, and an estimate inside that band."""
    truth = draw(st.floats(0.0, 1e6, allow_nan=False))
    lo = draw(st.one_of(st.just(0.0), st.floats(1e-3, 1.5)))
    hi = draw(st.one_of(st.floats(max(lo, 1e-3), 4.0), st.just(math.inf)))
    # In-band means lo·e ≤ truth ≤ hi·e, i.e. e ∈ [truth/hi, truth/lo].
    e_min = 0.0 if math.isinf(hi) else truth / hi
    e_max = truth * 10.0 if lo == 0.0 else truth / lo
    t = draw(st.floats(0.0, 1.0))
    estimate = e_min + t * (max(e_max, e_min) - e_min)
    return truth, WeakBand(lo, hi), estimate


@st.composite
def tiered_instances(draw, min_n=4, max_n=12):
    """A random metric plus an in-band synthetic weak oracle for it."""
    n = draw(st.integers(min_n, max_n))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    matrix = random_metric_matrix(n, rng)
    lo = draw(st.floats(0.5, 1.2))
    hi = draw(st.one_of(st.floats(1.3, 3.0), st.just(math.inf)))
    # Multiplicative noise u ∈ [1/hi, 1/lo] keeps every estimate in band
    # (nudged inward so float round-trips through the band stay sound).
    u_min = (1.0 / hi if not math.isinf(hi) else 0.0) * 1.001
    u_max = (1.0 / lo) * 0.999
    noise = np.random.default_rng(seed + 7).uniform(u_min, u_max, size=(n, n))
    estimates = matrix * (noise + noise.T) / 2.0
    weak = WeakOracle(
        lambda i, j: float(estimates[i, j]), n, WeakBand(lo, hi), name="synthetic"
    )
    return matrix, weak


class TestBandSoundness:
    @given(banded_estimates())
    @settings(**COMMON_SETTINGS)
    def test_in_band_estimate_yields_valid_bounds(self, case):
        truth, band, estimate = case
        bounds = band.interval(estimate)
        assert bounds.lower <= bounds.upper
        assert bounds.contains(truth, tol=1e-6 * max(1.0, truth))

    @given(tiered_instances())
    @settings(**COMMON_SETTINGS)
    def test_weak_provider_bounds_contain_truth(self, instance):
        matrix, weak = instance
        n = matrix.shape[0]
        provider = WeakBoundProvider(
            PartialDistanceGraph(n), weak, max_distance=float(matrix.max())
        )
        for i in range(n):
            for j in range(i + 1, n):
                truth = float(matrix[i, j])
                b = provider.bounds(i, j)
                assert b.contains(truth, tol=1e-6 * max(1.0, truth)), (
                    weak.band,
                    (i, j),
                    truth,
                    b,
                )


def _run_workloads(resolver, n, seed):
    """The knn / range / medoid battery, deterministically parameterised."""
    rng = np.random.default_rng(seed)
    query = int(rng.integers(n))
    radius = float(rng.uniform(0.1, 1.0))
    k = int(rng.integers(1, n))
    knn = k_nearest(resolver, query, k)
    rq = range_query(resolver, query, radius)
    medoid = pam(resolver, l=min(2, n - 1), seed=int(seed % 1000))
    return knn, rq, (medoid.medoids, medoid.assignment, medoid.cost)


class TestTieredIdentity:
    @given(tiered_instances(), st.integers(0, 2**31 - 1))
    @settings(**COMMON_SETTINGS)
    def test_tiered_matches_strong_only(self, instance, workload_seed):
        matrix, weak = instance
        n = matrix.shape[0]
        space = MatrixSpace(matrix, validate=False)

        strong_only = SmartResolver(space.oracle())
        baseline = _run_workloads(strong_only, n, workload_seed)
        baseline_calls = strong_only.oracle.calls

        oracle = space.oracle()
        tiered = TieredOracle(oracle, weak)
        resolver = SmartResolver(oracle)
        try:
            tiered.attach(resolver, max_distance=float(matrix.max()))
            answers = _run_workloads(resolver, n, workload_seed)
        finally:
            tiered.close()

        assert answers == baseline
        assert oracle.calls <= baseline_calls
        stats = resolver.collect_stats()
        assert stats.strong_calls == oracle.calls
        assert stats.weak_calls == tiered.weak_calls
