"""Unit tests for the exception hierarchy and package doctest."""

import doctest

import pytest

import repro
from repro.core.exceptions import (
    BudgetExceededError,
    ConfigurationError,
    InvalidObjectError,
    MetricViolationError,
    ReproError,
    SolverError,
    UnknownDistanceError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            MetricViolationError,
            SolverError,
            BudgetExceededError,
            ConfigurationError,
            InvalidObjectError,
            UnknownDistanceError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_unknown_distance_is_key_error(self):
        assert issubclass(UnknownDistanceError, KeyError)
        err = UnknownDistanceError(3, 7)
        assert err.i == 3 and err.j == 7
        assert "3" in str(err) and "7" in str(err)

    def test_invalid_object_is_index_error(self):
        assert issubclass(InvalidObjectError, IndexError)
        err = InvalidObjectError(10, 5)
        assert err.index == 10 and err.universe_size == 5

    def test_configuration_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)

    def test_budget_carries_limit(self):
        err = BudgetExceededError(42)
        assert err.budget == 42
        assert "42" in str(err)

    def test_catch_all(self):
        with pytest.raises(ReproError):
            raise BudgetExceededError(1)


class TestPackageDoctest:
    def test_quickstart_docstring_runs(self):
        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
        assert results.attempted > 0  # the quickstart example actually ran
