"""Unit tests for the SmartResolver — the re-authoring framework."""

import math

import numpy as np
import pytest

from repro.bounds.tri import TriScheme
from repro.core.bounds import TrivialBounder
from repro.core.partial_graph import PartialDistanceGraph
from repro.core.resolver import SmartResolver
from repro.spaces.matrix import MatrixSpace, random_metric_matrix


@pytest.fixture
def space(rng):
    return MatrixSpace(random_metric_matrix(12, rng))


@pytest.fixture
def resolver(space):
    oracle = space.oracle()
    r = SmartResolver(oracle)
    r.bounder = TriScheme(r.graph, space.diameter_bound())
    return r


class TestDistance:
    def test_resolves_through_oracle(self, resolver, space):
        d = resolver.distance(0, 1)
        assert d == space.distance(0, 1)
        assert resolver.oracle.calls == 1

    def test_caches_in_graph(self, resolver):
        resolver.distance(0, 1)
        resolver.distance(1, 0)
        assert resolver.oracle.calls == 1
        assert resolver.graph.has_edge(0, 1)

    def test_self_distance_free(self, resolver):
        assert resolver.distance(4, 4) == 0.0
        assert resolver.oracle.calls == 0

    def test_known_returns_none_without_calls(self, resolver):
        assert resolver.known(0, 1) is None
        assert resolver.oracle.calls == 0

    def test_notifies_bounder(self, space):
        events = []

        class Spy(TrivialBounder):
            def notify_resolved(self, i, j, d):
                events.append((i, j))

        oracle = space.oracle()
        r = SmartResolver(oracle)
        r.bounder = Spy(r.graph)
        r.distance(2, 5)
        assert events == [(2, 5)]


class TestBoundsQuery:
    def test_known_pair_is_exact(self, resolver, space):
        resolver.distance(0, 1)
        b = resolver.bounds(0, 1)
        assert b.is_exact
        assert b.lower == space.distance(0, 1)

    def test_unknown_pair_contains_truth(self, resolver, space):
        for j in range(2, 8):
            resolver.distance(0, j)
            resolver.distance(1, j)
        b = resolver.bounds(0, 1)
        assert b.lower - 1e-9 <= space.distance(0, 1) <= b.upper + 1e-9
        assert resolver.oracle.calls == 12  # bounds() itself charged nothing


class TestPredicates:
    def test_is_at_least_matches_truth(self, resolver, space):
        truth = space.distance(3, 7)
        assert resolver.is_at_least(3, 7, truth) is True
        assert resolver.is_at_least(3, 7, truth + 0.01) is False
        assert resolver.is_at_least(3, 7, truth - 0.01) is True

    def test_is_greater_matches_truth(self, resolver, space):
        truth = space.distance(2, 9)
        assert resolver.is_greater(2, 9, truth) is False
        assert resolver.is_greater(2, 9, truth - 0.01) is True

    def test_is_less_than_is_negation(self, resolver, space):
        truth = space.distance(4, 6)
        assert resolver.is_less_than(4, 6, truth) is False
        assert resolver.is_less_than(4, 6, truth + 0.01) is True

    def test_is_at_least_prunes_with_bounds(self, space):
        oracle = space.oracle()
        r = SmartResolver(oracle)
        r.bounder = TriScheme(r.graph, space.diameter_bound())
        # Build triangles around (0, 1) so its bounds are informative.
        for w in range(2, 12):
            r.distance(0, w)
            r.distance(1, w)
        calls_before = oracle.calls
        ub = r.bounds(0, 1).upper
        # A threshold above the upper bound must be decided without a call.
        assert r.is_at_least(0, 1, ub + 0.001) is False
        assert oracle.calls == calls_before

    def test_less_matches_truth(self, resolver, space):
        truth = space.distance(0, 1) < space.distance(2, 3)
        assert resolver.less((0, 1), (2, 3)) is truth

    def test_less_on_equal_distances_is_false(self, space):
        oracle = space.oracle()
        r = SmartResolver(oracle)
        assert r.less((5, 6), (6, 5)) is False  # same pair: equal, not less

    def test_compare_signs(self, resolver, space):
        da = space.distance(0, 1)
        db = space.distance(2, 3)
        expected = -1 if da < db else (1 if da > db else 0)
        assert resolver.compare((0, 1), (2, 3)) == expected

    def test_compare_equal_pair(self, resolver):
        assert resolver.compare((3, 4), (4, 3)) == 0


class TestDeciderHook:
    def test_decide_less_short_circuits(self, space):
        class Decider(TrivialBounder):
            def decide_less(self, a, b):
                return True

        oracle = space.oracle()
        r = SmartResolver(oracle)
        r.bounder = Decider(r.graph, space.diameter_bound())
        assert r.less((0, 1), (2, 3)) is True
        assert oracle.calls == 0
        assert r.stats.decided_by_bounds == 1

    def test_decide_less_none_falls_back(self, space):
        class Decider(TrivialBounder):
            def decide_less(self, a, b):
                return None

        oracle = space.oracle()
        r = SmartResolver(oracle)
        r.bounder = Decider(r.graph, space.diameter_bound())
        truth = space.distance(0, 1) < space.distance(2, 3)
        assert r.less((0, 1), (2, 3)) is truth
        assert oracle.calls >= 1


class TestArgmin:
    def test_matches_linear_scan(self, resolver, space):
        candidates = [3, 5, 7, 9, 11]
        best, dist = resolver.argmin(0, candidates)
        expected = min(candidates, key=lambda c: (space.distance(0, c), candidates.index(c)))
        assert best == expected
        assert dist == pytest.approx(space.distance(0, expected))

    def test_respects_upper_limit(self, resolver, space):
        candidates = [3, 5]
        floor = min(space.distance(0, c) for c in candidates)
        best, dist = resolver.argmin(0, candidates, upper_limit=floor / 2)
        assert best is None
        assert math.isinf(dist)

    def test_tie_break_earliest_candidate(self, rng):
        # Duplicate objects at equal distance: earliest position must win.
        matrix = np.array(
            [
                [0.0, 1.0, 1.0, 2.0],
                [1.0, 0.0, 0.5, 1.0],
                [1.0, 0.5, 0.0, 1.0],
                [2.0, 1.0, 1.0, 0.0],
            ]
        )
        space = MatrixSpace(matrix)
        r = SmartResolver(space.oracle())
        best, dist = r.argmin(0, [2, 1])  # d(0,2) == d(0,1) == 1.0
        assert best == 2  # position 0 in the candidate list
        assert dist == 1.0


class TestKnearest:
    def test_matches_brute_force(self, resolver, space):
        result = resolver.knearest(0, range(12), 4)
        brute = sorted((space.distance(0, v), v) for v in range(12) if v != 0)[:4]
        assert result == brute

    def test_k_zero_returns_empty(self, resolver):
        assert resolver.knearest(0, range(12), 0) == []

    def test_k_larger_than_pool(self, resolver, space):
        result = resolver.knearest(0, [1, 2], 10)
        brute = sorted((space.distance(0, v), v) for v in (1, 2))
        assert result == brute

    def test_pruning_saves_calls_with_triangles(self, space):
        oracle = space.oracle()
        r = SmartResolver(oracle)
        r.bounder = TriScheme(r.graph, space.diameter_bound())
        # Warm the graph so bounds are informative for node 0's scan.
        for u in range(1, 12):
            for v in range(u + 1, 12):
                r.distance(u, v)
        before = oracle.calls
        r.knearest(0, range(12), 2)
        resolved_for_scan = oracle.calls - before
        assert resolved_for_scan < 11  # pruning skipped at least one candidate


class TestStats:
    def test_counters_accumulate(self, resolver):
        resolver.is_at_least(0, 1, 0.0)  # decided by bounds: lb >= 0 always
        assert resolver.stats.decided_by_bounds == 1
        resolver.distance(0, 2)
        assert resolver.stats.resolutions == 1

    def test_prune_rate(self, resolver):
        assert resolver.stats.prune_rate == 0.0
        resolver.is_at_least(0, 1, 0.0)
        assert resolver.stats.prune_rate == 1.0


class TestTieBreaking:
    """Equal distances must be settled the way a vanilla linear scan would."""

    def _tied_space(self):
        # d(0,1) == d(2,3) == 1.0, everything else distinct.
        matrix = np.array(
            [
                [0.0, 1.0, 1.5, 1.5],
                [1.0, 0.0, 1.5, 1.5],
                [1.5, 1.5, 0.0, 1.0],
                [1.5, 1.5, 1.0, 0.0],
            ]
        )
        return MatrixSpace(matrix)

    def test_compare_distinct_pairs_at_equal_distance(self):
        space = self._tied_space()
        r = SmartResolver(space.oracle())
        assert r.compare((0, 1), (2, 3)) == 0
        assert r.compare((2, 3), (0, 1)) == 0

    def test_less_is_false_both_ways_on_ties(self):
        space = self._tied_space()
        r = SmartResolver(space.oracle())
        assert r.less((0, 1), (2, 3)) is False
        assert r.less((2, 3), (0, 1)) is False

    def test_argmin_tie_prefers_earliest_even_when_probed_late(self):
        # Candidates listed so the tied winner sits *after* another tied
        # candidate in probe order: position still decides, not probe order.
        matrix = np.array(
            [
                [0.0, 2.0, 1.0, 1.0],
                [2.0, 0.0, 1.5, 1.5],
                [1.0, 1.5, 0.0, 0.5],
                [1.0, 1.5, 0.5, 0.0],
            ]
        )
        space = MatrixSpace(matrix)
        r = SmartResolver(space.oracle())
        best, dist = r.argmin(0, [3, 2, 1])  # d(0,3) == d(0,2) == 1.0
        assert best == 3  # earliest position in the candidate list
        assert dist == 1.0


class TestArgminUpperLimit:
    """The ``upper_limit`` is exclusive: exact matches are never returned."""

    def test_candidate_at_exact_limit_excluded(self, resolver, space):
        candidates = [3, 5, 7]
        floor = min(space.distance(0, c) for c in candidates)
        best, dist = resolver.argmin(0, candidates, upper_limit=floor)
        assert best is None
        assert math.isinf(dist)

    def test_candidate_just_under_limit_returned(self, resolver, space):
        candidates = [3, 5, 7]
        floor = min(space.distance(0, c) for c in candidates)
        winner = min(candidates, key=lambda c: space.distance(0, c))
        best, dist = resolver.argmin(0, candidates, upper_limit=floor + 1e-9)
        assert best == winner
        assert dist == pytest.approx(floor)


class TestStatsSplit:
    """Comparisons and resolutions are separate counters (see ResolverStats)."""

    def test_oracle_resolution_classified(self, space):
        r = SmartResolver(space.oracle())
        r.distance(0, 1)
        assert r.stats.resolutions == 1
        assert r.stats.oracle_resolutions == 1
        assert r.stats.cached_resolutions == 0

    def test_graph_hit_is_not_a_resolution(self, space):
        r = SmartResolver(space.oracle())
        r.distance(0, 1)
        r.distance(1, 0)
        assert r.stats.resolutions == 1

    def test_oracle_cache_hit_counted_as_cached(self, space):
        oracle = space.oracle()
        oracle.seed(0, 1, space.distance(0, 1))
        r = SmartResolver(oracle)
        r.distance(0, 1)
        assert r.stats.resolutions == 1
        assert r.stats.oracle_resolutions == 0
        assert r.stats.cached_resolutions == 1

    def test_less_fallback_is_one_comparison_two_resolutions(self, space):
        r = SmartResolver(space.oracle())  # TrivialBounder: no pruning
        r.less((0, 1), (2, 3))
        assert r.stats.decided_by_oracle == 1
        assert r.stats.resolutions == 2
        assert r.stats.oracle_resolutions == 2

    def test_bound_decision_adds_no_resolution(self, resolver):
        resolver.is_at_least(0, 1, 0.0)  # lb >= 0 always holds
        assert resolver.stats.decided_by_bounds == 1
        assert resolver.stats.resolutions == 0


class TestConstruction:
    def test_mismatched_graphs_rejected(self, space):
        oracle = space.oracle()
        g1 = PartialDistanceGraph(space.n)
        g2 = PartialDistanceGraph(space.n)
        bounder = TrivialBounder(g1)
        with pytest.raises(ValueError):
            SmartResolver(oracle, bounder=bounder, graph=g2)

    def test_bounder_graph_adopted(self, space):
        oracle = space.oracle()
        g = PartialDistanceGraph(space.n)
        bounder = TrivialBounder(g)
        r = SmartResolver(oracle, bounder=bounder)
        assert r.graph is g
