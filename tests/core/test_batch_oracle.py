"""Unit tests for the batched oracle request API."""

import pytest

from repro.spaces.matrix import MatrixSpace, random_metric_matrix


@pytest.fixture
def space(rng):
    return MatrixSpace(random_metric_matrix(12, rng))


class TestBatch:
    def test_returns_distances_in_order(self, space):
        oracle = space.oracle()
        pairs = [(0, 1), (2, 3), (4, 5)]
        values = oracle.batch(pairs)
        assert values == [space.distance(i, j) for i, j in pairs]

    def test_elements_charged_individually(self, space):
        oracle = space.oracle()
        oracle.batch([(0, 1), (2, 3), (4, 5)])
        assert oracle.calls == 3

    def test_latency_charged_per_request(self, space):
        oracle = space.oracle(cost_per_call=2.0)
        oracle.batch([(0, 1), (2, 3), (4, 5)])
        assert oracle.simulated_seconds == pytest.approx(2.0)  # one request
        assert oracle.batch_requests == 1

    def test_cached_elements_free(self, space):
        oracle = space.oracle(cost_per_call=1.0)
        oracle(0, 1)
        oracle.batch([(0, 1), (2, 3)])
        assert oracle.calls == 2               # only (2, 3) was fresh
        assert oracle.simulated_seconds == pytest.approx(2.0)  # call + batch

    def test_fully_cached_batch_is_free(self, space):
        oracle = space.oracle(cost_per_call=1.0)
        oracle(0, 1)
        before = oracle.simulated_seconds
        oracle.batch([(0, 1), (1, 0)])
        assert oracle.simulated_seconds == before
        assert oracle.batch_requests == 0

    def test_empty_batch(self, space):
        oracle = space.oracle()
        assert oracle.batch([]) == []
        assert oracle.batch_requests == 0

    def test_reset_clears_batch_counter(self, space):
        oracle = space.oracle()
        oracle.batch([(0, 1)])
        oracle.reset()
        assert oracle.batch_requests == 0

    def test_interoperates_with_resolver_graph(self, space):
        from repro.core.resolver import SmartResolver

        oracle = space.oracle()
        oracle.batch([(0, 1), (0, 2)])
        resolver = SmartResolver(oracle)
        # The resolver re-requests through the cache: no extra charges.
        resolver.distance(0, 1)
        assert oracle.calls == 2
