"""Unit tests for Bounds values and the trivial/composite providers."""

import math

import pytest

from repro.core.bounds import (
    Bounds,
    IntersectionBounder,
    TrivialBounder,
    UNBOUNDED,
)
from repro.core.partial_graph import PartialDistanceGraph


class TestBounds:
    def test_gap(self):
        assert Bounds(0.2, 0.5).gap == pytest.approx(0.3)

    def test_unbounded_gap_is_infinite(self):
        assert math.isinf(UNBOUNDED.gap)

    def test_negative_lower_clamped_to_zero(self):
        assert Bounds(-0.5, 1.0).lower == 0.0

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Bounds(0.9, 0.1)

    def test_is_exact(self):
        assert Bounds(0.4, 0.4).is_exact
        assert not Bounds(0.4, 0.41).is_exact

    def test_intersect_tightens(self):
        merged = Bounds(0.1, 0.8).intersect(Bounds(0.3, 1.5))
        assert merged.lower == pytest.approx(0.3)
        assert merged.upper == pytest.approx(0.8)

    def test_intersect_with_unbounded_is_identity(self):
        b = Bounds(0.2, 0.7)
        merged = b.intersect(UNBOUNDED)
        assert merged.lower == b.lower
        assert merged.upper == b.upper

    def test_contains(self):
        b = Bounds(0.2, 0.5)
        assert b.contains(0.2)
        assert b.contains(0.5)
        assert b.contains(0.35)
        assert not b.contains(0.6)
        assert not b.contains(0.1)


class TestTrivialBounder:
    def test_unknown_pair_gets_diameter_cap(self):
        g = PartialDistanceGraph(4)
        bounder = TrivialBounder(g, max_distance=2.0)
        b = bounder.bounds(0, 1)
        assert b.lower == 0.0
        assert b.upper == 2.0

    def test_known_pair_is_exact(self):
        g = PartialDistanceGraph(4)
        g.add_edge(0, 1, 0.7)
        bounder = TrivialBounder(g, max_distance=2.0)
        assert bounder.bounds(0, 1).is_exact

    def test_self_pair(self):
        g = PartialDistanceGraph(4)
        bounder = TrivialBounder(g)
        assert bounder.bounds(2, 2) == Bounds(0.0, 0.0)

    def test_invalid_max_distance(self):
        g = PartialDistanceGraph(4)
        with pytest.raises(ValueError):
            TrivialBounder(g, max_distance=0.0)


class _FixedBounder:
    """Test double returning a constant interval."""

    name = "fixed"

    def __init__(self, lower, upper):
        self._b = Bounds(lower, upper)

    def bounds(self, i, j):
        return self._b

    def notify_resolved(self, i, j, d):
        self.last = (i, j, d)


class TestIntersectionBounder:
    def test_intersects_members(self):
        g = PartialDistanceGraph(4)
        combo = IntersectionBounder(
            g, [_FixedBounder(0.1, 0.9), _FixedBounder(0.3, 1.2)], max_distance=2.0
        )
        b = combo.bounds(0, 1)
        assert b.lower == pytest.approx(0.3)
        assert b.upper == pytest.approx(0.9)

    def test_name_concatenates(self):
        g = PartialDistanceGraph(4)
        combo = IntersectionBounder(g, [_FixedBounder(0, 1), _FixedBounder(0, 1)])
        assert combo.name == "fixed+fixed"

    def test_forwards_updates(self):
        g = PartialDistanceGraph(4)
        members = [_FixedBounder(0, 1), _FixedBounder(0, 1)]
        combo = IntersectionBounder(g, members)
        combo.notify_resolved(1, 2, 0.4)
        assert all(m.last == (1, 2, 0.4) for m in members)

    def test_requires_members(self):
        g = PartialDistanceGraph(4)
        with pytest.raises(ValueError):
            IntersectionBounder(g, [])

    def test_known_edge_short_circuit(self):
        g = PartialDistanceGraph(4)
        g.add_edge(0, 1, 0.5)
        combo = IntersectionBounder(g, [_FixedBounder(0.0, 2.0)], max_distance=3.0)
        assert combo.bounds(0, 1).is_exact
