"""Unit tests for the reader/writer lock."""

import threading
import time

import pytest

from repro.core.locking import ReadWriteLock


class TestBasics:
    def test_read_then_release(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            assert lock.read_held
        assert not lock.read_held

    def test_write_then_release(self):
        lock = ReadWriteLock()
        with lock.write_locked():
            assert lock.write_held
        assert not lock.write_held

    def test_reads_are_reentrant(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            with lock.read_locked():
                assert lock.read_held
            assert lock.read_held

    def test_writes_are_reentrant(self):
        lock = ReadWriteLock()
        with lock.write_locked():
            with lock.write_locked():
                assert lock.write_held

    def test_writer_may_read(self):
        lock = ReadWriteLock()
        with lock.write_locked():
            with lock.read_locked():
                assert lock.write_held

    def test_upgrade_rejected(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            with pytest.raises(RuntimeError, match="upgrade"):
                lock.acquire_write()


class TestExclusion:
    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        observed = []
        started = threading.Event()

        def reader():
            started.set()
            with lock.read_locked():
                observed.append("read")

        lock.acquire_write()
        t = threading.Thread(target=reader)
        t.start()
        started.wait(5)
        time.sleep(0.05)
        assert observed == []  # reader blocked behind the writer
        lock.release_write()
        t.join(timeout=5)
        assert observed == ["read"]

    def test_readers_exclude_writer(self):
        lock = ReadWriteLock()
        observed = []

        def writer():
            with lock.write_locked():
                observed.append("write")

        lock.acquire_read()
        t = threading.Thread(target=writer)
        t.start()
        time.sleep(0.05)
        assert observed == []
        lock.release_read()
        t.join(timeout=5)
        assert observed == ["write"]

    def test_concurrent_readers_overlap(self):
        lock = ReadWriteLock()
        inside = []
        barrier = threading.Barrier(3, timeout=5)

        def reader():
            with lock.read_locked():
                inside.append(1)
                barrier.wait()  # all three must be inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert len(inside) == 3

    def test_writer_not_starved_by_reader_stream(self):
        # With readers continuously overlapping (the lock is never free of
        # readers for long), writer preference must still let a writer in
        # promptly: once it queues, new read acquisitions wait behind it.
        lock = ReadWriteLock()
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                with lock.read_locked():
                    time.sleep(0.002)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            time.sleep(0.05)  # let the reader stream saturate the lock
            start = time.monotonic()
            with lock.write_locked():
                waited = time.monotonic() - start
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=5)
        # Without preference the writer could wait unboundedly; with it the
        # wait is roughly one reader critical section.  2s is very generous.
        assert waited < 2.0

    def test_writer_preference(self):
        # A waiting writer goes before readers that arrive after it.
        lock = ReadWriteLock()
        order = []
        lock.acquire_read()

        writer_waiting = threading.Event()

        def writer():
            writer_waiting.set()
            with lock.write_locked():
                order.append("write")

        def late_reader():
            with lock.read_locked():
                order.append("read")

        tw = threading.Thread(target=writer)
        tw.start()
        writer_waiting.wait(5)
        time.sleep(0.05)  # let the writer reach its wait
        tr = threading.Thread(target=late_reader)
        tr.start()
        time.sleep(0.05)
        lock.release_read()
        tw.join(timeout=5)
        tr.join(timeout=5)
        assert order[0] == "write"
