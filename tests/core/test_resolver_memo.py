"""Tests for the resolver's epoch-keyed bound memo and batched bound queries."""

import itertools

import pytest

from repro.bounds.splub import Splub
from repro.bounds.tri import TriScheme
from repro.core.bounds import BaseBoundProvider, Bounds
from repro.core.resolver import ResolverStats, SmartResolver
from repro.spaces.matrix import MatrixSpace, random_metric_matrix


class CountingBounder(BaseBoundProvider):
    """Trivial-bound provider that counts kernel invocations."""

    def __init__(self, graph, max_distance=10.0):
        super().__init__(graph, max_distance)
        self.calls = 0

    def bounds(self, i, j):
        self.calls += 1
        known = self.graph.get(i, j)
        if known is not None:
            return Bounds(known, known)
        return self.trivial_bounds(i, j)


@pytest.fixture
def space(rng):
    return MatrixSpace(random_metric_matrix(12, rng))


class TestMemoFreshness:
    def test_repeat_query_hits_memo(self, space):
        resolver = SmartResolver(space.oracle())
        counter = CountingBounder(resolver.graph)
        resolver.bounder = counter
        b1 = resolver.bounds(0, 1)
        b2 = resolver.bounds(0, 1)
        assert b1 == b2
        assert counter.calls == 1
        assert resolver.stats.bound_cache_hits == 1

    def test_symmetric_queries_share_one_entry(self, space):
        resolver = SmartResolver(space.oracle())
        counter = CountingBounder(resolver.graph)
        resolver.bounder = counter
        resolver.bounds(3, 7)
        resolver.bounds(7, 3)
        assert counter.calls == 1

    def test_endpoint_insert_invalidates(self, space):
        resolver = SmartResolver(space.oracle())
        counter = CountingBounder(resolver.graph)
        resolver.bounder = counter
        resolver.bounds(0, 1)
        resolver.distance(0, 2)  # moves node 0's epoch
        resolver.bounds(0, 1)
        assert counter.calls == 2

    def test_unrelated_insert_keeps_entry(self, space):
        resolver = SmartResolver(space.oracle())
        counter = CountingBounder(resolver.graph)
        resolver.bounder = counter
        resolver.bounds(0, 1)
        resolver.distance(4, 5)  # touches neither endpoint
        resolver.bounds(0, 1)
        assert counter.calls == 1

    def test_resolved_pair_answers_exactly_without_kernel(self, space):
        resolver = SmartResolver(space.oracle())
        counter = CountingBounder(resolver.graph)
        resolver.bounder = counter
        d = resolver.distance(0, 1)
        b = resolver.bounds(0, 1)
        assert b == Bounds(d, d)
        assert counter.calls == 0

    def test_bound_cache_false_always_recomputes(self, space):
        resolver = SmartResolver(space.oracle(), bound_cache=False)
        counter = CountingBounder(resolver.graph)
        resolver.bounder = counter
        resolver.bounds(0, 1)
        resolver.bounds(0, 1)
        assert counter.calls == 2
        assert resolver.stats.bound_cache_hits == 0

    def test_bounder_swap_clears_memo(self, space):
        resolver = SmartResolver(space.oracle())
        first = CountingBounder(resolver.graph)
        resolver.bounder = first
        resolver.bounds(0, 1)
        second = CountingBounder(resolver.graph)
        resolver.bounder = second
        resolver.bounds(0, 1)
        assert second.calls == 1  # not served from the first bounder's entry

    def test_invalidate_bound_cache(self, space):
        resolver = SmartResolver(space.oracle())
        counter = CountingBounder(resolver.graph)
        resolver.bounder = counter
        resolver.bounds(0, 1)
        resolver.invalidate_bound_cache()
        resolver.bounds(0, 1)
        assert counter.calls == 2


class TestMemoSoundness:
    def test_cached_bounds_always_contain_truth(self, rng):
        matrix = random_metric_matrix(14, rng)
        space = MatrixSpace(matrix)
        resolver = SmartResolver(space.oracle())
        resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
        pairs = list(itertools.combinations(range(14), 2))
        # Interleave bound queries with resolutions so memo entries go stale
        # and get refreshed at staggered epochs.
        for step, (i, j) in enumerate(pairs):
            b = resolver.bounds(i, j)
            truth = float(matrix[i, j])
            assert b.lower - 1e-9 <= truth <= b.upper + 1e-9
            if step % 3 == 0:
                resolver.distance(i, j)

    def test_predicates_agree_with_truth_under_staleness(self, rng):
        matrix = random_metric_matrix(12, rng)
        space = MatrixSpace(matrix)
        resolver = SmartResolver(space.oracle())
        resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
        pairs = list(itertools.combinations(range(12), 2))
        # Warm the memo on every pair, then resolve a third of the graph so
        # most entries are stale, then check every predicate against truth.
        for i, j in pairs:
            resolver.bounds(i, j)
        for i, j in pairs[:: 3]:
            resolver.distance(i, j)
        median = float(matrix[matrix > 0].mean())
        for i, j in pairs:
            truth = float(matrix[i, j])
            assert resolver.is_at_least(i, j, median) == (truth >= median)
            assert resolver.is_greater(i, j, median) == (truth > median)

    def test_memo_on_off_identical_decisions_and_calls(self, rng):
        matrix = random_metric_matrix(12, rng)
        space = MatrixSpace(matrix)
        results = {}
        for flag in (True, False):
            oracle = space.oracle()
            resolver = SmartResolver(oracle, bound_cache=flag)
            resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
            median = float(matrix[matrix > 0].mean())
            verdicts = []
            pairs = list(itertools.combinations(range(12), 2))
            for step, (i, j) in enumerate(pairs):
                verdicts.append(resolver.is_at_least(i, j, median))
                if step % 4 == 0:
                    verdicts.append(resolver.less((i, j), pairs[(step + 5) % len(pairs)]))
            results[flag] = (verdicts, oracle.calls, sorted(resolver.graph.edges()))
        assert results[True] == results[False]


class TestResolverBoundsMany:
    def test_matches_per_pair_bounds(self, rng):
        matrix = random_metric_matrix(12, rng)
        space = MatrixSpace(matrix)
        resolver = SmartResolver(space.oracle())
        resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
        pairs = list(itertools.combinations(range(12), 2))
        for i, j in pairs[::4]:
            resolver.distance(i, j)
        query = pairs + [(1, 0), (3, 3)]  # reversed + diagonal entries
        batch = resolver.bounds_many(query)
        for (i, j), b in zip(query, batch):
            assert b == resolver.bounds(i, j)

    def test_duplicates_computed_once(self, space):
        resolver = SmartResolver(space.oracle())
        counter = CountingBounder(resolver.graph)
        resolver.bounder = counter
        batch = resolver.bounds_many([(0, 1), (1, 0), (0, 1)])
        assert counter.calls == 1
        assert batch[0] == batch[1] == batch[2]

    def test_vectorized_batch_counter(self, rng):
        matrix = random_metric_matrix(10, rng)
        space = MatrixSpace(matrix)
        resolver = SmartResolver(space.oracle())
        resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
        resolver.bounds_many([(0, 1), (0, 2), (0, 3)])
        assert resolver.stats.vectorized_batches == 1
        resolver.bounds_many([(4, 5)])  # single-pair batch: not counted
        assert resolver.stats.vectorized_batches == 1

    def test_bound_time_accrues(self, space):
        resolver = SmartResolver(space.oracle())
        resolver.bounder = CountingBounder(resolver.graph)
        resolver.bounds(0, 1)
        resolver.bounds_many([(2, 3), (4, 5)])
        assert resolver.stats.bound_time_s > 0.0


class TestStats:
    def test_collect_stats_syncs_dijkstra_runs(self, space):
        resolver = SmartResolver(space.oracle())
        resolver.bounder = Splub(resolver.graph, space.diameter_bound())
        resolver.distance(0, 1)
        resolver.distance(1, 2)
        resolver.bounds(0, 2)
        stats = resolver.collect_stats()
        assert stats is resolver.stats
        assert stats.dijkstra_runs == resolver.bounder.dijkstra_runs
        assert stats.dijkstra_runs > 0

    def test_merge_sums_all_fields(self):
        a = ResolverStats(decided_by_bounds=2, bound_time_s=0.5, bound_cache_hits=3)
        b = ResolverStats(decided_by_bounds=1, bound_time_s=0.25, dijkstra_runs=4)
        merged = a.merge(b)
        assert merged.decided_by_bounds == 3
        assert merged.bound_time_s == 0.75
        assert merged.bound_cache_hits == 3
        assert merged.dijkstra_runs == 4
