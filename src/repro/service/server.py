"""A minimal local-socket front end for the proximity engine.

One engine process can serve queries from other processes on the same
machine over a Unix domain socket with a JSON-lines protocol: each request
is one JSON object on one line, each response one JSON object on one line.
Operations:

``{"op": "submit", "spec": {...}}``
    Build a :class:`~repro.service.jobs.JobSpec` from ``spec``, run it to
    completion, and return the serialised :class:`JobResult`.
``{"op": "stats"}``
    Return ``engine.snapshot_stats().to_dict()``.
``{"op": "metrics"}``
    Return the engine's metrics registry rendered in Prometheus text
    exposition format (the ``metrics`` field of the response).
``{"op": "snapshot", "path": "..."}``
    Write a warm-state snapshot (``path`` optional when the engine has a
    configured ``snapshot_path``).
``{"op": "ping"}``
    Liveness check.
``{"op": "mutate", "mutations": [{"kind": "insert", "payload": ...},
{"kind": "remove", "id": 3}, ...]}``
    Apply one atomic mutation batch (dynamic engines only); returns the
    :class:`~repro.dynamic.mutations.MutationResult` accounting.
    ``insert`` / ``remove`` also exist as single-mutation shorthand ops.
``{"op": "subscribe", "kind": "knn"|"knng", ...}``
    Register a standing query (``query``/``k`` for kNN, ``k`` for the
    kNN-graph); returns ``sub_id`` and the initial result.
``{"op": "deltas", "sub_id": 1, "since": 0}``
    Poll a subscription's entered/left/reordered deltas past a sequence
    cursor, plus its current registered result.  ``unsubscribe`` drops it.

The handler additionally speaks just enough HTTP that
``curl --unix-socket <sock> http://localhost/metrics`` works: a request
line starting with ``GET`` (or ``HEAD``) is answered with an HTTP/1.0
response — ``/metrics`` serves the Prometheus text, anything else a 404 —
and the connection closes.  That makes the registry scrapeable with stock
tooling without pulling an HTTP framework into the repo.

The server is deliberately not a scalability play — it exists so the
``repro serve`` / ``repro submit`` CLI pair can demonstrate a *persistent*
engine whose partial distance graph keeps compounding across independent
client invocations, which is the whole point of the service layer.
"""

from __future__ import annotations

import dataclasses
import json
import os
import socket
import socketserver
import threading
from typing import Any, Dict, Optional, Tuple

from repro.dynamic import Mutation
from repro.service.engine import ProximityEngine
from repro.service.jobs import JobSpec


def jsonable(value: Any) -> Any:
    """Best-effort conversion of a query result to JSON-encodable data.

    Handles the shapes jobs actually return: dataclass results
    (``ClusteringResult``/``MstResult``/...), tuples/lists of numbers, and
    dicts keyed by pairs.  Anything else falls back to ``repr``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    return repr(value)


def result_to_dict(result) -> Dict[str, Any]:
    """Serialise a :class:`~repro.service.jobs.JobResult` for the wire."""
    return {
        "status": result.status.value,
        "value": jsonable(result.value),
        "unresolved": [list(pair) for pair in result.unresolved],
        "charged_calls": result.charged_calls,
        "warm_resolutions": result.warm_resolutions,
        "latency_seconds": result.latency_seconds,
        "error": result.error,
    }


def spec_from_dict(payload: Dict[str, Any]) -> JobSpec:
    """Build a :class:`JobSpec` from a request's ``spec`` object."""
    return JobSpec(
        kind=str(payload["kind"]),
        params=dict(payload.get("params", {})),
        priority=int(payload.get("priority", 0)),
        oracle_budget=payload.get("oracle_budget"),
        deadline=payload.get("deadline"),
        label=str(payload.get("label", "")),
        use_weak=bool(payload.get("use_weak", True)),
        stretch=float(payload.get("stretch", 1.0)),
    )


def mutation_from_dict(payload: Dict[str, Any]) -> Mutation:
    """Build a :class:`~repro.dynamic.mutations.Mutation` from wire JSON."""
    obj_id = payload.get("id", payload.get("obj_id"))
    return Mutation(
        kind=str(payload.get("kind", "")),
        payload=payload.get("payload"),
        obj_id=None if obj_id is None else int(obj_id),
    )


def handle_engine_request(engine: ProximityEngine, request: Dict[str, Any]) -> Dict[str, Any]:
    """Dispatch one protocol request against an engine.

    The transport-independent core of the op surface: the threaded Unix
    server, the asyncio front-end (:mod:`repro.service.aserver`), and tests
    all route through here.  Backends with their own dispatch (the sharded
    coordinator) expose the same contract via their ``handle_request``.
    """
    op = request.get("op")
    if op == "ping":
        return {"ok": True, "op": "ping"}
    if op == "stats":
        return {"ok": True, "stats": engine.snapshot_stats().to_dict()}
    if op == "metrics":
        return {"ok": True, "metrics": engine.render_metrics()}
    if op == "snapshot":
        path = engine.snapshot(request.get("path"))
        return {"ok": True, "path": path}
    if op == "submit":
        spec = spec_from_dict(request.get("spec", {}))
        job = engine.submit(spec)
        result = job.result(request.get("timeout"))
        return {"ok": True, "job_id": job.id, "result": result_to_dict(result)}
    if op == "build_index":
        # Sugar over submit: build a navigable graph as a normal job.
        params = dict(request.get("params", {}))
        params.setdefault("graph", str(request.get("graph", "hnsw")))
        spec = spec_from_dict({"kind": "build_index", "params": params,
                               "label": request.get("label", "build-index")})
        job = engine.submit(spec)
        result = job.result(request.get("timeout"))
        return {"ok": True, "job_id": job.id, "result": result_to_dict(result)}
    if op == "indexes":
        return {"ok": True, "indexes": sorted(engine.indexes)}
    if op == "mutate":
        batch = [mutation_from_dict(m) for m in request.get("mutations", [])]
        outcome = engine.apply_mutations(batch)
        return {"ok": True, "result": outcome.to_dict()}
    if op == "insert":
        outcome = engine.apply_mutations(
            [Mutation(kind="insert", payload=request.get("payload"))]
        )
        return {"ok": True, "id": outcome.inserted_ids[0], "result": outcome.to_dict()}
    if op == "remove":
        outcome = engine.apply_mutations(
            [Mutation(kind="remove", obj_id=int(request["id"]))]
        )
        return {"ok": True, "result": outcome.to_dict()}
    if op == "subscribe":
        kind = str(request.get("kind", "knn"))
        if kind == "knn":
            sub = engine.subscribe_knn(int(request["query"]), int(request.get("k", 5)))
        elif kind == "knng":
            sub = engine.subscribe_knng(int(request.get("k", 5)))
        else:
            return {"ok": False, "error": f"unknown subscription kind {kind!r}"}
        return {
            "ok": True,
            "sub_id": sub.sub_id,
            "kind": sub.kind,
            "seq": sub.seq,
            "result": sub.result_dict(),
        }
    if op == "deltas":
        sub_id = int(request["sub_id"])
        deltas = engine.subscription_deltas(sub_id, int(request.get("since", 0)))
        sub = engine.subscriptions.get(sub_id)
        return {
            "ok": True,
            "sub_id": sub_id,
            "seq": sub.seq,
            "deltas": [d.to_dict() for d in deltas],
            "result": sub.result_dict(),
        }
    if op == "unsubscribe":
        engine.unsubscribe(int(request["sub_id"]))
        return {"ok": True, "sub_id": int(request["sub_id"])}
    return {"ok": False, "error": f"unknown op {op!r}"}


def parse_target(target: str) -> Tuple[str, Any]:
    """Classify a CLI-style server address.

    ``host:port`` (port all digits) → ``("tcp", (host, port))``; anything
    else → ``("unix", path)``.  A bare ``:port`` means localhost.  Paths
    containing ``/`` are never mistaken for TCP targets.
    """
    text = str(target)
    if "/" not in text and ":" in text:
        host, _, port = text.rpartition(":")
        if port.isdigit():
            return "tcp", (host or "127.0.0.1", int(port))
    return "unix", text


class _Handler(socketserver.StreamRequestHandler):
    """One connection: many JSON request lines, or one HTTP GET."""

    def handle(self) -> None:
        server: "ProximityServer" = self.server.proximity_server  # type: ignore[attr-defined]
        while True:
            raw = self.rfile.readline()
            if not raw:
                return
            line = raw.strip()
            if not line:
                continue
            if line.startswith(b"GET ") or line.startswith(b"HEAD "):
                self._serve_http(server, line)
                return  # HTTP/1.0 semantics: one request, then close
            try:
                response = server.handle_request(json.loads(line.decode("utf-8")))
            except Exception as exc:  # noqa: BLE001 - protocol errors answer, not crash
                response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
            self.wfile.flush()

    def _serve_http(self, server: "ProximityServer", request_line: bytes) -> None:
        """Answer a raw HTTP request (``curl --unix-socket ... /metrics``)."""
        parts = request_line.split()
        target = parts[1].decode("utf-8", "replace") if len(parts) > 1 else ""
        head_only = request_line.startswith(b"HEAD ")
        # Drain the request headers so the client never sees a reset.
        while True:
            header = self.rfile.readline()
            if not header or header in (b"\r\n", b"\n"):
                break
        path = target.split("?", 1)[0]
        if path == "/metrics":
            status = "200 OK"
            body = server.engine.render_metrics().encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            status = "404 Not Found"
            body = b"not found\n"
            content_type = "text/plain; charset=utf-8"
        head = (
            "HTTP/1.0 %s\r\n"
            "Content-Type: %s\r\n"
            "Content-Length: %d\r\n"
            "Connection: close\r\n"
            "\r\n" % (status, content_type, len(body))
        ).encode("ascii")
        self.wfile.write(head if head_only else head + body)
        self.wfile.flush()


class _ThreadedUnixServer(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    daemon_threads = True
    allow_reuse_address = True


class ProximityServer:
    """Serve an engine over a Unix domain socket until :meth:`close`."""

    def __init__(self, engine: ProximityEngine, socket_path: str) -> None:
        self.engine = engine
        self.socket_path = str(socket_path)
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        self._server = _ThreadedUnixServer(self.socket_path, _Handler)
        self._server.proximity_server = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # -- request dispatch ----------------------------------------------------

    def handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return handle_engine_request(self.engine, request)

    # -- lifecycle -----------------------------------------------------------

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`close` (for CLI use)."""
        self._server.serve_forever(poll_interval=0.1)

    def start(self) -> "ProximityServer":
        """Serve on a background thread (for tests and embedding)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)

    def __enter__(self) -> "ProximityServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def send_request(
    target: str,
    request: Dict[str, Any],
    timeout: Optional[float] = 30.0,
) -> Dict[str, Any]:
    """One round-trip against a running proximity server.

    ``target`` is either a Unix-socket path or a ``host:port`` TCP address
    (see :func:`parse_target`) — the JSON-lines protocol is identical on
    both transports.
    """
    kind, address = parse_target(target)
    if kind == "tcp":
        client = socket.create_connection(address, timeout=timeout)
    else:
        client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        client.settimeout(timeout)
        client.connect(str(address))
    with client:
        client.sendall((json.dumps(request) + "\n").encode("utf-8"))
        buffer = b""
        while not buffer.endswith(b"\n"):
            chunk = client.recv(65536)
            if not chunk:
                break
            buffer += chunk
    if not buffer:
        raise ConnectionError("server closed the connection without answering")
    return json.loads(buffer.decode("utf-8"))
