"""Priority job queue feeding the engine's worker pool.

A thin, thread-safe wrapper over ``heapq``: jobs pop in descending
:attr:`~repro.service.jobs.JobSpec.priority` order, submission order within
a priority level.  Cancelled and deadline-expired jobs are *lazily* skipped
at pop time — the worker never sees them, and the skip is reported back so
the engine can finish their handles with the right terminal status.
"""

from __future__ import annotations

import heapq
import threading
from typing import List, Optional, Tuple

from repro.service.jobs import Job


class JobQueue:
    """Blocking priority queue of :class:`Job` handles."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._heap: List[Tuple[int, int, Job]] = []
        self._seq = 0
        self._closed = False

    def push(self, job: Job) -> None:
        """Enqueue a job (raises when the queue is closed)."""
        with self._cond:
            if self._closed:
                raise RuntimeError("queue is closed")
            # Min-heap: negate priority so higher priorities pop first; the
            # sequence number breaks ties in submission order.
            heapq.heappush(self._heap, (-job.spec.priority, self._seq, job))
            self._seq += 1
            self._cond.notify()

    def pop(self, skip) -> Optional[Job]:
        """Dequeue the next runnable job, blocking until one exists.

        ``skip(job)`` is consulted for every candidate; a truthy return
        drops the job silently (the callback owns finishing its handle).
        Returns ``None`` once the queue is closed and drained.
        """
        while True:
            with self._cond:
                while not self._heap and not self._closed:
                    self._cond.wait()
                if not self._heap:
                    return None
                _, _, job = heapq.heappop(self._heap)
            if skip(job):
                continue
            return job

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> List[Job]:
        """Refuse new work and wake every blocked worker.

        Jobs still queued are returned (not popped by workers after close
        drains naturally — the engine cancels them).
        """
        with self._cond:
            self._closed = True
            drained = [job for _, _, job in self._heap]
            self._heap.clear()
            self._cond.notify_all()
        return drained
