"""The persistent proximity-query service layer.

Everything below builds on the same invariant the rest of the library
enforces: resolved distances are exact and never change, so sharing one
:class:`~repro.core.partial_graph.PartialDistanceGraph` across concurrent
queries can only *save* oracle calls — it can never alter an answer.

Every engine carries a :class:`~repro.obs.registry.MetricsRegistry`
(``engine.registry``); the server exposes it as ``{"op": "metrics"}`` and
as a scrapeable HTTP ``GET /metrics``.
"""

from repro.service.aserver import AsyncProximityServer, engine_backend
from repro.service.engine import (
    DEFAULT_JOB_WORKERS,
    EngineStats,
    ProximityEngine,
    space_fingerprint,
)
from repro.service.jobs import (
    JOB_KINDS,
    Job,
    JobResult,
    JobSpec,
    JobStatus,
    TERMINAL_STATUSES,
)
from repro.service.queue import JobQueue
from repro.service.server import (
    ProximityServer,
    handle_engine_request,
    parse_target,
    send_request,
)
from repro.service.sharding import ShardedEngine, ShardPlan, plan_shards

__all__ = [
    "AsyncProximityServer",
    "DEFAULT_JOB_WORKERS",
    "EngineStats",
    "JOB_KINDS",
    "Job",
    "JobQueue",
    "JobResult",
    "JobSpec",
    "JobStatus",
    "ProximityEngine",
    "ProximityServer",
    "ShardPlan",
    "ShardedEngine",
    "TERMINAL_STATUSES",
    "engine_backend",
    "handle_engine_request",
    "parse_target",
    "plan_shards",
    "send_request",
    "space_fingerprint",
]
