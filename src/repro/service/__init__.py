"""The persistent proximity-query service layer.

Everything below builds on the same invariant the rest of the library
enforces: resolved distances are exact and never change, so sharing one
:class:`~repro.core.partial_graph.PartialDistanceGraph` across concurrent
queries can only *save* oracle calls — it can never alter an answer.

Every engine carries a :class:`~repro.obs.registry.MetricsRegistry`
(``engine.registry``); the server exposes it as ``{"op": "metrics"}`` and
as a scrapeable HTTP ``GET /metrics``.
"""

from repro.service.engine import (
    DEFAULT_JOB_WORKERS,
    EngineStats,
    ProximityEngine,
    space_fingerprint,
)
from repro.service.jobs import (
    JOB_KINDS,
    Job,
    JobResult,
    JobSpec,
    JobStatus,
    TERMINAL_STATUSES,
)
from repro.service.queue import JobQueue
from repro.service.server import ProximityServer, send_request

__all__ = [
    "DEFAULT_JOB_WORKERS",
    "EngineStats",
    "JOB_KINDS",
    "Job",
    "JobQueue",
    "JobResult",
    "JobSpec",
    "JobStatus",
    "ProximityEngine",
    "ProximityServer",
    "TERMINAL_STATUSES",
    "send_request",
    "space_fingerprint",
]
