"""Sharded multi-process serving: N engine processes behind one coordinator.

One :class:`~repro.service.engine.ProximityEngine` is a single GIL-bound
process.  This module runs **N** of them — each its own process, each over
the *same* universe — partitioned by landmark region (objects assigned to
their nearest of N landmarks, the natural sharding key since bound state
decomposes along it), and scatter-gathers point queries across them:

* ``knn`` / ``range`` / ``nearest`` jobs are split into per-shard candidate
  substreams (the shard's region ∩ the requested candidates) and merged
  exactly — the query functions' ``(distance, id)`` tie-break rules make
  partition-merge equivalent to a single scan over the full pool.
* Global jobs (``medoid``, ``knng``, ``mst``) cannot be partitioned without
  changing their call sequence, so each is routed whole to one owner shard,
  round-robin.

Shared warm state travels through a
:class:`~repro.core.csr_store.CSRStore`: the coordinator owns the writable
store (optionally loaded from a v2 snapshot archive), every shard process
attaches it read-only at start — zero-copy — and adopts its edges for
free, and after each job the coordinator drains the participating shards'
novel edges back into the store, so the store always holds the union of
everything any shard has paid for.

Exactness contract: each shard's resolved-edge *sequence* is byte-identical
to a single-process engine fed the same substream — shards run one job
worker, receive no foreign edges mid-run, and share nothing but the
immutable adopted prefix.

Observability: :meth:`ShardedEngine.render_metrics` renders every shard's
registry in the shard process, stamps ``{shard="k"}`` onto the samples
(:func:`repro.obs.relabel_metrics`), and merges the pages with the
coordinator's own router metrics — one scrape shows the whole topology.
The ``stats`` op labels each per-shard row with the same ``shard`` index,
so the JSON surface and the merged registry agree on who is who.

Dynamic mode (``dynamic=True``): every shard wraps the universe in a
:class:`~repro.dynamic.objects.DynamicObjectSet`, and mutation batches are
**broadcast** to all shards — slot recycling is deterministic, so the N
engines assign identical ids and stay aligned.  The coordinator keeps a
mutable copy of the plan's regions for scatter routing (removed ids leave
their region, inserted ids join their slot's region, brand-new slots go
round-robin), and the append-only shared CSR store is declared *stale*
after the first batch: draining stops and snapshots skip the store
archive, because an append-only store cannot tombstone.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.csr_store import DEFAULT_SEGMENT_CAPACITY, CSRStore
from repro.core.exceptions import ConfigurationError
from repro.obs import MetricsRegistry, merge_metrics, relabel_metrics
from repro.service.jobs import JobResult, JobSpec, JobStatus
from repro.spaces.handles import SpaceHandle

Pair = Tuple[int, int]

#: Job kinds split across shards by candidate region.
SCATTER_KINDS = frozenset({"knn", "range", "nearest"})

#: Job kinds routed whole to a single owner shard.
GLOBAL_KINDS = frozenset({"medoid", "knng", "mst", "build_index", "search_index"})

#: Index job kinds with *sticky* owner routing: a ``build_index`` job pins
#: its index name to the shard that built it, and ``search_index`` jobs for
#: that name always land on the owning shard (the graph lives only there).
INDEX_KINDS = frozenset({"build_index", "search_index"})


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of the universe into shard regions.

    ``regions[k]`` is the ascending id list owned by shard ``k``; every id
    appears in exactly one region.  The :attr:`digest` pins the assignment,
    and is embedded in per-shard snapshot fingerprints so a restore under a
    *different* plan is refused per shard.
    """

    n: int
    regions: Tuple[Tuple[int, ...], ...]
    landmarks: Tuple[int, ...] = ()

    @property
    def num_shards(self) -> int:
        """Number of regions."""
        return len(self.regions)

    @property
    def digest(self) -> str:
        """Short stable hash of the full object→shard assignment."""
        owner = [0] * self.n
        for k, region in enumerate(self.regions):
            for obj in region:
                owner[obj] = k
        blob = ",".join(map(str, owner)).encode("ascii")
        return hashlib.sha256(blob).hexdigest()[:12]

    def shard_fingerprint(self, base: Optional[str], shard: int) -> str:
        """The per-shard dataset fingerprint stored in shard snapshots."""
        return f"{base}|plan={self.digest}|shard={shard}/{self.num_shards}"

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly summary for stats surfaces."""
        return {
            "n": self.n,
            "num_shards": self.num_shards,
            "digest": self.digest,
            "landmarks": list(self.landmarks),
            "region_sizes": [len(region) for region in self.regions],
        }


def plan_shards(
    n: int,
    num_shards: int,
    space: Any = None,
    num_landmarks: Optional[int] = None,
) -> ShardPlan:
    """Partition ``n`` objects into ``num_shards`` regions.

    With a ``space``, regions are *landmark regions*: ``num_shards``
    evenly-spread landmark objects are fixed deterministically and every
    object joins the region of its nearest landmark (ties to the lower
    landmark index) **with remaining capacity** — regions are capped at
    ``ceil(n / num_shards)`` objects, because a scatter query's latency is
    bounded by its largest region: locality without balance trades away
    exactly the parallelism sharding exists to buy.  The assignment
    distances go through the raw space — like
    :func:`~repro.service.engine.space_fingerprint`, they are paid locally,
    never charged to an oracle.  Without a space the fallback is contiguous
    blocks, which is still a valid (if geometry-blind) plan.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    if num_shards > n:
        raise ValueError(f"cannot split {n} objects into {num_shards} shards")
    if num_shards == 1:
        return ShardPlan(n=n, regions=(tuple(range(n)),))
    landmarks = tuple((k * n) // num_shards for k in range(num_shards))
    if space is None:
        bounds = [(k * n) // num_shards for k in range(num_shards + 1)]
        regions = tuple(
            tuple(range(bounds[k], bounds[k + 1])) for k in range(num_shards)
        )
        return ShardPlan(n=n, regions=regions)
    capacity = -(-n // num_shards)  # ceil: total capacity always covers n
    regions_mut: List[List[int]] = [[] for _ in range(num_shards)]
    for obj in range(n):
        ranked = sorted(
            range(num_shards), key=lambda k: (space.distance(obj, landmarks[k]), k)
        )
        best = next(k for k in ranked if len(regions_mut[k]) < capacity)
        regions_mut[best].append(obj)
    # Capacity bounds make empty regions nearly impossible (a region only
    # ends empty if every object fit elsewhere first, which needs
    # coinciding landmarks at tiny n); rebalance that corner by block
    # fallback rather than serve a shard with nothing to own.
    if any(not region for region in regions_mut):
        return plan_shards(n, num_shards, space=None)
    regions = tuple(tuple(region) for region in regions_mut)
    return ShardPlan(n=n, regions=regions, landmarks=landmarks)


@dataclass(frozen=True)
class ShardConfig:
    """Everything a spawn-started shard process needs (all picklable)."""

    shard: int
    num_shards: int
    handle: SpaceHandle
    provider: str
    num_landmarks: Optional[int]
    executor: Optional[str]
    oracle_workers: int
    store_name: Optional[str]
    base_fingerprint: Optional[str]
    shard_fingerprint: str
    weak_oracle: bool = False
    #: Wrap the rebuilt space in a DynamicObjectSet so mutation batches work.
    dynamic: bool = False


def _shard_main(conn, config: ShardConfig) -> None:
    """Shard process body: build the engine, answer pipe ops until close.

    Module-level so it pickles by reference under the spawn start method.
    The engine runs exactly one job worker — the shard's resolved-edge
    sequence must replay the substream deterministically.
    """
    from repro.service.engine import ProximityEngine

    engine = None
    store: Optional[CSRStore] = None
    try:
        space = config.handle.space()
        if config.dynamic:
            from repro.dynamic import DynamicObjectSet

            space = DynamicObjectSet.wrap(space)
        engine = ProximityEngine.for_space(
            space,
            provider=config.provider,
            num_landmarks=config.num_landmarks,
            job_workers=1,
            executor=config.executor,
            oracle_workers=config.oracle_workers,
            fingerprint=config.shard_fingerprint,
            weak_oracle=config.weak_oracle or None,
        )
        if config.store_name:
            store = CSRStore.attach(config.store_name)
            engine.adopt_store(store, expected_fingerprint=config.base_fingerprint)
        conn.send({"ok": True, "ready": True, "adopted": engine.graph.num_edges})
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return
            op = msg.get("op")
            try:
                if op == "ping":
                    conn.send({"ok": True, "op": "ping", "shard": config.shard})
                elif op == "submit":
                    result = engine.run(msg["spec"], timeout=msg.get("timeout"))
                    conn.send({"ok": True, "result": result})
                elif op == "stats":
                    conn.send(
                        {"ok": True, "stats": engine.snapshot_stats().to_dict()}
                    )
                elif op == "metrics":
                    conn.send({"ok": True, "metrics": engine.render_metrics()})
                elif op == "indexes":
                    conn.send({"ok": True, "indexes": sorted(engine.indexes)})
                elif op == "edges":
                    start = int(msg.get("start", 0))
                    with engine._rw.read_locked():
                        i, j, w = engine.graph.edge_arrays()
                        rows = list(
                            zip(
                                i[start:].tolist(),
                                j[start:].tolist(),
                                w[start:].tolist(),
                            )
                        )
                        total = len(i)
                    conn.send({"ok": True, "edges": rows, "total": total})
                elif op == "snapshot":
                    conn.send({"ok": True, "path": engine.snapshot(msg["path"])})
                elif op == "restore":
                    conn.send({"ok": True, "added": engine.restore(msg["path"])})
                elif op == "mutate":
                    from repro.service.server import mutation_from_dict

                    batch = [
                        mutation_from_dict(m) for m in msg.get("mutations", [])
                    ]
                    outcome = engine.apply_mutations(batch)
                    conn.send({"ok": True, "result": outcome.to_dict()})
                elif op == "subscribe":
                    if msg.get("kind", "knn") == "knn":
                        sub = engine.subscribe_knn(
                            int(msg["query"]), int(msg.get("k", 5))
                        )
                    else:
                        sub = engine.subscribe_knng(int(msg.get("k", 5)))
                    conn.send(
                        {
                            "ok": True,
                            "sub_id": sub.sub_id,
                            "kind": sub.kind,
                            "seq": sub.seq,
                            "result": sub.result_dict(),
                        }
                    )
                elif op == "deltas":
                    sub_id = int(msg["sub_id"])
                    deltas = engine.subscription_deltas(
                        sub_id, int(msg.get("since", 0))
                    )
                    sub = engine.subscriptions.get(sub_id)
                    conn.send(
                        {
                            "ok": True,
                            "sub_id": sub_id,
                            "seq": sub.seq,
                            "deltas": [d.to_dict() for d in deltas],
                            "result": sub.result_dict(),
                        }
                    )
                elif op == "unsubscribe":
                    engine.unsubscribe(int(msg["sub_id"]))
                    conn.send({"ok": True})
                elif op == "close":
                    conn.send({"ok": True, "op": "close"})
                    return
                else:
                    conn.send({"ok": False, "error": f"unknown op {op!r}"})
            except Exception as exc:  # noqa: BLE001 - shard must answer, not die
                conn.send({"ok": False, "error": f"{type(exc).__name__}: {exc}"})
    except Exception as exc:  # noqa: BLE001 - startup failure: tell the parent
        try:
            conn.send({"ok": False, "ready": False, "error": f"{type(exc).__name__}: {exc}"})
        except (BrokenPipeError, OSError):
            pass
    finally:
        if engine is not None:
            engine.close(snapshot=False)
        if store is not None:
            store.close()
        conn.close()


@dataclass
class _Shard:
    """Parent-side handle on one shard process."""

    index: int
    process: multiprocessing.process.BaseProcess
    conn: Any
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: Graph-edge index up to which the coordinator has drained this shard.
    cursor: int = 0


class ShardedEngine:
    """Coordinator over N shard processes sharing one CSR bound store.

    Speaks the same request surface as a single
    :class:`~repro.service.engine.ProximityEngine` behind a
    :class:`~repro.service.server.ProximityServer` — ``submit``/``run``,
    ``stats``, ``render_metrics``, ``snapshot``, ``close`` — so servers and
    the CLI treat either interchangeably.

    Parameters mirror ``ProximityEngine.for_space`` where they apply; the
    space arrives as a picklable :class:`~repro.spaces.handles.SpaceHandle`
    because every shard process must rebuild it identically.
    """

    def __init__(
        self,
        handle: SpaceHandle,
        num_shards: int = 2,
        provider: str = "tri",
        *,
        executor: Optional[str] = None,
        oracle_workers: int = 4,
        num_landmarks: Optional[int] = None,
        warm_from: Optional[str] = None,
        fingerprint: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
        segment_capacity: int = DEFAULT_SEGMENT_CAPACITY,
        start_timeout: float = 120.0,
        dynamic: bool = False,
    ) -> None:
        from repro.service.engine import space_fingerprint

        if num_shards < 1:
            raise ConfigurationError("num_shards must be at least 1")
        space = handle.space()
        self.handle = handle
        self.n = space.n
        self.fingerprint = fingerprint or space_fingerprint(space)
        self.plan = plan_shards(self.n, num_shards, space=space)
        if warm_from is not None:
            self.store = CSRStore.from_archive(
                warm_from,
                segment_capacity=segment_capacity,
                expected_fingerprint=self.fingerprint,
            )
        else:
            self.store = CSRStore.create(self.n, segment_capacity=segment_capacity)
            self.store.metadata = {"fingerprint": self.fingerprint}
        #: Canonical pairs already in the store (dedup for edge draining).
        self._known: Dict[Pair, float] = {
            (i, j): w for i, j, w in self.store.iter_edges()
        }
        self._store_lock = threading.Lock()
        self._owner_seq = 0
        self._owner_lock = threading.Lock()
        #: Index name -> shard index that built (and exclusively serves) it.
        self._index_owners: Dict[str, int] = {}
        self._closed = False
        self._started_at = time.monotonic()
        self.dynamic = bool(dynamic)
        #: Mutable copy of the plan's regions (scatter routing); mutations
        #: move ids in and out while the frozen plan keeps its digest.
        self._regions: List[List[int]] = [list(r) for r in self.plan.regions]
        self._regions_lock = threading.Lock()
        #: Slot → owning shard, so a recycled slot rejoins its old region
        #: and brand-new slots land round-robin.
        self._slot_owner: Dict[int, int] = {
            obj: k for k, region in enumerate(self.plan.regions) for obj in region
        }
        #: True once a mutation batch has run: the append-only store can no
        #: longer mirror the shards, so draining and store snapshots stop.
        self._store_stale = False
        #: Coordinator subscription id → (shard index, shard-local sub id).
        self._sub_route: Dict[int, Tuple[int, int]] = {}
        self._sub_seq = 0
        self._sub_lock = threading.Lock()
        #: Final aggregate stats, captured by :meth:`close` for post-mortems.
        self.last_stats: Optional[Dict[str, Any]] = None

        self.registry = registry if registry is not None else MetricsRegistry()
        self._register_metrics()

        ctx = multiprocessing.get_context("spawn")
        self._shards: List[_Shard] = []
        adopted = self.store.num_edges
        for k in range(self.plan.num_shards):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            config = ShardConfig(
                shard=k,
                num_shards=self.plan.num_shards,
                handle=handle,
                provider=provider,
                num_landmarks=num_landmarks,
                executor=executor,
                oracle_workers=oracle_workers,
                store_name=self.store.name,
                base_fingerprint=self.fingerprint,
                shard_fingerprint=self.plan.shard_fingerprint(self.fingerprint, k),
                dynamic=self.dynamic,
            )
            process = ctx.Process(
                target=_shard_main,
                args=(child_conn, config),
                name=f"repro-shard-{k}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._shards.append(
                _Shard(index=k, process=process, conn=parent_conn, cursor=adopted)
            )
        for shard in self._shards:
            if not shard.conn.poll(start_timeout):
                self.close()
                raise ConfigurationError(
                    f"shard {shard.index} did not come up within {start_timeout}s"
                )
            try:
                hello = shard.conn.recv()
            except (EOFError, OSError):
                hello = {"ok": False, "error": "shard process exited during startup"}
            if not hello.get("ok"):
                error = hello.get("error", "unknown startup failure")
                self.close()
                raise ConfigurationError(f"shard {shard.index} failed to start: {error}")
        self._pool = ThreadPoolExecutor(
            max_workers=self.plan.num_shards, thread_name_prefix="repro-router"
        )

    # -- metrics -------------------------------------------------------------

    def _register_metrics(self) -> None:
        r = self.registry
        self._m_jobs = r.counter(
            "repro_router_jobs_total",
            "Jobs routed by the shard coordinator, by dispatch mode.",
            labelnames=("mode",),
        )
        self._m_shard_jobs = r.counter(
            "repro_router_shard_dispatches_total",
            "Per-shard job dispatches from the coordinator.",
            labelnames=("shard",),
        )
        self._m_drained = r.counter(
            "repro_router_edges_drained_total",
            "Novel shard edges appended to the shared CSR store.",
        )
        self._m_mutation_batches = r.counter(
            "repro_router_mutation_batches_total",
            "Mutation batches broadcast to every shard.",
        )
        r.gauge(
            "repro_router_shards", "Live shard processes.",
            fn=lambda: sum(1 for s in self._shards if s.process.is_alive()),
        )
        r.gauge(
            "repro_store_edges", "Edges in the shared CSR bound store.",
            fn=lambda: self.store.num_edges,
        )
        r.gauge(
            "repro_store_segments", "Shared-memory segments backing the store.",
            fn=lambda: self.store.num_segments,
        )

    # -- shard RPC -----------------------------------------------------------

    def _call(self, shard: _Shard, message: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response round-trip on a shard's pipe (serialised)."""
        with shard.lock:
            if not shard.process.is_alive():
                raise ConnectionError(f"shard {shard.index} process is dead")
            shard.conn.send(message)
            reply = shard.conn.recv()
        if not reply.get("ok", False):
            raise RuntimeError(
                f"shard {shard.index}: {reply.get('error', 'unknown error')}"
            )
        return reply

    def _broadcast(self, message: Dict[str, Any]) -> List[Dict[str, Any]]:
        futures = [
            self._pool.submit(self._call, shard, dict(message))
            for shard in self._shards
        ]
        return [future.result() for future in futures]

    # -- submission ----------------------------------------------------------

    def run(self, spec: JobSpec, timeout: Optional[float] = None) -> JobResult:
        """Route one job and return its (merged) result synchronously."""
        if self._closed:
            raise RuntimeError("sharded engine is closed")
        if spec.kind in SCATTER_KINDS:
            result = self._run_scatter(spec, timeout)
        elif spec.kind in INDEX_KINDS:
            result = self._run_global(spec, timeout, shard=self._index_shard(spec))
        else:
            result = self._run_global(spec, timeout)
        return result

    def _next_owner(self) -> _Shard:
        with self._owner_lock:
            shard = self._shards[self._owner_seq % len(self._shards)]
            self._owner_seq += 1
        return shard

    def _index_shard(self, spec: JobSpec) -> "_Shard":
        """Sticky owner routing for built indexes.

        ``build_index`` claims the next round-robin owner and records it
        under the index name; ``search_index`` must hit the shard holding
        the named graph.
        """
        name = str(spec.params.get("name", spec.params.get("graph", "")))
        if spec.kind == "build_index":
            shard = self._next_owner()
            with self._owner_lock:
                self._index_owners[name] = shard.index
            return shard
        with self._owner_lock:
            if name:
                owner = self._index_owners.get(name)
            elif len(self._index_owners) == 1:
                name, owner = next(iter(self._index_owners.items()))
            else:
                owner = None
        if owner is None:
            raise ValueError(
                f"no shard owns a built index named {name!r}: "
                "run a build_index job first"
            )
        return self._shards[owner]

    def _run_global(
        self, spec: JobSpec, timeout: Optional[float], shard: Optional["_Shard"] = None
    ) -> JobResult:
        if shard is None:
            shard = self._next_owner()
        self._m_jobs.labels(mode="global").inc()
        self._m_shard_jobs.labels(shard=str(shard.index)).inc()
        reply = self._call(
            shard, {"op": "submit", "spec": spec, "timeout": timeout}
        )
        self._drain_edges([shard])
        return reply["result"]

    def _scatter_parts(self, spec: JobSpec) -> List[Tuple[_Shard, JobSpec]]:
        explicit = spec.params.get("candidates")
        allowed = None if explicit is None else set(int(c) for c in explicit)
        query = spec.params.get("query")
        parts: List[Tuple[_Shard, JobSpec]] = []
        with self._regions_lock:
            regions = [list(region) for region in self._regions]
        for shard, region in zip(self._shards, regions):
            if allowed is None:
                cands: Sequence[int] = region
            else:
                cands = [c for c in region if c in allowed]
            pool = [c for c in cands if c != query]
            keeps_query = (
                spec.kind == "range"
                and bool(spec.params.get("include_query"))
                and query in cands
            )
            if not pool and not keeps_query:
                continue
            params = dict(spec.params)
            params["candidates"] = list(cands)
            parts.append((shard, JobSpec(
                kind=spec.kind,
                params=params,
                priority=spec.priority,
                oracle_budget=spec.oracle_budget,
                deadline=spec.deadline,
                label=spec.label,
                use_weak=spec.use_weak,
                stretch=spec.stretch,
            )))
        return parts

    def _run_scatter(self, spec: JobSpec, timeout: Optional[float]) -> JobResult:
        parts = self._scatter_parts(spec)
        if not parts:
            raise ValueError("no candidates for query after partitioning")
        self._m_jobs.labels(mode="scatter").inc()
        started = time.perf_counter()
        futures = []
        for shard, shard_spec in parts:
            self._m_shard_jobs.labels(shard=str(shard.index)).inc()
            futures.append(
                self._pool.submit(
                    self._call,
                    shard,
                    {"op": "submit", "spec": shard_spec, "timeout": timeout},
                )
            )
        results: List[JobResult] = [future.result()["result"] for future in futures]
        self._drain_edges([shard for shard, _ in parts])
        return self._merge_results(spec, results, time.perf_counter() - started)

    def _merge_results(
        self, spec: JobSpec, results: List[JobResult], latency: float
    ) -> JobResult:
        status = JobStatus.COMPLETED
        for candidate in (
            JobStatus.FAILED,
            JobStatus.CANCELLED,
            JobStatus.EXPIRED,
            JobStatus.PARTIAL,
        ):
            if any(r.status is candidate for r in results):
                status = candidate
                break
        value: Any = None
        if status in (JobStatus.COMPLETED, JobStatus.PARTIAL):
            values = [r.value for r in results if r.value is not None]
            if spec.kind == "knn":
                merged = sorted(itertools.chain.from_iterable(values))
                value = merged[: int(spec.params["k"])]
            elif spec.kind == "range":
                value = sorted(set(itertools.chain.from_iterable(values)))
            elif spec.kind == "nearest":
                # Shard answers are (object, distance); the single-engine
                # scan breaks distance ties by the earlier (lower) id.
                best = min(values, key=lambda pair: (pair[1], pair[0]))
                value = tuple(best)
        errors = [r.error for r in results if r.error]
        return JobResult(
            status=status,
            value=value,
            unresolved=tuple(
                itertools.chain.from_iterable(r.unresolved for r in results)
            ),
            charged_calls=sum(r.charged_calls for r in results),
            warm_resolutions=sum(r.warm_resolutions for r in results),
            latency_seconds=latency,
            resolver_stats=None,
            error="; ".join(errors) if errors else None,
        )

    # -- shared-store maintenance --------------------------------------------

    def _drain_edges(self, shards: List[_Shard]) -> int:
        """Pull each shard's new edges into the writable store (deduped).

        No-op once a mutation batch has run: an append-only store cannot
        tombstone, so post-mutation edges stay in the shards' own graphs.
        """
        if self._store_stale:
            return 0
        appended = 0
        for shard in shards:
            reply = self._call(shard, {"op": "edges", "start": shard.cursor})
            shard.cursor = int(reply["total"])
            rows = reply["edges"]
            if not rows:
                continue
            with self._store_lock:
                for i, j, w in rows:
                    pair = (int(i), int(j))
                    if pair in self._known:
                        continue
                    self._known[pair] = float(w)
                    self.store.append(pair[0], pair[1], float(w))
                    appended += 1
        if appended:
            self._m_drained.inc(appended)
        return appended

    # -- mutation & standing queries -----------------------------------------

    def apply_mutations(self, mutations: List[Dict[str, Any]]) -> Dict[str, Any]:
        """Broadcast one mutation batch (wire dicts) to every shard.

        All shards hold the full universe and recycle slots
        deterministically, so each applies the identical batch and assigns
        identical ids; the first reply's accounting speaks for all.  The
        coordinator then updates its routing regions and marks the shared
        store stale.
        """
        if not self.dynamic:
            raise ConfigurationError(
                "this sharded engine is static; start it with dynamic=True "
                "to accept mutation batches"
            )
        replies = self._broadcast({"op": "mutate", "mutations": list(mutations)})
        result = dict(replies[0]["result"])
        removed = [int(i) for i in result.get("removed_ids", [])]
        inserted = [int(i) for i in result.get("inserted_ids", [])]
        with self._regions_lock:
            for obj in removed:
                owner = self._slot_owner.get(obj)
                if owner is not None and obj in self._regions[owner]:
                    self._regions[owner].remove(obj)
            for obj in inserted:
                owner = self._slot_owner.setdefault(
                    obj, obj % self.plan.num_shards
                )
                if obj not in self._regions[owner]:
                    self._regions[owner].append(obj)
                    self._regions[owner].sort()
        self._store_stale = True
        self._m_mutation_batches.inc()
        return result

    def subscribe(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Register a standing query on one owner shard (round-robin).

        Mutations broadcast to every shard, so the owner refreshes its copy
        after each batch like any single-process engine would.  The
        returned ``sub_id`` is coordinator-scoped; ``deltas``/
        ``unsubscribe`` route through it.
        """
        shard = self._next_owner()
        reply = self._call(
            shard,
            {
                "op": "subscribe",
                "kind": request.get("kind", "knn"),
                "query": request.get("query"),
                "k": request.get("k", 5),
            },
        )
        with self._sub_lock:
            self._sub_seq += 1
            sub_id = self._sub_seq
            self._sub_route[sub_id] = (shard.index, int(reply["sub_id"]))
        return {
            "sub_id": sub_id,
            "shard": shard.index,
            "kind": reply["kind"],
            "seq": reply["seq"],
            "result": reply["result"],
        }

    def _route_sub(self, sub_id: int) -> Tuple[_Shard, int]:
        with self._sub_lock:
            shard_index, shard_sub = self._sub_route[int(sub_id)]
        return self._shards[shard_index], shard_sub

    def subscription_deltas(
        self, sub_id: int, since: int = 0
    ) -> Dict[str, Any]:
        """Poll a subscription's deltas from its owner shard."""
        shard, shard_sub = self._route_sub(sub_id)
        reply = self._call(
            shard, {"op": "deltas", "sub_id": shard_sub, "since": int(since)}
        )
        return {
            "sub_id": int(sub_id),
            "shard": shard.index,
            "seq": reply["seq"],
            "deltas": reply["deltas"],
            "result": reply["result"],
        }

    def unsubscribe(self, sub_id: int) -> None:
        """Drop a standing query on its owner shard."""
        shard, shard_sub = self._route_sub(sub_id)
        self._call(shard, {"op": "unsubscribe", "sub_id": shard_sub})
        with self._sub_lock:
            del self._sub_route[int(sub_id)]

    # -- observability -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Coordinator + per-shard stats (the ``stats`` op's payload).

        Every per-shard row carries a ``shard`` index matching the
        ``{shard="k"}`` label the merged metrics registry stamps on the
        same engine's samples, so the two surfaces agree on who is who.
        """
        shard_stats = []
        for shard, reply in zip(self._shards, self._broadcast({"op": "stats"})):
            row = dict(reply["stats"])
            row["shard"] = shard.index
            shard_stats.append(row)
        aggregate = {
            "jobs_submitted": sum(s["jobs_submitted"] for s in shard_stats),
            "jobs_completed": sum(s["jobs_completed"] for s in shard_stats),
            "oracle_calls": sum(s["oracle_calls"] for s in shard_stats),
            "warm_resolutions": sum(s["warm_resolutions"] for s in shard_stats),
            "graph_edges": sum(s["graph_edges"] for s in shard_stats),
            "mutations_applied": sum(
                s.get("mutations_applied", 0) for s in shard_stats
            ),
        }
        return {
            "sharded": True,
            "dynamic": self.dynamic,
            "store_stale": self._store_stale,
            "uptime_seconds": time.monotonic() - self._started_at,
            "plan": self.plan.describe(),
            "store": self.store.describe(),
            "aggregate": aggregate,
            "shards": shard_stats,
        }

    def snapshot_stats(self) -> "ShardedStats":
        """Protocol-compatible wrapper (servers call ``.to_dict()`` on it)."""
        return ShardedStats(self.stats())

    def render_metrics(self) -> str:
        """All shard registries (labeled ``{shard="k"}``) plus the router's."""
        pages = []
        for shard, reply in zip(self._shards, self._broadcast({"op": "metrics"})):
            pages.append(
                relabel_metrics(reply["metrics"], {"shard": str(shard.index)})
            )
        pages.append(self.registry.render_prometheus())
        return merge_metrics(pages)

    # -- persistence ---------------------------------------------------------

    def shard_snapshot_paths(self, base: str) -> List[str]:
        """The per-shard archive paths :meth:`snapshot` writes for ``base``."""
        return [
            f"{base}.shard{k}-of-{self.plan.num_shards}.npz"
            for k in range(self.plan.num_shards)
        ]

    def snapshot(self, base: Optional[str] = None) -> Dict[str, Any]:
        """Write the store archive plus one fingerprinted archive per shard.

        ``{base}.store.npz`` holds the union store (base fingerprint);
        ``{base}.shard{k}-of-{N}.npz`` holds shard ``k``'s graph under its
        per-shard fingerprint, so :meth:`restore` verifies each archive
        belongs to this dataset *and* this plan position.
        """
        if base is None:
            raise ConfigurationError("sharded snapshot needs a base path")
        store_path: Optional[str] = None
        if not self._store_stale:
            # Post-mutation the append-only store no longer mirrors the
            # shards; the per-shard v3 archives are the whole truth.
            store_path = f"{base}.store.npz"
            with self._store_lock:
                self.store.save(
                    store_path,
                    metadata={
                        "fingerprint": self.fingerprint,
                        "plan": self.plan.digest,
                    },
                )
        paths = self.shard_snapshot_paths(base)
        replies = [
            self._pool.submit(
                self._call, shard, {"op": "snapshot", "path": path}
            )
            for shard, path in zip(self._shards, paths)
        ]
        shard_paths = [future.result()["path"] for future in replies]
        return {"store": store_path, "shards": shard_paths}

    def restore(self, base: str) -> int:
        """Restore every shard from a :meth:`snapshot` base; returns edges added.

        Each shard verifies its own archive's per-shard fingerprint
        (dataset, plan digest, and shard position must all match) before
        merging; drained novel edges land back in the shared store.
        """
        futures = [
            self._pool.submit(self._call, shard, {"op": "restore", "path": path})
            for shard, path in zip(self._shards, self.shard_snapshot_paths(base))
        ]
        added = sum(int(future.result()["added"]) for future in futures)
        self._drain_edges(self._shards)
        # Rebuild sticky index ownership from what each shard rehydrated.
        for shard in self._shards:
            for name in self._call(shard, {"op": "indexes"})["indexes"]:
                with self._owner_lock:
                    self._index_owners[str(name)] = shard.index
        return added

    # -- server protocol -----------------------------------------------------

    def handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """The JSON-lines op surface (same shape as ``ProximityServer``'s)."""
        from repro.service.server import result_to_dict, spec_from_dict

        op = request.get("op")
        if op == "ping":
            return {"ok": True, "op": "ping", "shards": self.plan.num_shards}
        if op == "stats":
            return {"ok": True, "stats": self.stats()}
        if op == "metrics":
            return {"ok": True, "metrics": self.render_metrics()}
        if op == "snapshot":
            return {"ok": True, **self.snapshot(request.get("path"))}
        if op == "submit":
            spec = spec_from_dict(request.get("spec", {}))
            result = self.run(spec, request.get("timeout"))
            return {"ok": True, "result": result_to_dict(result)}
        if op == "build_index":
            params = dict(request.get("params", {}))
            params.setdefault("graph", str(request.get("graph", "hnsw")))
            spec = spec_from_dict({"kind": "build_index", "params": params,
                                   "label": request.get("label", "build-index")})
            result = self.run(spec, request.get("timeout"))
            return {"ok": True, "result": result_to_dict(result)}
        if op == "indexes":
            with self._owner_lock:
                owners = dict(self._index_owners)
            return {"ok": True, "indexes": sorted(owners), "owners": owners}
        if op == "mutate":
            return {
                "ok": True,
                "result": self.apply_mutations(request.get("mutations", [])),
            }
        if op == "insert":
            outcome = self.apply_mutations(
                [{"kind": "insert", "payload": request.get("payload")}]
            )
            return {"ok": True, "id": outcome["inserted_ids"][0], "result": outcome}
        if op == "remove":
            outcome = self.apply_mutations(
                [{"kind": "remove", "id": int(request["id"])}]
            )
            return {"ok": True, "result": outcome}
        if op == "subscribe":
            return {"ok": True, **self.subscribe(request)}
        if op == "deltas":
            return {
                "ok": True,
                **self.subscription_deltas(
                    int(request["sub_id"]), int(request.get("since", 0))
                ),
            }
        if op == "unsubscribe":
            self.unsubscribe(int(request["sub_id"]))
            return {"ok": True, "sub_id": int(request["sub_id"])}
        return {"ok": False, "error": f"unknown op {op!r}"}

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop every shard process and destroy the shared store."""
        if self._closed:
            return
        if hasattr(self, "_pool"):  # fully started — safe to query shards
            try:
                self.last_stats = self.stats()["aggregate"]
            except Exception:  # noqa: BLE001 - shards may already be gone
                pass
        self._closed = True
        for shard in self._shards:
            try:
                with shard.lock:
                    shard.conn.send({"op": "close"})
                    if shard.conn.poll(10.0):
                        shard.conn.recv()
            except (BrokenPipeError, OSError):
                pass
        for shard in self._shards:
            shard.process.join(timeout=10.0)
            if shard.process.is_alive():  # pragma: no cover - stuck shard
                shard.process.terminate()
                shard.process.join(timeout=5.0)
            shard.conn.close()
        if hasattr(self, "_pool"):
            self._pool.shutdown(wait=False, cancel_futures=True)
        self.store.unlink()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class ShardedStats:
    """Tiny adapter so sharded stats quack like ``EngineStats``."""

    def __init__(self, payload: Dict[str, Any]) -> None:
        self._payload = payload

    def to_dict(self) -> Dict[str, Any]:
        """The stats payload (already JSON-friendly)."""
        return self._payload
