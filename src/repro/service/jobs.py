"""Job model for the proximity-query engine.

A *job* is one proximity query (kNN, range, nearest, medoid, kNN-graph, or
MST) submitted to a long-lived :class:`~repro.service.engine.ProximityEngine`.
Submission returns a :class:`Job` handle immediately; the engine's worker
pool executes jobs by priority and delivers a :class:`JobResult` that always
exists — a job that exhausts its oracle budget, misses its deadline, or is
cancelled resolves to a *partial/cancelled* result instead of raising into
the engine.
"""

from __future__ import annotations

import enum
import math
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.resolver import ResolverStats

Pair = Tuple[int, int]

#: Query kinds the engine serves, with their required parameters.
JOB_KINDS: Dict[str, Tuple[str, ...]] = {
    "knn": ("query", "k"),
    "range": ("query", "radius"),
    "nearest": ("query",),
    "medoid": (),
    "knng": (),
    "mst": (),
    "build_index": ("graph",),
    "search_index": ("query", "k"),
}


class JobStatus(str, enum.Enum):
    """Lifecycle states of a job."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    #: Finished early because the per-job oracle budget ran out; the result
    #: carries the refused pairs in ``unresolved``.
    PARTIAL = "partial"
    CANCELLED = "cancelled"
    #: Deadline passed before (or while) the job ran.
    EXPIRED = "expired"
    FAILED = "failed"


#: Statuses that end a job's lifecycle.
TERMINAL_STATUSES = frozenset(
    {
        JobStatus.COMPLETED,
        JobStatus.PARTIAL,
        JobStatus.CANCELLED,
        JobStatus.EXPIRED,
        JobStatus.FAILED,
    }
)


@dataclass(frozen=True)
class JobSpec:
    """What to compute and under which constraints.

    Parameters
    ----------
    kind:
        One of :data:`JOB_KINDS`.
    params:
        Kind-specific parameters (``query``/``k``/``radius``/``l``/...).
    priority:
        Higher runs first; ties run in submission order.
    oracle_budget:
        Optional cap on *charged* oracle calls this job may spend.  On
        exhaustion the job ends with :attr:`JobStatus.PARTIAL` and the
        refused pairs listed in :attr:`JobResult.unresolved`.
    deadline:
        Optional wall-clock allowance in seconds, measured from submission.
        An expired job is skipped (or aborted at its next resolution point)
        with :attr:`JobStatus.EXPIRED`.
    label:
        Free-form tag surfaced in stats and oracle-trace phase labels.
    use_weak:
        Run against the engine's weak-tier bound provider when one is
        configured (default).  ``False`` forces strong-only bounds for this
        job — answers are identical either way, only the strong-call count
        differs.  Ignored on engines without a weak oracle.
    stretch:
        Approximation budget (default ``1.0`` — exact).  With ``stretch >
        1``, this job may answer a distance with its current upper bound
        whenever the bound interval certifies ``ub <= stretch · lb`` —
        guaranteed within the budget of the true distance — without
        charging the oracle.  Realised stretch per accepted answer is
        observed into the engine's ``repro_answer_stretch`` histogram.
        At the default the job is byte-identical to the pre-stretch engine.
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)
    priority: int = 0
    oracle_budget: Optional[int] = None
    deadline: Optional[float] = None
    label: str = ""
    use_weak: bool = True
    stretch: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {self.kind!r}; choose from {sorted(JOB_KINDS)}"
            )
        missing = [p for p in JOB_KINDS[self.kind] if p not in self.params]
        if missing:
            raise ValueError(
                f"job kind {self.kind!r} requires parameter(s) {missing}"
            )
        if self.oracle_budget is not None and self.oracle_budget < 0:
            raise ValueError("oracle_budget must be non-negative")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (seconds from submission)")
        if self.stretch < 1.0:
            raise ValueError("stretch budget must be >= 1.0 (1.0 = exact)")


@dataclass(frozen=True)
class JobResult:
    """Outcome of one job — always delivered, never raised.

    ``value`` is the query answer for completed jobs and ``None`` otherwise.
    ``charged_calls`` counts oracle calls this job actually paid for;
    ``warm_resolutions`` counts resolutions it got for free because an
    earlier job (or a restored snapshot) had already bought the pair — the
    per-job view of the engine's cross-query compounding.
    """

    status: JobStatus
    value: Any = None
    #: Pairs whose resolution was refused by the budget (empty otherwise).
    unresolved: Tuple[Pair, ...] = ()
    charged_calls: int = 0
    warm_resolutions: int = 0
    latency_seconds: float = 0.0
    resolver_stats: Optional[ResolverStats] = field(repr=False, default=None)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True for a complete, exact answer."""
        return self.status is JobStatus.COMPLETED


class Job:
    """Handle to a submitted job: wait, poll, or cancel."""

    def __init__(self, job_id: int, spec: JobSpec) -> None:
        self.id = job_id
        self.spec = spec
        self.submitted_at = time.monotonic()
        self.deadline_at = (
            math.inf if spec.deadline is None else self.submitted_at + spec.deadline
        )
        self._status = JobStatus.PENDING
        self._result: Optional[JobResult] = None
        self._done = threading.Event()
        self._cancel = threading.Event()
        self._lock = threading.Lock()

    # -- observation --------------------------------------------------------

    @property
    def status(self) -> JobStatus:
        return self._status

    def done(self) -> bool:
        """True once a terminal :class:`JobResult` is available."""
        return self._done.is_set()

    def expired(self, now: Optional[float] = None) -> bool:
        """True when the deadline has passed."""
        return (now if now is not None else time.monotonic()) >= self.deadline_at

    def result(self, timeout: Optional[float] = None) -> JobResult:
        """Block until the job finishes and return its result.

        Raises ``TimeoutError`` when ``timeout`` elapses first.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(f"job {self.id} did not finish within {timeout}s")
        assert self._result is not None
        return self._result

    # -- control ------------------------------------------------------------

    def cancel(self) -> bool:
        """Request cancellation.

        A pending job is dropped at dequeue; a running job aborts at its
        next oracle-resolution point.  Returns False when the job had
        already reached a terminal state.
        """
        with self._lock:
            if self._done.is_set():
                return False
            self._cancel.set()
            return True

    @property
    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    # -- engine-side transitions -------------------------------------------

    def _mark_running(self) -> bool:
        """Claim the job for execution; False when already cancelled/done."""
        with self._lock:
            if self._done.is_set() or self._cancel.is_set():
                return False
            self._status = JobStatus.RUNNING
            return True

    def _finish(self, result: JobResult) -> None:
        with self._lock:
            if self._done.is_set():  # pragma: no cover - defensive
                return
            self._result = result
            self._status = result.status
            self._done.set()
