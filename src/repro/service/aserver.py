"""Asyncio front-end: one event loop, many slow jobs, two transports.

The threaded :class:`~repro.service.server.ProximityServer` spends one OS
thread per connection; this server multiplexes every connection — Unix
socket *and* TCP — onto a single event loop, which is the right shape for
"millions of users" traffic: connections are cheap, and the expensive part
(running a job against the engine) is pushed onto a bounded worker pool so
the loop never blocks.

The wire protocol is unchanged: JSON-lines requests (``submit`` / ``stats``
/ ``metrics`` / ``snapshot`` / ``ping``) answered one line per request,
plus just enough HTTP that ``curl http://host:port/metrics`` (or the
``--unix-socket`` variant) scrapes Prometheus text.

The server fronts any *backend* exposing ``handle_request(dict) -> dict``
and ``render_metrics() -> str``: a single
:class:`~repro.service.engine.ProximityEngine` (wrapped via
:func:`engine_backend`) or a
:class:`~repro.service.sharding.ShardedEngine` coordinator, which is how
the sharded topology gets its network face.

The event loop runs on a dedicated background thread, so synchronous code
(the CLI, tests) can start/stop the server without itself being async.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Protocol

from repro.service.engine import ProximityEngine
from repro.service.server import handle_engine_request

#: Worker threads that execute backend requests off the event loop.
DEFAULT_DISPATCH_WORKERS = 8


class RequestBackend(Protocol):
    """What the async server needs from whatever it fronts."""

    def handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one protocol request."""
        ...

    def render_metrics(self) -> str:
        """Prometheus text exposition for ``GET /metrics``."""
        ...


class _EngineBackend:
    """Adapt a single :class:`ProximityEngine` to the backend protocol."""

    def __init__(self, engine: ProximityEngine) -> None:
        self.engine = engine

    def handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return handle_engine_request(self.engine, request)

    def render_metrics(self) -> str:
        return self.engine.render_metrics()


def engine_backend(engine: ProximityEngine) -> RequestBackend:
    """Wrap an engine for :class:`AsyncProximityServer`."""
    return _EngineBackend(engine)


class AsyncProximityServer:
    """Serve a backend over asyncio on Unix and/or TCP transports.

    Pass ``socket_path`` for a Unix listener, ``host``/``port`` for TCP, or
    both; ``port=0`` binds an ephemeral port (read it back from
    :attr:`port` after :meth:`start`).
    """

    def __init__(
        self,
        backend: RequestBackend,
        *,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        dispatch_workers: int = DEFAULT_DISPATCH_WORKERS,
    ) -> None:
        if isinstance(backend, ProximityEngine):
            backend = engine_backend(backend)
        if socket_path is None and port is None:
            raise ValueError("configure a Unix socket path, a TCP port, or both")
        self.backend = backend
        self.socket_path = None if socket_path is None else str(socket_path)
        self.host = host or "127.0.0.1"
        self.port = port
        self._dispatch = ThreadPoolExecutor(
            max_workers=dispatch_workers, thread_name_prefix="repro-aserve"
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._servers: List[asyncio.base_events.Server] = []
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- connection handling -------------------------------------------------

    async def _dispatch_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                self._dispatch, self.backend.handle_request, request
            )
        except Exception as exc:  # noqa: BLE001 - protocol errors answer, not crash
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    raw = await reader.readline()
                except (ConnectionResetError, asyncio.LimitOverrunError):
                    return
                except asyncio.CancelledError:
                    return  # server shutting down with the connection open
                if not raw:
                    return
                line = raw.strip()
                if not line:
                    continue
                if line.startswith(b"GET ") or line.startswith(b"HEAD "):
                    await self._serve_http(reader, writer, line)
                    return  # HTTP/1.0 semantics: one request, then close
                try:
                    response = await self._dispatch_request(
                        json.loads(line.decode("utf-8"))
                    )
                except json.JSONDecodeError as exc:
                    response = {"ok": False, "error": f"JSONDecodeError: {exc}"}
                writer.write((json.dumps(response) + "\n").encode("utf-8"))
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (  # pragma: no cover
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                pass

    async def _serve_http(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        request_line: bytes,
    ) -> None:
        parts = request_line.split()
        target = parts[1].decode("utf-8", "replace") if len(parts) > 1 else ""
        head_only = request_line.startswith(b"HEAD ")
        # Drain the request headers so the client never sees a reset.
        while True:
            header = await reader.readline()
            if not header or header in (b"\r\n", b"\n"):
                break
        path = target.split("?", 1)[0]
        if path == "/metrics":
            loop = asyncio.get_running_loop()
            text = await loop.run_in_executor(
                self._dispatch, self.backend.render_metrics
            )
            status = "200 OK"
            body = text.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            status = "404 Not Found"
            body = b"not found\n"
            content_type = "text/plain; charset=utf-8"
        head = (
            "HTTP/1.0 %s\r\n"
            "Content-Type: %s\r\n"
            "Content-Length: %d\r\n"
            "Connection: close\r\n"
            "\r\n" % (status, content_type, len(body))
        ).encode("ascii")
        writer.write(head if head_only else head + body)
        await writer.drain()

    # -- lifecycle -----------------------------------------------------------

    async def _start_servers(self) -> None:
        if self.socket_path is not None:
            self._servers.append(
                await asyncio.start_unix_server(
                    self._handle_connection, path=self.socket_path
                )
            )
        if self.port is not None:
            server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port
            )
            self._servers.append(server)
            # Ephemeral port: report what the OS actually bound.
            self.port = server.sockets[0].getsockname()[1]

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._start_servers())
        except BaseException as exc:  # noqa: BLE001 - surface bind errors
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            for server in self._servers:
                server.close()
                loop.run_until_complete(server.wait_closed())
            to_cancel = asyncio.all_tasks(loop)
            for task in to_cancel:
                task.cancel()
            if to_cancel:
                loop.run_until_complete(
                    asyncio.gather(*to_cancel, return_exceptions=True)
                )
            loop.close()

    def start(self) -> "AsyncProximityServer":
        """Bind the transports and serve on a background loop thread."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-aserve-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self._thread.join()
            self._thread = None
            raise self._startup_error
        return self

    def serve_forever(self) -> None:
        """Block until :meth:`close` (for CLI use); starts if needed."""
        if self._thread is None:
            self.start()
        self._stopped.wait()

    def close(self) -> None:
        """Stop listeners, the loop thread, and the dispatch pool."""
        self._stopped.set()
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._dispatch.shutdown(wait=False, cancel_futures=True)
        if self.socket_path is not None:
            import os

            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)

    def __enter__(self) -> "AsyncProximityServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
