"""The persistent proximity-query engine.

A :class:`ProximityEngine` owns **one** shared
:class:`~repro.core.partial_graph.PartialDistanceGraph`, one bound provider,
and one distance oracle, and serves a stream of concurrently submitted query
jobs (kNN, range, nearest, medoid, kNN-graph, MST).  The paper's central
asset — the partial graph of already-paid-for distances — compounds across
queries: every edge one job resolves tightens bounds for *every* future
comparison, and because each job runs through an exactness-preserving
:class:`~repro.core.resolver.SmartResolver`, the reuse never changes a
single answer.

Concurrency discipline (see :mod:`repro.core.locking`):

* bound queries and graph lookups run under the **shared** side of a
  :class:`~repro.core.locking.ReadWriteLock`;
* expensive distance evaluations run **unlocked** (they touch no shared
  state), so slow oracle calls from different jobs overlap;
* commits — oracle charge, graph insert (which bumps the edge-insert
  epochs), provider update, shared bound-memo invalidation — run under the
  **exclusive** side, so the epoch-keyed caches built in PR 2 stay sound
  across interleaved queries.

Per-job fault isolation: a job that exhausts its oracle-call budget ends
``partial`` (with the refused pairs listed), a cancelled or deadline-expired
job ends ``cancelled``/``expired``, and a job whose oracle keeps failing
ends ``failed`` — none of them take the engine down.

Warm-state persistence: :meth:`ProximityEngine.snapshot` writes the graph
(plus a dataset fingerprint) through :mod:`repro.core.persistence`;
:meth:`ProximityEngine.restore` refuses mismatched snapshots and seeds the
oracle so a restarted service never re-buys a distance.

Dynamic universes (PR 9): an engine built over a
:class:`~repro.dynamic.objects.DynamicObjectSet` accepts
:meth:`ProximityEngine.apply_mutations` — an atomic insert/remove batch
applied under the exclusive lock that tombstones graph nodes, forgets
oracle cache rows, patches the bound provider incrementally (never a full
recompute) and re-establishes every standing query registered through
:meth:`subscribe_knn` / :meth:`subscribe_knng`, bounds-first, emitting
entered/left/reordered deltas that clients poll with a sequence cursor.
"""

from __future__ import annotations

import contextlib
import math
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.algorithms import (
    k_nearest,
    knn_graph,
    nearest_neighbor,
    pam,
    prim_mst,
    range_query,
)
from repro.core.bounds import BoundProvider
from repro.core.exceptions import (
    ConfigurationError,
    JobBudgetExhaustedError,
    JobCancelledError,
    SnapshotMismatchError,
)
from repro.core.locking import ReadWriteLock
from repro.core.oracle import ComparisonOracle, DistanceOracle, canonical_pair
from repro.core.partial_graph import PartialDistanceGraph
from repro.core.persistence import load_archive, save_graph, seed_oracle_cache
from repro.core.resolver import ResolverStats, SmartResolver
from repro.core.tiering import TieredOracle, WeakOracle
from repro.dynamic import (
    Mutation,
    MutationResult,
    Subscription,
    SubscriptionDelta,
    SubscriptionRegistry,
    apply_provider_mutations,
)
from repro.exec.executor import BaseExecutor, DEFAULT_WORKERS, make_executor
from repro.graphs import (
    NavigableGraph,
    build_hnsw,
    build_nsg,
    comparison_search,
    graph_search,
)
from repro.harness.providers import LANDMARK_PROVIDERS, make_provider
from repro.harness.stats import percentile
from repro.obs import (
    ANSWER_STRETCH_BUCKETS,
    LATENCY_BUCKETS_S,
    RESOLVER_METRICS,
    MetricsRegistry,
    SpanTracer,
    oracle_call_counter,
    publish_resolver_stats,
    resolver_stats_view,
)
from repro.service.jobs import TERMINAL_STATUSES, Job, JobResult, JobSpec, JobStatus
from repro.service.queue import JobQueue
from repro.spaces.base import MetricSpace

Pair = Tuple[int, int]

#: Default number of job-worker threads.
DEFAULT_JOB_WORKERS = 2

#: Histogram buckets for entries entering/leaving a standing result per batch.
DELTA_SIZE_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0)

#: Job kinds whose algorithms scan ``range(n)`` internally and therefore
#: cannot run on a universe with tombstones.
_FULL_SCAN_KINDS = frozenset({"medoid", "knng", "mst"})


class _JobRuntime:
    """Mutable per-job execution state shared between worker and resolver."""

    __slots__ = (
        "job_id",
        "budget",
        "charged",
        "warm_hits",
        "touched",
        "cancel",
        "deadline_at",
        "expired",
        "use_weak",
        "stretch",
    )

    def __init__(self, job: Job) -> None:
        self.job_id = job.id
        self.budget = job.spec.oracle_budget
        self.use_weak = job.spec.use_weak
        self.stretch = job.spec.stretch
        self.charged = 0
        self.warm_hits = 0
        #: Canonical pairs this job has already looked at (so a warm pair is
        #: counted once, and pairs the job paid for itself never count).
        self.touched: Set[Pair] = set()
        self.cancel = job._cancel
        self.deadline_at = job.deadline_at
        self.expired = False


class _JobResolver(SmartResolver):
    """A per-job resolver enforcing the engine's reader/writer discipline.

    Bound queries take the shared lock; distance-function evaluations run
    unlocked; commits take the exclusive lock.  The per-pair bound memo is
    the *engine's* shared dict — epoch keys keep it sound across jobs, and
    an entry one job computes is served to every other job for free.
    """

    def __init__(self, engine: "ProximityEngine", runtime: _JobRuntime) -> None:
        use_weak = engine._weak_bounder is not None and runtime.use_weak
        super().__init__(
            engine.oracle,
            bounder=engine._weak_bounder if use_weak else engine.bounder,
            graph=engine.graph,
            stretch=runtime.stretch,
        )
        self._engine = engine
        self._runtime = runtime
        # Swap the private per-resolver memo for the engine-wide one.  Weak
        # and base providers compute different intervals, so each provider
        # path keeps its own shared memo — entries stay provider-consistent.
        self._bound_memo = engine._shared_memo_weak if use_weak else engine._shared_memo
        # Realised-stretch observations land in the engine-wide histogram.
        self._stretch_hist = engine._m_answer_stretch

    # -- job control ---------------------------------------------------------

    def _check_cancelled(self) -> None:
        rt = self._runtime
        if rt.cancel.is_set():
            raise JobCancelledError(f"job {rt.job_id} cancelled")
        if time.monotonic() >= rt.deadline_at:
            rt.expired = True
            raise JobCancelledError(f"job {rt.job_id} deadline expired")

    def _guard_budget(self, pending: List[Pair]) -> None:
        rt = self._runtime
        if rt.budget is not None and rt.charged + len(pending) > rt.budget:
            raise JobBudgetExhaustedError(rt.budget, tuple(pending))

    def _note_warm(self, key: Pair) -> None:
        rt = self._runtime
        if key not in rt.touched:
            rt.touched.add(key)
            rt.warm_hits += 1

    # -- locked read paths ---------------------------------------------------

    def known(self, i: int, j: int):
        with self._engine._rw.read_locked():
            return super().known(i, j)

    def bounds(self, i: int, j: int):
        with self._engine._rw.read_locked():
            return super().bounds(i, j)

    def bounds_many(self, pairs):
        self._check_cancelled()
        with self._engine._rw.read_locked():
            return super().bounds_many(pairs)

    def _bounds_for_decision(self, i: int, j: int):
        with self._engine._rw.read_locked():
            return super()._bounds_for_decision(i, j)

    def _compute_bounds(self, key: Pair):
        with self._engine._rw.read_locked():
            return super()._compute_bounds(key)

    # -- locked write paths --------------------------------------------------

    def distance(self, i: int, j: int) -> float:
        if i == j:
            return 0.0
        engine = self._engine
        with engine._rw.read_locked():
            cached = self.graph.get(i, j)
        key = canonical_pair(i, j)
        if cached is not None:
            self._note_warm(key)
            return cached
        self._check_cancelled()
        if self.stretch > 1.0:
            # Bound reads inside the gate take the read lock themselves; an
            # accepted estimate never commits, so no write lock is needed.
            estimate = self._approx_estimate(i, j)
            if estimate is not None:
                return estimate
        with engine._oracle_lock:
            value = self.oracle.peek(*key)
        if value is None:
            self._guard_budget([key])
            # The expensive call: deliberately outside every lock so slow
            # oracle requests from different jobs overlap.
            value = float(self.oracle.distance_fn(*key))
        return self._commit([(key, value)])[key]

    def resolve_many(self, pairs: Iterable[Pair]) -> Dict[Pair, float]:
        engine = self._engine
        keys = sorted({canonical_pair(i, j) for i, j in pairs if i != j})
        with engine._rw.read_locked():
            unknown = [key for key in keys if self.graph.get(*key) is None]
        unknown_set = set(unknown)
        for key in keys:
            if key not in unknown_set:
                self._note_warm(key)
        if unknown and self.stretch > 1.0:
            unknown = [key for key in unknown if self._approx_estimate(*key) is None]
        if unknown:
            self._check_cancelled()
            values: Dict[Pair, float] = {}
            misses: List[Pair] = []
            with engine._oracle_lock:
                for key in unknown:
                    v = self.oracle.peek(*key)
                    if v is None:
                        misses.append(key)
                    else:
                        values[key] = v
            if misses:
                self._guard_budget(misses)
                values.update(engine._evaluate(misses))
            self._commit([(key, values[key]) for key in unknown])
            if self.batched:
                self.stats.batched_resolutions += len(unknown)
        with engine._rw.read_locked():
            if self._approx_cache:
                approx = self._approx_cache
                out: Dict[Pair, float] = {}
                for key in keys:
                    exact = self.graph.get(*key)
                    out[key] = exact if exact is not None else approx[key]
                return out
            return {key: self.graph.get(*key) for key in keys}

    def _commit(self, items: List[Tuple[Pair, float]]) -> Dict[Pair, float]:
        """Commit evaluated distances under the exclusive lock.

        Items are processed in the given (sorted) order: oracle charge,
        graph insert, provider update, shared-memo invalidation — exactly
        the serial resolver's sequence, made atomic against readers.
        """
        engine = self._engine
        rt = self._runtime
        out: Dict[Pair, float] = {}
        with engine._rw.write_locked():
            with engine._oracle_lock:
                for key, value in items:
                    before = self.oracle.calls
                    value = self.oracle.record(*key, value)
                    self.stats.resolutions += 1
                    if self.oracle.calls > before:
                        self.stats.oracle_resolutions += 1
                        self.stats.strong_calls += 1
                        rt.charged += 1
                        rt.touched.add(key)
                    else:
                        self.stats.cached_resolutions += 1
                        self._note_warm(key)
                    if self.graph.add_edge(*key, value):
                        self._bound_memo.pop(key, None)
                        self._bounder.notify_resolved(*key, value)
                    out[key] = value
        return out

    # -- batch-path plumbing -------------------------------------------------

    @property
    def batched(self) -> bool:
        """Frontier queries use the batch paths when the engine has an executor."""
        return self._engine.executor is not None

    def prefetch_thresholds(self, items) -> int:
        if not self.batched:
            return 0
        candidates: List[Tuple[Pair, float]] = []
        with self._engine._rw.read_locked():
            for (i, j), threshold in items:
                if i == j or self.graph.get(i, j) is not None:
                    continue
                candidates.append(((i, j), threshold))
        if not candidates:
            return 0
        frontier_bounds = self.bounds_many([pair for pair, _ in candidates])
        wanted = [
            pair
            for (pair, threshold), b in zip(candidates, frontier_bounds)
            if b.lower < threshold
        ]
        if wanted:
            self.resolve_many(wanted)
        return len(wanted)

    def collect_stats(self) -> ResolverStats:
        # Provider-level counters (dijkstra_runs) are engine-wide, not
        # per-job; the engine syncs them once in snapshot_stats().
        return self.stats


@dataclass(frozen=True)
class EngineStats:
    """One coherent snapshot of engine-wide accounting."""

    uptime_seconds: float
    job_workers: int
    queue_depth: int
    jobs_submitted: int
    jobs_completed: int
    jobs_partial: int
    jobs_failed: int
    jobs_cancelled: int
    jobs_expired: int
    #: Charged oracle calls since engine construction (bootstrap included).
    oracle_calls: int
    bootstrap_calls: int
    #: Distinct pairs jobs read from the warm shared state without paying —
    #: the per-job lower bound on calls saved vs running each job cold.
    warm_resolutions: int
    restored_edges: int
    snapshots_written: int
    graph_edges: int
    graph_epoch: int
    bound_queries: int
    bound_cache_hits: int
    #: Fraction of bound queries answered from the shared epoch memo.
    bound_memo_hit_rate: float
    latency_p50_s: float
    latency_p95_s: float
    #: Merged per-job resolver counters (dijkstra_runs and the weak-tier
    #: counters synced from the shared providers).
    resolver: ResolverStats = field(repr=False)
    #: Charged weak-tier (banded estimate) calls; 0 without a weak oracle.
    weak_calls: int = 0
    #: Bound queries the weak error band strictly tightened.
    weak_band: int = 0
    #: Object mutations applied via apply_mutations (inserts + removes).
    mutations_applied: int = 0
    #: Live standing-query subscriptions.
    subscriptions_active: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly dict (used by the socket server's ``stats`` op)."""
        out = asdict(self)
        out["resolver"] = asdict(self.resolver)
        return out


class ProximityEngine:
    """Long-lived, concurrent proximity-query service over one shared graph.

    Parameters
    ----------
    oracle:
        The accounting oracle.  Its distance function must be thread-safe:
        the engine evaluates it concurrently from job workers (and from a
        threaded executor when one is configured).
    provider:
        Bound-provider name (see ``repro.harness.providers.PROVIDER_NAMES``).
        Landmark providers bootstrap at construction; the spent calls are
        reported as ``bootstrap_calls``.
    max_distance:
        Diameter bound passed to the provider.
    num_landmarks:
        Landmark budget for landmark providers (default: paper's log2(n)).
    job_workers:
        Worker threads executing jobs (>= 1).
    executor:
        ``None`` (inline evaluation), an executor name (``"serial"`` /
        ``"threaded"``), or a ready :class:`~repro.exec.executor.BaseExecutor`.
        When present, frontier resolutions go out as executor batches with
        retry/timeout fault tolerance.
    oracle_workers:
        Thread-pool size when ``executor="threaded"``.
    snapshot_path:
        Where periodic/on-close snapshots go (no snapshots when ``None``).
    snapshot_every:
        Write a snapshot whenever this many new edges have landed since the
        last one (checked between jobs, so the write never stalls a commit).
    fingerprint:
        Dataset identity string stored in snapshots and verified by
        :meth:`restore`.
    restore_from:
        Optional snapshot to restore before serving.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry` to publish
        into.  A private registry is created when omitted, so every engine
        always has a ``/metrics``-ready surface at ``engine.registry``.
    weak_oracle:
        Optional :class:`~repro.core.tiering.WeakOracle` over the same
        universe.  When configured, jobs submitted with ``use_weak=True``
        (the :class:`~repro.service.jobs.JobSpec` default) run against a
        base ∩ weak bound provider: cheap banded estimates tighten bounds
        so the strong oracle fires only on inconclusive pairs — answers
        stay byte-identical either way.
    """

    def __init__(
        self,
        oracle: DistanceOracle,
        provider: str = "tri",
        max_distance: float = math.inf,
        num_landmarks: Optional[int] = None,
        job_workers: int = DEFAULT_JOB_WORKERS,
        executor: Union[BaseExecutor, str, None] = None,
        oracle_workers: int = DEFAULT_WORKERS,
        snapshot_path: Optional[str] = None,
        snapshot_every: Optional[int] = None,
        fingerprint: Optional[str] = None,
        restore_from: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
        weak_oracle: Optional["WeakOracle"] = None,
    ) -> None:
        if job_workers < 1:
            raise ConfigurationError("job_workers must be at least 1")
        if snapshot_every is not None and snapshot_every < 1:
            raise ConfigurationError("snapshot_every must be a positive edge count")
        self.oracle = oracle
        self.provider_name = provider
        self.graph = PartialDistanceGraph(oracle.n)
        self.bounder: BoundProvider = make_provider(
            provider, self.graph, max_distance, num_landmarks
        )
        if isinstance(executor, str):
            executor = make_executor(executor, workers=oracle_workers)
        self.executor = executor
        if executor is not None:
            executor.warm()
        self.fingerprint = fingerprint
        self.snapshot_path = snapshot_path
        self.snapshot_every = snapshot_every

        self._rw = ReadWriteLock()
        self._oracle_lock = threading.RLock()
        self._exec_lock = threading.Lock()
        self._shared_memo: Dict[Pair, tuple] = {}
        self._shared_memo_weak: Dict[Pair, tuple] = {}
        self._stats_lock = threading.Lock()
        # Weak-tier mutation (estimate cache fills) happens under the
        # engine's *read* lock, so it gets its own mutex.
        self._weak_lock = threading.Lock()
        self.tiered: Optional[TieredOracle] = None
        self._weak_bounder: Optional[BoundProvider] = None
        if weak_oracle is not None:
            self.tiered = TieredOracle(oracle, weak_oracle)
            self._weak_bounder = self.tiered.bounder(
                self.graph,
                base=self.bounder,
                max_distance=max_distance,
                lock=self._weak_lock,
            )
        self._job_seq = 0
        self._latencies: List[float] = []
        self._edges_since_snapshot = 0
        self._started_at = time.monotonic()
        self._closed = False
        self._queue = JobQueue()
        self._workers: List[threading.Thread] = []
        #: The metric space behind the oracle, when built via for_space().
        #: Mutation batches need it to be a DynamicObjectSet (or any object
        #: with insert/remove); query-only engines leave it None.
        self.space: Optional[Any] = None
        #: True when the snapshot fingerprint came from space.fingerprint()
        #: (so it should track the live state), False for explicit ones.
        self._fingerprint_from_space = False
        self.subscriptions = SubscriptionRegistry()
        #: Built navigable-graph indexes by name (``build_index`` jobs),
        #: served by ``search_index`` jobs and persisted with snapshots.
        self.indexes: Dict[str, NavigableGraph] = {}
        self._indexes_lock = threading.Lock()
        self._comparison_calls = 0

        self.instrument(registry if registry is not None else MetricsRegistry())

        self.bootstrap_calls = 0
        if provider.lower() in LANDMARK_PROVIDERS:
            boot = SmartResolver(oracle, bounder=self.bounder, graph=self.graph)
            before = oracle.calls
            self.bounder.bootstrap(boot)
            self.bootstrap_calls = oracle.calls - before

        if restore_from is not None:
            self.restore(restore_from)

        self.graph.subscribe_edges(self._on_edge)
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-engine-{i}", daemon=True
            )
            for i in range(job_workers)
        ]
        for worker in self._workers:
            worker.start()

    def instrument(self, registry: MetricsRegistry) -> None:
        """Attach ``registry`` (the unified ``instrument`` convention).

        Declares every engine-owned metric family and rebinds the job span
        tracer.  Counters the engine increments itself (jobs, warm hits,
        snapshots) are plain; numbers that already have one authoritative
        owner (oracle calls, queue depth, graph size, provider Dijkstra
        runs, weak-tier calls) are callback-backed so the registry can
        never drift from them.
        """
        self.registry = registry
        self._register_metrics()
        #: Engine-side span tracer: one span per executed job, labeled by
        #: job kind, timed into ``repro_job_phase_seconds{span=<kind>}``.
        self.tracer = SpanTracer(
            registry=registry,
            histogram="repro_job_phase_seconds",
            root="engine",
        )

    def _register_metrics(self) -> None:
        r = self.registry
        self._m_submitted = r.counter(
            "repro_jobs_submitted_total", "Jobs accepted by submit()."
        )
        jobs = r.counter(
            "repro_jobs_total",
            "Finished jobs by terminal status.",
            labelnames=("status",),
        )
        self._m_job_status = {
            status: jobs.labels(status=status.value) for status in TERMINAL_STATUSES
        }
        self._m_warm = r.counter(
            "repro_warm_resolutions_total",
            "Distinct pairs jobs read from warm shared state without paying.",
        )
        self._m_snapshots = r.counter(
            "repro_snapshots_written_total", "Warm-state snapshots written to disk."
        )
        self._m_restored = r.counter(
            "repro_restored_edges_total", "Edges merged from restored snapshots."
        )
        self._m_latency = r.histogram(
            "repro_job_latency_seconds",
            LATENCY_BUCKETS_S,
            help_text="End-to-end job execution latency in seconds.",
        )
        self._m_answer_stretch = r.histogram(
            "repro_answer_stretch",
            ANSWER_STRETCH_BUCKETS,
            help_text=(
                "Realised stretch (estimate / lower bound) of approximate "
                "answers; bounded by the job's stretch budget."
            ),
        )
        oracle_call_counter(r, self.oracle)
        r.counter(
            "repro_bootstrap_calls_total",
            "Oracle calls spent bootstrapping landmark providers.",
            fn=lambda: self.bootstrap_calls,
        )
        r.counter(
            "repro_resolver_dijkstra_runs_total",
            "Dijkstra traversals run by the SPLUB bound provider.",
            fn=lambda: int(getattr(self.bounder, "dijkstra_runs", 0)),
        )
        if self.tiered is not None:
            # Weak-tier counters live on the shared provider (engine-wide,
            # not per-job), so they are callback-backed like dijkstra_runs;
            # registered before the pre-declare loop below so the loop
            # returns these families instead of plain counters.
            r.counter(
                "repro_resolver_weak_calls_total",
                "Charged weak-tier (banded estimate) oracle calls.",
                fn=lambda: int(getattr(self._weak_bounder, "weak_calls", 0)),
            )
            r.counter(
                "repro_resolver_weak_band_total",
                "Bound queries strictly tightened by a weak oracle's error band.",
                fn=lambda: int(getattr(self._weak_bounder, "weak_band", 0)),
            )
        # Pre-declare the remaining resolver counter families so a fresh
        # engine's /metrics surface already lists every documented name
        # (absent != zero to a scraper).
        for _field, metric, labels, help_text in RESOLVER_METRICS:
            family = r.counter(metric, help_text, labelnames=tuple(labels))
            if labels:
                family.labels(**labels)
        mutations = r.counter(
            "repro_mutations_total",
            "Object mutations applied via apply_mutations(), by kind.",
            labelnames=("kind",),
        )
        self._m_mutations = {
            kind: mutations.labels(kind=kind) for kind in ("insert", "remove")
        }
        self._m_invalidation = r.counter(
            "repro_invalidation_total",
            "Provider state invalidated by mutation maintenance, by counter.",
            labelnames=("what",),
        )
        self._m_delta_size = r.histogram(
            "repro_subscription_delta_size",
            DELTA_SIZE_BUCKETS,
            help_text=(
                "Entries entering or leaving a standing-query result per "
                "mutation batch (unchanged subscriptions observe nothing)."
            ),
        )
        indexes_built = r.counter(
            "repro_indexes_built_total",
            "Navigable-graph indexes built by build_index jobs, by kind.",
            labelnames=("kind",),
        )
        self._m_indexes_built = {
            kind: indexes_built.labels(kind=kind) for kind in ("hnsw", "nsg")
        }
        self._m_index_searches = r.counter(
            "repro_index_searches_total",
            "search_index queries answered from a built navigable graph.",
        )
        r.counter(
            "repro_comparison_calls_total",
            "Ordering queries answered by the comparison-only oracle mode.",
            fn=lambda: self._comparison_calls,
        )
        r.gauge(
            "repro_indexes_stored",
            "Built navigable-graph indexes held by the engine.",
            fn=lambda: len(self.indexes),
        )
        r.gauge(
            "repro_subscriptions_active",
            "Live standing-query subscriptions.",
            fn=lambda: self.subscriptions.active,
        )
        r.gauge(
            "repro_queue_depth", "Jobs waiting in the priority queue.",
            fn=lambda: len(self._queue),
        )
        r.gauge(
            "repro_job_workers", "Engine worker threads.",
            fn=lambda: len(self._workers),
        )
        r.gauge(
            "repro_engine_uptime_seconds", "Seconds since engine construction.",
            fn=lambda: time.monotonic() - self._started_at,
        )
        self.graph.instrument(r)
        if self.executor is not None:
            self.executor.instrument(r)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def for_space(
        cls,
        space: MetricSpace,
        provider: str = "tri",
        oracle_cost: float = 0.0,
        weak_oracle: Union[bool, "WeakOracle", None] = None,
        **kwargs: Any,
    ) -> "ProximityEngine":
        """Build an engine for a metric space with a derived fingerprint.

        ``weak_oracle=True`` asks the space for its native weak tier
        (:meth:`~repro.spaces.base.BaseSpace.weak_oracle`), raising
        :class:`~repro.core.exceptions.ConfigurationError` when the space
        has none; a ready :class:`~repro.core.tiering.WeakOracle` instance
        is used as given; ``None``/``False`` runs strong-only.

        The engine keeps a reference to ``space``: a mutable space (a
        :class:`~repro.dynamic.objects.DynamicObjectSet`) unlocks
        :meth:`apply_mutations`, and its state-derived ``fingerprint()``
        method, when present, supplies the snapshot fingerprint so restores
        check against the *current* live set.
        """
        oracle = space.oracle(cost_per_call=oracle_cost)
        weak: Optional[WeakOracle] = None
        if weak_oracle is True:
            weak = getattr(space, "weak_oracle", lambda: None)()
            if weak is None:
                raise ConfigurationError(
                    f"{type(space).__name__} declares no native weak oracle; "
                    "pass a WeakOracle instance instead"
                )
        elif weak_oracle:
            weak = weak_oracle
        own_fp = getattr(space, "fingerprint", None)
        from_space = callable(own_fp) and "fingerprint" not in kwargs
        kwargs.setdefault(
            "fingerprint", own_fp() if callable(own_fp) else space_fingerprint(space)
        )
        engine = cls(
            oracle,
            provider=provider,
            max_distance=space.diameter_bound(),
            weak_oracle=weak,
            **kwargs,
        )
        engine.space = space
        engine._fingerprint_from_space = from_space
        return engine

    # -- submission ----------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Enqueue a job and return its handle immediately."""
        if self._closed:
            raise RuntimeError("engine is closed")
        self._validate_params(spec)
        with self._stats_lock:
            self._job_seq += 1
            job = Job(self._job_seq, spec)
        self._m_submitted.inc()
        self._queue.push(job)
        return job

    def submit_job(
        self,
        kind: str,
        *,
        priority: int = 0,
        oracle_budget: Optional[int] = None,
        deadline: Optional[float] = None,
        label: str = "",
        use_weak: bool = True,
        stretch: float = 1.0,
        **params: Any,
    ) -> Job:
        """Keyword-style :meth:`submit` convenience."""
        return self.submit(
            JobSpec(
                kind=kind,
                params=params,
                priority=priority,
                oracle_budget=oracle_budget,
                deadline=deadline,
                label=label,
                use_weak=use_weak,
                stretch=stretch,
            )
        )

    def run(self, spec: JobSpec, timeout: Optional[float] = None) -> JobResult:
        """Submit and wait — the synchronous convenience path."""
        return self.submit(spec).result(timeout)

    def _validate_params(self, spec: JobSpec) -> None:
        n = self.oracle.n
        for name in ("query", "root"):
            value = spec.params.get(name)
            if value is None:
                continue
            if not 0 <= int(value) < n:
                raise ValueError(
                    f"{name}={value} out of range for universe of size {n}"
                )
            if not self.graph.is_alive(int(value)):
                raise ValueError(f"{name}={value} refers to a removed object")

    # -- worker pool ---------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.pop(self._skip_dead)
            if job is None:
                return
            self._execute(job)

    def _skip_dead(self, job: Job) -> bool:
        """Drop cancelled/expired jobs at dequeue, finishing their handles."""
        if job.expired():
            self._finish(job, JobResult(status=JobStatus.EXPIRED))
            return True
        if not job._mark_running():
            self._finish(job, JobResult(status=JobStatus.CANCELLED))
            return True
        return False

    def _execute(self, job: Job) -> None:
        runtime = _JobRuntime(job)
        resolver = _JobResolver(self, runtime)
        spec = job.spec
        status = JobStatus.COMPLETED
        value: Any = None
        unresolved: Tuple[Pair, ...] = ()
        error: Optional[str] = None
        label = spec.label or f"job-{job.id}:{spec.kind}"
        oracle_tracer = getattr(self.oracle, "tracer", None)
        start = time.perf_counter()
        try:
            with contextlib.ExitStack() as stack:
                # The engine's own span times the job by kind; the oracle's
                # tracer (thread-local) attributes charged calls to this
                # job's label without cross-worker interleaving.
                stack.enter_context(self.tracer.span(spec.kind))
                if isinstance(oracle_tracer, SpanTracer):
                    stack.enter_context(oracle_tracer.span(label))
                value = self._run_kind(resolver, spec)
        except JobBudgetExhaustedError as exc:
            status = JobStatus.PARTIAL
            unresolved = exc.unresolved
            error = str(exc)
        except JobCancelledError as exc:
            status = JobStatus.EXPIRED if runtime.expired else JobStatus.CANCELLED
            error = str(exc)
        except Exception as exc:  # noqa: BLE001 - jobs must not kill workers
            status = JobStatus.FAILED
            error = f"{type(exc).__name__}: {exc}"
        latency = time.perf_counter() - start
        # Snapshot before publishing the result: once a caller sees the job
        # finished, any periodic snapshot its edges triggered is on disk.
        self._maybe_snapshot()
        self._finish(
            job,
            JobResult(
                status=status,
                value=value,
                unresolved=unresolved,
                charged_calls=runtime.charged,
                warm_resolutions=runtime.warm_hits,
                latency_seconds=latency,
                resolver_stats=resolver.stats,
                error=error,
            ),
        )

    def _run_kind(self, resolver: SmartResolver, spec: JobSpec) -> Any:
        p = spec.params
        kind = spec.kind
        mutated = self.graph.mutated
        if mutated and kind in _FULL_SCAN_KINDS:
            raise ValueError(
                f"{kind} jobs scan the whole universe and cannot run over "
                "tombstoned ids; on a mutated engine use subscribe_knng for "
                "standing kNN-graphs, or knn/range/nearest queries"
            )
        candidates = p.get("candidates")
        if candidates is None and mutated:
            # Point queries default to the live ids, not range(n).
            candidates = self.graph.alive_ids()
        if kind == "knn":
            return k_nearest(resolver, int(p["query"]), int(p["k"]), candidates)
        if kind == "range":
            return range_query(
                resolver,
                int(p["query"]),
                float(p["radius"]),
                candidates,
                include_query=bool(p.get("include_query", False)),
            )
        if kind == "nearest":
            return nearest_neighbor(resolver, int(p["query"]), candidates)
        if kind == "medoid":
            return pam(
                resolver,
                l=int(p.get("l", 1)),
                seed=int(p.get("seed", 0)),
                init=p.get("init", "random"),
            )
        if kind == "knng":
            return knn_graph(resolver, k=int(p.get("k", 5)))
        if kind == "mst":
            return prim_mst(resolver, root=int(p.get("root", 0)))
        if kind == "build_index":
            return self._run_build_index(resolver, p)
        if kind == "search_index":
            return self._run_search_index(resolver, p)
        raise ValueError(f"unknown job kind {kind!r}")  # pragma: no cover

    def _run_build_index(self, resolver: SmartResolver, p: Dict[str, Any]) -> Dict[str, Any]:
        """Build a navigable graph through the job's resolver and store it.

        Runs inside a normal job, so the build shares the engine's warm
        graph (``warm_resolutions`` counts pairs it reads for free), obeys
        the job's budget/deadline, and may use the weak tier or a stretch
        budget like any other job.  The built graph is stored under
        ``name`` (default: the graph kind) for ``search_index`` jobs and
        snapshot persistence.
        """
        graph_kind = str(p["graph"])
        nodes = self.graph.alive_ids() if self.graph.mutated else None
        if graph_kind == "hnsw":
            built = build_hnsw(
                resolver,
                m=int(p.get("m", 8)),
                ef_construction=int(p.get("ef", 32)),
                seed=int(p.get("seed", 0)),
                nodes=nodes,
            )
        elif graph_kind == "nsg":
            built = build_nsg(
                resolver, r=int(p.get("r", 8)), k=int(p.get("k", 16)), nodes=nodes
            )
        else:
            raise ValueError(f"unknown index graph kind {graph_kind!r} (hnsw or nsg)")
        name = str(p.get("name", graph_kind))
        with self._indexes_lock:
            self.indexes[name] = built
        self._m_indexes_built[graph_kind].inc()
        summary = built.summary()
        summary["name"] = name
        return summary

    def _run_search_index(self, resolver: SmartResolver, p: Dict[str, Any]) -> Any:
        """Answer a query from a built navigable graph.

        ``mode="comparison"`` runs the comparison-only oracle mode: the
        search observes orderings only (counted into
        ``repro_comparison_calls_total``) and the result carries ids but no
        distances.  The default numeric mode returns ascending
        ``(distance, id)`` pairs, with admission tests settled by bounds
        where conclusive — on a warm graph a search can cost zero strong
        calls.
        """
        name = str(p.get("name", p.get("graph", "")))
        with self._indexes_lock:
            if name:
                index = self.indexes.get(name)
            elif len(self.indexes) == 1:
                name, index = next(iter(self.indexes.items()))
            else:
                index = None
        if index is None:
            raise ValueError(
                f"no built index named {name!r}: run a build_index job first"
                + ("" if name else " (or pass name= with several indexes built)")
            )
        query = int(p["query"])
        k = int(p["k"])
        ef = int(p["ef"]) if p.get("ef") is not None else None
        self._m_index_searches.inc()
        if str(p.get("mode", "distance")) == "comparison":
            comparison = ComparisonOracle(resolver)
            ids = comparison_search(comparison, index, query, k, ef=ef)
            with self._stats_lock:
                self._comparison_calls += comparison.comparisons
            return {"ids": ids, "comparisons": comparison.comparisons, "index": name}
        return graph_search(resolver, index, query, k, ef=ef)

    def _finish(self, job: Job, result: JobResult) -> None:
        job._finish(result)
        self._m_job_status[result.status].inc()
        if result.warm_resolutions:
            self._m_warm.inc(result.warm_resolutions)
        if result.resolver_stats is not None:
            # Per-job resolver stats start from zero, so publishing the
            # absolute values folds exactly one job's delta into the
            # registry — the registry totals stay equal to the old
            # merged-ResolverStats accounting at every quiescent point.
            publish_resolver_stats(self.registry, result.resolver_stats)
        if result.latency_seconds > 0:
            with self._stats_lock:
                self._latencies.append(result.latency_seconds)
            self._m_latency.observe(result.latency_seconds)

    # -- oracle evaluation ---------------------------------------------------

    def _evaluate(self, keys: List[Pair]) -> Dict[Pair, float]:
        """Evaluate distance-function misses, possibly through the executor.

        Runs outside the reader/writer lock: evaluation touches no shared
        proximity state.  Executor batches are serialised by a dedicated
        mutex so the executor's internal accounting stays exact; evaluation
        concurrency comes from the executor's own thread pool.
        """
        fn = self.oracle.distance_fn
        if self.executor is None:
            return {key: float(fn(*key)) for key in keys}
        with self._exec_lock:
            values, report = self.executor.run(fn, keys)
        with self._oracle_lock:
            self.oracle.note_retries(report.retries)
            self.oracle.note_timeouts(report.timeouts)
        return values

    # -- mutation ------------------------------------------------------------

    def apply_mutations(self, mutations: Iterable[Mutation]) -> MutationResult:
        """Apply one insert/remove batch atomically; return its accounting.

        Runs entirely under the exclusive lock: object-set mutation, graph
        tombstoning/growth, oracle-cache forgetting, shared-memo purging,
        incremental provider maintenance (via
        :func:`~repro.dynamic.maintenance.apply_provider_mutations`) and the
        bounds-first re-establishment of every standing query — so queries
        observe either the whole batch or none of it.  Requires a mutable
        space (:meth:`for_space` over a
        :class:`~repro.dynamic.objects.DynamicObjectSet`) and a strong-only
        configuration: the weak tier caches per-pair estimates a recycled
        id would silently inherit.
        """
        batch = list(mutations)
        if self._closed:
            raise RuntimeError("engine is closed")
        space = self.space
        if space is None or not callable(getattr(space, "insert", None)):
            raise ConfigurationError(
                "mutations need a mutable space: build the engine with "
                "ProximityEngine.for_space(DynamicObjectSet(...))"
            )
        if self._weak_bounder is not None:
            raise ConfigurationError(
                "mutation batches are unsupported with a weak tier: the weak "
                "oracle caches per-pair estimates that a recycled id would "
                "silently inherit"
            )
        result = MutationResult()
        if not batch:
            result.epoch = self.graph.epoch
            return result
        with self._rw.write_locked():
            with self._oracle_lock:
                if self.graph.store is not None:
                    # A bound CSR store mirrors an append-only history; a
                    # mutating engine owns its graph outright.
                    self.graph.detach_store()
                for mut in batch:
                    if mut.kind == "remove":
                        obj_id = int(mut.obj_id)
                        space.remove(obj_id)
                        result.edges_dropped += self.graph.remove_node(obj_id)
                        result.oracle_forgotten += self.oracle.forget(obj_id)
                        result.removed_ids.append(obj_id)
                    else:
                        new_id = space.insert(mut.payload)
                        if new_id >= self.graph.n:
                            self.graph.grow(new_id + 1 - self.graph.n)
                            self.oracle.grow(space.n)
                        else:
                            self.graph.revive(new_id)
                            result.oracle_forgotten += self.oracle.forget(new_id)
                        result.inserted_ids.append(new_id)
                touched = set(result.inserted_ids) | set(result.removed_ids)
                for memo in (self._shared_memo, self._shared_memo_weak):
                    stale = [k for k in memo if k[0] in touched or k[1] in touched]
                    for key in stale:
                        del memo[key]
                    result.memo_purged += len(stale)
                maint = SmartResolver(
                    self.oracle, bounder=self.bounder, graph=self.graph
                )
                before = self.oracle.calls
                result.invalidation = apply_provider_mutations(
                    self.bounder,
                    result.inserted_ids,
                    result.removed_ids,
                    resolver=maint,
                )
                result.epoch = self.graph.epoch
                self._refresh_subscriptions(maint, result)
                # Charged cost of the whole batch: provider refills plus the
                # bounds-first standing-query re-establishment.
                result.strong_calls = self.oracle.calls - before
        for kind, ids in (
            ("insert", result.inserted_ids),
            ("remove", result.removed_ids),
        ):
            if ids:
                self._m_mutations[kind].inc(len(ids))
        for what, count in result.invalidation.items():
            if count:
                self._m_invalidation.labels(what=what).inc(count)
        return result

    # -- standing queries ----------------------------------------------------

    def subscribe_knn(self, query: int, k: int) -> Subscription:
        """Register a standing kNN query; returns its live subscription."""
        query, k = int(query), int(k)
        if not 0 <= query < self.graph.n or not self.graph.is_alive(query):
            raise ValueError(f"query={query} is not a live object")
        with self._rw.write_locked():
            with self._oracle_lock:
                resolver = SmartResolver(
                    self.oracle, bounder=self.bounder, graph=self.graph
                )
                pool = [c for c in self.graph.alive_ids() if c != query]
                result = [tuple(e) for e in resolver.knearest(query, pool, k)]
        return self.subscriptions.subscribe("knn", {"query": query, "k": k}, result)

    def subscribe_knng(self, k: int) -> Subscription:
        """Register a standing kNN-graph over the live ids (row map by id)."""
        k = int(k)
        with self._rw.write_locked():
            with self._oracle_lock:
                resolver = SmartResolver(
                    self.oracle, bounder=self.bounder, graph=self.graph
                )
                alive = self.graph.alive_ids()
                rows = {
                    u: tuple(
                        tuple(e)
                        for e in resolver.knearest(
                            u, [c for c in alive if c != u], k
                        )
                    )
                    for u in alive
                }
        return self.subscriptions.subscribe("knng", {"k": k}, rows)

    def subscription_deltas(
        self, sub_id: int, since: int = 0
    ) -> List[SubscriptionDelta]:
        """Deltas recorded for ``sub_id`` with ``seq > since``, oldest first."""
        return self.subscriptions.deltas(sub_id, since)

    def unsubscribe(self, sub_id: int) -> None:
        """Drop a standing query."""
        self.subscriptions.unsubscribe(sub_id)

    def _refresh_subscriptions(
        self, resolver: SmartResolver, result: MutationResult
    ) -> None:
        """Re-establish every standing query after a batch (bounds-first)."""
        subs = self.subscriptions.all()
        if not subs:
            return
        removed = set(result.removed_ids)
        inserted = list(dict.fromkeys(result.inserted_ids))
        alive = self.graph.alive_ids()
        for sub in subs:
            if sub.kind == "knn":
                new = self._refresh_knn(resolver, sub, inserted, removed, alive)
            else:
                new = self._refresh_knng(resolver, sub, inserted, removed, alive)
            delta = self.subscriptions.record(sub, new, result.epoch)
            if delta is not None:
                self._m_delta_size.observe(
                    float(len(delta.entered) + len(delta.left))
                )

    def _refresh_knn(self, resolver, sub, inserted, removed, alive):
        query = int(sub.params["query"])
        k = int(sub.params["k"])
        if not self.graph.is_alive(query) or query in removed:
            # The standing query's own object left (a recycled slot is a new
            # incarnation): the result empties until re-subscription.
            return []
        pool = [c for c in alive if c != query]
        old = [e for e in sub.result if e[1] not in removed]
        if len(old) < len(sub.result) or query in inserted:
            # Membership shrank (or the query itself is new): recompute.
            return [tuple(e) for e in resolver.knearest(query, pool, k)]
        fresh = [x for x in inserted if x != query]
        if not fresh:
            return list(sub.result)
        # Bounds-first insert screening: with kth the current k-th distance,
        # LB(q, x) > kth proves x outside the result — the final kth can only
        # shrink, so the skip stays sound as candidates accumulate.
        kth = old[k - 1][0] if len(old) >= k else math.inf
        merged = list(old)
        changed = False
        for x in fresh:
            if len(old) >= k and resolver.bounds(query, x).lower > kth:
                continue
            merged.append((resolver.distance(query, x), x))
            changed = True
        if not changed:
            return list(sub.result)
        merged.sort()
        return merged[:k]

    def _refresh_knng(self, resolver, sub, inserted, removed, alive):
        k = int(sub.params["k"])
        old = sub.result
        inserted_set = set(inserted)
        rows: Dict[int, tuple] = {}
        for u in alive:
            row = old.get(u) if u not in inserted_set else None
            if row is None:
                pool = [c for c in alive if c != u]
                rows[u] = tuple(
                    tuple(e) for e in resolver.knearest(u, pool, k)
                )
                continue
            survivors = [e for e in row if e[1] not in removed]
            if len(survivors) < len(row):
                pool = [c for c in alive if c != u]
                rows[u] = tuple(
                    tuple(e) for e in resolver.knearest(u, pool, k)
                )
                continue
            fresh = [x for x in inserted if x != u]
            if not fresh:
                rows[u] = tuple(row)
                continue
            kth = survivors[k - 1][0] if len(survivors) >= k else math.inf
            merged = list(survivors)
            changed = False
            for x in fresh:
                if len(survivors) >= k and resolver.bounds(u, x).lower > kth:
                    continue
                merged.append((resolver.distance(u, x), x))
                changed = True
            if not changed:
                rows[u] = tuple(row)
            else:
                merged.sort()
                rows[u] = tuple(tuple(e) for e in merged[:k])
        return rows

    # -- persistence ---------------------------------------------------------

    def current_fingerprint(self) -> Optional[str]:
        """The dataset fingerprint of the *current* live state.

        A mutable space recomputes its state-derived fingerprint (so
        snapshots taken after a batch carry the post-mutation identity);
        engines with an explicit fingerprint (sharded shards carry
        plan-scoped ones) return it unchanged.
        """
        if self._fingerprint_from_space:
            own_fp = getattr(self.space, "fingerprint", None)
            if callable(own_fp):
                return own_fp()
        return self.fingerprint

    def _metadata(self) -> Dict[str, Any]:
        with self._indexes_lock:
            indexes = {name: g.to_dict() for name, g in self.indexes.items()}
        return {
            "fingerprint": self.current_fingerprint(),
            "oracle": type(self.oracle).__name__,
            "provider": self.provider_name,
            "n": self.oracle.n,
            # Built navigable graphs ride along in the archive metadata, so
            # a restored engine serves search_index jobs immediately.
            "indexes": indexes,
        }

    def snapshot(self, path: Optional[str] = None) -> str:
        """Write the warm graph to ``path`` (default: ``snapshot_path``).

        Taken under the shared lock: commits pause for the write, queries
        do not.
        """
        target = path or self.snapshot_path
        if target is None:
            raise ConfigurationError(
                "no snapshot path: pass one or configure snapshot_path"
            )
        with self._rw.read_locked():
            save_graph(self.graph, target, metadata=self._metadata())
        with self._stats_lock:
            self._edges_since_snapshot = 0
        self._m_snapshots.inc()
        return str(target)

    def restore(self, path: str) -> int:
        """Merge a snapshot's edges into the live graph, free of charge.

        Verifies the archive's universe size and dataset fingerprint first
        (:class:`~repro.core.exceptions.SnapshotMismatchError` on mismatch),
        then seeds the oracle cache and commits every novel edge under the
        exclusive lock.  Returns the number of newly added edges.
        """
        archive = load_archive(path)
        if archive.graph.n != self.oracle.n:
            raise SnapshotMismatchError(
                f"universe of {self.oracle.n}", f"universe of {archive.graph.n}"
            )
        theirs = archive.fingerprint
        mine = self.current_fingerprint()
        if mine is not None and theirs is not None and theirs != mine:
            raise SnapshotMismatchError(mine, theirs)
        added = 0
        with self._rw.write_locked():
            if archive.graph.mutated and (self.graph.num_edges or self.graph.mutated):
                # A mutated (v3) snapshot carries an alive mask and monotone
                # epochs that can only be installed over a pristine graph.
                raise SnapshotMismatchError(
                    "a pristine graph (mutated snapshots restore at startup)",
                    f"live graph at epoch {self.graph.epoch} "
                    f"with {self.graph.num_edges} edges",
                )
            # Verify before mutating: an archive whose edges contradict the
            # live graph is from a different dataset, fingerprint or not.
            for i, j, w in archive.graph.edges():
                existing = self.graph.get(i, j)
                if existing is not None and existing != w:
                    raise SnapshotMismatchError(
                        f"edge ({i},{j})={existing}",
                        f"edge ({i},{j})={w}",
                    )
            with self._oracle_lock:
                seed_oracle_cache(self.oracle, archive.graph)
                for i, j, w in archive.graph.edges():
                    if self.graph.get(i, j) is not None:
                        continue
                    self.graph.add_edge(i, j, w)
                    self.bounder.notify_resolved(i, j, w)
                    added += 1
                if archive.graph.mutated:
                    n = archive.graph.n
                    self.graph.restore_mutation_state(
                        [archive.graph.is_alive(u) for u in range(n)],
                        archive.graph.epoch,
                        [archive.graph.node_epoch(u) for u in range(n)],
                    )
        persisted = (archive.metadata or {}).get("indexes", {})
        if persisted:
            with self._indexes_lock:
                for name, payload in persisted.items():
                    self.indexes[str(name)] = NavigableGraph.from_dict(payload)
        if added:
            self._m_restored.inc(added)
        return added

    def adopt_store(
        self, store, expected_fingerprint: Optional[str] = None
    ) -> int:
        """Seed the engine from a shared-memory CSR store, free of charge.

        The shard-process warm start: attach a
        :class:`~repro.core.csr_store.CSRStore` another process owns (or a
        writable one this process created), merge its visible edges into
        the graph and the oracle cache, and — when the store then exactly
        mirrors the graph — bind it so ``graph.edge_arrays()`` serves the
        shared columns zero-copy.  ``expected_fingerprint`` overrides
        ``self.fingerprint`` for the metadata check (sharded engines carry
        per-shard fingerprints while the store records the base dataset's).
        Returns the number of newly added edges.
        """
        if store.n != self.oracle.n:
            raise SnapshotMismatchError(
                f"universe of {self.oracle.n}", f"universe of {store.n}"
            )
        expected = (
            expected_fingerprint if expected_fingerprint is not None else self.fingerprint
        )
        theirs = store.metadata.get("fingerprint") if store.metadata else None
        if expected is not None and theirs is not None and theirs != expected:
            raise SnapshotMismatchError(expected, str(theirs))
        added = 0
        with self._rw.write_locked():
            for i, j, w in store.iter_edges():
                existing = self.graph.get(i, j)
                if existing is not None and existing != w:
                    raise SnapshotMismatchError(
                        f"edge ({i},{j})={existing}", f"edge ({i},{j})={w}"
                    )
            with self._oracle_lock:
                for i, j, w in store.iter_edges():
                    self.oracle.seed(i, j, w)
                    if self.graph.get(i, j) is None:
                        self.graph.add_edge(i, j, w)
                        self.bounder.notify_resolved(i, j, w)
                        added += 1
                if (
                    self.graph.store is None
                    and store.num_edges == self.graph.num_edges
                ):
                    self.graph.attach_store(store)
        if added:
            self._m_restored.inc(added)
        return added

    def _on_edge(self, i: int, j: int, distance: float) -> None:
        # Runs under the exclusive lock (inside add_edge); keep it O(1).
        self._edges_since_snapshot += 1

    def _maybe_snapshot(self) -> None:
        if self.snapshot_path is None or self.snapshot_every is None:
            return
        if self._edges_since_snapshot >= self.snapshot_every:
            self.snapshot()

    # -- observability -------------------------------------------------------

    def snapshot_stats(self) -> EngineStats:
        """An engine-wide stats snapshot, read straight off the registry.

        ``EngineStats`` is a *view*: every number here is either a registry
        sample (job counts, warm hits, resolver counters) or read from its
        single authoritative owner (oracle, queue, graph) — the same
        sources ``render_prometheus`` exposes, so ``/metrics`` and the
        ``stats`` op can never disagree.
        """
        with self._stats_lock:
            latencies = list(self._latencies)
        resolver = resolver_stats_view(self.registry)
        resolver.dijkstra_runs = int(getattr(self.bounder, "dijkstra_runs", 0))
        weak_calls = int(getattr(self._weak_bounder, "weak_calls", 0))
        weak_band = int(getattr(self._weak_bounder, "weak_band", 0))
        resolver.weak_calls = weak_calls
        resolver.weak_band = weak_band
        queries = resolver.bound_queries

        def status_count(status: JobStatus) -> int:
            return int(self._m_job_status[status].value)

        return EngineStats(
            uptime_seconds=time.monotonic() - self._started_at,
            job_workers=len(self._workers),
            queue_depth=len(self._queue),
            jobs_submitted=int(self._m_submitted.value),
            jobs_completed=status_count(JobStatus.COMPLETED),
            jobs_partial=status_count(JobStatus.PARTIAL),
            jobs_failed=status_count(JobStatus.FAILED),
            jobs_cancelled=status_count(JobStatus.CANCELLED),
            jobs_expired=status_count(JobStatus.EXPIRED),
            oracle_calls=self.oracle.calls,
            bootstrap_calls=self.bootstrap_calls,
            warm_resolutions=int(self._m_warm.value),
            restored_edges=int(self._m_restored.value),
            snapshots_written=int(self._m_snapshots.value),
            graph_edges=self.graph.num_edges,
            graph_epoch=self.graph.epoch,
            bound_queries=queries,
            bound_cache_hits=resolver.bound_cache_hits,
            bound_memo_hit_rate=(
                resolver.bound_cache_hits / queries if queries else 0.0
            ),
            latency_p50_s=percentile(latencies, 50) if latencies else 0.0,
            latency_p95_s=percentile(latencies, 95) if latencies else 0.0,
            resolver=resolver,
            weak_calls=weak_calls,
            weak_band=weak_band,
            mutations_applied=int(
                self._m_mutations["insert"].value
                + self._m_mutations["remove"].value
            ),
            subscriptions_active=self.subscriptions.active,
        )

    def render_metrics(self) -> str:
        """The registry in Prometheus text format (the ``/metrics`` body)."""
        return self.registry.render_prometheus()

    # -- lifecycle -----------------------------------------------------------

    def close(self, snapshot: bool = True) -> None:
        """Drain the queue, stop workers, snapshot (if configured), shut down.

        Idempotent.  Queued jobs that never ran finish ``cancelled``.
        """
        if self._closed:
            return
        self._closed = True
        for job in self._queue.close():
            self._finish(job, JobResult(status=JobStatus.CANCELLED))
        for worker in self._workers:
            worker.join()
        if snapshot and self.snapshot_path is not None:
            self.snapshot()
        if self.executor is not None:
            self.executor.close()
        if self.tiered is not None:
            self.tiered.close()

    def __enter__(self) -> "ProximityEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def space_fingerprint(space: MetricSpace, probes: int = 4) -> str:
    """A cheap dataset-identity string: type, size, and a few probed distances.

    The probes catch the dangerous mismatch — same type and size but
    different data — without meaningfully spending oracle budget (they go
    through the raw space, and an engine built via :meth:`for_space` would
    pay those same pairs again only if a query needs them).
    """
    n = space.n
    parts = [type(space).__name__, str(n)]
    if n > 1:
        step = max(1, n // (probes + 1))
        for t in range(probes):
            i = (t * step) % n
            j = (i + 1 + t) % n
            if i != j:
                parts.append(f"{space.distance(i, j):.9g}")
    return ":".join(parts)
