"""repro.obs — unified observability: metrics registry, spans, and sinks.

One queryable surface for every counter the repo keeps.  The registry's
numbers are exposed three ways:

* ``GET /metrics`` (or ``{"op": "metrics"}``) on a running
  :class:`~repro.service.server.ProximityServer`,
* ``repro stats --snapshot`` on the CLI, and
* a :class:`~repro.obs.sinks.MetricsSink` handed to
  :func:`~repro.harness.runner.run_experiment`.

See ``docs/observability_guide.md`` for the metric-name catalogue.
"""

from repro.obs.bridge import (
    RESOLVER_METRICS,
    comparison_call_counter,
    oracle_call_counter,
    publish_resolver_stats,
    resolver_stats_view,
)
from repro.obs.registry import (
    ANSWER_STRETCH_BUCKETS,
    BATCH_SIZE_BUCKETS,
    BOUND_GAP_BUCKETS,
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    merge_metrics,
    registry_totals,
    relabel_metrics,
)
from repro.obs.sinks import CollectingSink, JsonlSink, MetricsSink
from repro.obs.spans import Span, SpanTracer

__all__ = [
    "ANSWER_STRETCH_BUCKETS",
    "BATCH_SIZE_BUCKETS",
    "BOUND_GAP_BUCKETS",
    "LATENCY_BUCKETS_S",
    "CollectingSink",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsSink",
    "RESOLVER_METRICS",
    "Span",
    "SpanTracer",
    "comparison_call_counter",
    "merge_metrics",
    "oracle_call_counter",
    "publish_resolver_stats",
    "registry_totals",
    "relabel_metrics",
    "resolver_stats_view",
]
