"""Span-based tracing: nested ``span("phase")`` context managers.

This replaces the ad-hoc ``push_phase``/``pop_phase`` stack that
:class:`~repro.harness.tracing.TracingOracle` used to keep.  The crucial
difference is that the span stack is **thread-local**: when several engine
workers execute jobs concurrently, each worker's spans nest independently
instead of interleaving on one shared stack (which mislabeled oracle calls
under concurrency — the exact failure mode the old stack had).

A :class:`SpanTracer` optionally records every span's wall-clock duration
into a labeled histogram on a :class:`~repro.obs.registry.MetricsRegistry`,
which is how per-job phase attribution reaches the ``/metrics`` surface.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Sequence

from repro.obs.registry import LATENCY_BUCKETS_S, MetricsRegistry

__all__ = ["Span", "SpanTracer"]


class Span:
    """One active span; a re-usable context manager handle.

    Created by :meth:`SpanTracer.span`; entering pushes the label onto the
    tracer's thread-local stack, exiting pops it and (when the tracer has
    a registry) observes the elapsed wall-clock seconds into the tracer's
    duration histogram labeled ``{span="<label>"}``.
    """

    __slots__ = ("_tracer", "label", "_started")

    def __init__(self, tracer: "SpanTracer", label: str):
        self._tracer = tracer
        self.label = label
        self._started: Optional[float] = None

    def __enter__(self) -> "Span":
        self._tracer.push(self.label)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = 0.0
        if self._started is not None:
            elapsed = time.perf_counter() - self._started
            self._started = None
        self._tracer._exit_span(self.label, elapsed)


class SpanTracer:
    """Thread-local stack of nested phase labels with optional timing.

    ``tracer.current`` names the innermost active span on the *calling*
    thread (``root`` when none is active), so an oracle can attribute each
    charged call to whichever phase the committing thread is inside.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        histogram: str = "repro_span_seconds",
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
        root: str = "default",
    ):
        self.root = root
        self._local = threading.local()
        self._hist = None
        if registry is not None:
            self._hist = registry.histogram(
                histogram,
                buckets,
                help_text="Wall-clock duration of traced spans by label.",
                labelnames=("span",),
            )

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = [self.root]
            self._local.stack = stack
        return stack

    @property
    def current(self) -> str:
        """Innermost active span label on the calling thread."""
        return self._stack()[-1]

    @property
    def depth(self) -> int:
        """Number of explicitly-entered spans on the calling thread."""
        return len(self._stack()) - 1

    def path(self, separator: str = "/") -> str:
        """The full nesting path on the calling thread, e.g. ``job-3/bounds``."""
        stack = self._stack()
        if len(stack) == 1:
            return self.root
        return separator.join(stack[1:])

    def span(self, label: str) -> Span:
        """A context manager that nests ``label`` for the enclosed block."""
        return Span(self, str(label))

    def push(self, label: str) -> None:
        """Push ``label``; prefer :meth:`span`, which cannot be left unbalanced."""
        self._stack().append(str(label))

    def pop(self) -> str:
        """Pop and return the innermost label; raises when only root remains."""
        stack = self._stack()
        if len(stack) <= 1:
            raise RuntimeError("span pop without a matching push")
        return stack.pop()

    def _exit_span(self, label: str, elapsed: float) -> None:
        self.pop()
        if self._hist is not None:
            self._hist.labels(span=label).observe(elapsed)

    def reset(self) -> None:
        """Clear the calling thread's stack back to the root label."""
        self._local.stack = [self.root]
