"""Thread-safe metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the single queryable surface for every counter the repo
keeps — resolver comparison/resolution tallies, executor retries and
timeouts, graph mirror rebuilds, engine job latencies.  It follows the
Prometheus data model closely enough that :meth:`MetricsRegistry.render_prometheus`
emits scrape-ready text exposition format, while :meth:`MetricsRegistry.snapshot`
returns a flat ``{sample_name: value}`` dict for programmatic use (the
harness stores it on ``ExperimentRecord.metrics``).

Design notes
------------
* **Hot paths stay untouched.**  `SmartResolver` keeps mutating its plain
  ``ResolverStats`` dataclass; deltas are folded into the registry at
  publish points (``collect_stats``, engine ``_finish``).  This is what
  keeps resolved-edge sequences byte-identical with or without a registry
  attached.
* **Callback-backed instruments.**  A counter or gauge may be constructed
  with ``fn=...`` so its value is *read* from an existing source of truth
  (e.g. ``oracle.calls``, ``len(queue)``) instead of being incremented.
  ``inc()``/``set()`` on such an instrument raise — there is exactly one
  writer for every number.
* **Labels.**  A metric family declared with ``labelnames`` hands out
  per-label-set children via :meth:`MetricFamily.labels`; children are
  cached so repeated lookups are dict hits.

All mutation goes through a per-registry :class:`threading.RLock`, so
concurrent workers can publish into one registry safely.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "LATENCY_BUCKETS_S",
    "BOUND_GAP_BUCKETS",
    "BATCH_SIZE_BUCKETS",
    "ANSWER_STRETCH_BUCKETS",
]

#: Buckets for realised-stretch histograms (``estimate / lower bound`` of a
#: bounded-stretch answer, dimensionless, >= 1).  Dense near 1 because most
#: accepted estimates come from already-tight intervals; the tail covers the
#: largest budgets anyone sensibly runs.
ANSWER_STRETCH_BUCKETS: Tuple[float, ...] = (
    1.0,
    1.01,
    1.05,
    1.1,
    1.2,
    1.35,
    1.5,
    1.75,
    2.0,
    3.0,
    5.0,
)

#: Default buckets (seconds) for latency-style histograms: job latency,
#: span durations, bound-computation time.  Upper bounds are inclusive
#: (Prometheus ``le`` semantics).
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Default buckets for bound-gap histograms (``ub - lb`` at decision time,
#: normalised by nothing — raw distance units).  Useful for judging how
#: tight a bound scheme is (paper Figs. 5–9 are driven by exactly this gap).
BOUND_GAP_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

#: Default buckets for batch-size histograms (executor dispatch sizes).
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    """Escape a label value for the Prometheus text format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Format a sample value the way Prometheus clients do."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _format_labels(labels: Sequence[Tuple[str, str]]) -> str:
    """Render ``{k="v",...}`` (empty string when there are no labels)."""
    if not labels:
        return ""
    inner = ",".join(
        '%s="%s"' % (name, _escape_label_value(str(value))) for name, value in labels
    )
    return "{" + inner + "}"


class Counter:
    """A monotonically non-decreasing value.

    Either incremented via :meth:`inc` or, when constructed with ``fn``,
    read live from a callback (in which case :meth:`inc` raises).
    Float increments are allowed so time totals (e.g. bound seconds) can
    be counters too.
    """

    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self, lock: threading.RLock, fn: Optional[Callable[[], float]] = None):
        self._lock = lock
        self._value = 0.0
        self._fn = fn

    @property
    def is_callback(self) -> bool:
        """True when this counter reads its value from a callback."""
        return self._fn is not None

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        if self._fn is not None:
            raise RuntimeError("cannot inc() a callback-backed counter")
        if amount < 0:
            raise ValueError("counters can only increase (got %r)" % (amount,))
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current counter value."""
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value

    def samples(self, name: str, labels: Sequence[Tuple[str, str]]) -> List[Tuple[str, str, float]]:
        """Exposition samples as ``(sample_name, label_text, value)`` rows."""
        return [(name, _format_labels(labels), self.value)]


class Gauge:
    """A value that can go up and down (queue depth, graph size, uptime).

    Supports callback backing exactly like :class:`Counter`.
    """

    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self, lock: threading.RLock, fn: Optional[Callable[[], float]] = None):
        self._lock = lock
        self._value = 0.0
        self._fn = fn

    @property
    def is_callback(self) -> bool:
        """True when this gauge reads its value from a callback."""
        return self._fn is not None

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        if self._fn is not None:
            raise RuntimeError("cannot set() a callback-backed gauge")
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the gauge."""
        if self._fn is not None:
            raise RuntimeError("cannot inc() a callback-backed gauge")
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """Current gauge value."""
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value

    def samples(self, name: str, labels: Sequence[Tuple[str, str]]) -> List[Tuple[str, str, float]]:
        """Exposition samples as ``(sample_name, label_text, value)`` rows."""
        return [(name, _format_labels(labels), self.value)]


class Histogram:
    """Fixed-bucket histogram with cumulative Prometheus ``le`` semantics.

    ``observe(v)`` increments the first bucket whose upper bound is
    ``>= v`` plus the implicit ``+Inf`` bucket, and accumulates ``sum``
    and ``count``.  Non-finite observations are counted (into ``+Inf``)
    but excluded from ``sum`` so a single ``inf`` bound gap cannot poison
    the mean.
    """

    __slots__ = ("_lock", "_bounds", "_counts", "_inf_count", "_sum")

    def __init__(self, lock: threading.RLock, buckets: Sequence[float]):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram bucket bounds must be distinct")
        self._lock = lock
        self._bounds = bounds
        self._counts = [0] * len(bounds)
        self._inf_count = 0
        self._sum = 0.0

    @property
    def bucket_bounds(self) -> Tuple[float, ...]:
        """The finite bucket upper bounds, ascending (``+Inf`` implicit)."""
        return self._bounds

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            if math.isfinite(value):
                self._sum += value
                # linear scan: bucket lists are short (<= ~16) and this is
                # not a hot path — publish points, span exits, batch ends.
                for idx, bound in enumerate(self._bounds):
                    if value <= bound:
                        self._counts[idx] += 1
                        break
            self._inf_count += 1

    @property
    def count(self) -> int:
        """Total number of observations."""
        with self._lock:
            return self._inf_count

    @property
    def sum(self) -> float:
        """Sum of all finite observations."""
        with self._lock:
            return self._sum

    def cumulative_counts(self) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` rows including the ``+Inf`` bucket."""
        with self._lock:
            rows: List[Tuple[float, int]] = []
            running = 0
            for bound, count in zip(self._bounds, self._counts):
                running += count
                rows.append((bound, running))
            rows.append((math.inf, self._inf_count))
            return rows

    def samples(self, name: str, labels: Sequence[Tuple[str, str]]) -> List[Tuple[str, str, float]]:
        """Exposition samples: ``_bucket`` rows plus ``_sum`` and ``_count``."""
        rows: List[Tuple[str, str, float]] = []
        for bound, cumulative in self.cumulative_counts():
            bucket_labels = list(labels) + [("le", _format_value(bound))]
            rows.append((name + "_bucket", _format_labels(bucket_labels), float(cumulative)))
        label_text = _format_labels(labels)
        rows.append((name + "_sum", label_text, self.sum))
        rows.append((name + "_count", label_text, float(self.count)))
        return rows


class MetricFamily:
    """A named metric plus its per-label-set children.

    A family declared without ``labelnames`` has a single anonymous child
    and proxies its mutation API (``inc``/``set``/``observe``/``value``…)
    directly, so ``registry.counter("x").inc()`` works without an explicit
    ``labels()`` hop.
    """

    def __init__(
        self,
        kind: str,
        name: str,
        help_text: str,
        labelnames: Tuple[str, ...],
        lock: threading.RLock,
        buckets: Optional[Sequence[float]] = None,
        fn: Optional[Callable[[], float]] = None,
    ):
        self.kind = kind
        self.name = name
        self.help = help_text
        self.labelnames = labelnames
        self._lock = lock
        self._buckets = tuple(buckets) if buckets is not None else None
        self._fn = fn
        self._children: Dict[Tuple[str, ...], object] = {}
        if not labelnames:
            # Eagerly create the anonymous child so proxying never races.
            self._children[()] = self._make_child(fn)

    def _make_child(self, fn: Optional[Callable[[], float]] = None):
        if self.kind == "counter":
            return Counter(self._lock, fn=fn)
        if self.kind == "gauge":
            return Gauge(self._lock, fn=fn)
        if self.kind == "histogram":
            if fn is not None:
                raise ValueError("histograms cannot be callback-backed")
            return Histogram(self._lock, self._buckets or LATENCY_BUCKETS_S)
        raise ValueError("unknown metric kind %r" % (self.kind,))

    @property
    def is_callback(self) -> bool:
        """True when the (anonymous) child reads from a callback."""
        return self._fn is not None

    def labels(self, **labelvalues: str):
        """Return (creating if needed) the child for this exact label set."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                "metric %r takes labels %r, got %r"
                % (self.name, self.labelnames, tuple(sorted(labelvalues)))
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _anonymous(self):
        if self.labelnames:
            raise ValueError(
                "metric %r is labeled by %r; use .labels(...) first"
                % (self.name, self.labelnames)
            )
        return self._children[()]

    # ---- anonymous-child proxies -------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        """Proxy ``inc`` to the anonymous child (label-less families only)."""
        self._anonymous().inc(amount)

    def set(self, value: float) -> None:
        """Proxy ``set`` to the anonymous child (label-less gauges only)."""
        self._anonymous().set(value)

    def dec(self, amount: float = 1.0) -> None:
        """Proxy ``dec`` to the anonymous child (label-less gauges only)."""
        self._anonymous().dec(amount)

    def observe(self, value: float) -> None:
        """Proxy ``observe`` to the anonymous child (label-less histograms only)."""
        self._anonymous().observe(value)

    @property
    def value(self) -> float:
        """Proxy ``value`` from the anonymous child (label-less families only)."""
        return self._anonymous().value

    @property
    def count(self) -> int:
        """Proxy histogram ``count`` from the anonymous child."""
        return self._anonymous().count

    @property
    def sum(self) -> float:
        """Proxy histogram ``sum`` from the anonymous child."""
        return self._anonymous().sum

    def cumulative_counts(self) -> List[Tuple[float, int]]:
        """Proxy histogram ``cumulative_counts`` from the anonymous child."""
        return self._anonymous().cumulative_counts()

    @property
    def bucket_bounds(self) -> Tuple[float, ...]:
        """Proxy histogram ``bucket_bounds`` from the anonymous child."""
        return self._anonymous().bucket_bounds

    # ---- exposition ---------------------------------------------------

    def samples(self) -> List[Tuple[str, str, float]]:
        """All samples of all children, label sets in insertion order."""
        with self._lock:
            items = list(self._children.items())
        rows: List[Tuple[str, str, float]] = []
        for key, child in items:
            labels = list(zip(self.labelnames, key))
            rows.extend(child.samples(self.name, labels))
        return rows


class MetricsRegistry:
    """A named collection of metric families with text exposition.

    Accessors (:meth:`counter`, :meth:`gauge`, :meth:`histogram`) are
    idempotent: asking for an existing name returns the existing family,
    raising only when the kind (or histogram buckets) conflict, or when a
    second callback would fight over the same name.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: Dict[str, MetricFamily] = {}

    def _family(
        self,
        kind: str,
        name: str,
        help_text: str,
        labelnames: Iterable[str],
        buckets: Optional[Sequence[float]] = None,
        fn: Optional[Callable[[], float]] = None,
    ) -> MetricFamily:
        if not _METRIC_NAME_RE.match(name):
            raise ValueError("invalid metric name %r" % (name,))
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_NAME_RE.match(label) or label == "le":
                raise ValueError("invalid label name %r for metric %r" % (label, name))
        if fn is not None and labelnames:
            raise ValueError("callback-backed metrics cannot be labeled (%r)" % (name,))
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ValueError(
                        "metric %r already registered as a %s" % (name, existing.kind)
                    )
                if existing.labelnames != labelnames and labelnames:
                    raise ValueError(
                        "metric %r already registered with labels %r"
                        % (name, existing.labelnames)
                    )
                if fn is not None:
                    raise ValueError(
                        "metric %r already registered; refusing a second callback" % (name,)
                    )
                return existing
            family = MetricFamily(kind, name, help_text, labelnames, self._lock, buckets, fn)
            self._families[name] = family
            return family

    def counter(
        self,
        name: str,
        help_text: str = "",
        labelnames: Iterable[str] = (),
        fn: Optional[Callable[[], float]] = None,
    ) -> MetricFamily:
        """Get or create a counter family."""
        return self._family("counter", name, help_text, labelnames, fn=fn)

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labelnames: Iterable[str] = (),
        fn: Optional[Callable[[], float]] = None,
    ) -> MetricFamily:
        """Get or create a gauge family."""
        return self._family("gauge", name, help_text, labelnames, fn=fn)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
        help_text: str = "",
        labelnames: Iterable[str] = (),
    ) -> MetricFamily:
        """Get or create a histogram family with fixed ``buckets``."""
        with self._lock:
            existing = self._families.get(name)
            if existing is not None and existing.kind == "histogram":
                declared = existing._buckets or ()
                if tuple(sorted(float(b) for b in buckets)) != tuple(declared):
                    raise ValueError(
                        "histogram %r already registered with different buckets" % (name,)
                    )
            return self._family("histogram", name, help_text, labelnames, buckets=buckets)

    def get(self, name: str) -> Optional[MetricFamily]:
        """Return the family registered under ``name``, or None."""
        with self._lock:
            return self._families.get(name)

    def families(self) -> List[MetricFamily]:
        """All families in registration order."""
        with self._lock:
            return list(self._families.values())

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{sample_name{labels}: value}`` dict of every sample."""
        out: Dict[str, float] = {}
        for family in self.families():
            for sample_name, label_text, value in family.samples():
                out[sample_name + label_text] = value
        return out

    def render_prometheus(self) -> str:
        """Render the whole registry in Prometheus text exposition format."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append("# HELP %s %s" % (family.name, family.help))
            lines.append("# TYPE %s %s" % (family.name, family.kind))
            for sample_name, label_text, value in family.samples():
                lines.append("%s%s %s" % (sample_name, label_text, _format_value(value)))
        return "\n".join(lines) + "\n"


def relabel_metrics(text: str, labels: Mapping[str, str]) -> str:
    """Inject extra labels into every sample of a Prometheus text page.

    The sharded service renders each shard's registry *in the shard
    process* and stamps ``{shard="k"}`` onto the samples here, so one
    scrape of the front-end distinguishes every shard's counters.  ``HELP``
    and ``TYPE`` lines pass through untouched; a sample that already has a
    label block gets the new pairs prepended, a bare sample gains one.
    """
    extra = ",".join(
        '%s="%s"' % (name, _escape_label_value(str(value)))
        for name, value in labels.items()
    )
    if not extra:
        return text
    out: List[str] = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            out.append(line)
            continue
        sample, _, value = line.rpartition(" ")
        if not sample:
            out.append(line)
            continue
        if sample.endswith("}"):
            name, _, label_body = sample.partition("{")
            sample = "%s{%s,%s" % (name, extra, label_body)
        else:
            sample = "%s{%s}" % (sample, extra)
        out.append("%s %s" % (sample, value))
    return "\n".join(out) + ("\n" if text.endswith("\n") else "")


def merge_metrics(pages: Sequence[str]) -> str:
    """Concatenate Prometheus text pages, deduplicating HELP/TYPE headers.

    Samples from later pages for an already-seen family are grouped under
    the first page's header block (the text format allows each ``# TYPE``
    at most once per exposition).  Use together with
    :func:`relabel_metrics` so same-name samples stay distinguishable.
    """
    order: List[str] = []
    headers: Dict[str, List[str]] = {}
    samples: Dict[str, List[str]] = {}
    for page in pages:
        for line in page.splitlines():
            if not line:
                continue
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                family = line.split(" ", 3)[2]
                if family not in headers:
                    headers[family] = []
                    samples[family] = []
                    order.append(family)
                if line not in headers[family]:
                    headers[family].append(line)
                continue
            family = line.split("{", 1)[0].split(" ", 1)[0]
            # Histogram samples (_bucket/_sum/_count) belong to their base
            # family's block when one exists.
            for suffix in ("_bucket", "_sum", "_count"):
                base = family[: -len(suffix)] if family.endswith(suffix) else None
                if base and base in headers:
                    family = base
                    break
            if family not in headers:
                headers[family] = []
                samples[family] = []
                order.append(family)
            samples[family].append(line)
    lines: List[str] = []
    for family in order:
        lines.extend(headers[family])
        lines.extend(samples[family])
    return "\n".join(lines) + "\n"


def registry_totals(snapshot: Mapping[str, float], prefix: str) -> float:
    """Sum every sample in ``snapshot`` whose name starts with ``prefix``.

    Convenience for tests and sinks that want a per-family total across
    label sets (e.g. all ``repro_jobs_total{status=...}`` children).
    """
    total = 0.0
    for key, value in snapshot.items():
        bare = key.split("{", 1)[0]
        if bare == prefix:
            total += value
    return total
