"""Metric sinks: where per-experiment registry snapshots get delivered.

The harness calls ``sink.export(snapshot)`` once per experiment with the
flat ``{sample_name: value}`` dict from
:meth:`~repro.obs.registry.MetricsRegistry.snapshot`; the same snapshot is
stored on ``ExperimentRecord.metrics``.  Anything with an ``export``
method works (:class:`MetricsSink` is a structural protocol); two concrete
sinks cover the common cases without external dependencies.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Union

try:  # Protocol is 3.8+; fall back gracefully for exotic interpreters.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        """No-op fallback when ``typing.Protocol`` is unavailable."""
        return cls


__all__ = ["MetricsSink", "CollectingSink", "JsonlSink"]


@runtime_checkable
class MetricsSink(Protocol):
    """Structural protocol for anything that accepts registry snapshots."""

    def export(self, snapshot: Mapping[str, float]) -> None:
        """Deliver one flat ``{sample_name: value}`` snapshot."""


class CollectingSink:
    """In-memory sink: keeps every exported snapshot in ``snapshots``."""

    def __init__(self) -> None:
        self.snapshots: List[Dict[str, float]] = []

    def export(self, snapshot: Mapping[str, float]) -> None:
        """Append a defensive copy of ``snapshot``."""
        self.snapshots.append(dict(snapshot))

    @property
    def last(self) -> Dict[str, float]:
        """The most recent snapshot (raises IndexError when empty)."""
        return self.snapshots[-1]


class JsonlSink:
    """Append each snapshot as one JSON line to a file."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def export(self, snapshot: Mapping[str, float]) -> None:
        """Append ``snapshot`` as a sorted-key JSON object line."""
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(dict(snapshot), sort_keys=True) + "\n")
