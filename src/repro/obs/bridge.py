"""Bridges between the hot-path stats dataclasses and the metrics registry.

``ResolverStats`` stays the mutable, lock-free tally that ``SmartResolver``
updates on its hot path — that is what keeps resolved-edge sequences
byte-identical whether or not observability is enabled.  These helpers move
numbers between that world and a :class:`~repro.obs.registry.MetricsRegistry`:

* :func:`publish_resolver_stats` folds the *delta* since the previous
  publish into registry counters (so repeated publishing never
  double-counts), and
* :func:`resolver_stats_view` reconstructs a ``ResolverStats`` from the
  registry, which is how ``EngineStats`` becomes a thin view over the
  registry while keeping its public shape.

The metric-name mapping below is the single source of truth; the docs
catalogue in ``docs/observability_guide.md`` mirrors it.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.obs.registry import MetricsRegistry

__all__ = [
    "RESOLVER_METRICS",
    "publish_resolver_stats",
    "resolver_stats_view",
]

#: field on ``ResolverStats`` -> (metric name, labels, help text).
RESOLVER_METRICS: Tuple[Tuple[str, str, Dict[str, str], str], ...] = (
    (
        "decided_by_bounds",
        "repro_resolver_comparisons_total",
        {"decided_by": "bounds"},
        "Comparison predicates answered, split by what decided them.",
    ),
    (
        "decided_by_oracle",
        "repro_resolver_comparisons_total",
        {"decided_by": "oracle"},
        "Comparison predicates answered, split by what decided them.",
    ),
    (
        "bound_queries",
        "repro_resolver_bound_queries_total",
        {},
        "Lower/upper bound computations requested from the bound provider.",
    ),
    (
        "resolutions",
        "repro_resolver_resolutions_total",
        {},
        "Exact distances resolved (oracle calls plus cache hits).",
    ),
    (
        "oracle_resolutions",
        "repro_resolver_oracle_resolutions_total",
        {},
        "Exact distances that required a charged oracle call.",
    ),
    (
        "cached_resolutions",
        "repro_resolver_cached_resolutions_total",
        {},
        "Exact distances served from the partial distance graph.",
    ),
    (
        "batched_resolutions",
        "repro_resolver_batched_resolutions_total",
        {},
        "Distances resolved through batched resolve_many dispatch.",
    ),
    (
        "bound_time_s",
        "repro_resolver_bound_seconds_total",
        {},
        "Wall-clock seconds spent computing bounds.",
    ),
    (
        "bound_cache_hits",
        "repro_resolver_memo_hits_total",
        {},
        "Bound queries answered from the epoch-keyed bound memo.",
    ),
    (
        "vectorized_batches",
        "repro_resolver_vectorized_batches_total",
        {},
        "Batched bound requests served by a vectorized bounds_many kernel.",
    ),
    (
        "dijkstra_runs",
        "repro_resolver_dijkstra_runs_total",
        {},
        "Dijkstra traversals run by the SPLUB bound provider.",
    ),
    (
        "weak_calls",
        "repro_resolver_weak_calls_total",
        {},
        "Charged weak-tier (banded estimate) oracle calls.",
    ),
    (
        "strong_calls",
        "repro_resolver_strong_calls_total",
        {},
        "Charged strong-tier (exact) oracle calls.",
    ),
    (
        "weak_band",
        "repro_resolver_weak_band_total",
        {},
        "Bound queries strictly tightened by a weak oracle's error band.",
    ),
    (
        "approx_answers",
        "repro_resolver_approx_answers_total",
        {},
        "Distances answered as bounded-stretch estimates without the oracle.",
    ),
)


def publish_resolver_stats(registry: MetricsRegistry, stats, previous=None):
    """Fold ``stats - previous`` into registry counters; return a baseline.

    ``stats`` is any object with ``ResolverStats``'s fields (duck-typed).
    Pass the returned baseline back as ``previous`` on the next publish so
    only new activity is added.  Callback-backed counters (a live source
    already owns that number) are skipped rather than double-written.
    """
    for field_name, metric, labels, help_text in RESOLVER_METRICS:
        current = float(getattr(stats, field_name, 0) or 0)
        prior = float(getattr(previous, field_name, 0) or 0) if previous is not None else 0.0
        delta = current - prior
        if delta <= 0:
            continue
        family = registry.counter(metric, help_text, labelnames=tuple(labels))
        if family.is_callback:
            continue
        child = family.labels(**labels) if labels else family
        child.inc(delta)
    from repro.core.resolver import ResolverStats

    baseline = ResolverStats()
    for field_name, _, _, _ in RESOLVER_METRICS:
        setattr(baseline, field_name, getattr(stats, field_name, 0))
    return baseline


def _sample_value(registry: MetricsRegistry, metric: str, labels: Dict[str, str]) -> float:
    family = registry.get(metric)
    if family is None:
        return 0.0
    child = family.labels(**labels) if labels else family
    return child.value


def resolver_stats_view(registry: MetricsRegistry):
    """Reconstruct a ``ResolverStats`` from the registry's resolver counters."""
    from repro.core.resolver import ResolverStats

    view = ResolverStats()
    for field_name, metric, labels, _ in RESOLVER_METRICS:
        value = _sample_value(registry, metric, labels)
        if field_name == "bound_time_s":
            setattr(view, field_name, value)
        else:
            setattr(view, field_name, int(value))
    return view


def oracle_call_counter(registry: MetricsRegistry, oracle) -> None:
    """Register ``repro_oracle_calls_total`` as a live view of ``oracle.calls``.

    Callback-backed so it reconciles *exactly* with ``oracle.calls`` (and
    hence ``EngineStats.oracle_calls``) at every instant, including charges
    made before the registry was attached.
    """
    registry.counter(
        "repro_oracle_calls_total",
        "Charged distance-oracle calls (cache hits are free).",
        fn=lambda: oracle.calls,
    )
    registry.counter(
        "repro_oracle_retries_total",
        "Oracle evaluations retried by an executor.",
        fn=lambda: oracle.retries,
    )
    registry.counter(
        "repro_oracle_timeouts_total",
        "Oracle evaluations that timed out under an executor deadline.",
        fn=lambda: oracle.timeouts,
    )


def comparison_call_counter(registry: MetricsRegistry, comparison) -> None:
    """Register ``repro_comparison_calls_total`` over a ``ComparisonOracle``.

    Callback-backed, mirroring :func:`oracle_call_counter`: the counter is a
    live view of :attr:`~repro.core.oracle.ComparisonOracle.comparisons`, the
    number of ordering queries ("is ``d(a, b) < d(c, d)``?") the
    comparison-only oracle mode has answered.
    """
    registry.counter(
        "repro_comparison_calls_total",
        "Ordering queries answered by the comparison-only oracle mode.",
        fn=lambda: comparison.comparisons,
    )
