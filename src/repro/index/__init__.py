"""Metric index structures from the paper's related work (§6).

These are *comparators*, not part of the framework: they pay a construction
bill of oracle calls to answer NN/range queries cheaply, whereas the
framework saves calls inside arbitrary proximity algorithms with no upfront
cost.  The benchmarks pit the two approaches against each other on query
workloads.
"""

from repro.index.bktree import BkTree
from repro.index.gnat import Gnat
from repro.index.mtree import MTree
from repro.index.vptree import VpTree

__all__ = ["BkTree", "Gnat", "MTree", "VpTree"]
