"""Burkhard–Keller tree (1973) — related-work comparator for discrete metrics.

BK-trees index objects under an *integer-valued* metric (edit distance,
Hamming): children of a node are bucketed by their exact distance to the
node's object, and a range query with tolerance ``t`` only descends into
child buckets whose distance lies in ``[d − t, d + t]``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.core.oracle import DistanceOracle


class _Node:
    __slots__ = ("obj", "children")

    def __init__(self, obj: int) -> None:
        self.obj = obj
        self.children: Dict[int, "_Node"] = {}


class BkTree:
    """Discrete-metric index over a distance oracle.

    The metric must return (near-)integer distances; each insert resolves
    one distance per level descended.
    """

    def __init__(
        self,
        oracle: DistanceOracle,
        objects: Optional[List[int]] = None,
    ) -> None:
        self.oracle = oracle
        self._root: Optional[_Node] = None
        self._size = 0
        before = oracle.calls
        for obj in objects if objects is not None else range(oracle.n):
            self.insert(obj)
        #: Oracle calls spent constructing the index.
        self.construction_calls = oracle.calls - before

    def __len__(self) -> int:
        return self._size

    @staticmethod
    def _as_key(distance: float) -> int:
        key = int(round(distance))
        if abs(distance - key) > 1e-6:
            raise ValueError(
                f"BK-trees need integer-valued metrics; got distance {distance}"
            )
        return key

    def insert(self, obj: int) -> None:
        """Insert one object (one oracle call per tree level)."""
        if self._root is None:
            self._root = _Node(obj)
            self._size = 1
            return
        node = self._root
        while True:
            if node.obj == obj:
                return  # already present
            key = self._as_key(self.oracle(node.obj, obj))
            if key == 0:
                return  # duplicate of an indexed object
            child = node.children.get(key)
            if child is None:
                node.children[key] = _Node(obj)
                self._size += 1
                return
            node = child

    def range(self, query: int, tolerance: int) -> List[Tuple[int, int]]:
        """All indexed objects within ``tolerance`` of ``query``.

        Returns ``(distance, object)`` pairs sorted ascending.
        """
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        if self._root is None:
            return []
        hits: List[Tuple[int, int]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            d = self._as_key(self.oracle(query, node.obj))
            if d <= tolerance and node.obj != query:
                hits.append((d, node.obj))
            low, high = d - tolerance, d + tolerance
            for key, child in node.children.items():
                if low <= key <= high:
                    stack.append(child)
        hits.sort()
        return hits

    def nearest(self, query: int) -> Tuple[int, int]:
        """Exact nearest indexed object to ``query`` (excluding itself)."""
        if self._root is None:
            raise ValueError("empty index")
        best_obj: Optional[int] = None
        best_d = math.inf
        stack = [self._root]
        while stack:
            node = stack.pop()
            d = self._as_key(self.oracle(query, node.obj))
            if node.obj != query and d < best_d:
                best_obj, best_d = node.obj, d
            for key, child in node.children.items():
                if abs(key - d) < best_d:
                    stack.append(child)
        if best_obj is None:
            raise ValueError("index holds no candidate other than the query")
        return best_obj, int(best_d)
