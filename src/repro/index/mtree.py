"""M-tree (Ciaccia, Patella & Zezula 1997) — related-work comparator.

The balanced, disk-oriented metric index from the paper's §6: objects live
in leaf nodes; every routing (internal) entry stores a pivot object, a
covering radius, and its distance to the parent pivot, enabling two pruning
rules during search:

* ball pruning — skip a subtree when ``d(q, pivot) − radius > tau``;
* parent-distance pruning — skip computing ``d(q, pivot)`` at all when
  ``|d(q, parent) − d(parent, pivot)| − radius > tau`` (this is the rule
  that saves oracle calls, using only precomputed distances).

This implementation keeps the classic insert-and-split construction with
the `mM_RAD` promotion heuristic simplified to random promotion plus
generalised-hyperplane partitioning, which preserves the index's search
behaviour while staying readable.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core.oracle import DistanceOracle

#: Relative slack applied to every pruning comparison.  The triangle
#: inequality holds in real arithmetic but stored distances are rounded —
#: shortest-path closures in particular satisfy it with *equality*, where
#: ``|d(q,p) − d(p,e)|`` computed in floats can exceed the true
#: ``d(q,e)`` by a few ulps and a strict comparison would prune a subtree
#: whose member sits exactly on the boundary.  Pruning less is always
#: sound, so the slack keeps results exact at the cost of (vanishingly
#: few) extra oracle calls.
_PRUNE_SLACK = 1e-9


class _Entry:
    """One slot of a node: an object (leaf) or a child router (internal)."""

    __slots__ = ("obj", "parent_distance", "radius", "child")

    def __init__(
        self,
        obj: int,
        parent_distance: float = 0.0,
        radius: float = 0.0,
        child: Optional["_Node"] = None,
    ) -> None:
        self.obj = obj
        self.parent_distance = parent_distance
        self.radius = radius
        self.child = child

    @property
    def is_routing(self) -> bool:
        return self.child is not None


class _Node:
    __slots__ = ("entries", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.entries: List[_Entry] = []
        self.is_leaf = is_leaf


class MTree:
    """Balanced metric index over a distance oracle.

    Parameters
    ----------
    oracle:
        Distance oracle over object ids; construction and queries charge it.
    objects:
        Ids to index (defaults to the whole universe).
    capacity:
        Maximum entries per node before a split.
    rng:
        Generator for promotion sampling (deterministic by default).
    """

    def __init__(
        self,
        oracle: DistanceOracle,
        objects: Optional[List[int]] = None,
        capacity: int = 8,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if capacity < 2:
            raise ValueError("capacity must be at least 2")
        self.oracle = oracle
        self._capacity = capacity
        self._rng = rng or np.random.default_rng(0)
        self._root = _Node(is_leaf=True)
        self._size = 0
        before = oracle.calls
        for obj in objects if objects is not None else range(oracle.n):
            self.insert(obj)
        #: Oracle calls spent constructing the index.
        self.construction_calls = oracle.calls - before

    def __len__(self) -> int:
        return self._size

    # -- construction -----------------------------------------------------

    def insert(self, obj: int) -> None:
        """Insert one object, splitting nodes on overflow."""
        split = self._insert_into(self._root, obj, parent_pivot=None)
        if split is not None:
            # Root overflow: grow a new root referencing the two halves.
            (p1, n1, r1), (p2, n2, r2) = split
            new_root = _Node(is_leaf=False)
            new_root.entries.append(_Entry(p1, 0.0, r1, n1))
            new_root.entries.append(_Entry(p2, 0.0, r2, n2))
            self._root = new_root
        self._size += 1

    def _insert_into(
        self,
        node: _Node,
        obj: int,
        parent_pivot: Optional[int],
    ):
        if node.is_leaf:
            parent_distance = (
                self.oracle(parent_pivot, obj) if parent_pivot is not None else 0.0
            )
            node.entries.append(_Entry(obj, parent_distance))
            if len(node.entries) > self._capacity:
                return self._split(node)
            return None
        # Route to the child whose pivot is nearest (resolving as we go);
        # enlarge its covering radius when the object falls outside.
        best_entry = None
        best_d = math.inf
        for entry in node.entries:
            d = self.oracle(entry.obj, obj)
            if d < best_d:
                best_d = d
                best_entry = entry
        if best_d > best_entry.radius:
            best_entry.radius = best_d
        split = self._insert_into(best_entry.child, obj, best_entry.obj)
        if split is None:
            return None
        # Replace the overflowed child with the two split halves; their
        # parent distances reference this node's own routing pivot.
        (p1, n1, r1), (p2, n2, r2) = split
        node.entries.remove(best_entry)
        d1 = self.oracle(p1, parent_pivot) if parent_pivot is not None else 0.0
        node.entries.append(_Entry(p1, d1, r1, n1))
        d2 = self.oracle(p2, parent_pivot) if parent_pivot is not None else 0.0
        node.entries.append(_Entry(p2, d2, r2, n2))
        if len(node.entries) > self._capacity:
            return self._split(node)
        return None

    def _split(self, node: _Node):
        """Random promotion + generalised-hyperplane partition."""
        entries = node.entries
        i1 = int(self._rng.integers(len(entries)))
        i2 = int(self._rng.integers(len(entries) - 1))
        if i2 >= i1:
            i2 += 1
        p1, p2 = entries[i1].obj, entries[i2].obj
        n1 = _Node(is_leaf=node.is_leaf)
        n2 = _Node(is_leaf=node.is_leaf)
        r1 = r2 = 0.0
        for entry in entries:
            d1 = self.oracle(p1, entry.obj)
            d2 = self.oracle(p2, entry.obj)
            if d1 <= d2:
                entry.parent_distance = d1
                n1.entries.append(entry)
                r1 = max(r1, d1 + entry.radius)
            else:
                entry.parent_distance = d2
                n2.entries.append(entry)
                r2 = max(r2, d2 + entry.radius)
        return (p1, n1, r1), (p2, n2, r2)

    # -- queries -------------------------------------------------------------

    def range(self, query: int, radius: float) -> List[int]:
        """All indexed objects within ``radius`` of ``query`` (inclusive)."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        hits: List[int] = []

        def visit(node: _Node, d_parent: Optional[float]) -> None:
            for entry in node.entries:
                reach = radius + entry.radius
                slack = _PRUNE_SLACK * (1.0 + reach)
                # Parent-distance pruning: no oracle call needed.
                if d_parent is not None:
                    margin = abs(d_parent - entry.parent_distance)
                    if margin > reach + slack:
                        continue
                d = self.oracle(query, entry.obj)
                if node.is_leaf:
                    if d <= radius:
                        hits.append(entry.obj)
                else:
                    if d <= reach + slack:
                        visit(entry.child, d)

        visit(self._root, None)
        hits.sort()
        return hits

    def nearest(self, query: int) -> Tuple[int, float]:
        """Exact nearest indexed object to ``query`` (excluding itself)."""
        best: List = [None, math.inf]

        def visit(node: _Node, d_parent: Optional[float]) -> None:
            # Order children by optimistic distance for best-first descent.
            scored = []
            for entry in node.entries:
                if d_parent is not None:
                    margin = abs(d_parent - entry.parent_distance)
                    slack = _PRUNE_SLACK * (1.0 + entry.radius)
                    if margin - entry.radius > best[1] + slack:
                        continue
                d = self.oracle(query, entry.obj)
                if node.is_leaf:
                    if entry.obj != query and d < best[1]:
                        best[0], best[1] = entry.obj, d
                else:
                    scored.append((max(0.0, d - entry.radius), d, entry))
            scored.sort(key=lambda item: item[0])
            for optimistic, d, entry in scored:
                if optimistic <= best[1] + _PRUNE_SLACK * (1.0 + best[1]):
                    visit(entry.child, d)

        visit(self._root, None)
        if best[0] is None:
            raise ValueError("index holds no candidate other than the query")
        return best[0], best[1]
