"""GNAT — Geometric Near-neighbor Access Tree (Brin 1995).

The Voronoi-family metric index from the paper's §6: each node picks ``k``
split points, assigns every object to its nearest split point, and records
per (split-point, subtree) *distance ranges*.  A range query at radius
``r`` measures the query against each split point and discards any subtree
whose recorded range ``[lo, hi]`` cannot intersect ``[d − r, d + r]`` —
triangle-inequality pruning with precomputed geometry.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core.oracle import DistanceOracle


class _Node:
    __slots__ = ("splits", "children", "ranges", "bucket")

    def __init__(self) -> None:
        self.splits: List[int] = []
        self.children: List[Optional["_Node"]] = []
        # ranges[i][j] = (lo, hi) of d(splits[i], x) over x in children[j].
        self.ranges: List[List[Tuple[float, float]]] = []
        self.bucket: List[int] = []


class Gnat:
    """Geometric near-neighbour access tree over a distance oracle.

    Parameters
    ----------
    oracle:
        Distance oracle over object ids.
    objects:
        Ids to index (defaults to the whole universe).
    arity:
        Split points per node.
    leaf_size:
        Maximum bucket size before a node splits.
    rng:
        Generator for split-point sampling.
    """

    def __init__(
        self,
        oracle: DistanceOracle,
        objects: Optional[List[int]] = None,
        arity: int = 4,
        leaf_size: int = 6,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if arity < 2:
            raise ValueError("arity must be at least 2")
        if leaf_size < 1:
            raise ValueError("leaf_size must be at least 1")
        self.oracle = oracle
        self._arity = arity
        self._leaf_size = leaf_size
        self._rng = rng or np.random.default_rng(0)
        ids = list(objects) if objects is not None else list(range(oracle.n))
        before = oracle.calls
        self._root = self._build(ids)
        #: Oracle calls spent constructing the index.
        self.construction_calls = oracle.calls - before
        self._size = len(ids)

    def __len__(self) -> int:
        return self._size

    # -- construction -----------------------------------------------------

    def _build(self, ids: List[int]) -> Optional[_Node]:
        if not ids:
            return None
        node = _Node()
        if len(ids) <= max(self._leaf_size, self._arity):
            node.bucket = list(ids)
            return node
        # Greedy-spread split points: first random, rest max-min.
        first = int(self._rng.integers(len(ids)))
        splits = [ids[first]]
        nearest = {o: math.inf for o in ids}
        while len(splits) < min(self._arity, len(ids)):
            newest = splits[-1]
            for o in ids:
                d = self.oracle(newest, o)
                if d < nearest[o]:
                    nearest[o] = d
            candidate = max(
                (o for o in ids if o not in splits),
                key=lambda o: nearest[o],
            )
            splits.append(candidate)
        node.splits = splits
        partitions: List[List[int]] = [[] for _ in splits]
        for o in ids:
            if o in splits:
                continue
            distances = [self.oracle(s, o) for s in splits]
            partitions[int(np.argmin(distances))].append(o)
        # Distance ranges: every split point against every partition.
        node.ranges = [
            [(math.inf, -math.inf)] * len(splits) for _ in splits
        ]
        for i, s in enumerate(splits):
            for j, members in enumerate(partitions):
                lo, hi = math.inf, -math.inf
                for o in members:
                    d = self.oracle(s, o)
                    lo = min(lo, d)
                    hi = max(hi, d)
                # The partition's own split point belongs to its region.
                d_sj = self.oracle(s, splits[j])
                lo = min(lo, d_sj)
                hi = max(hi, d_sj)
                node.ranges[i][j] = (lo, hi)
        node.children = [self._build(members) for members in partitions]
        return node

    # -- queries -------------------------------------------------------------

    def range(self, query: int, radius: float) -> List[int]:
        """All indexed objects within ``radius`` of ``query`` (inclusive)."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        hits: List[int] = []

        def visit(node: Optional[_Node]) -> None:
            if node is None:
                return
            if node.bucket:
                for o in node.bucket:
                    if self.oracle(query, o) <= radius:
                        hits.append(o)
                return
            alive = [True] * len(node.children)
            split_distances: List[Optional[float]] = [None] * len(node.splits)
            for i, s in enumerate(node.splits):
                # Skip measuring split points whose region is already dead
                # *and* which cannot prune anything new — simple variant:
                # always measure (GNAT's original measures all of them).
                d = self.oracle(query, s)
                split_distances[i] = d
                if d <= radius:
                    hits.append(s)
                for j in range(len(node.children)):
                    if not alive[j]:
                        continue
                    lo, hi = node.ranges[i][j]
                    if lo == math.inf:
                        continue
                    if d + radius < lo or d - radius > hi:
                        alive[j] = False
            for j, child in enumerate(node.children):
                if alive[j]:
                    visit(child)

        visit(self._root)
        return sorted(set(hits))

    def nearest(self, query: int) -> Tuple[int, float]:
        """Exact nearest indexed object via shrinking-radius range search."""
        best_obj: Optional[int] = None
        best_d = math.inf

        def visit(node: Optional[_Node]) -> None:
            nonlocal best_obj, best_d
            if node is None:
                return
            if node.bucket:
                for o in node.bucket:
                    if o == query:
                        continue
                    d = self.oracle(query, o)
                    if d < best_d:
                        best_obj, best_d = o, d
                return
            alive = [True] * len(node.children)
            order = []
            for i, s in enumerate(node.splits):
                d = self.oracle(query, s)
                if s != query and d < best_d:
                    best_obj, best_d = s, d
                order.append((d, i))
                for j in range(len(node.children)):
                    if not alive[j]:
                        continue
                    lo, hi = node.ranges[i][j]
                    if lo == math.inf:
                        continue
                    if d + best_d < lo or d - best_d > hi:
                        alive[j] = False
            order.sort()
            for _, j in order:
                if alive[j]:
                    visit(node.children[j])

        visit(self._root)
        if best_obj is None:
            raise ValueError("index holds no candidate other than the query")
        return best_obj, best_d
