"""Vantage-point tree (Yianilos 1993) — related-work comparator.

The classic metric index from the paper's §6: build a binary tree by
recursively picking a vantage point and splitting the rest by the median
distance to it.  Construction pays ``O(n log n)`` oracle calls up front;
each query then prunes subtrees whose annulus cannot intersect the query
ball.

Included to let the benchmarks compare the *index* approach (pay a big
build bill, answer queries cheaply, NN/range queries only) against the
paper's framework (no build bill, savings accrue inside arbitrary
proximity algorithms).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.oracle import DistanceOracle


@dataclass
class _Node:
    vantage: int
    radius: float = 0.0                  # median split distance
    inside: Optional["_Node"] = None     # d(vantage, ·) <= radius
    outside: Optional["_Node"] = None    # d(vantage, ·) >  radius
    bucket: List[int] = field(default_factory=list)  # leaf members


class VpTree:
    """Exact nearest-neighbour / range index over a distance oracle.

    Parameters
    ----------
    oracle:
        Distance oracle over object ids; construction and queries charge it.
    objects:
        Ids to index (defaults to the oracle's whole universe).
    leaf_size:
        Maximum bucket size before a node stops splitting.
    rng:
        Generator for vantage-point sampling (deterministic by default).
    """

    def __init__(
        self,
        oracle: DistanceOracle,
        objects: Optional[List[int]] = None,
        leaf_size: int = 4,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if leaf_size < 1:
            raise ValueError("leaf_size must be at least 1")
        self.oracle = oracle
        self._leaf_size = leaf_size
        self._rng = rng or np.random.default_rng(0)
        ids = list(objects) if objects is not None else list(range(oracle.n))
        before = oracle.calls
        self._root = self._build(ids)
        #: Oracle calls spent constructing the index.
        self.construction_calls = oracle.calls - before
        self._size = len(ids)

    def __len__(self) -> int:
        return self._size

    # -- construction -----------------------------------------------------

    def _build(self, ids: List[int]) -> Optional[_Node]:
        if not ids:
            return None
        if len(ids) <= self._leaf_size:
            node = _Node(vantage=ids[0])
            node.bucket = list(ids)
            return node
        pick = int(self._rng.integers(len(ids)))
        vantage = ids[pick]
        rest = [o for idx, o in enumerate(ids) if idx != pick]
        distances = [(self.oracle(vantage, o), o) for o in rest]
        distances.sort()
        median_idx = len(distances) // 2
        radius = distances[median_idx][0]
        inside = [o for d, o in distances if d <= radius]
        outside = [o for d, o in distances if d > radius]
        node = _Node(vantage=vantage, radius=radius)
        node.inside = self._build(inside)
        node.outside = self._build(outside)
        return node

    # -- queries -------------------------------------------------------------

    def nearest(self, query: int) -> Tuple[int, float]:
        """Exact nearest indexed object to ``query`` (excluding itself)."""
        best: List = [None, math.inf]

        def visit(node: Optional[_Node]) -> None:
            if node is None:
                return
            if node.bucket:
                for o in node.bucket:
                    if o == query:
                        continue
                    d = self.oracle(query, o)
                    if d < best[1]:
                        best[0], best[1] = o, d
                return
            d_v = self.oracle(query, node.vantage)
            if node.vantage != query and d_v < best[1]:
                best[0], best[1] = node.vantage, d_v
            # Search the nearer side first; the other only if the annulus
            # boundary is within the current best radius.
            if d_v <= node.radius:
                visit(node.inside)
                if d_v + best[1] > node.radius:
                    visit(node.outside)
            else:
                visit(node.outside)
                if d_v - best[1] <= node.radius:
                    visit(node.inside)

        visit(self._root)
        if best[0] is None:
            raise ValueError("index holds no candidate other than the query")
        return best[0], best[1]

    def range(self, query: int, radius: float) -> List[int]:
        """All indexed objects within ``radius`` of ``query`` (inclusive)."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        hits: List[int] = []

        def visit(node: Optional[_Node]) -> None:
            if node is None:
                return
            if node.bucket:
                for o in node.bucket:
                    if self.oracle(query, o) <= radius:
                        hits.append(o)
                return
            d_v = self.oracle(query, node.vantage)
            if d_v <= radius:
                hits.append(node.vantage)
            if d_v - radius <= node.radius:
                visit(node.inside)
            if d_v + radius > node.radius:
                visit(node.outside)

        visit(self._root)
        hits.sort()
        return hits
