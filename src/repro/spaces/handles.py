"""Picklable space handles for cross-process oracle evaluation.

A :class:`~repro.spaces.base.MetricSpace` built in one process is often
expensive (or impossible) to pickle wholesale — road networks hold graph
adjacency, string spaces hold corpora.  A :class:`SpaceHandle` instead
captures the *recipe*: a module-level factory plus its arguments, which
pickle by reference in a few bytes.  Each worker process rebuilds the space
on first use and memoises it, so a process-pool oracle tier pays
construction once per worker, not once per batch.

Determinism note: every factory in this codebase is seeded, so two
processes building from the same handle hold *identical* spaces — the
foundation of the byte-identical guarantee for sharded serving.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

#: Per-process memo of built spaces, keyed by the handle's identity key.
_SPACE_MEMO: Dict[Tuple, Any] = {}


@dataclass(frozen=True)
class SpaceHandle:
    """A picklable recipe for building a metric space in any process.

    ``factory`` must be a module-level callable (so it pickles by
    reference); ``args``/``kwargs`` must themselves be picklable and
    hashable enough to JSON-encode (they form the memo key).
    """

    factory: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def key(self) -> Tuple:
        """Hashable identity: same key ⇒ same space in every process."""
        return (
            f"{self.factory.__module__}.{self.factory.__qualname__}",
            json.dumps(self.args, sort_keys=True, default=repr),
            json.dumps(self.kwargs, sort_keys=True, default=repr),
        )

    def build(self) -> Any:
        """Construct the space fresh (no memo) — rarely what you want."""
        return self.factory(*self.args, **dict(self.kwargs))

    def space(self) -> Any:
        """The calling process's memoised space, built on first use."""
        key = self.key()
        space = _SPACE_MEMO.get(key)
        if space is None:
            space = self.build()
            _SPACE_MEMO[key] = space
        return space

    def distance(self, i: int, j: int) -> float:
        """Evaluate one distance against the memoised space.

        This bound method is the picklable ``DistanceFn`` to hand a
        :class:`~repro.exec.executor.ProcessExecutor`.
        """
        return float(self.space().distance(i, j))

    def describe(self) -> str:
        """Stable human-readable identity (also used in fingerprints)."""
        name, args, kwargs = self.key()
        return f"{name}(args={args}, kwargs={kwargs})"


def handle_for(factory: Callable[..., Any], *args: Any, **kwargs: Any) -> SpaceHandle:
    """Sugar: ``handle_for(sf_poi_space, n=200)`` → a :class:`SpaceHandle`."""
    return SpaceHandle(factory=factory, args=args, kwargs=kwargs)
