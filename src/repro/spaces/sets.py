"""Set- and sequence-valued metric spaces.

These cover the remaining application families the paper motivates:

* :class:`HausdorffSpace` — image/shape comparison under the Hausdorff
  distance between point sets (Huttenlocher et al., cited by the paper);
* :class:`JaccardSpace` — similarity search over tag/feature sets (the
  Jaccard *distance* ``1 − |A∩B|/|A∪B|`` is a true metric);
* :class:`HammingSpace` — fixed-length codes/fingerprints.

All three are genuine metrics, so every bound scheme applies unchanged,
and all three are "expensive" in the paper's sense (cost grows with object
size, not with n).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.spatial import cKDTree

from repro.spaces.base import BaseSpace


class HausdorffSpace(BaseSpace):
    """Point-set objects under the (symmetric) Hausdorff distance.

    ``H(A, B) = max( max_a min_b |a−b| , max_b min_a |a−b| )`` — a metric on
    compact point sets.  Each oracle call runs two nearest-neighbour sweeps
    (KD-tree accelerated), which is exactly the kind of heavyweight
    comparison the framework is built to avoid.
    """

    def __init__(self, point_sets: Sequence[np.ndarray]) -> None:
        sets = [np.asarray(ps, dtype=np.float64) for ps in point_sets]
        for idx, ps in enumerate(sets):
            if ps.ndim != 2 or ps.shape[0] == 0:
                raise ValueError(f"point set {idx} must be non-empty 2-D; got {ps.shape}")
        dims = {ps.shape[1] for ps in sets}
        if len(dims) > 1:
            raise ValueError(f"point sets live in different dimensions: {sorted(dims)}")
        super().__init__(len(sets))
        self.point_sets = sets
        self._trees = [cKDTree(ps) for ps in sets]

    def distance(self, i: int, j: int) -> float:
        if i == j:
            return 0.0
        forward, _ = self._trees[j].query(self.point_sets[i])
        backward, _ = self._trees[i].query(self.point_sets[j])
        return float(max(np.max(forward), np.max(backward)))

    def diameter_bound(self) -> float:
        mins = np.min([ps.min(axis=0) for ps in self.point_sets], axis=0)
        maxs = np.max([ps.max(axis=0) for ps in self.point_sets], axis=0)
        return float(np.linalg.norm(maxs - mins))


class JaccardSpace(BaseSpace):
    """Finite-set objects under the Jaccard distance ``1 − |A∩B| / |A∪B|``."""

    def __init__(self, sets: Sequence[set]) -> None:
        materialised = [frozenset(s) for s in sets]
        super().__init__(len(materialised))
        self.sets = materialised

    def distance(self, i: int, j: int) -> float:
        a, b = self.sets[i], self.sets[j]
        if not a and not b:
            return 0.0
        union = len(a | b)
        if union == 0:
            return 0.0
        return 1.0 - len(a & b) / union

    def diameter_bound(self) -> float:
        return 1.0


class HammingSpace(BaseSpace):
    """Equal-length sequences under (optionally normalised) Hamming distance."""

    def __init__(self, codes: Sequence[Sequence], normalise: bool = False) -> None:
        materialised = [tuple(c) for c in codes]
        lengths = {len(c) for c in materialised}
        if len(lengths) > 1:
            raise ValueError(f"Hamming codes must share a length; got {sorted(lengths)}")
        super().__init__(len(materialised))
        self.codes = materialised
        self._length = lengths.pop() if lengths else 0
        self._normalise = normalise

    def distance(self, i: int, j: int) -> float:
        mismatches = sum(a != b for a, b in zip(self.codes[i], self.codes[j]))
        if self._normalise and self._length:
            return mismatches / self._length
        return float(mismatches)

    def diameter_bound(self) -> float:
        if self._normalise:
            return 1.0
        return float(self._length)
