"""Metric spaces: the expensive-oracle substrates."""

from repro.spaces.base import BaseSpace, MetricSpace, check_metric_axioms
from repro.spaces.handles import SpaceHandle, handle_for
from repro.spaces.graphs import GraphShortestPathSpace, UltrametricSpace, random_ultrametric
from repro.spaces.matrix import MatrixSpace, metric_closure, random_metric_matrix
from repro.spaces.roadnet import RoadNetworkSpace
from repro.spaces.sets import HammingSpace, HausdorffSpace, JaccardSpace
from repro.spaces.strings import EditDistanceSpace, levenshtein, random_strings
from repro.spaces.vector import (
    ChebyshevSpace,
    CosineAngularSpace,
    EuclideanSpace,
    ManhattanSpace,
    MinkowskiSpace,
    SquaredEuclideanSpace,
)

__all__ = [
    "BaseSpace",
    "ChebyshevSpace",
    "CosineAngularSpace",
    "EditDistanceSpace",
    "EuclideanSpace",
    "GraphShortestPathSpace",
    "HammingSpace",
    "HausdorffSpace",
    "JaccardSpace",
    "ManhattanSpace",
    "MatrixSpace",
    "MetricSpace",
    "MinkowskiSpace",
    "RoadNetworkSpace",
    "SpaceHandle",
    "UltrametricSpace",
    "SquaredEuclideanSpace",
    "check_metric_axioms",
    "handle_for",
    "levenshtein",
    "metric_closure",
    "random_metric_matrix",
    "random_ultrametric",
    "random_strings",
]
