"""String space under Levenshtein edit distance.

Edit distance on long sequences (DNA, protein strings) is one of the paper's
motivating expensive oracles: each call is ``O(|a| · |b|)`` dynamic
programming, so for kilobase-scale sequences a single distance dwarfs any
local bookkeeping.  Levenshtein distance is a true metric, so every bound
scheme in this library applies unchanged.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.spaces.base import BaseSpace


def levenshtein(a: str, b: str) -> int:
    """Classic two-row DP Levenshtein distance."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    current = [0] * (len(b) + 1)
    for i, ca in enumerate(a, start=1):
        current[0] = i
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current[j] = min(
                previous[j] + 1,      # deletion
                current[j - 1] + 1,   # insertion
                previous[j - 1] + cost,  # substitution
            )
        previous, current = current, previous
    return previous[len(b)]


class EditDistanceSpace(BaseSpace):
    """Strings under (optionally normalised) Levenshtein distance.

    ``normalise=True`` divides by the diameter cap ``max_len`` so distances
    live in ``[0, 1]`` like the paper's running example.  Scaling by a
    positive constant preserves the metric axioms.
    """

    def __init__(self, strings: Sequence[str], normalise: bool = False) -> None:
        strings = list(strings)
        super().__init__(len(strings))
        self.strings = strings
        self._max_len = max((len(s) for s in strings), default=1) or 1
        self._normalise = normalise

    def distance(self, i: int, j: int) -> float:
        raw = levenshtein(self.strings[i], self.strings[j])
        if self._normalise:
            return raw / self._max_len
        return float(raw)

    def diameter_bound(self) -> float:
        return 1.0 if self._normalise else float(self._max_len)

    def weak_oracle(self):
        """Character-histogram estimator: ``O(|a| + |b|)`` vs the DP's product.

        ``max(|len(a) - len(b)|, L1(hist(a), hist(b)) / 2)`` is a classic
        Levenshtein lower bound: every unit of length difference forces an
        insert/delete, and each edit operation changes the character
        histogram by at most two units of L1 mass.  Band ``(1, inf)`` — the
        true distance is never below the estimate, with no upper guarantee.
        Normalised spaces scale the estimate by the same ``1 / max_len``
        as the metric, which preserves the band.
        """
        import math
        from collections import Counter

        from repro.core.tiering import WeakBand, WeakOracle

        histograms = [Counter(s) for s in self.strings]
        strings, scale = self.strings, (1.0 / self._max_len if self._normalise else 1.0)

        def histogram_bound(i: int, j: int) -> float:
            ha, hb = histograms[i], histograms[j]
            l1 = sum(abs(ha[c] - hb[c]) for c in ha.keys() | hb.keys())
            return scale * max(abs(len(strings[i]) - len(strings[j])), l1 // 2)

        return WeakOracle(
            histogram_bound,
            self.n,
            WeakBand(1.0, math.inf),
            name="histogram",
        )


def random_strings(
    n: int,
    length: int = 64,
    alphabet: str = "ACGT",
    mutation_rate: float = 0.15,
    num_seeds: int = 4,
    rng: np.random.Generator | None = None,
) -> list[str]:
    """Generate ``n`` strings as mutated copies of a few random seeds.

    Mimics DNA-like datasets: a handful of ancestral sequences with point
    mutations, giving natural cluster structure (small intra-family edit
    distances, large inter-family ones).
    """
    rng = rng or np.random.default_rng()
    letters = list(alphabet)
    seeds = [
        "".join(rng.choice(letters, size=length)) for _ in range(max(1, num_seeds))
    ]
    strings = []
    for _ in range(n):
        base = seeds[int(rng.integers(len(seeds)))]
        chars = list(base)
        for pos in range(len(chars)):
            if rng.random() < mutation_rate:
                chars[pos] = letters[int(rng.integers(len(letters)))]
        strings.append("".join(chars))
    return strings
