"""Metric-space protocol and helpers.

A *space* bundles a collection of ``n`` objects with a metric over their
integer ids.  Spaces are the thing you wrap in a
:class:`~repro.core.oracle.DistanceOracle`; the rest of the library never
sees coordinates — only ids and distances, which is exactly the paper's
"general metric space, atomic objects" setting.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Protocol, runtime_checkable

from repro.core.exceptions import MetricViolationError
from repro.core.oracle import DistanceOracle


@runtime_checkable
class MetricSpace(Protocol):
    """Protocol for object collections with a metric over integer ids."""

    @property
    def n(self) -> int:
        """Number of objects."""
        ...

    def distance(self, i: int, j: int) -> float:
        """Metric distance between objects ``i`` and ``j``."""
        ...

    def diameter_bound(self) -> float:
        """An upper bound on any pairwise distance (``inf`` when unknown)."""
        ...


class BaseSpace:
    """Shared plumbing for concrete spaces."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError("a space needs at least one object")
        self._n = n

    @property
    def n(self) -> int:
        return self._n

    def __len__(self) -> int:
        return self._n

    def diameter_bound(self) -> float:
        return math.inf

    def distance(self, i: int, j: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def oracle(self, cost_per_call: float = 0.0, budget: int | None = None) -> DistanceOracle:
        """Wrap this space in a counting :class:`DistanceOracle`."""
        return DistanceOracle(self.distance, self._n, cost_per_call=cost_per_call, budget=budget)

    def weak_oracle(self):
        """A cheap banded estimator for this space, or ``None``.

        Spaces with a natural weak tier (crow-flies distance under a road
        metric, character-histogram bounds under edit distance, coordinate
        projections under Minkowski metrics) override this to return a
        :class:`~repro.core.tiering.WeakOracle` whose declared error band
        provably holds for every pair.  The base implementation returns
        ``None`` — no sound cheap estimator is known for the space.
        """
        return None


def check_metric_axioms(
    space: MetricSpace,
    sample_triples: Iterable[tuple[int, int, int]] | None = None,
    tol: float = 1e-9,
) -> None:
    """Verify identity, symmetry, and triangle inequality on sampled triples.

    Raises :class:`MetricViolationError` on the first violation.  With
    ``sample_triples=None`` every triple is checked — only sensible for very
    small spaces.
    """
    n = space.n
    if sample_triples is None:
        sample_triples = itertools.combinations(range(n), 3) if n >= 3 else []
    for i in range(min(n, 50)):
        if abs(space.distance(i, i)) > tol:
            raise MetricViolationError(f"d({i},{i}) = {space.distance(i, i)} != 0")
    for i, j, k in sample_triples:
        dij = space.distance(i, j)
        dji = space.distance(j, i)
        if abs(dij - dji) > tol:
            raise MetricViolationError(f"asymmetry: d({i},{j})={dij} vs d({j},{i})={dji}")
        if dij < -tol:
            raise MetricViolationError(f"negative distance d({i},{j})={dij}")
        dik = space.distance(i, k)
        dkj = space.distance(k, j)
        # Check all three sides of the triangle against the other two.
        for side, a, b, label in (
            (dij, dik, dkj, (i, j, k)),
            (dik, dij, dkj, (i, k, j)),
            (dkj, dik, dij, (k, j, i)),
        ):
            if side > a + b + tol:
                raise MetricViolationError(
                    f"triangle violation on triple {label}: {side} > {a} + {b}"
                )
