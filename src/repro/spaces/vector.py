"""Vector spaces under Minkowski metrics.

Although the paper's framework deliberately avoids exploiting coordinates,
its evaluation datasets (SF POI, UrbanGB, Flickr1M) *are* point sets; the
framework simply treats their distances as opaque oracle answers.  These
spaces provide those oracles.
"""

from __future__ import annotations

import math

import numpy as np

from repro.spaces.base import BaseSpace


class MinkowskiSpace(BaseSpace):
    """Points in ``R^d`` under the ``L_p`` metric.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    p:
        Minkowski order; ``p >= 1`` is required for the triangle inequality.
    """

    def __init__(self, points: np.ndarray, p: float = 2.0) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be 2-D (n, d); got shape {points.shape}")
        if p < 1:
            raise ValueError(f"L_p with p={p} < 1 is not a metric")
        super().__init__(points.shape[0])
        self.points = points
        self.p = float(p)

    def distance(self, i: int, j: int) -> float:
        delta = self.points[i] - self.points[j]
        if self.p == 2.0:
            return float(math.sqrt(float(np.dot(delta, delta))))
        if self.p == 1.0:
            return float(np.abs(delta).sum())
        if math.isinf(self.p):
            return float(np.abs(delta).max())
        return float(np.power(np.abs(delta) ** self.p, 1.0).sum() ** (1.0 / self.p))

    def diameter_bound(self) -> float:
        """Bounding-box diameter — cheap and safe (no pairwise scan)."""
        span = self.points.max(axis=0) - self.points.min(axis=0)
        if self.p == 2.0:
            return float(math.sqrt(float(np.dot(span, span))))
        if self.p == 1.0:
            return float(span.sum())
        if math.isinf(self.p):
            return float(span.max())
        return float((span**self.p).sum() ** (1.0 / self.p))

    def weak_oracle(self, dims: int | None = None):
        """Coordinate-projection estimator: ``L_p`` over a dimension prefix.

        Dropping coordinates can only shrink an ``L_p`` norm, so the
        projected distance is a true lower bound — band ``(1, inf)``.  The
        default keeps at most 16 of the first ``d - 1`` dimensions (the
        estimator must be strictly cheaper than the metric to be worth a
        tier); single-dimension spaces project onto their one axis, where
        the estimate happens to be exact.
        """
        from repro.core.tiering import WeakBand, WeakOracle

        d = self.points.shape[1]
        if dims is None:
            dims = max(1, min(16, d - 1))
        if not 1 <= dims <= d:
            raise ValueError(f"dims must be in [1, {d}]; got {dims}")
        projected = MinkowskiSpace(self.points[:, :dims], p=self.p)
        return WeakOracle(
            projected.distance,
            self.n,
            WeakBand(1.0, math.inf),
            name=f"proj{dims}",
        )


class EuclideanSpace(MinkowskiSpace):
    """Points under the Euclidean (``L_2``) metric."""

    def __init__(self, points: np.ndarray) -> None:
        super().__init__(points, p=2.0)


class ManhattanSpace(MinkowskiSpace):
    """Points under the city-block (``L_1``) metric."""

    def __init__(self, points: np.ndarray) -> None:
        super().__init__(points, p=1.0)


class ChebyshevSpace(MinkowskiSpace):
    """Points under the ``L_inf`` metric."""

    def __init__(self, points: np.ndarray) -> None:
        super().__init__(points, p=math.inf)


class SquaredEuclideanSpace(BaseSpace):
    """Points under *squared* Euclidean distance — a 2-relaxed metric.

    ``|a − c|² <= 2·(|a − b|² + |b − c|²)`` always, so this space satisfies
    the paper's relaxed triangle inequality with factor 2 but not the plain
    one.  Use it with ``TriScheme(..., relaxation=2.0)`` (and the
    2-relaxed :class:`~repro.core.validation.ValidatingOracle`).
    """

    #: Relaxation factor of the triangle inequality this space satisfies.
    triangle_relaxation = 2.0

    def __init__(self, points: np.ndarray) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be 2-D (n, d); got shape {points.shape}")
        super().__init__(points.shape[0])
        self.points = points

    def distance(self, i: int, j: int) -> float:
        delta = self.points[i] - self.points[j]
        return float(np.dot(delta, delta))

    def diameter_bound(self) -> float:
        span = self.points.max(axis=0) - self.points.min(axis=0)
        return float(np.dot(span, span))


class CosineAngularSpace(BaseSpace):
    """Unit-normalised vectors under the *angular* distance.

    Raw cosine dissimilarity violates the triangle inequality; the angle
    ``arccos(cos_sim) / pi`` is a proper metric on the unit sphere, which is
    what content-based retrieval systems actually use when they need
    metric-space pruning.
    """

    def __init__(self, points: np.ndarray) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be 2-D (n, d); got shape {points.shape}")
        norms = np.linalg.norm(points, axis=1, keepdims=True)
        if np.any(norms == 0):
            raise ValueError("zero vectors cannot be normalised for angular distance")
        super().__init__(points.shape[0])
        self.points = points / norms

    def distance(self, i: int, j: int) -> float:
        if i == j:
            return 0.0
        cos = float(np.clip(np.dot(self.points[i], self.points[j]), -1.0, 1.0))
        return math.acos(cos) / math.pi

    def diameter_bound(self) -> float:
        return 1.0
