"""Graph-derived metric spaces.

* :class:`GraphShortestPathSpace` — the metric induced by shortest paths on
  *any* user-supplied weighted graph (the general form of the road-network
  substitute; works for social graphs, grids, transit networks, ...).
* :class:`UltrametricSpace` / :func:`random_ultrametric` — tree-induced
  ultrametrics, where ``d(x, z) <= max(d(x, y), d(y, z))``.  Ultrametrics
  are the extreme case for triangle-based pruning: every triangle is
  isosceles with the two larger sides equal, so Tri bounds collapse to
  exact values unusually often — a useful best-case probe.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components, dijkstra

from repro.spaces.base import BaseSpace


class GraphShortestPathSpace(BaseSpace):
    """Metric = shortest-path distance over a weighted undirected graph.

    Parameters
    ----------
    n:
        Number of nodes (objects).
    edges:
        Iterable of ``(u, v, weight)`` with positive weights.  The graph
        must be connected (otherwise some distances would be infinite,
        which the oracle rejects).
    """

    def __init__(self, n: int, edges: Iterable[Tuple[int, int, float]]) -> None:
        super().__init__(n)
        rows, cols, weights = [], [], []
        total = 0.0
        for u, v, w in edges:
            if not 0 <= u < n or not 0 <= v < n:
                raise ValueError(f"edge ({u}, {v}) out of range for {n} nodes")
            if w <= 0:
                raise ValueError(f"edge weights must be positive; got {w}")
            rows.extend((u, v))
            cols.extend((v, u))
            weights.extend((w, w))
            total += w
        self._adjacency = csr_matrix((weights, (rows, cols)), shape=(n, n))
        components, _ = connected_components(self._adjacency, directed=False)
        if n > 1 and components != 1:
            raise ValueError(
                f"graph has {components} connected components; the induced "
                "distance would be infinite between components"
            )
        self._total_weight = total
        self._row_cache: Dict[int, np.ndarray] = {}

    def distance(self, i: int, j: int) -> float:
        if i == j:
            return 0.0
        if j in self._row_cache and i not in self._row_cache:
            i, j = j, i
        row = self._row_cache.get(i)
        if row is None:
            row = dijkstra(self._adjacency, directed=False, indices=i)
            self._row_cache[i] = row
        return float(row[j])

    def diameter_bound(self) -> float:
        return self._total_weight


class UltrametricSpace(BaseSpace):
    """Metric from a merge dendrogram: ``d(x, y)`` = height where x, y join."""

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"matrix must be square; got {matrix.shape}")
        n = matrix.shape[0]
        super().__init__(n)
        # Verify the strong (ultrametric) triangle inequality on a sample.
        rng = np.random.default_rng(0)
        for _ in range(min(200, n**3)):
            i, j, k = rng.integers(n, size=3)
            if matrix[i, j] > max(matrix[i, k], matrix[k, j]) + 1e-9:
                raise ValueError(
                    f"matrix is not ultrametric on triple ({i}, {j}, {k})"
                )
        self.matrix = matrix

    def distance(self, i: int, j: int) -> float:
        return float(self.matrix[i, j])

    def diameter_bound(self) -> float:
        return float(self.matrix.max())


def random_ultrametric(
    n: int,
    rng: np.random.Generator | None = None,
    max_height: float = 1.0,
) -> np.ndarray:
    """Random ultrametric matrix via a random binary merge tree.

    Clusters merge bottom-up at strictly increasing heights; the distance
    between two objects is the height of their lowest common merge.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = rng or np.random.default_rng()
    matrix = np.zeros((n, n))
    clusters = [[i] for i in range(n)]
    heights = np.sort(rng.uniform(0.0, max_height, size=max(n - 1, 1)))
    step = 0
    while len(clusters) > 1:
        a = int(rng.integers(len(clusters)))
        b = int(rng.integers(len(clusters) - 1))
        if b >= a:
            b += 1
        height = float(heights[step])
        step += 1
        for x in clusters[a]:
            for y in clusters[b]:
                matrix[x, y] = matrix[y, x] = height
        merged = clusters[a] + clusters[b]
        clusters = [c for idx, c in enumerate(clusters) if idx not in (a, b)]
        clusters.append(merged)
    return matrix
