"""Explicit distance-matrix space.

The most general metric space of all: a ground-truth ``n × n`` matrix.  Used
throughout the tests (random metric matrices via metric repair) and wherever
an experiment wants full control over the metric structure.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import MetricViolationError
from repro.spaces.base import BaseSpace


class MatrixSpace(BaseSpace):
    """A metric given by an explicit symmetric matrix of distances."""

    def __init__(self, matrix: np.ndarray, validate: bool = True) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"matrix must be square; got shape {matrix.shape}")
        super().__init__(matrix.shape[0])
        self.matrix = matrix
        if validate:
            self._validate()

    def _validate(self, tol: float = 1e-9) -> None:
        m = self.matrix
        if np.any(np.abs(np.diag(m)) > tol):
            raise MetricViolationError("non-zero diagonal in distance matrix")
        if np.any(np.abs(m - m.T) > tol):
            raise MetricViolationError("asymmetric distance matrix")
        if np.any(m < -tol):
            raise MetricViolationError("negative distances in matrix")
        # Triangle check: d(i,j) <= min_k d(i,k) + d(k,j).  O(n^3) via one
        # matmul-style reduction per row block; fine for the sizes we validate.
        n = self.n
        if n <= 600:
            for k in range(n):
                through_k = m[:, k][:, None] + m[k, :][None, :]
                if np.any(m > through_k + tol):
                    raise MetricViolationError(
                        f"triangle inequality violated through intermediate {k}"
                    )

    def distance(self, i: int, j: int) -> float:
        return float(self.matrix[i, j])

    def diameter_bound(self) -> float:
        return float(self.matrix.max())


def metric_closure(matrix: np.ndarray) -> np.ndarray:
    """Repair an arbitrary non-negative symmetric matrix into a metric.

    Computes the all-pairs shortest-path closure (Floyd–Warshall), which is
    the largest metric dominated by the input — the standard way to
    synthesise ground-truth general-metric datasets.
    """
    m = np.asarray(matrix, dtype=np.float64).copy()
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"matrix must be square; got shape {m.shape}")
    m = np.minimum(m, m.T)
    np.fill_diagonal(m, 0.0)
    n = m.shape[0]
    for k in range(n):
        np.minimum(m, m[:, k][:, None] + m[k, :][None, :], out=m)
    return m


def random_metric_matrix(
    n: int,
    rng: np.random.Generator | None = None,
    low: float = 0.1,
    high: float = 1.0,
) -> np.ndarray:
    """Random ground-truth metric on ``n`` objects (shortest-path closure)."""
    rng = rng or np.random.default_rng()
    raw = rng.uniform(low, high, size=(n, n))
    raw = (raw + raw.T) / 2.0
    np.fill_diagonal(raw, 0.0)
    return metric_closure(raw)
