"""Simulated road-network metric — the Google Maps API substitute.

The paper's SF POI and UrbanGB experiments fetch point-to-point *driving*
distances from a maps API.  Driving distance is the shortest-path metric of
the underlying road graph, so we reproduce it faithfully: build a random
road graph over the generated points (k-nearest-neighbour edges made
connected via a Euclidean spanning tree, each road inflated by a per-edge
detour factor) and answer each oracle call with a graph shortest path.

Shortest-path distances on a connected, positively weighted undirected graph
always satisfy the metric axioms, so every bound scheme applies unchanged —
this is precisely why the substitution preserves the paper's behaviour.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra, minimum_spanning_tree
from scipy.spatial import cKDTree

from repro.spaces.base import BaseSpace


class RoadNetworkSpace(BaseSpace):
    """Points connected by a synthetic road graph; distance = shortest path.

    Parameters
    ----------
    points:
        Array of shape ``(n, 2)`` — the POI coordinates.
    k:
        Each point gets roads to its ``k`` nearest Euclidean neighbours.
    detour_range:
        Per-road multiplicative detour factor range (roads are never shorter
        than the crow-flies distance).
    rng:
        Random generator for the detour factors.
    """

    def __init__(
        self,
        points: np.ndarray,
        k: int = 6,
        detour_range: tuple[float, float] = (1.0, 1.5),
        rng: np.random.Generator | None = None,
    ) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError(f"points must have shape (n, 2); got {points.shape}")
        lo, hi = detour_range
        if lo < 1.0 or hi < lo:
            raise ValueError("detour factors must satisfy 1 <= lo <= hi")
        super().__init__(points.shape[0])
        self.points = points
        self._detour_lo = lo
        rng = rng or np.random.default_rng(0)
        self._adjacency = self._build_road_graph(points, k, (lo, hi), rng)
        self._row_cache: Dict[int, np.ndarray] = {}

    @staticmethod
    def _build_road_graph(
        points: np.ndarray,
        k: int,
        detour_range: tuple[float, float],
        rng: np.random.Generator,
    ) -> csr_matrix:
        n = points.shape[0]
        rows: list[int] = []
        cols: list[int] = []
        if n > 1:
            tree = cKDTree(points)
            neighbours = min(k + 1, n)
            _, idx = tree.query(points, k=neighbours)
            idx = np.atleast_2d(idx)
            for i in range(n):
                for j in idx[i]:
                    j = int(j)
                    if j != i:
                        rows.append(i)
                        cols.append(j)
        base = csr_matrix(
            (np.ones(len(rows)), (rows, cols)), shape=(n, n)
        )
        # Guarantee connectivity: union with the Euclidean MST edges.
        dense_needed = n <= 1  # trivially connected
        if not dense_needed and n > 1:
            euclid = np.sqrt(((points[:, None, :] - points[None, :, :]) ** 2).sum(-1))
            mst = minimum_spanning_tree(csr_matrix(euclid))
            mst_coo = mst.tocoo()
            rows.extend(mst_coo.row.tolist())
            cols.extend(mst_coo.col.tolist())
        # Deduplicate and symmetrise; weight = euclidean * detour.
        pair_set = set()
        for r, c in zip(rows, cols):
            if r != c:
                pair_set.add((min(r, c), max(r, c)))
        rr, cc, ww = [], [], []
        for r, c in sorted(pair_set):
            euclid_rc = float(np.linalg.norm(points[r] - points[c]))
            detour = float(rng.uniform(*detour_range))
            w = euclid_rc * detour if euclid_rc > 0 else 0.0
            rr.extend((r, c))
            cc.extend((c, r))
            ww.extend((w, w))
        return csr_matrix((ww, (rr, cc)), shape=(n, n))

    def _row(self, i: int) -> np.ndarray:
        cached = self._row_cache.get(i)
        if cached is None:
            cached = dijkstra(self._adjacency, directed=False, indices=i)
            self._row_cache[i] = cached
        return cached

    def distance(self, i: int, j: int) -> float:
        if i == j:
            return 0.0
        # Prefer a cached source row from either endpoint.
        if j in self._row_cache and i not in self._row_cache:
            i, j = j, i
        return float(self._row(i)[j])

    def diameter_bound(self) -> float:
        """Total road length is a crude but safe diameter cap."""
        return float(self._adjacency.sum()) / 2.0

    @property
    def num_roads(self) -> int:
        """Number of undirected road segments in the network."""
        return int(self._adjacency.nnz // 2)

    def weak_oracle(self):
        """Crow-flies estimator: the maps-API-free weak tier.

        Every road segment weighs ``euclid * detour`` with
        ``detour >= lo``, so any path is at least ``lo`` times the summed
        straight-line hops, which the triangle inequality collapses to
        ``lo * euclid(i, j)``.  The band is therefore ``(lo, inf)``: a pure
        lower-bound estimator (a road trip is never shorter than ``lo``
        times the crow-flies distance, but may wind arbitrarily).
        """
        from repro.core.tiering import WeakBand, WeakOracle

        points = self.points

        def euclid(i: int, j: int) -> float:
            return float(np.linalg.norm(points[i] - points[j]))

        return WeakOracle(
            euclid,
            self.n,
            WeakBand(self._detour_lo, np.inf),
            name="crowflies",
        )
