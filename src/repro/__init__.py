"""repro — reducing expensive distance-oracle calls for proximity problems.

A faithful, from-scratch reproduction of "A Generalized Approach for
Reducing Expensive Distance Calls for A Broad Class of Proximity Problems"
(Augustine, Shetiya, Esfandiari, Basu Roy & Das, SIGMOD 2021).

Quickstart
----------
>>> import numpy as np
>>> from repro import EuclideanSpace, TriScheme, SmartResolver, prim_mst
>>> space = EuclideanSpace(np.random.default_rng(0).random((50, 2)))
>>> oracle = space.oracle()
>>> resolver = SmartResolver(oracle)                 # graph created implicitly
>>> resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
>>> mst = prim_mst(resolver)
>>> oracle.calls < 50 * 49 // 2                      # fewer than all pairs
True
"""

from repro.core import (
    Bounds,
    ValidatingOracle,
    load_graph,
    resume_resolver,
    save_graph,
    DistanceOracle,
    Oracle,
    PartialDistanceGraph,
    ResolverStats,
    SmartResolver,
    TieredOracle,
    TrivialBounder,
    WeakBand,
    WeakBoundProvider,
    WeakOracle,
)
from repro.bounds import (
    Adm,
    Aesa,
    DirectFeasibilityTest,
    Laesa,
    Splub,
    Tlaesa,
    TriScheme,
    bootstrap_with_landmarks,
    default_num_landmarks,
)
from repro.spaces import (
    EditDistanceSpace,
    SquaredEuclideanSpace,
    HammingSpace,
    HausdorffSpace,
    JaccardSpace,
    EuclideanSpace,
    ManhattanSpace,
    MatrixSpace,
    MinkowskiSpace,
    RoadNetworkSpace,
    random_metric_matrix,
)
from repro.datasets import flickr_space, sf_poi_space, urbangb_space
from repro.exec import (
    BatchOracle,
    MemoryCacheBackend,
    RetryPolicy,
    SerialExecutor,
    SqliteCacheBackend,
    ThreadedExecutor,
    make_executor,
    open_cache,
)
from repro.index import BkTree, Gnat, MTree, VpTree
from repro.obs import (
    CollectingSink,
    MetricsRegistry,
    MetricsSink,
    SpanTracer,
)
from repro.algorithms import (
    clarans,
    dbscan,
    k_center,
    k_nearest,
    nearest_neighbor,
    nearest_neighbor_tour,
    range_query,
    single_linkage,
    two_opt,
    kruskal_mst,
    knn_graph,
    pam,
    prim_mst,
    prim_mst_comparisons,
)

__version__ = "1.0.0"

__all__ = [
    "Adm",
    "Aesa",
    "BatchOracle",
    "BkTree",
    "Gnat",
    "MTree",
    "MemoryCacheBackend",
    "RetryPolicy",
    "SerialExecutor",
    "SqliteCacheBackend",
    "ThreadedExecutor",
    "Bounds",
    "CollectingSink",
    "DirectFeasibilityTest",
    "DistanceOracle",
    "MetricsRegistry",
    "MetricsSink",
    "SpanTracer",
    "EditDistanceSpace",
    "HammingSpace",
    "HausdorffSpace",
    "JaccardSpace",
    "EuclideanSpace",
    "Laesa",
    "ManhattanSpace",
    "MatrixSpace",
    "MinkowskiSpace",
    "Oracle",
    "PartialDistanceGraph",
    "ResolverStats",
    "RoadNetworkSpace",
    "SmartResolver",
    "Splub",
    "TieredOracle",
    "WeakBand",
    "WeakBoundProvider",
    "WeakOracle",
    "SquaredEuclideanSpace",
    "Tlaesa",
    "TriScheme",
    "VpTree",
    "TrivialBounder",
    "ValidatingOracle",
    "bootstrap_with_landmarks",
    "clarans",
    "dbscan",
    "k_center",
    "k_nearest",
    "nearest_neighbor",
    "nearest_neighbor_tour",
    "range_query",
    "single_linkage",
    "two_opt",
    "default_num_landmarks",
    "flickr_space",
    "knn_graph",
    "kruskal_mst",
    "load_graph",
    "make_executor",
    "open_cache",
    "pam",
    "prim_mst",
    "prim_mst_comparisons",
    "random_metric_matrix",
    "resume_resolver",
    "save_graph",
    "sf_poi_space",
    "urbangb_space",
]
