"""Greedy k-center (Gonzalez 1985), re-authored for expensive oracles.

The paper's conclusion names facility-allocation problems as a natural
extension of the framework; greedy k-center is the canonical example.  The
algorithm repeatedly opens the object farthest from its nearest open
centre — a 2-approximation for the metric k-center problem.

Re-authoring: after opening centre ``c``, each object's nearest-centre
distance only changes if ``dist(o, c)`` beats the current value, so any
``o`` with ``LB(o, c) >= current[o]`` is skipped without an oracle call.
The maintained values are always exact, hence the selected centres match
the vanilla run exactly (first-index tie-breaks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.resolver import SmartResolver


@dataclass(frozen=True)
class KCenterResult:
    """Greedy k-center output."""

    centers: Tuple[int, ...]
    assignment: Tuple[int, ...]   # nearest open centre per object
    radius: float                 # max distance of any object to its centre

    @property
    def k(self) -> int:
        return len(self.centers)


def k_center(resolver: SmartResolver, k: int, first: int = 0) -> KCenterResult:
    """Exact greedy (farthest-first) k-center with bound pruning."""
    n = resolver.oracle.n
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}]; got {k}")
    if not 0 <= first < n:
        raise ValueError(f"first centre {first} out of range")

    centers: List[int] = [first]
    nearest_dist = [math.inf] * n
    nearest_center = [first] * n
    nearest_dist[first] = 0.0

    while True:
        newest = centers[-1]
        for o in range(n):
            if o == newest:
                nearest_dist[o] = 0.0
                nearest_center[o] = newest
                continue
            # Re-authored IF: dist(o, newest) < nearest_dist[o]?
            if resolver.is_at_least(o, newest, nearest_dist[o]):
                continue
            d = resolver.distance(o, newest)
            if d < nearest_dist[o]:
                nearest_dist[o] = d
                nearest_center[o] = newest
        if len(centers) == k:
            break
        # Farthest-first selection over the exact maintained values.
        best = -1
        best_dist = -math.inf
        for o in range(n):
            if o not in centers and nearest_dist[o] > best_dist:
                best_dist = nearest_dist[o]
                best = o
        if best < 0:
            break  # k > number of distinct objects
        centers.append(best)

    radius = max(nearest_dist)
    return KCenterResult(
        centers=tuple(centers),
        assignment=tuple(nearest_center),
        radius=radius,
    )
