"""PAM (Partitioning Around Medoids, Kaufman & Rousseeuw 1987), re-authored.

The SWAP phase evaluates every (medoid, non-medoid) exchange, picks the most
improving one, applies it, and repeats until no exchange helps.  Each
exchange cost is an exact sum of per-object contributions; the re-authoring
(see :mod:`repro.algorithms.medoid_common`) settles most contributions from
distance bounds, saving the oracle calls the vanilla algorithm would make.

Initialisation is seeded-random by default (the configuration the paper's
experiments sweep); the classic greedy BUILD phase is available with
``init="build"``.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.algorithms.base import ClusteringResult
from repro.algorithms.medoid_common import assign_objects, swap_cost
from repro.core.resolver import SmartResolver


def _build_init(resolver: SmartResolver, l: int) -> List[int]:
    """Greedy BUILD: first medoid minimises total distance, rest maximise gain."""
    n = resolver.oracle.n
    if resolver.batched:
        # BUILD's first step sums every pairwise distance anyway; fetch the
        # full matrix as one batch instead of n² sequential round-trips.
        resolver.resolve_many((c, o) for c in range(n) for o in range(c + 1, n))
    totals = [sum(resolver.distance(c, o) for o in range(n)) for c in range(n)]
    medoids = [int(np.argmin(totals))]
    d_near = [resolver.distance(medoids[0], o) for o in range(n)]
    while len(medoids) < l:
        best_gain = -math.inf
        best_c = -1
        for c in range(n):
            if c in medoids:
                continue
            gain = 0.0
            for o in range(n):
                if o == c:
                    continue
                # Adding c helps every object that is closer to c than to
                # its current nearest medoid.
                if not resolver.is_at_least(o, c, d_near[o]):
                    gain += d_near[o] - resolver.distance(o, c)
            if gain > best_gain:
                best_gain = gain
                best_c = c
        medoids.append(best_c)
        for o in range(n):
            d = resolver.distance(best_c, o)
            if d < d_near[o]:
                d_near[o] = d
    return medoids


def pam(
    resolver: SmartResolver,
    l: int = 10,
    seed: int = 0,
    init: str = "random",
    max_iterations: int = 100,
) -> ClusteringResult:
    """Exact PAM clustering with bound-pruned swap evaluation.

    Parameters
    ----------
    resolver:
        Comparison engine; swap in different bound providers to trade oracle
        calls for CPU.
    l:
        Number of medoids (the paper's ``l``).
    seed:
        Seed for the random initial medoid set (``init="random"``).
    init:
        ``"random"`` (seeded sample) or ``"build"`` (greedy BUILD phase).
    max_iterations:
        Safety cap on SWAP passes.
    """
    n = resolver.oracle.n
    if not 1 <= l < n:
        raise ValueError(f"l must be in [1, {n - 1}]; got {l}")
    if init == "random":
        rng = np.random.default_rng(seed)
        medoids = sorted(int(x) for x in rng.choice(n, size=l, replace=False))
    elif init == "build":
        medoids = _build_init(resolver, l)
    else:
        raise ValueError(f"unknown init scheme {init!r}")

    assignment = assign_objects(resolver, medoids)
    iterations = 0
    for _ in range(max_iterations):
        iterations += 1
        best_delta = 0.0
        best_swap: tuple[int, int] | None = None
        medoid_set = set(medoids)
        for m in medoids:
            for h in range(n):
                if h in medoid_set:
                    continue
                delta = swap_cost(resolver, medoids, assignment, m, h)
                if delta < best_delta - 1e-12:
                    best_delta = delta
                    best_swap = (m, h)
        if best_swap is None:
            break
        m, h = best_swap
        medoids = sorted(x for x in medoids if x != m) + [h]
        medoids.sort()
        assignment = assign_objects(resolver, medoids)
    return ClusteringResult(
        medoids=tuple(medoids),
        assignment=tuple(assignment.nearest),
        cost=assignment.cost,
        iterations=iterations,
    )
