"""Kruskal's MST algorithm, re-authored for expensive distance oracles.

Vanilla Kruskal over a complete metric graph resolves all ``C(n, 2)``
distances, sorts them, and unions.  The re-authored version keeps a lazy
min-heap keyed by each pair's current *lower bound* and exploits two facts:

* a pair whose endpoints are already connected can be discarded without
  ever resolving it (the classic cycle check needs no distance);
* a pair whose **resolved** distance is no larger than the lower bound of
  every remaining pair is guaranteed to be the global minimum, so it can be
  accepted without resolving anything else.

Entries are re-keyed lazily: when a popped entry's key is stale (the bound
provider has tightened since it was pushed) it is pushed back with the new
key.  The accepted edge sequence is exactly the ascending-distance order of
vanilla Kruskal (ties broken by pair id), so the output is identical.
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush

from repro.algorithms.base import MstResult
from repro.algorithms.union_find import UnionFind
from repro.core.resolver import SmartResolver


def kruskal_mst(resolver: SmartResolver) -> MstResult:
    """Exact MST via lower-bound-ordered lazy Kruskal."""
    n = resolver.oracle.n
    uf = UnionFind(n)
    # Heap entries: (key, i, j, resolved) — ``key`` is a lower bound on
    # dist(i, j), exact when ``resolved`` is True.  Pair ids break ties so
    # the accepted order is deterministic.
    heap: list[tuple[float, int, int, bool]] = []
    for i in range(n):
        for j in range(i + 1, n):
            known = resolver.known(i, j)
            if known is not None:
                heap.append((known, i, j, True))
            else:
                heap.append((0.0, i, j, False))
    heapify(heap)

    edges: list[tuple[int, int, float]] = []
    total = 0.0
    while heap and len(edges) < n - 1:
        key, i, j, resolved = heappop(heap)
        if uf.connected(i, j):
            continue  # cycle — discarded with zero oracle cost
        if resolved:
            edges.append((i, j, key))
            total += key
            uf.union(i, j)
            continue
        bounds = resolver.bounds(i, j)
        if bounds.lower > key:
            # Stale entry: the provider has tightened since the push.
            heappush(heap, (bounds.lower, i, j, False))
            continue
        next_key = heap[0][0] if heap else math.inf
        if bounds.is_exact and bounds.lower <= next_key:
            # Bounds pin the distance exactly and it is already the minimum.
            edges.append((i, j, bounds.lower))
            total += bounds.lower
            uf.union(i, j)
            continue
        d = resolver.distance(i, j)
        if d <= next_key:
            edges.append((i, j, d))
            total += d
            uf.union(i, j)
        else:
            heappush(heap, (d, i, j, True))
    if len(edges) != n - 1 and n > 1:
        raise ValueError("failed to span all objects — non-metric oracle?")
    return MstResult(edges=tuple(edges), total_weight=total)
