"""Travelling-salesman heuristics over expensive distance oracles.

The paper's conclusion names TSP as a natural target for the framework.
Both heuristics here are re-authored to spend oracle calls only where the
bounds cannot decide:

* :func:`nearest_neighbor_tour` — the classic greedy construction; each
  step is a bound-pruned ``argmin`` over the unvisited objects, producing
  the *identical* tour to the vanilla greedy.
* :func:`two_opt` — local improvement.  Each 2-opt test compares
  ``d(a,c) + d(b,d)`` against the current ``d(a,b) + d(c,d)``; since the
  current edges are already resolved, a candidate swap is rejected without
  calls whenever ``LB(a,c) + LB(b,d)`` already reaches the current sum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.resolver import SmartResolver


@dataclass(frozen=True)
class TourResult:
    """A closed tour visiting every object exactly once."""

    order: Tuple[int, ...]
    length: float

    @property
    def n(self) -> int:
        return len(self.order)


def _tour_length(resolver: SmartResolver, order: List[int]) -> float:
    total = 0.0
    for idx, a in enumerate(order):
        b = order[(idx + 1) % len(order)]
        total += resolver.distance(a, b)
    return total


def nearest_neighbor_tour(resolver: SmartResolver, start: int = 0) -> TourResult:
    """Greedy nearest-neighbour tour with bound-pruned selection."""
    n = resolver.oracle.n
    if not 0 <= start < n:
        raise ValueError(f"start {start} out of range for {n} objects")
    unvisited = [o for o in range(n) if o != start]
    order = [start]
    current = start
    total = 0.0
    while unvisited:
        nxt, dist = resolver.argmin(current, unvisited)
        order.append(nxt)
        total += dist
        unvisited.remove(nxt)
        current = nxt
    total += resolver.distance(order[-1], order[0])
    return TourResult(order=tuple(order), length=total)


def two_opt(
    resolver: SmartResolver,
    tour: TourResult,
    max_rounds: int = 10,
) -> TourResult:
    """2-opt improvement with lower-bound rejection of hopeless swaps.

    Deterministic first-improvement scan; identical trajectory to the
    vanilla implementation because accepted swaps are decided on exact
    (resolved) distances and rejected swaps are provably non-improving.
    """
    order = list(tour.order)
    n = len(order)
    if n < 4:
        return tour
    improved = True
    rounds = 0
    while improved and rounds < max_rounds:
        improved = False
        rounds += 1
        for i in range(n - 1):
            a, b = order[i], order[i + 1]
            d_ab = resolver.distance(a, b)
            for j in range(i + 2, n):
                c = order[j]
                d_ = order[(j + 1) % n]
                if d_ == a:
                    continue
                d_cd = resolver.distance(c, d_)
                current = d_ab + d_cd
                # Re-authored IF: reject without calls when even the most
                # optimistic rewiring cannot beat the current edges.
                lb_ac = resolver.bounds(a, c).lower
                lb_bd = resolver.bounds(b, d_).lower
                if lb_ac + lb_bd >= current:
                    resolver.stats.decided_by_bounds += 1
                    continue
                resolver.stats.decided_by_oracle += 1
                candidate = resolver.distance(a, c) + resolver.distance(b, d_)
                if candidate < current - 1e-12:
                    order[i + 1 : j + 1] = reversed(order[i + 1 : j + 1])
                    improved = True
                    b = order[i + 1]
                    d_ab = resolver.distance(a, b)
    return TourResult(order=tuple(order), length=_tour_length(resolver, order))
