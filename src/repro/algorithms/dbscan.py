"""DBSCAN (Ester et al. 1996) over an expensive distance oracle.

Density clustering is driven entirely by ε-range queries, which makes it an
ideal host for the framework: every neighbourhood probe runs through the
re-authored :func:`~repro.algorithms.queries.range_query`, where lower
bounds reject far candidates and upper bounds admit near ones — both
without oracle calls.  The returned labelling (cluster ids, core flags,
noise) is identical to the vanilla run because the range queries are exact
and the expansion order is deterministic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Tuple

from repro.algorithms.queries import range_query
from repro.core.resolver import SmartResolver

#: Label assigned to noise points.
NOISE = -1
_UNDEFINED = -2


@dataclass(frozen=True)
class DbscanResult:
    """DBSCAN output: per-object labels plus core-point flags."""

    labels: Tuple[int, ...]        # cluster id per object, NOISE (-1) for noise
    core: Tuple[bool, ...]         # True where the object is a core point
    eps: float
    min_pts: int

    @property
    def num_clusters(self) -> int:
        return len({label for label in self.labels if label != NOISE})

    @property
    def noise_count(self) -> int:
        return sum(1 for label in self.labels if label == NOISE)

    def clusters(self) -> List[List[int]]:
        """Members per cluster id (ascending), noise excluded."""
        out: dict[int, List[int]] = {}
        for obj, label in enumerate(self.labels):
            if label != NOISE:
                out.setdefault(label, []).append(obj)
        return [out[cid] for cid in sorted(out)]


def dbscan(resolver: SmartResolver, eps: float, min_pts: int = 4) -> DbscanResult:
    """Exact DBSCAN with bound-pruned ε-neighbourhood queries.

    Parameters
    ----------
    resolver:
        The comparison engine (bound provider decides the oracle savings).
    eps:
        Neighbourhood radius (inclusive).
    min_pts:
        Minimum neighbourhood size — *including the point itself* — for a
        core point (the original paper's convention).
    """
    if eps < 0:
        raise ValueError("eps must be non-negative")
    if min_pts < 1:
        raise ValueError("min_pts must be at least 1")
    n = resolver.oracle.n
    labels = [_UNDEFINED] * n
    core = [False] * n

    def neighbourhood(p: int) -> List[int]:
        return range_query(resolver, p, eps, include_query=True)

    cluster_id = -1
    for p in range(n):
        if labels[p] != _UNDEFINED:
            continue
        neighbours = neighbourhood(p)
        if len(neighbours) < min_pts:
            labels[p] = NOISE
            continue
        cluster_id += 1
        labels[p] = cluster_id
        core[p] = True
        seeds = deque(q for q in neighbours if q != p)
        while seeds:
            q = seeds.popleft()
            if labels[q] == NOISE:
                labels[q] = cluster_id  # border point adopted by the cluster
            if labels[q] != _UNDEFINED:
                continue
            labels[q] = cluster_id
            q_neighbours = neighbourhood(q)
            if len(q_neighbours) >= min_pts:
                core[q] = True
                seeds.extend(
                    r for r in q_neighbours
                    if labels[r] == _UNDEFINED or labels[r] == NOISE
                )
    return DbscanResult(
        labels=tuple(labels),
        core=tuple(core),
        eps=eps,
        min_pts=min_pts,
    )
