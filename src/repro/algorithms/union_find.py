"""Disjoint-set forest (union by rank, path halving) for Kruskal's algorithm."""

from __future__ import annotations


class UnionFind:
    """Classic disjoint-set structure over ``n`` elements."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError("UnionFind needs at least one element")
        self._parent = list(range(n))
        self._rank = [0] * n
        self._components = n

    @property
    def components(self) -> int:
        """Number of disjoint sets remaining."""
        return self._components

    def find(self, x: int) -> int:
        """Representative of ``x``'s set (with path halving)."""
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def connected(self, x: int, y: int) -> bool:
        """True when ``x`` and ``y`` are in the same set."""
        return self.find(x) == self.find(y)

    def union(self, x: int, y: int) -> bool:
        """Merge the sets of ``x`` and ``y``; True when a merge happened."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self._rank[rx] < self._rank[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        if self._rank[rx] == self._rank[ry]:
            self._rank[rx] += 1
        self._components -= 1
        return True
