"""CLARANS (Ng & Han 2002), re-authored for expensive distance oracles.

CLARANS explores the graph of medoid sets by repeatedly testing a *random*
neighbour (swap one random medoid for one random non-medoid) and moving
whenever the exact cost delta is negative; a local optimum is declared after
``max_neighbors`` consecutive failed attempts, and the best of ``num_local``
restarts wins.

The random walk consumes its RNG stream independently of the bound
provider, and every accepted/rejected decision is based on the *exact* swap
delta, so a vanilla run and a bound-augmented run with the same seed follow
the identical trajectory — only the oracle-call counts differ.

Each sampled neighbour's delta evaluation runs through
:func:`~repro.algorithms.medoid_common.swap_cost`, which — when the
resolver carries a :class:`repro.exec.BatchOracle` — prefetches the whole
undecidable frontier of ``(object, candidate)`` pairs as one concurrent
batch before the per-object decision loop, without changing the trajectory.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import ClusteringResult
from repro.algorithms.medoid_common import assign_objects, swap_cost
from repro.core.resolver import SmartResolver


def default_max_neighbors(n: int, l: int) -> int:
    """Ng & Han's rule scaled down: ``max(5·l, 1.25% of l·(n−l))``.

    The original floor of 250 assumes datasets of many thousands of
    objects; at laptop scale an l-proportional floor preserves the rule's
    key property (exploration effort grows with the medoid count).
    """
    return max(5 * l, int(0.0125 * l * (n - l)))


def clarans(
    resolver: SmartResolver,
    l: int = 10,
    seed: int = 0,
    num_local: int = 2,
    max_neighbors: int | None = None,
) -> ClusteringResult:
    """Randomised medoid search with bound-pruned delta evaluation.

    Parameters
    ----------
    resolver:
        Comparison engine (bound provider decides the oracle savings).
    l:
        Number of medoids.
    seed:
        RNG seed — identical seeds yield identical trajectories across bound
        providers.
    num_local:
        Number of random restarts.
    max_neighbors:
        Consecutive non-improving neighbours before declaring a local
        optimum; defaults to :func:`default_max_neighbors`.
    """
    n = resolver.oracle.n
    if not 1 <= l < n:
        raise ValueError(f"l must be in [1, {n - 1}]; got {l}")
    if max_neighbors is None:
        max_neighbors = default_max_neighbors(n, l)
    rng = np.random.default_rng(seed)

    best_medoids: list[int] | None = None
    best_cost = float("inf")
    total_iterations = 0
    for _ in range(num_local):
        medoids = sorted(int(x) for x in rng.choice(n, size=l, replace=False))
        assignment = assign_objects(resolver, medoids)
        failures = 0
        while failures < max_neighbors:
            total_iterations += 1
            m = medoids[int(rng.integers(l))]
            h = int(rng.integers(n))
            if h in medoids:
                failures += 1
                continue
            delta = swap_cost(resolver, medoids, assignment, m, h)
            if delta < -1e-12:
                medoids = sorted(x for x in medoids if x != m) + [h]
                medoids.sort()
                assignment = assign_objects(resolver, medoids)
                failures = 0
            else:
                failures += 1
        cost = assignment.cost
        if cost < best_cost:
            best_cost = cost
            best_medoids = list(medoids)
    final_assignment = assign_objects(resolver, best_medoids)
    return ClusteringResult(
        medoids=tuple(best_medoids),
        assignment=tuple(final_assignment.nearest),
        cost=final_assignment.cost,
        iterations=total_iterations,
    )
