"""Shared machinery for the medoid clustering algorithms (PAM, CLARANS).

Both algorithms revolve around the same two primitives:

* **assignment** — each object's nearest and second-nearest medoid (with
  exact distances), computed through the resolver's pruned 2-NN search;
* **swap cost** — the exact change in total deviation caused by replacing
  medoid ``m`` with non-medoid ``h`` (Kaufman & Rousseeuw's ``TC_mh``),
  where each per-object contribution is decided from bounds when possible:

  - an object whose nearest medoid survives the swap contributes 0 whenever
    ``LB(o, h) >= d1(o)`` — no oracle call;
  - an object whose nearest medoid *is* ``m`` contributes ``d2(o) − d1(o)``
    whenever ``LB(o, h) >= d2(o)`` — no oracle call.

Contributions that the bounds cannot settle are resolved exactly, so the
swap costs (and therefore the algorithms' trajectories) match the vanilla
implementations bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.resolver import SmartResolver


@dataclass
class Assignment:
    """Per-object nearest/second-nearest medoid information."""

    nearest: List[int]   # nearest medoid id per object (medoids map to themselves)
    d1: List[float]      # distance to the nearest medoid (0 for medoids)
    d2: List[float]      # distance to the second-nearest medoid (inf when l == 1)

    @property
    def cost(self) -> float:
        """Total deviation: sum of nearest-medoid distances."""
        return sum(self.d1)


def assign_objects(resolver: SmartResolver, medoids: Sequence[int]) -> Assignment:
    """Compute the exact assignment of every object to its nearest medoids."""
    n = resolver.oracle.n
    medoid_set = set(medoids)
    medoid_list = list(medoids)
    nearest = [0] * n
    d1 = [0.0] * n
    d2 = [math.inf] * n
    for o in range(n):
        if o in medoid_set:
            nearest[o] = o
            d1[o] = 0.0
            # Second-nearest of a medoid is its nearest *other* medoid; only
            # needed when that medoid is removed, so compute lazily then.
            d2[o] = math.inf
            continue
        top2 = resolver.knearest(o, medoid_list, 2)
        d1[o], nearest[o] = top2[0]
        d2[o] = top2[1][0] if len(top2) > 1 else math.inf
    return Assignment(nearest=nearest, d1=d1, d2=d2)


def swap_cost(
    resolver: SmartResolver,
    medoids: Sequence[int],
    assignment: Assignment,
    m: int,
    h: int,
) -> float:
    """Exact total-deviation delta of swapping medoid ``m`` for object ``h``.

    Negative values mean the swap improves the clustering.  Only per-object
    contributions the bounds cannot decide trigger oracle resolutions.
    """
    n = resolver.oracle.n
    medoid_set = set(medoids)
    if m not in medoid_set:
        raise ValueError(f"{m} is not a medoid")
    if h in medoid_set:
        raise ValueError(f"{h} is already a medoid")
    nearest = assignment.nearest
    d1 = assignment.d1
    d2 = assignment.d2
    if resolver.batched:
        # The decision loop below resolves (o, h) exactly when the lower
        # bound stays under the object's threshold (d2 when o belongs to m,
        # d1 otherwise); fetch that frontier in one batch up front.
        resolver.prefetch_thresholds(
            ((o, h), d2[o] if nearest[o] == m else d1[o])
            for o in range(n)
            if o != h and o != m and o not in medoid_set
        )
    delta = 0.0
    for o in range(n):
        if o == h or o == m:
            continue
        if o in medoid_set:
            continue
        if nearest[o] == m:
            # o loses its medoid: it moves to h or to its second-nearest.
            ceiling = d2[o]
            if resolver.is_at_least(o, h, ceiling):
                delta += ceiling - d1[o]
            else:
                d_oh = resolver.distance(o, h)
                delta += min(d_oh, ceiling) - d1[o]
        else:
            # o keeps its medoid unless h comes strictly closer.
            if not resolver.is_at_least(o, h, d1[o]):
                d_oh = resolver.distance(o, h)
                if d_oh < d1[o]:
                    delta += d_oh - d1[o]
    # h itself: was a regular object paying d1[h]; becomes a medoid paying 0.
    delta -= d1[h]
    # m itself: was a medoid paying 0; now pays its nearest new medoid.
    new_medoids = [x for x in medoids if x != m] + [h]
    _, d_m = resolver.argmin(m, new_medoids)
    delta += d_m
    return delta


def total_cost(resolver: SmartResolver, medoids: Sequence[int]) -> float:
    """Exact clustering cost of a medoid set (used for verification)."""
    return assign_objects(resolver, medoids).cost
