"""k-nearest-neighbour graph construction for expensive distance oracles.

The paper plugs its framework into KNNrp (Paredes et al. 2006), a practical
metric kNNG builder.  The host algorithm's re-authorable core is the same
in every exact metric kNNG method: while scanning candidates for node ``u``
it repeatedly executes

    if dist(u, v) < dist(u, w_k):   # w_k = current k-th nearest
        update the neighbour heap

The builder here keeps that exact loop and routes it through the resolver:
candidates are visited in ascending lower-bound order, and any candidate
whose lower bound already meets the running k-th-best distance is pruned.
Because nodes are processed sequentially over a *shared* partial graph, each
resolved distance enriches the bound provider for all later nodes — the
symmetric "use the graph you have built so far" trick KNNrp exploits.

``knn_graph_brute`` is the vanilla baseline (full scan, no pruning).
"""

from __future__ import annotations

from repro.algorithms.base import KnnGraphResult
from repro.core.resolver import SmartResolver


def knn_graph(resolver: SmartResolver, k: int = 5) -> KnnGraphResult:
    """Exact kNN graph with lower-bound pruning per candidate scan."""
    n = resolver.oracle.n
    if not 1 <= k < n:
        raise ValueError(f"k must be in [1, {n - 1}]; got {k}")
    universe = list(range(n))
    rows = []
    for u in range(n):
        neighbours = resolver.knearest(u, universe, k)
        rows.append(tuple(neighbours))
    return KnnGraphResult(neighbors=tuple(rows), k=k)


def knn_graph_brute(resolver: SmartResolver, k: int = 5) -> KnnGraphResult:
    """Vanilla kNN graph: resolve every pair, then sort (the baseline)."""
    n = resolver.oracle.n
    if not 1 <= k < n:
        raise ValueError(f"k must be in [1, {n - 1}]; got {k}")
    rows = []
    for u in range(n):
        if resolver.batched:
            # The scan below needs the whole row; fetch it as one batch.
            resolver.resolve_many((u, v) for v in range(n) if v != u)
        scored = sorted(
            (resolver.distance(u, v), v) for v in range(n) if v != u
        )
        rows.append(tuple(scored[:k]))
    return KnnGraphResult(neighbors=tuple(rows), k=k)
