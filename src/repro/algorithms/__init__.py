"""Proximity algorithms re-authored onto the bound framework."""

from repro.algorithms.base import ClusteringResult, KnnGraphResult, MstResult
from repro.algorithms.clarans import clarans, default_max_neighbors
from repro.algorithms.dbscan import NOISE, DbscanResult, dbscan
from repro.algorithms.kcenter import KCenterResult, k_center
from repro.algorithms.linkage import LinkageResult, Merge, single_linkage
from repro.algorithms.queries import (
    farthest_neighbor,
    k_nearest,
    nearest_neighbor,
    range_query,
)
from repro.algorithms.tsp import TourResult, nearest_neighbor_tour, two_opt
from repro.algorithms.knng import knn_graph, knn_graph_brute
from repro.algorithms.kruskal import kruskal_mst
from repro.algorithms.medoid_common import Assignment, assign_objects, swap_cost, total_cost
from repro.algorithms.pam import pam
from repro.algorithms.prim import prim_mst, prim_mst_comparisons
from repro.algorithms.union_find import UnionFind

__all__ = [
    "Assignment",
    "DbscanResult",
    "KCenterResult",
    "LinkageResult",
    "Merge",
    "TourResult",
    "NOISE",
    "dbscan",
    "farthest_neighbor",
    "k_center",
    "k_nearest",
    "nearest_neighbor",
    "nearest_neighbor_tour",
    "range_query",
    "single_linkage",
    "two_opt",
    "ClusteringResult",
    "KnnGraphResult",
    "MstResult",
    "UnionFind",
    "assign_objects",
    "clarans",
    "default_max_neighbors",
    "knn_graph",
    "knn_graph_brute",
    "kruskal_mst",
    "pam",
    "prim_mst",
    "prim_mst_comparisons",
    "swap_cost",
    "total_cost",
]
