"""Prim's MST algorithm, re-authored for expensive distance oracles.

The vanilla algorithm, run over the *complete* distance graph, resolves
every pair: after adding node ``u`` to the tree it scans every outside node
``v`` and executes

    if dist(u, v) < key[v]: key[v] = dist(u, v)

— one oracle call per scan.  The re-authored version asks the resolver's
bound machinery first: when ``LB(u, v) >= key[v]`` the candidate provably
cannot improve the key and the oracle call is skipped.  Keys are only ever
*written* from resolved (exact) distances, so the key evolution — and hence
the produced tree — is identical to the vanilla run.
"""

from __future__ import annotations

import math

from repro.algorithms.base import MstResult
from repro.core.resolver import SmartResolver


def prim_mst(resolver: SmartResolver, root: int = 0) -> MstResult:
    """Exact MST over the complete metric graph with bound pruning.

    Parameters
    ----------
    resolver:
        The comparison engine; its bound provider determines how many oracle
        calls get saved (a :class:`TrivialBounder` reproduces vanilla Prim).
    root:
        Object the tree grows from.
    """
    n = resolver.oracle.n
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range for {n} objects")
    in_tree = [False] * n
    key = [math.inf] * n
    parent = [-1] * n
    key[root] = 0.0

    edges: list[tuple[int, int, float]] = []
    total = 0.0
    for _ in range(n):
        # Extract-min over the frontier (first index wins ties, like the
        # textbook array implementation).
        u = -1
        best = math.inf
        for v in range(n):
            if not in_tree[v] and key[v] < best:
                best = key[v]
                u = v
        if u < 0:
            raise ValueError("graph disconnected — metric spaces never are")
        in_tree[u] = True
        if parent[u] >= 0:
            edges.append((parent[u], u, key[u]))
            total += key[u]
        if resolver.batched:
            # The scan below resolves (u, v) exactly when the lower bound
            # stays under key[v]; fetch that frontier as one batch first.
            resolver.prefetch_thresholds(
                ((u, v), key[v]) for v in range(n) if not in_tree[v]
            )
        for v in range(n):
            if in_tree[v]:
                continue
            # Re-authored IF: prune when the lower bound already proves
            # dist(u, v) >= key[v]; otherwise resolve and compare exactly.
            if resolver.is_at_least(u, v, key[v]):
                continue
            d = resolver.distance(u, v)
            if d < key[v]:
                key[v] = d
                parent[v] = u
    return MstResult(edges=tuple(edges), total_weight=total)


def prim_mst_comparisons(resolver: SmartResolver, root: int = 0) -> MstResult:
    """Comparison-driven Prim: no numeric keys, only pairwise distance ``IF``s.

    This variant phrases *every* decision — both the candidate update and
    the extract-min — as a comparison between two (possibly unknown)
    distances, ``dist(u, v) < dist(cand[v], v)``.  That is the formulation
    under which the Direct Feasibility Test outperforms pure bound schemes:
    the LP can certify an ordering between two unknown distances *jointly*,
    which no independent lower/upper-bound pair can.  Only the ``n − 1``
    accepted edges are ever resolved for their numeric weight.

    The output matches :func:`prim_mst` exactly (first-index tie-breaking).
    """
    n = resolver.oracle.n
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range for {n} objects")
    in_tree = [False] * n
    in_tree[root] = True
    # cand[v] = best-known tree endpoint for outside node v.
    cand = [root] * n

    edges: list[tuple[int, int, float]] = []
    total = 0.0
    for _ in range(n - 1):
        # Extract-min by comparisons over the frontier.
        best = -1
        for v in range(n):
            if in_tree[v]:
                continue
            if best < 0:
                best = v
                continue
            if resolver.less((cand[v], v), (cand[best], best)):
                best = v
        weight = resolver.distance(cand[best], best)
        edges.append((cand[best], best, weight))
        total += weight
        in_tree[best] = True
        u = best
        for v in range(n):
            if in_tree[v] or cand[v] == u:
                continue
            if resolver.less((u, v), (cand[v], v)):
                cand[v] = u
    return MstResult(edges=tuple(edges), total_weight=total)
