"""Classic metric-space queries, re-authored onto the bound framework.

These are the primitives the metric-indexing literature (AESA, LAESA,
VP-trees, M-trees) is built around; here they run against an arbitrary
bound provider and a shared partial graph, so a query issued after an
algorithm run inherits all of its resolved distances for free.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.core.resolver import SmartResolver


def nearest_neighbor(
    resolver: SmartResolver,
    query: int,
    candidates: Optional[Sequence[int]] = None,
) -> Tuple[int, float]:
    """Exact nearest neighbour of ``query`` with lower-bound pruning.

    Returns ``(object, distance)``; raises ValueError when no candidates
    exist.  Identical to a vanilla linear scan (first-index tie-break).
    """
    pool = [c for c in (candidates if candidates is not None else range(resolver.oracle.n)) if c != query]
    if not pool:
        raise ValueError("nearest_neighbor needs at least one candidate")
    best, dist = resolver.argmin(query, pool)
    return best, dist


def k_nearest(
    resolver: SmartResolver,
    query: int,
    k: int,
    candidates: Optional[Sequence[int]] = None,
) -> List[Tuple[float, int]]:
    """Exact ``k`` nearest neighbours, ascending ``(distance, object)``."""
    pool = candidates if candidates is not None else range(resolver.oracle.n)
    return resolver.knearest(query, pool, k)


def range_query(
    resolver: SmartResolver,
    query: int,
    radius: float,
    candidates: Optional[Sequence[int]] = None,
    include_query: bool = False,
) -> List[int]:
    """All objects within ``radius`` of ``query`` (inclusive), sorted by id.

    Re-authoring saves calls in *both* directions: a candidate whose lower
    bound exceeds the radius is rejected unresolved, and one whose upper
    bound already fits is accepted unresolved — the output object set is
    identical to the vanilla scan either way.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    pool = candidates if candidates is not None else range(resolver.oracle.n)
    hits: List[int] = []
    for c in pool:
        if c == query:
            if include_query:
                hits.append(c)
            continue
        bounds = resolver.bounds(query, c)
        if bounds.lower > radius:
            resolver.stats.decided_by_bounds += 1
            continue
        if bounds.upper <= radius:
            resolver.stats.decided_by_bounds += 1
            hits.append(c)
            continue
        resolver.stats.decided_by_oracle += 1
        if resolver.distance(query, c) <= radius:
            hits.append(c)
    hits.sort()
    return hits


def farthest_neighbor(
    resolver: SmartResolver,
    query: int,
    candidates: Optional[Sequence[int]] = None,
) -> Tuple[int, float]:
    """Exact farthest neighbour of ``query`` with upper-bound pruning.

    The mirror image of :func:`nearest_neighbor`: a candidate whose *upper*
    bound cannot reach the current best maximum is skipped unresolved.
    """
    pool = [c for c in (candidates if candidates is not None else range(resolver.oracle.n)) if c != query]
    if not pool:
        raise ValueError("farthest_neighbor needs at least one candidate")
    # Probe in descending upper-bound order to establish a high floor early.
    order = sorted(
        range(len(pool)),
        key=lambda pos: -resolver.bounds(query, pool[pos]).upper,
    )
    best_pos: Optional[int] = None
    best_dist = -math.inf
    for pos in order:
        c = pool[pos]
        b = resolver.bounds(query, c)
        if b.upper < best_dist:
            resolver.stats.decided_by_bounds += 1
            continue
        if b.upper == best_dist and best_pos is not None and best_pos <= pos:
            resolver.stats.decided_by_bounds += 1
            continue
        resolver.stats.decided_by_oracle += 1
        d = resolver.distance(query, c)
        if d > best_dist or (d == best_dist and (best_pos is None or pos < best_pos)):
            best_dist = d
            best_pos = pos
    return pool[best_pos], best_dist
