"""Shared result types for the proximity algorithms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class MstResult:
    """Minimum spanning tree output.

    ``edges`` are ``(u, v, weight)`` triples in the order the algorithm
    accepted them (Prim: tree-growth order; Kruskal: ascending weight).
    """

    edges: Tuple[Tuple[int, int, float], ...]
    total_weight: float

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def edge_set(self) -> frozenset:
        """Orientation-free edge set for output-equality comparisons."""
        return frozenset((min(u, v), max(u, v)) for u, v, _ in self.edges)


@dataclass(frozen=True)
class ClusteringResult:
    """Medoid clustering output.

    ``assignment[o]`` is the medoid id object ``o`` belongs to; ``cost`` is
    the total deviation (sum of each object's distance to its medoid).
    """

    medoids: Tuple[int, ...]
    assignment: Tuple[int, ...]
    cost: float
    iterations: int

    @property
    def num_clusters(self) -> int:
        return len(self.medoids)

    def cluster_members(self) -> Dict[int, List[int]]:
        """Medoid id → list of member object ids."""
        members: Dict[int, List[int]] = {m: [] for m in self.medoids}
        for obj, medoid in enumerate(self.assignment):
            members[medoid].append(obj)
        return members


@dataclass(frozen=True)
class KnnGraphResult:
    """k-nearest-neighbour graph output.

    ``neighbors[u]`` is the ascending ``(distance, neighbour)`` list of
    ``u``'s ``k`` nearest objects.
    """

    neighbors: Tuple[Tuple[Tuple[float, int], ...], ...]
    k: int

    @property
    def n(self) -> int:
        return len(self.neighbors)

    def neighbor_ids(self, u: int) -> List[int]:
        """Just the neighbour ids of ``u`` (ascending by distance)."""
        return [v for _, v in self.neighbors[u]]

    def edge_set(self) -> frozenset:
        """Undirected edge set of the graph."""
        edges = set()
        for u, lst in enumerate(self.neighbors):
            for _, v in lst:
                edges.add((min(u, v), max(u, v)))
        return frozenset(edges)
