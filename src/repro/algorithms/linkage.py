"""Single-linkage hierarchical clustering via the re-authored MST.

Single linkage's dendrogram is exactly the MST's edges replayed in
ascending order (Gower & Ross 1969), so the framework's Kruskal savings
transfer wholesale: the full hierarchy costs no more oracle calls than the
spanning tree.  ``cut``/``cut_k`` then produce flat clusterings without a
single additional distance call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.algorithms.kruskal import kruskal_mst
from repro.algorithms.union_find import UnionFind
from repro.core.resolver import SmartResolver


@dataclass(frozen=True)
class Merge:
    """One dendrogram merge: two clusters joined at ``height``."""

    left_root: int
    right_root: int
    height: float


@dataclass(frozen=True)
class LinkageResult:
    """Single-linkage dendrogram over ``n`` objects."""

    n: int
    merges: Tuple[Merge, ...]

    def cut(self, height: float) -> List[List[int]]:
        """Flat clusters after merging every pair closer than ``height``.

        Merges with ``merge.height <= height`` are applied (inclusive),
        matching the convention of cutting *above* that level.
        """
        uf = UnionFind(self.n)
        for merge in self.merges:
            if merge.height <= height:
                uf.union(merge.left_root, merge.right_root)
        return self._materialise(uf)

    def cut_k(self, k: int) -> List[List[int]]:
        """Flat clustering with exactly ``k`` clusters (1 <= k <= n)."""
        if not 1 <= k <= self.n:
            raise ValueError(f"k must be in [1, {self.n}]; got {k}")
        uf = UnionFind(self.n)
        # Applying the first n - k merges leaves exactly k components.
        for merge in self.merges[: self.n - k]:
            uf.union(merge.left_root, merge.right_root)
        return self._materialise(uf)

    def heights(self) -> List[float]:
        """The (non-decreasing) merge heights."""
        return [m.height for m in self.merges]

    def _materialise(self, uf: UnionFind) -> List[List[int]]:
        clusters: Dict[int, List[int]] = {}
        for obj in range(self.n):
            clusters.setdefault(uf.find(obj), []).append(obj)
        return sorted(clusters.values(), key=lambda members: members[0])


def single_linkage(resolver: SmartResolver) -> LinkageResult:
    """Exact single-linkage dendrogram with bound-pruned distance calls."""
    n = resolver.oracle.n
    mst = kruskal_mst(resolver)
    merges = tuple(Merge(u, v, w) for u, v, w in mst.edges)
    return LinkageResult(n=n, merges=merges)
