"""Loaders for user-supplied data files.

Adoption glue: turn the files people actually have — CSVs of coordinates,
text files of sequences, precomputed distance matrices — into metric
spaces the framework can consume.
"""

from __future__ import annotations

import csv
import os
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.spaces.matrix import MatrixSpace
from repro.spaces.roadnet import RoadNetworkSpace
from repro.spaces.strings import EditDistanceSpace
from repro.spaces.vector import EuclideanSpace, ManhattanSpace, MinkowskiSpace

PathLike = Union[str, os.PathLike]


def load_points_csv(
    path: PathLike,
    columns: Optional[Sequence[str]] = None,
    delimiter: str = ",",
    skip_header: Optional[bool] = None,
) -> np.ndarray:
    """Read a point matrix from a CSV file.

    ``columns`` selects named columns (requires a header row); without it
    every numeric column of every row is used.  ``skip_header=None``
    auto-detects a header by attempting to parse the first row as floats.
    """
    with open(path, newline="") as handle:
        rows = list(csv.reader(handle, delimiter=delimiter))
    if not rows:
        raise ValueError(f"{path} is empty")
    header: Optional[List[str]] = None
    body = rows
    first_is_header = skip_header
    if first_is_header is None:
        try:
            [float(cell) for cell in rows[0]]
            first_is_header = False
        except ValueError:
            first_is_header = True
    if first_is_header:
        header = [cell.strip() for cell in rows[0]]
        body = rows[1:]
    if columns is not None:
        if header is None:
            raise ValueError("column selection requires a header row")
        missing = [c for c in columns if c not in header]
        if missing:
            raise ValueError(f"columns {missing} not found in header {header}")
        idx = [header.index(c) for c in columns]
    else:
        idx = list(range(len(body[0]))) if body else []
    if not body:
        raise ValueError(f"{path} holds no data rows")
    points = np.array(
        [[float(row[i]) for i in idx] for row in body], dtype=np.float64
    )
    return points


def space_from_points_csv(
    path: PathLike,
    metric: str = "euclidean",
    columns: Optional[Sequence[str]] = None,
    **loader_kwargs,
):
    """Build a vector/road space directly from a CSV of coordinates.

    ``metric``: "euclidean", "manhattan", "minkowski:<p>", or "road"
    (2-D only; simulated driving distances).
    """
    points = load_points_csv(path, columns=columns, **loader_kwargs)
    if metric == "euclidean":
        return EuclideanSpace(points)
    if metric == "manhattan":
        return ManhattanSpace(points)
    if metric.startswith("minkowski:"):
        p = float(metric.split(":", 1)[1])
        return MinkowskiSpace(points, p=p)
    if metric == "road":
        return RoadNetworkSpace(points)
    raise ValueError(f"unknown metric {metric!r}")


def load_sequences(path: PathLike, normalise: bool = False) -> EditDistanceSpace:
    """Build an edit-distance space from a text file (one sequence per line).

    Blank lines and ``>``-prefixed FASTA headers are skipped; FASTA records
    spanning multiple lines are concatenated.
    """
    with open(path) as handle:
        lines = [line.strip() for line in handle]
    lines = [line for line in lines if line]
    fasta_mode = any(line.startswith(">") for line in lines)
    sequences: List[str] = []
    if fasta_mode:
        current: List[str] = []
        for line in lines:
            if line.startswith(">"):
                if current:
                    sequences.append("".join(current))
                    current = []
                continue
            current.append(line)
        if current:
            sequences.append("".join(current))
    else:
        sequences = lines
    if not sequences:
        raise ValueError(f"{path} holds no sequences")
    return EditDistanceSpace(sequences, normalise=normalise)


def load_distance_matrix_csv(
    path: PathLike,
    delimiter: str = ",",
    validate: bool = True,
) -> MatrixSpace:
    """Build a matrix space from a CSV of precomputed pairwise distances."""
    matrix = np.loadtxt(path, delimiter=delimiter)
    if matrix.ndim != 2:
        raise ValueError(f"{path} does not hold a 2-D matrix")
    return MatrixSpace(matrix, validate=validate)
