"""Laptop-scale stand-ins for the paper's three evaluation datasets.

Each facade reproduces the *metric structure* of the original at a
configurable size:

* **SF POI** (21k points of interest, Google Maps driving distance) →
  clustered 2-D points under a simulated road-network shortest-path metric.
* **UrbanGB** (360k accident locations, Google Maps driving distance) →
  more, tighter clusters (urban Great Britain accident hot-spots) under the
  same road-network metric.
* **Flickr1M** (image feature vectors, Euclidean) → 256-dimensional
  Gaussian-mixture feature vectors under Euclidean distance.

The paper's claims are about relative oracle-call counts and bound
tightness, which depend on the metric's cluster/structure, not on the data's
provenance; see DESIGN.md §3.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import clustered_points
from repro.spaces.roadnet import RoadNetworkSpace
from repro.spaces.vector import EuclideanSpace


def sf_poi_space(n: int = 200, seed: int = 7, road: bool = True):
    """San-Francisco-POI-like space: moderately clustered city points.

    ``road=True`` returns the road-network (driving-distance) metric used by
    the paper; ``road=False`` falls back to plain Euclidean for speed.
    """
    rng = np.random.default_rng(seed)
    points = clustered_points(
        n, dim=2, num_clusters=max(4, n // 40), spread=0.06, box=1.0, rng=rng
    )
    if road:
        return RoadNetworkSpace(points, k=6, detour_range=(1.05, 1.45), rng=rng)
    return EuclideanSpace(points)


def urbangb_space(n: int = 200, seed: int = 11, road: bool = True):
    """UrbanGB-like space: many dense accident clusters along a road net."""
    rng = np.random.default_rng(seed)
    points = clustered_points(
        n, dim=2, num_clusters=max(8, n // 20), spread=0.025, box=1.0, rng=rng
    )
    if road:
        return RoadNetworkSpace(points, k=5, detour_range=(1.1, 1.6), rng=rng)
    return EuclideanSpace(points)


def flickr_space(n: int = 200, dim: int = 256, seed: int = 13) -> EuclideanSpace:
    """Flickr1M-like space: high-dimensional image feature vectors.

    Real image descriptors concentrate on a low-dimensional manifold, so
    the generator uses a few compact clusters (strong intra/inter contrast).
    With a loose spread, 256-d distance concentration would make every
    triangle bound vacuous — unlike real feature data.
    """
    rng = np.random.default_rng(seed)
    points = clustered_points(
        n, dim=dim, num_clusters=4, spread=0.05, box=1.0, rng=rng
    )
    return EuclideanSpace(points)
