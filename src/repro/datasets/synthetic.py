"""Synthetic point-cloud generators used by the dataset facades."""

from __future__ import annotations

import numpy as np


def uniform_points(
    n: int,
    dim: int = 2,
    low: float = 0.0,
    high: float = 1.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """``n`` points uniform over a ``dim``-dimensional box."""
    if n <= 0:
        raise ValueError("n must be positive")
    rng = rng or np.random.default_rng()
    return rng.uniform(low, high, size=(n, dim))


def clustered_points(
    n: int,
    dim: int = 2,
    num_clusters: int = 8,
    spread: float = 0.05,
    box: float = 1.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Gaussian-mixture point cloud: ``num_clusters`` centres in a box.

    ``spread`` is each cluster's standard deviation as a fraction of the box
    side, giving the density contrast typical of urban POI data.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if num_clusters <= 0:
        raise ValueError("num_clusters must be positive")
    rng = rng or np.random.default_rng()
    centres = rng.uniform(0.0, box, size=(num_clusters, dim))
    assignment = rng.integers(num_clusters, size=n)
    noise = rng.normal(scale=spread * box, size=(n, dim))
    return centres[assignment] + noise


def ring_points(
    n: int,
    radius: float = 1.0,
    noise: float = 0.02,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Points on a noisy circle — an adversarial geometry for landmark schemes."""
    if n <= 0:
        raise ValueError("n must be positive")
    rng = rng or np.random.default_rng()
    angles = rng.uniform(0.0, 2.0 * np.pi, size=n)
    radii = radius + rng.normal(scale=noise, size=n)
    return np.column_stack((radii * np.cos(angles), radii * np.sin(angles)))
