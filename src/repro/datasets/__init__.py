"""Dataset generators: synthetic clouds and paper-dataset facades."""

from repro.datasets.facades import flickr_space, sf_poi_space, urbangb_space
from repro.datasets.loaders import (
    load_distance_matrix_csv,
    load_points_csv,
    load_sequences,
    space_from_points_csv,
)
from repro.datasets.synthetic import clustered_points, ring_points, uniform_points

__all__ = [
    "clustered_points",
    "flickr_space",
    "load_distance_matrix_csv",
    "load_points_csv",
    "load_sequences",
    "ring_points",
    "sf_poi_space",
    "space_from_points_csv",
    "uniform_points",
    "urbangb_space",
]
