"""Command-line interface: run any algorithm × provider × dataset matrix.

Examples
--------
Compare all schemes on Prim's over SF-like data::

    python -m repro run --dataset sf --n 150 --algorithm prim \
        --providers none tri laesa tlaesa

Sweep dataset sizes for the kNN-graph builder::

    python -m repro sweep --dataset urbangb --sizes 50 100 150 \
        --algorithm knng --k 5 --providers tri laesa

Inspect a provider's bound quality::

    python -m repro bounds --dataset sf --n 150 --edges 2500
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.datasets import flickr_space, sf_poi_space, urbangb_space
from repro.harness import (
    PROVIDER_NAMES,
    bounds_quality_experiment,
    percentage_save,
    print_table,
    run_experiment,
)

DATASETS = {
    "sf": lambda n, seed: sf_poi_space(n, seed=seed),
    "sf-euclid": lambda n, seed: sf_poi_space(n, seed=seed, road=False),
    "urbangb": lambda n, seed: urbangb_space(n, seed=seed),
    "urbangb-euclid": lambda n, seed: urbangb_space(n, seed=seed, road=False),
    "flickr": lambda n, seed: flickr_space(n, seed=seed),
}

ALGORITHM_PARAMS = {
    "knng": ("k",),
    "knng-brute": ("k",),
    "pam": ("l", "seed"),
    "clarans": ("l", "seed"),
    "kcenter": ("k",),
    "dbscan": ("eps", "min_pts"),
}


def _build_space(args):
    return DATASETS[args.dataset](args.n, args.seed)


def _algorithm_kwargs(args) -> dict:
    kwargs = {}
    for name in ALGORITHM_PARAMS.get(args.algorithm, ()):
        value = getattr(args, name, None)
        if value is not None:
            kwargs[name] = value
    return kwargs


def _cmd_run(args) -> int:
    space = _build_space(args)
    kwargs = _algorithm_kwargs(args)
    rows = []
    baseline_calls = None
    for provider in args.providers:
        record = run_experiment(
            space,
            args.algorithm,
            provider,
            landmark_bootstrap=args.bootstrap and provider == "tri",
            oracle_cost=args.oracle_cost,
            algorithm_kwargs=kwargs,
            executor=args.executor,
            workers=args.workers,
            oracle_cache=args.oracle_cache,
        )
        if baseline_calls is None:
            baseline_calls = record.total_calls
        rows.append(
            [
                provider,
                record.bootstrap_calls,
                record.algorithm_calls,
                record.total_calls,
                round(percentage_save(baseline_calls, record.total_calls), 1),
                round(record.cpu_seconds, 3),
                round(record.completion_seconds, 2),
                round(record.bound_time_s * 1e3, 1),
                record.bound_cache_hits,
                record.vectorized_batches,
                record.dijkstra_runs,
            ]
        )
    print_table(
        ["provider", "bootstrap", "algorithm", "total", "save% vs first",
         "cpu (s)", "completion (s)", "bound (ms)", "bound hits",
         "vec batches", "dijkstras"],
        rows,
        title=f"{args.algorithm} on {args.dataset} (n={args.n}, "
        f"oracle={args.oracle_cost}s/call, "
        f"executor={args.executor or 'inline'})",
    )
    return 0


def _cmd_sweep(args) -> int:
    kwargs = _algorithm_kwargs(args)
    rows = []
    for n in args.sizes:
        space = DATASETS[args.dataset](n, args.seed)
        row: List = [n]
        for provider in args.providers:
            record = run_experiment(
                space,
                args.algorithm,
                provider,
                landmark_bootstrap=args.bootstrap and provider == "tri",
                algorithm_kwargs=kwargs,
                executor=args.executor,
                workers=args.workers,
                oracle_cache=args.oracle_cache,
            )
            row.append(record.total_calls)
        rows.append(row)
    print_table(
        ["n", *args.providers],
        rows,
        title=f"{args.algorithm} total oracle calls on {args.dataset}",
    )
    return 0


def _cmd_bounds(args) -> int:
    space = _build_space(args)
    results = bounds_quality_experiment(
        space,
        num_edges=args.edges,
        num_queries=args.queries,
        providers=tuple(args.providers),
    )
    print_table(
        ["provider", "mean LB", "mean UB", "gap", "rel err LB", "rel err UB",
         "query (µs)", "update (ms)"],
        [
            [
                r.provider,
                round(r.mean_lower, 4),
                round(r.mean_upper, 4),
                round(r.mean_gap, 4),
                round(r.rel_err_lower_vs_adm, 5),
                round(r.rel_err_upper_vs_adm, 5),
                round(r.mean_query_seconds * 1e6, 1),
                round(r.update_seconds * 1e3, 2),
            ]
            for r in results
        ],
        title=f"bound quality on {args.dataset} (n={args.n}, m={args.edges})",
    )
    return 0


def _cmd_indexes(args) -> int:
    """Framework vs classic metric indexes on an NN-query workload."""
    import numpy as np

    from repro.algorithms.queries import nearest_neighbor
    from repro.bounds import TriScheme
    from repro.core.resolver import SmartResolver
    from repro.index import Gnat, MTree, VpTree

    space = _build_space(args)
    rng = np.random.default_rng(args.seed)
    queries = [int(q) for q in rng.integers(space.n, size=args.queries)]

    rows = []
    oracle = space.oracle()
    resolver = SmartResolver(oracle)
    resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
    for q in queries:
        nearest_neighbor(resolver, q)
    rows.append(["framework (Tri)", 0, oracle.calls, oracle.calls])

    for label, factory in (
        ("VP-tree", lambda o: VpTree(o, rng=np.random.default_rng(0))),
        ("M-tree", lambda o: MTree(o, rng=np.random.default_rng(0))),
        ("GNAT", lambda o: Gnat(o, rng=np.random.default_rng(0))),
    ):
        oracle = space.oracle()
        index = factory(oracle)
        build = index.construction_calls
        for q in queries:
            index.nearest(q)
        rows.append([label, build, oracle.calls - build, oracle.calls])

    print_table(
        ["approach", "build calls", "query calls", "total"],
        rows,
        title=f"{args.queries} NN queries on {args.dataset} (n={args.n})",
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reducing expensive distance calls for proximity problems "
        "(SIGMOD 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, algorithms=True):
        p.add_argument("--dataset", choices=sorted(DATASETS), default="sf")
        p.add_argument("--seed", type=int, default=7)
        p.add_argument(
            "--providers", nargs="+", default=["none", "tri", "laesa", "tlaesa"],
            choices=list(PROVIDER_NAMES),
        )
        if algorithms:
            p.add_argument(
                "--algorithm",
                default="prim",
                choices=["prim", "prim-cmp", "kruskal", "knng", "knng-brute",
                         "pam", "clarans", "kcenter", "linkage", "nn-tour",
                         "dbscan"],
            )
            p.add_argument("--k", type=int, default=None, help="k for knng/kcenter")
            p.add_argument("--l", type=int, default=None, help="clusters for pam/clarans")
            p.add_argument("--eps", type=float, default=None, help="radius for dbscan")
            p.add_argument("--min-pts", dest="min_pts", type=int, default=None,
                           help="core threshold for dbscan")
            p.add_argument("--bootstrap", action="store_true",
                           help="LAESA-bootstrap the Tri Scheme")
            p.add_argument("--executor", choices=["serial", "threaded"],
                           default=None,
                           help="route resolutions through the batched "
                           "execution pipeline (outputs are identical)")
            p.add_argument("--workers", type=int, default=8,
                           help="thread-pool size for --executor threaded")
            p.add_argument("--oracle-cache", dest="oracle_cache", default=None,
                           help="persistent distance cache (':memory:' or a "
                           "SQLite file path); repeated runs never re-pay")

    run_p = sub.add_parser("run", help="one dataset size, many providers")
    common(run_p)
    run_p.add_argument("--n", type=int, default=100)
    run_p.add_argument("--oracle-cost", type=float, default=0.0,
                       help="simulated seconds per oracle call")
    run_p.set_defaults(func=_cmd_run)

    sweep_p = sub.add_parser("sweep", help="sweep dataset sizes")
    common(sweep_p)
    sweep_p.add_argument("--sizes", nargs="+", type=int, required=True)
    sweep_p.set_defaults(func=_cmd_sweep)

    bounds_p = sub.add_parser("bounds", help="bound-quality comparison")
    common(bounds_p, algorithms=False)
    bounds_p.add_argument("--n", type=int, default=150)
    bounds_p.add_argument("--edges", type=int, default=2000)
    bounds_p.add_argument("--queries", type=int, default=200)
    bounds_p.set_defaults(
        func=_cmd_bounds,
    )
    bounds_p.set_defaults(providers=["splub", "tri", "laesa", "tlaesa", "adm"])

    indexes_p = sub.add_parser(
        "indexes", help="framework vs VP-tree/M-tree/GNAT on NN queries"
    )
    indexes_p.add_argument("--dataset", choices=sorted(DATASETS), default="sf")
    indexes_p.add_argument("--seed", type=int, default=7)
    indexes_p.add_argument("--n", type=int, default=150)
    indexes_p.add_argument("--queries", type=int, default=30)
    indexes_p.set_defaults(func=_cmd_indexes)
    return parser


def main(argv: List[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
