"""Command-line interface: run any algorithm × provider × dataset matrix.

Examples
--------
Compare all schemes on Prim's over SF-like data::

    python -m repro run --dataset sf --n 150 --algorithm prim \
        --providers none tri laesa tlaesa

Sweep dataset sizes for the kNN-graph builder::

    python -m repro sweep --dataset urbangb --sizes 50 100 150 \
        --algorithm knng --k 5 --providers tri laesa

Inspect a provider's bound quality::

    python -m repro bounds --dataset sf --n 150 --edges 2500
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List

from repro.datasets import flickr_space, sf_poi_space, urbangb_space
from repro.harness import (
    PROVIDER_NAMES,
    bounds_quality_experiment,
    percentage_save,
    print_table,
    run_experiment,
)

# (factory, fixed kwargs) per dataset name.  The factories are module-level
# functions, so the resulting SpaceHandle pickles by reference — which is
# what lets shard subprocesses and oracle worker processes rebuild the same
# space without shipping distance matrices around.
DATASET_BUILDERS = {
    "sf": (sf_poi_space, {}),
    "sf-euclid": (sf_poi_space, {"road": False}),
    "urbangb": (urbangb_space, {}),
    "urbangb-euclid": (urbangb_space, {"road": False}),
    "flickr": (flickr_space, {}),
}

DATASETS = {
    name: (lambda n, seed, _f=factory, _kw=extra: _f(n, seed=seed, **_kw))
    for name, (factory, extra) in DATASET_BUILDERS.items()
}


def dataset_handle(name: str, n: int, seed: int):
    """A picklable :class:`~repro.spaces.handles.SpaceHandle` for a dataset."""
    from repro.spaces.handles import handle_for

    factory, extra = DATASET_BUILDERS[name]
    return handle_for(factory, n, seed=seed, **extra)

ALGORITHM_PARAMS = {
    "knng": ("k",),
    "knng-brute": ("k",),
    "pam": ("l", "seed"),
    "clarans": ("l", "seed"),
    "kcenter": ("k",),
    "dbscan": ("eps", "min_pts"),
}


def _workers_arg(value: str) -> int:
    """argparse type for ``--workers``: a positive thread count."""
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}")
    if workers < 1:
        raise argparse.ArgumentTypeError(
            f"must be at least 1 (got {workers}); a thread pool needs a thread"
        )
    return workers


def _cache_path_arg(value: str) -> str:
    """argparse type for ``--oracle-cache``: ':memory:' or a writable path."""
    if value == ":memory:":
        return value
    parent = os.path.dirname(os.path.abspath(value))
    if not os.path.isdir(parent):
        raise argparse.ArgumentTypeError(
            f"parent directory {parent!r} does not exist — create it first, "
            "or use ':memory:' for a non-persistent cache"
        )
    return value


def _param_arg(value: str) -> tuple:
    """argparse type for ``--param key=value`` job parameters."""
    key, sep, raw = value.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"expected key=value, got {value!r} (e.g. --param query=3)"
        )
    for cast in (int, float):
        try:
            return key, cast(raw)
        except ValueError:
            continue
    return key, raw


def _build_space(args):
    return DATASETS[args.dataset](args.n, args.seed)


def _algorithm_kwargs(args) -> dict:
    kwargs = {}
    for name in ALGORITHM_PARAMS.get(args.algorithm, ()):
        value = getattr(args, name, None)
        if value is not None:
            kwargs[name] = value
    return kwargs


def _cmd_run(args) -> int:
    space = _build_space(args)
    kwargs = _algorithm_kwargs(args)
    rows = []
    baseline_calls = None
    for provider in args.providers:
        record = run_experiment(
            space,
            args.algorithm,
            provider,
            landmark_bootstrap=args.bootstrap and provider == "tri",
            oracle_cost=args.oracle_cost,
            algorithm_kwargs=kwargs,
            executor=args.executor,
            workers=args.workers,
            oracle_cache=args.oracle_cache,
            weak_oracle=args.weak_oracle,
            stretch=args.stretch,
        )
        if baseline_calls is None:
            baseline_calls = record.total_calls
        rows.append(
            [
                provider,
                record.bootstrap_calls,
                record.algorithm_calls,
                record.total_calls,
                round(percentage_save(baseline_calls, record.total_calls), 1),
                round(record.cpu_seconds, 3),
                round(record.completion_seconds, 2),
                round(record.bound_time_s * 1e3, 1),
                record.bound_cache_hits,
                record.vectorized_batches,
                record.dijkstra_runs,
                record.weak_calls,
            ]
        )
    print_table(
        ["provider", "bootstrap", "algorithm", "total", "save% vs first",
         "cpu (s)", "completion (s)", "bound (ms)", "bound hits",
         "vec batches", "dijkstras", "weak calls"],
        rows,
        title=f"{args.algorithm} on {args.dataset} (n={args.n}, "
        f"oracle={args.oracle_cost}s/call, "
        f"executor={args.executor or 'inline'})",
    )
    return 0


def _cmd_sweep(args) -> int:
    kwargs = _algorithm_kwargs(args)
    rows = []
    for n in args.sizes:
        space = DATASETS[args.dataset](n, args.seed)
        row: List = [n]
        for provider in args.providers:
            record = run_experiment(
                space,
                args.algorithm,
                provider,
                landmark_bootstrap=args.bootstrap and provider == "tri",
                algorithm_kwargs=kwargs,
                executor=args.executor,
                workers=args.workers,
                oracle_cache=args.oracle_cache,
                weak_oracle=args.weak_oracle,
            )
            row.append(record.total_calls)
        rows.append(row)
    print_table(
        ["n", *args.providers],
        rows,
        title=f"{args.algorithm} total oracle calls on {args.dataset}",
    )
    return 0


def _cmd_bounds(args) -> int:
    space = _build_space(args)
    results = bounds_quality_experiment(
        space,
        num_edges=args.edges,
        num_queries=args.queries,
        providers=tuple(args.providers),
    )
    print_table(
        ["provider", "mean LB", "mean UB", "gap", "rel err LB", "rel err UB",
         "query (µs)", "update (ms)"],
        [
            [
                r.provider,
                round(r.mean_lower, 4),
                round(r.mean_upper, 4),
                round(r.mean_gap, 4),
                round(r.rel_err_lower_vs_adm, 5),
                round(r.rel_err_upper_vs_adm, 5),
                round(r.mean_query_seconds * 1e6, 1),
                round(r.update_seconds * 1e3, 2),
            ]
            for r in results
        ],
        title=f"bound quality on {args.dataset} (n={args.n}, m={args.edges})",
    )
    return 0


def _cmd_indexes(args) -> int:
    """Framework vs classic metric indexes on an NN-query workload."""
    import numpy as np

    from repro.algorithms.queries import nearest_neighbor
    from repro.bounds import TriScheme
    from repro.core.resolver import SmartResolver
    from repro.index import Gnat, MTree, VpTree

    space = _build_space(args)
    rng = np.random.default_rng(args.seed)
    queries = [int(q) for q in rng.integers(space.n, size=args.queries)]

    rows = []
    oracle = space.oracle()
    resolver = SmartResolver(oracle)
    resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
    for q in queries:
        nearest_neighbor(resolver, q)
    rows.append(["framework (Tri)", 0, oracle.calls, oracle.calls])

    for label, factory in (
        ("VP-tree", lambda o: VpTree(o, rng=np.random.default_rng(0))),
        ("M-tree", lambda o: MTree(o, rng=np.random.default_rng(0))),
        ("GNAT", lambda o: Gnat(o, rng=np.random.default_rng(0))),
    ):
        oracle = space.oracle()
        index = factory(oracle)
        build = index.construction_calls
        for q in queries:
            index.nearest(q)
        rows.append([label, build, oracle.calls - build, oracle.calls])

    print_table(
        ["approach", "build calls", "query calls", "total"],
        rows,
        title=f"{args.queries} NN queries on {args.dataset} (n={args.n})",
    )
    return 0


def _cmd_serve(args) -> int:
    """Run a persistent proximity engine behind a local or TCP socket."""
    from repro.service import ProximityEngine, ProximityServer

    if args.transport == "unix" and not args.socket:
        print("error: --transport unix requires --socket", file=sys.stderr)
        return 2
    if args.transport == "tcp" and args.port is None:
        print("error: --transport tcp requires --port", file=sys.stderr)
        return 2

    sharded = args.shards > 1
    if sharded:
        from repro.service import ShardedEngine

        if args.snapshot_path or args.snapshot_every:
            print(
                "error: --snapshot-path/--snapshot-every are not supported "
                "with --shards > 1 (use the snapshot op against the running "
                "coordinator instead)",
                file=sys.stderr,
            )
            return 2
        engine = ShardedEngine(
            dataset_handle(args.dataset, args.n, args.seed),
            num_shards=args.shards,
            provider=args.provider,
            dynamic=args.mutations,
        )
        if args.restore_from:
            engine.restore(args.restore_from)
        backend = engine
        n = engine.n
    else:
        space = _build_space(args)
        if args.mutations:
            from repro.dynamic import DynamicObjectSet

            space = DynamicObjectSet.wrap(space)
        engine = ProximityEngine.for_space(
            space,
            provider=args.provider,
            job_workers=args.job_workers,
            snapshot_path=args.snapshot_path,
            snapshot_every=args.snapshot_every,
            restore_from=args.restore_from,
            weak_oracle=args.weak_oracle,
        )
        backend = engine
        n = space.n

    if args.transport == "tcp" or sharded:
        from repro.service import AsyncProximityServer

        server = AsyncProximityServer(
            backend,
            socket_path=args.socket if args.transport == "unix" else None,
            host=args.host,
            port=args.port if args.transport == "tcp" else None,
        )
        server.start()
        where = (
            f"{args.host or '127.0.0.1'}:{server.port}"
            if args.transport == "tcp"
            else args.socket
        )
    else:
        server = ProximityServer(engine, args.socket)
        where = args.socket
    shard_note = f", shards={args.shards}" if sharded else ""
    print(
        f"serving {args.dataset} (n={n}, provider={args.provider}"
        f"{shard_note}) on {args.transport} {where}"
    )
    try:
        if args.serve_seconds is not None:
            if isinstance(server, ProximityServer):
                server.start()
            time.sleep(args.serve_seconds)
        else:  # pragma: no cover - interactive path
            server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.close()
        engine.close()
    if sharded:
        agg = engine.last_stats or {}
        print(
            f"served {agg.get('jobs_submitted', 0)} jobs, "
            f"{agg.get('oracle_calls', 0)} oracle calls, "
            f"{agg.get('warm_resolutions', 0)} warm resolutions "
            f"across {args.shards} shards"
        )
    else:
        stats = engine.snapshot_stats()
        print(
            f"served {stats.jobs_submitted} jobs, {stats.oracle_calls} oracle "
            f"calls, {stats.warm_resolutions} warm resolutions"
        )
    return 0


def _cmd_submit(args) -> int:
    """Send one request to a running ``repro serve`` engine."""
    from repro.service.server import send_request

    if args.stats:
        request = {"op": "stats"}
    elif args.insert is not None:
        request = {"op": "insert", "payload": json.loads(args.insert)}
    elif args.remove is not None:
        request = {"op": "remove", "id": args.remove}
    elif args.subscribe is not None:
        request = {"op": "subscribe", "kind": args.subscribe}
        request.update(dict(args.param))
    elif args.deltas is not None:
        request = {"op": "deltas", "sub_id": args.deltas, "since": args.since}
    elif args.kind is None:
        print(
            "error: one of --kind/--stats/--insert/--remove/--subscribe/"
            "--deltas is required",
            file=sys.stderr,
        )
        return 2
    else:
        request = {
            "op": "submit",
            "spec": {
                "kind": args.kind,
                "params": dict(args.param),
                "priority": args.priority,
                "oracle_budget": args.budget,
                "deadline": args.deadline,
                "label": args.label,
                "stretch": args.stretch,
            },
        }
    response = send_request(args.socket, request, timeout=args.timeout)
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("ok") else 1


def _cmd_stats(args) -> int:
    """Inspect a running engine: readable stats or a raw metrics snapshot."""
    from repro.service.server import send_request

    if args.snapshot:
        response = send_request(args.socket, {"op": "metrics"}, timeout=args.timeout)
        if not response.get("ok"):
            print(json.dumps(response, indent=2, sort_keys=True), file=sys.stderr)
            return 1
        print(response["metrics"], end="")
        return 0
    response = send_request(args.socket, {"op": "stats"}, timeout=args.timeout)
    if not response.get("ok"):
        print(json.dumps(response, indent=2, sort_keys=True), file=sys.stderr)
        return 1
    stats = response["stats"]
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    if stats.get("sharded"):
        rows = [
            [key, stats[key]]
            for key in sorted(stats)
            if key not in ("shards", "aggregate", "plan", "store", "sharded")
        ]
        aggregate = stats.get("aggregate", {})
        rows += [[f"aggregate.{key}", aggregate[key]] for key in sorted(aggregate)]
        for shard_row in stats.get("shards", []):
            prefix = f"shard{shard_row.get('shard', '?')}"
            for key in ("jobs_submitted", "oracle_calls", "warm_resolutions",
                        "graph_edges", "mutations_applied",
                        "subscriptions_active"):
                if key in shard_row:
                    rows.append([f"{prefix}.{key}", shard_row[key]])
        print_table(
            ["stat", "value"], rows, title=f"sharded stats ({args.socket})"
        )
        return 0
    resolver = stats.pop("resolver", {})
    rows = [[key, stats[key]] for key in sorted(stats)]
    rows += [[f"resolver.{key}", resolver[key]] for key in sorted(resolver)]
    print_table(["stat", "value"], rows, title=f"engine stats ({args.socket})")
    return 0


def _cmd_churn(args) -> int:
    """Churn harness: a warm engine absorbs mutation batches in place."""
    from repro.dynamic import DynamicObjectSet, churn_batch
    from repro.service import ProximityEngine

    base = _build_space(args)
    # Hold back a reserve of ids so inserts bring genuinely new objects
    # (exhausted reserve falls back to recycling removed payloads).
    per_batch = max(1, int(round(args.fraction * args.n / 2)))
    reserve = min(args.batches * per_batch, base.n // 2)
    objects = DynamicObjectSet.wrap(base, initial=base.n - reserve)
    reserve_payloads = list(range(base.n - reserve, base.n))
    engine = ProximityEngine.for_space(
        objects, provider=args.provider, job_workers=1
    )
    sub = engine.subscribe_knng(args.k)
    build_calls = engine.oracle.calls
    maintain_calls = 0
    seen_seq = sub.seq
    rows = []
    for batch_no in range(args.batches):
        count = min(
            max(1, int(round(args.fraction * objects.num_alive / 2))),
            objects.num_alive - 1,
        )
        fresh_ids = reserve_payloads[:count]
        del reserve_payloads[:count]
        batch = churn_batch(
            objects,
            fraction=args.fraction,
            seed=args.seed + batch_no,
            insert_payloads=fresh_ids if len(fresh_ids) == count else None,
        )
        result = engine.apply_mutations(batch)
        deltas = engine.subscription_deltas(sub.sub_id, since=seen_seq)
        if deltas:
            seen_seq = deltas[-1].seq
        maintain_calls += result.strong_calls
        rows.append([
            batch_no,
            len(result.removed_ids),
            len(result.inserted_ids),
            result.strong_calls,
            result.edges_dropped,
            sum(len(d.entered) for d in deltas),
            sum(len(d.left) for d in deltas),
        ])
    standing = engine.subscriptions.get(sub.sub_id).result
    alive = objects.alive_ids()

    # Price the same standing result built cold on the final object set.
    fresh_objects = DynamicObjectSet(
        [objects.payload(i) for i in alive],
        lambda a, b: base.distance(a, b),
        diameter=base.diameter_bound(),
    )
    fresh = ProximityEngine.for_space(
        fresh_objects, provider=args.provider, job_workers=1
    )
    fresh_sub = fresh.subscribe_knng(args.k)
    rebuild_calls = fresh.oracle.calls
    fresh_rows = fresh.subscriptions.get(fresh_sub.sub_id).result
    pos = {slot: p for p, slot in enumerate(alive)}
    matches = all(
        sorted((d, pos[v]) for d, v in standing[u])
        == sorted(fresh_rows[pos[u]])
        for u in alive
    )
    fresh.close(snapshot=False)
    engine.close(snapshot=False)

    print_table(
        ["batch", "removed", "inserted", "strong", "edges dropped",
         "entered", "left"],
        rows,
        title=(
            f"churn: {args.dataset} n={args.n} provider={args.provider} "
            f"k={args.k} fraction={args.fraction}"
        ),
    )
    savings = rebuild_calls / maintain_calls if maintain_calls else float("inf")
    print(
        f"initial build: {build_calls} strong calls; maintenance across "
        f"{args.batches} batches: {maintain_calls}; cold rebuild of the "
        f"final standing result: {rebuild_calls} ({savings:.1f}x savings)"
    )
    print(f"standing kNN-graph matches a from-scratch rebuild: {matches}")
    return 0


def _cmd_build_index(args) -> int:
    """Navigable-graph construction: offline savings report, or a remote job.

    Without ``--socket``, builds the chosen graph twice — once naively and
    once through a bound-equipped resolver — and reports the strong-call
    savings, whether the two graphs are byte-identical, and search recall.
    With ``--socket``, submits a ``build_index`` job to a running engine.
    """
    if args.socket:
        from repro.service.server import send_request

        params = dict(args.param)
        params.setdefault("graph", args.graph)
        if args.graph == "hnsw":
            params.setdefault("m", args.m)
            params.setdefault("ef", args.ef)
        else:
            params.setdefault("r", args.r)
            params.setdefault("k", args.pool)
        if args.name:
            params.setdefault("name", args.name)
        response = send_request(
            args.socket,
            {"op": "build_index", "graph": args.graph, "params": params},
            timeout=args.timeout,
        )
        print(json.dumps(response, indent=2, sort_keys=True))
        return 0 if response.get("ok") else 1

    import numpy as np

    from repro.bounds import TriScheme
    from repro.core.oracle import ComparisonOracle
    from repro.core.resolver import SmartResolver
    from repro.graphs import (
        build_hnsw,
        build_nsg,
        comparison_search,
        evaluate_recall,
        graph_search,
    )
    from repro.graphs.naive import DirectResolver

    space = _build_space(args)
    if args.graph == "hnsw":
        kwargs = {"m": args.m, "ef_construction": args.ef, "seed": args.seed}
        builder = build_hnsw
    else:
        kwargs = {"r": args.r, "k": args.pool}
        builder = build_nsg

    rows = []
    graphs = {}
    for label in ("naive", "smart"):
        oracle = space.oracle()
        if label == "naive":
            resolver = DirectResolver(oracle)
        else:
            resolver = SmartResolver(oracle)
            resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
        start = time.perf_counter()
        graphs[label] = builder(resolver, **kwargs)
        elapsed = time.perf_counter() - start
        rows.append([label, oracle.calls, graphs[label].num_edges,
                     round(elapsed, 3)])
    print_table(
        ["builder", "strong calls", "edges", "seconds"],
        rows,
        title=(
            f"{args.graph} construction: {args.dataset} n={space.n} "
            f"params={kwargs}"
        ),
    )
    naive_calls, smart_calls = rows[0][1], rows[1][1]
    savings = naive_calls / smart_calls if smart_calls else float("inf")
    identical = (
        graphs["naive"].edges_signature() == graphs["smart"].edges_signature()
    )
    print(f"oracle savings: {savings:.2f}x; byte-identical graphs: {identical}")

    rng = np.random.default_rng(args.seed)
    queries = [int(q) for q in rng.integers(space.n, size=args.queries)]
    oracle = space.oracle()
    resolver = SmartResolver(oracle)
    resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
    report = evaluate_recall(
        resolver, graphs["smart"], queries, args.k,
        distance_fn=space.distance,
    )
    print(f"recall@{args.k} over {args.queries} queries: "
          f"{report['recall']:.3f}")
    comparison = ComparisonOracle(resolver)
    agree = sum(
        1 for q in queries
        if comparison_search(comparison, graphs["smart"], q, args.k)
        == [v for _, v in graph_search(resolver, graphs["smart"], q, args.k)]
    )
    print(f"comparison-only search agreed on {agree}/{len(queries)} queries "
          f"({comparison.comparisons} ordering calls, never a number)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reducing expensive distance calls for proximity problems "
        "(SIGMOD 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, algorithms=True):
        p.add_argument("--dataset", choices=sorted(DATASETS), default="sf")
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--no-jit", dest="no_jit", action="store_true",
                       help="force the pure-NumPy kernel backend even when "
                       "numba is installed (same as REPRO_NO_JIT=1)")
        p.add_argument(
            "--providers", nargs="+", default=["none", "tri", "laesa", "tlaesa"],
            choices=list(PROVIDER_NAMES),
        )
        if algorithms:
            p.add_argument(
                "--algorithm",
                default="prim",
                choices=["prim", "prim-cmp", "kruskal", "knng", "knng-brute",
                         "pam", "clarans", "kcenter", "linkage", "nn-tour",
                         "dbscan"],
            )
            p.add_argument("--k", type=int, default=None, help="k for knng/kcenter")
            p.add_argument("--l", type=int, default=None, help="clusters for pam/clarans")
            p.add_argument("--eps", type=float, default=None, help="radius for dbscan")
            p.add_argument("--min-pts", dest="min_pts", type=int, default=None,
                           help="core threshold for dbscan")
            p.add_argument("--bootstrap", action="store_true",
                           help="LAESA-bootstrap the Tri Scheme")
            p.add_argument("--executor", choices=["serial", "threaded"],
                           default=None,
                           help="route resolutions through the batched "
                           "execution pipeline (outputs are identical)")
            p.add_argument("--workers", type=_workers_arg, default=8,
                           help="thread-pool size for --executor threaded")
            p.add_argument("--oracle-cache", dest="oracle_cache",
                           type=_cache_path_arg, default=None,
                           help="persistent distance cache (':memory:' or a "
                           "SQLite file path); repeated runs never re-pay")
            p.add_argument("--weak-oracle", dest="weak_oracle",
                           action="store_true",
                           help="use the space's native weak (banded "
                           "estimate) oracle to tighten bounds; outputs "
                           "are identical, strong calls drop")
            p.add_argument("--stretch", type=float, default=1.0,
                           help="approximation budget >= 1.0; answers may "
                           "be bounded-stretch estimates (1.0 = exact, "
                           "the default)")

    run_p = sub.add_parser("run", help="one dataset size, many providers")
    common(run_p)
    run_p.add_argument("--n", type=int, default=100)
    run_p.add_argument("--oracle-cost", type=float, default=0.0,
                       help="simulated seconds per oracle call")
    run_p.set_defaults(func=_cmd_run)

    sweep_p = sub.add_parser("sweep", help="sweep dataset sizes")
    common(sweep_p)
    sweep_p.add_argument("--sizes", nargs="+", type=int, required=True)
    sweep_p.set_defaults(func=_cmd_sweep)

    bounds_p = sub.add_parser("bounds", help="bound-quality comparison")
    common(bounds_p, algorithms=False)
    bounds_p.add_argument("--n", type=int, default=150)
    bounds_p.add_argument("--edges", type=int, default=2000)
    bounds_p.add_argument("--queries", type=int, default=200)
    bounds_p.set_defaults(
        func=_cmd_bounds,
    )
    bounds_p.set_defaults(providers=["splub", "tri", "laesa", "tlaesa", "adm"])

    indexes_p = sub.add_parser(
        "indexes", help="framework vs VP-tree/M-tree/GNAT on NN queries"
    )
    indexes_p.add_argument("--dataset", choices=sorted(DATASETS), default="sf")
    indexes_p.add_argument("--seed", type=int, default=7)
    indexes_p.add_argument("--n", type=int, default=150)
    indexes_p.add_argument("--queries", type=int, default=30)
    indexes_p.set_defaults(func=_cmd_indexes)

    serve_p = sub.add_parser(
        "serve", help="persistent proximity engine behind a local socket"
    )
    serve_p.add_argument("--dataset", choices=sorted(DATASETS), default="sf")
    serve_p.add_argument("--n", type=int, default=100)
    serve_p.add_argument("--seed", type=int, default=7)
    serve_p.add_argument("--provider", choices=list(PROVIDER_NAMES), default="tri")
    serve_p.add_argument("--weak-oracle", dest="weak_oracle", action="store_true",
                         help="compose the space's native weak oracle into "
                         "the engine's bound provider (answers unchanged)")
    serve_p.add_argument("--job-workers", dest="job_workers", type=_workers_arg,
                         default=2, help="concurrent query-job workers")
    serve_p.add_argument("--transport", choices=["unix", "tcp"], default="unix",
                         help="listen on a unix socket (default) or TCP")
    serve_p.add_argument("--socket", default=None,
                         help="unix socket path to listen on "
                         "(required for --transport unix)")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address for --transport tcp")
    serve_p.add_argument("--port", type=int, default=None,
                         help="TCP port for --transport tcp (0 = ephemeral, "
                         "printed at startup)")
    serve_p.add_argument("--shards", type=_workers_arg, default=1,
                         help="partition the dataset across this many "
                         "shard processes sharing one resolved-edge store")
    serve_p.add_argument("--snapshot-path", dest="snapshot_path",
                         type=_cache_path_arg, default=None,
                         help="warm-state snapshot file (written periodically "
                         "and on shutdown)")
    serve_p.add_argument("--snapshot-every", dest="snapshot_every", type=int,
                         default=None,
                         help="snapshot after this many new resolved edges")
    serve_p.add_argument("--restore-from", dest="restore_from", default=None,
                         help="seed the engine from a previous snapshot")
    serve_p.add_argument("--serve-seconds", dest="serve_seconds", type=float,
                         default=None,
                         help="serve for a fixed time then exit "
                         "(default: until interrupted)")
    serve_p.add_argument("--mutations", action="store_true",
                         help="serve a mutable object set: enables the "
                         "insert/remove/subscribe/deltas verbs")
    serve_p.set_defaults(func=_cmd_serve)

    submit_p = sub.add_parser(
        "submit", help="send one query job to a running 'repro serve' engine"
    )
    submit_p.add_argument("--socket", "--target", dest="socket", required=True,
                          metavar="TARGET",
                          help="unix socket path or host:port of the "
                          "running engine")
    submit_p.add_argument("--kind", default=None,
                          choices=["knn", "range", "nearest", "medoid",
                                   "build_index", "search_index",
                                   "knng", "mst"])
    submit_p.add_argument("--param", action="append", type=_param_arg,
                          default=[], metavar="KEY=VALUE",
                          help="job parameter (repeatable), e.g. "
                          "--param query=3 --param k=5")
    submit_p.add_argument("--priority", type=int, default=0)
    submit_p.add_argument("--budget", type=int, default=None,
                          help="max charged oracle calls for this job")
    submit_p.add_argument("--deadline", type=float, default=None,
                          help="seconds the job may wait+run before expiring")
    submit_p.add_argument("--label", default="")
    submit_p.add_argument("--stretch", type=float, default=1.0,
                          help="approximation budget >= 1.0 for this job "
                          "(1.0 = exact)")
    submit_p.add_argument("--timeout", type=float, default=60.0,
                          help="client-side socket timeout")
    submit_p.add_argument("--stats", action="store_true",
                          help="fetch engine stats instead of submitting")
    submit_p.add_argument("--insert", default=None, metavar="JSON",
                          help="insert one object (JSON payload) into a "
                          "--mutations engine")
    submit_p.add_argument("--remove", type=int, default=None, metavar="ID",
                          help="remove one object from a --mutations engine")
    submit_p.add_argument("--subscribe", choices=["knn", "knng"], default=None,
                          help="register a standing query; pass --param "
                          "query=3 --param k=5 for knn, --param k=5 for knng")
    submit_p.add_argument("--deltas", type=int, default=None, metavar="SUB_ID",
                          help="poll deltas for a standing query")
    submit_p.add_argument("--since", type=int, default=0,
                          help="with --deltas: only deltas with seq > SINCE")
    submit_p.set_defaults(func=_cmd_submit)

    stats_p = sub.add_parser(
        "stats", help="inspect a running 'repro serve' engine's counters"
    )
    stats_p.add_argument("--socket", "--target", dest="socket", required=True,
                         metavar="TARGET",
                         help="unix socket path or host:port of the "
                         "running engine")
    stats_p.add_argument("--snapshot", action="store_true",
                         help="print the raw metrics registry in Prometheus "
                         "text format instead of the readable stats table")
    stats_p.add_argument("--json", action="store_true",
                         help="print the stats snapshot as JSON")
    stats_p.add_argument("--timeout", type=float, default=30.0,
                         help="client-side socket timeout")
    stats_p.set_defaults(func=_cmd_stats)

    churn_p = sub.add_parser(
        "churn", help="warm-engine mutation churn harness (offline)"
    )
    churn_p.add_argument("--dataset", choices=sorted(DATASETS), default="sf")
    churn_p.add_argument("--n", type=int, default=100)
    churn_p.add_argument("--seed", type=int, default=7)
    churn_p.add_argument("--provider", choices=list(PROVIDER_NAMES),
                         default="tri")
    churn_p.add_argument("--k", type=int, default=5,
                         help="k of the standing kNN-graph subscription")
    churn_p.add_argument("--fraction", type=float, default=0.1,
                         help="fraction of the live set churned per batch")
    churn_p.add_argument("--batches", type=int, default=3,
                         help="number of mutation batches to absorb")
    churn_p.set_defaults(func=_cmd_churn)

    build_p = sub.add_parser(
        "build-index",
        help="build a navigable graph: offline savings report, or submit a "
        "build_index job to a running engine",
    )
    build_p.add_argument("--dataset", choices=sorted(DATASETS), default="sf")
    build_p.add_argument("--n", type=int, default=150)
    build_p.add_argument("--seed", type=int, default=7)
    build_p.add_argument("--graph", choices=["hnsw", "nsg"], default="hnsw")
    build_p.add_argument("--m", type=int, default=8,
                         help="hnsw: max neighbours per node per layer")
    build_p.add_argument("--ef", type=int, default=32,
                         help="hnsw: construction beam width")
    build_p.add_argument("--r", type=int, default=8,
                         help="nsg: max out-degree")
    build_p.add_argument("--pool", type=int, default=16,
                         help="nsg: exact-kNN candidate pool size (>= r)")
    build_p.add_argument("--k", type=int, default=10,
                         help="recall@k evaluation depth (offline mode)")
    build_p.add_argument("--queries", type=int, default=20,
                         help="number of recall-evaluation queries "
                         "(offline mode)")
    build_p.add_argument("--name", default=None,
                         help="store the built index under this name "
                         "(remote mode)")
    build_p.add_argument("--socket", "--target", dest="socket", default=None,
                         metavar="TARGET",
                         help="submit to a running 'repro serve' engine "
                         "instead of building offline")
    build_p.add_argument("--param", action="append", type=_param_arg,
                         default=[], metavar="KEY=VALUE",
                         help="extra job parameter (remote mode, repeatable)")
    build_p.add_argument("--timeout", type=float, default=120.0,
                         help="client-side socket timeout (remote mode)")
    build_p.set_defaults(func=_cmd_build_index)
    return parser


def main(argv: List[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "no_jit", False):
        from repro.bounds import kernels

        kernels.disable_jit()
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
