"""Standing-query subscriptions and their delta history.

A subscription holds a *registered result* (a kNN list or a kNN-graph row
map).  After each mutation batch the engine re-establishes the result —
bounds-first, so unaffected subscriptions cost zero strong oracle calls —
and the registry diffs old against new into a :class:`SubscriptionDelta`
(``entered`` / ``left`` / ``reordered``) that clients poll with a sequence
cursor.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class SubscriptionDelta:
    """One diff between consecutive registered results of a subscription."""

    seq: int
    epoch: int
    entered: Tuple = ()
    left: Tuple = ()
    reordered: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready view for the wire protocol."""
        return {
            "seq": self.seq,
            "epoch": self.epoch,
            "entered": _jsonable(self.entered),
            "left": _jsonable(self.left),
            "reordered": self.reordered,
        }


def _jsonable(value):
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return value


@dataclass
class Subscription:
    """A standing query with its currently registered result."""

    sub_id: int
    kind: str  # "knn" | "knng"
    params: Dict[str, Any]
    result: Any
    seq: int = 0
    history: List[SubscriptionDelta] = field(default_factory=list)

    def result_dict(self) -> Dict[str, Any]:
        """JSON-ready view of the registered result."""
        if self.kind == "knn":
            return {"neighbors": [[d, i] for d, i in self.result]}
        return {
            "rows": {str(u): [[d, i] for d, i in row] for u, row in self.result.items()}
        }


class SubscriptionRegistry:
    """Thread-safe home of every standing query on one engine."""

    def __init__(self, max_history: int = 1024) -> None:
        self._subs: Dict[int, Subscription] = {}
        self._next_id = 1
        self._max_history = max_history
        self._lock = threading.Lock()

    def subscribe(self, kind: str, params: Dict[str, Any], result: Any) -> Subscription:
        """Register a standing query with its initial result; return it."""
        if kind not in ("knn", "knng"):
            raise ValueError(f"unknown subscription kind {kind!r}")
        with self._lock:
            sub = Subscription(self._next_id, kind, dict(params), result)
            self._subs[sub.sub_id] = sub
            self._next_id += 1
            return sub

    def get(self, sub_id: int) -> Subscription:
        """Look up a subscription by id (KeyError when unknown)."""
        with self._lock:
            return self._subs[sub_id]

    def unsubscribe(self, sub_id: int) -> None:
        """Drop a standing query."""
        with self._lock:
            del self._subs[sub_id]

    def all(self) -> List[Subscription]:
        """Snapshot of every live subscription."""
        with self._lock:
            return list(self._subs.values())

    @property
    def active(self) -> int:
        """Number of live subscriptions."""
        with self._lock:
            return len(self._subs)

    def record(
        self, sub: Subscription, new_result: Any, epoch: int
    ) -> Optional[SubscriptionDelta]:
        """Install ``new_result`` and append the diff; None when unchanged."""
        with self._lock:
            if sub.kind == "knn":
                delta = self._diff_knn(sub, new_result, epoch)
            else:
                delta = self._diff_knng(sub, new_result, epoch)
            sub.result = new_result
            if delta is not None:
                sub.seq = delta.seq
                sub.history.append(delta)
                if len(sub.history) > self._max_history:
                    del sub.history[: len(sub.history) - self._max_history]
            return delta

    def deltas(self, sub_id: int, since: int = 0) -> List[SubscriptionDelta]:
        """Every recorded delta with ``seq > since``, oldest first."""
        with self._lock:
            sub = self._subs[sub_id]
            return [d for d in sub.history if d.seq > since]

    def _diff_knn(
        self, sub: Subscription, new: List[Tuple[float, int]], epoch: int
    ) -> Optional[SubscriptionDelta]:
        old = list(sub.result)
        new = list(new)
        if old == new:
            return None
        old_ids = {i for _, i in old}
        new_ids = {i for _, i in new}
        entered = tuple((d, i) for d, i in new if i not in old_ids)
        left = tuple(sorted(old_ids - new_ids))
        return SubscriptionDelta(
            seq=sub.seq + 1,
            epoch=epoch,
            entered=entered,
            left=left,
            reordered=not entered and not left,
        )

    def _diff_knng(
        self, sub: Subscription, new: Dict[int, Tuple], epoch: int
    ) -> Optional[SubscriptionDelta]:
        old = dict(sub.result)
        if old == new:
            return None
        entered = tuple(
            (u, tuple(row)) for u, row in sorted(new.items()) if old.get(u) != tuple(row)
        )
        left = tuple(sorted(u for u in old if u not in new))
        return SubscriptionDelta(
            seq=sub.seq + 1,
            epoch=epoch,
            entered=entered,
            left=left,
            reordered=False,
        )
