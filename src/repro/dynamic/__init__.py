"""Mutable object sets with incremental bound maintenance.

``repro.dynamic`` lets a long-lived engine absorb object churn instead of
rebuilding per query: :class:`DynamicObjectSet` supports ``insert``/``remove``
with stable id recycling, mutation batches flow through
:func:`~repro.dynamic.maintenance.apply_provider_mutations` so every bound
provider patches (never silently rebuilds) its state, and
:class:`~repro.dynamic.subscriptions.SubscriptionRegistry` keeps standing
kNN / kNN-graph results registered so clients receive deltas — computed
bounds-first, so most mutations cost zero strong oracle calls.
"""

from repro.dynamic.churn import churn_batch
from repro.dynamic.maintenance import MUTABLE_PROVIDERS, apply_provider_mutations
from repro.dynamic.mutations import Insert, Mutation, MutationResult, Remove
from repro.dynamic.objects import DynamicObjectSet
from repro.dynamic.subscriptions import (
    Subscription,
    SubscriptionDelta,
    SubscriptionRegistry,
)

__all__ = [
    "DynamicObjectSet",
    "Mutation",
    "Insert",
    "Remove",
    "MutationResult",
    "MUTABLE_PROVIDERS",
    "apply_provider_mutations",
    "Subscription",
    "SubscriptionDelta",
    "SubscriptionRegistry",
    "churn_batch",
]
