"""Mutation descriptions and batch results.

A mutation batch is a list of :class:`Mutation` values applied atomically
under the engine's write lock; :class:`MutationResult` reports the assigned
ids, the post-batch epoch, and every invalidation counter the maintenance
pass produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class Mutation:
    """One insert or remove, as submitted by a client."""

    kind: str
    payload: Any = None
    obj_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ("insert", "remove"):
            raise ValueError(f"unknown mutation kind {self.kind!r}")
        if self.kind == "remove" and self.obj_id is None:
            raise ValueError("remove mutations need an obj_id")


def Insert(payload: Any) -> Mutation:
    """Shorthand for an insert mutation."""
    return Mutation(kind="insert", payload=payload)


def Remove(obj_id: int) -> Mutation:
    """Shorthand for a remove mutation."""
    return Mutation(kind="remove", obj_id=obj_id)


@dataclass
class MutationResult:
    """Outcome of one atomically applied mutation batch."""

    inserted_ids: List[int] = field(default_factory=list)
    removed_ids: List[int] = field(default_factory=list)
    epoch: int = 0
    edges_dropped: int = 0
    oracle_forgotten: int = 0
    memo_purged: int = 0
    strong_calls: int = 0
    invalidation: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready view for the wire protocol."""
        return {
            "inserted_ids": list(self.inserted_ids),
            "removed_ids": list(self.removed_ids),
            "epoch": self.epoch,
            "edges_dropped": self.edges_dropped,
            "oracle_forgotten": self.oracle_forgotten,
            "memo_purged": self.memo_purged,
            "strong_calls": self.strong_calls,
            "invalidation": dict(self.invalidation),
        }
