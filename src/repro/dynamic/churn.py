"""Deterministic churn-batch construction shared by CLI, benchmark and demo."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from repro.dynamic.mutations import Insert, Mutation, Remove
from repro.dynamic.objects import DynamicObjectSet


def churn_batch(
    objects: DynamicObjectSet,
    fraction: float = 0.1,
    seed: int = 0,
    insert_payloads: Optional[Sequence[Any]] = None,
) -> List[Mutation]:
    """Build one mutation batch that churns ``fraction`` of the live set.

    Half the churn is removals of uniformly chosen live ids, half is
    inserts: fresh payloads from ``insert_payloads`` when given, otherwise
    the payloads of the removed objects re-enter (exercising slot
    recycling).  The batch is deterministic in ``seed`` and is *not*
    applied — feed it to ``ProximityEngine.apply_mutations``.
    """
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1]; got {fraction}")
    alive = objects.alive_ids()
    count = max(1, int(round(fraction * len(alive) / 2)))
    count = min(count, len(alive) - 1)  # never empty the set
    rng = np.random.default_rng(seed)
    remove_ids = sorted(int(i) for i in rng.choice(alive, size=count, replace=False))
    if insert_payloads is None:
        payloads = [objects.payload(i) for i in remove_ids]
    else:
        if len(insert_payloads) < count:
            raise ValueError(
                f"need at least {count} insert payloads; got {len(insert_payloads)}"
            )
        payloads = list(insert_payloads[:count])
    batch: List[Mutation] = [Remove(i) for i in remove_ids]
    batch.extend(Insert(p) for p in payloads)
    return batch
