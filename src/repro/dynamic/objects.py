"""Mutable metric object set with stable id recycling.

:class:`DynamicObjectSet` satisfies the :class:`~repro.spaces.base.MetricSpace`
protocol (``n``, ``distance``, ``diameter_bound``) over *slots*: ``n`` counts
every slot ever allocated, tombstoned ones included, so ids handed to the
partial graph and bound providers stay stable for the slot's lifetime.
Removing an object tombstones its slot; a later insert recycles the lowest
free slot (bumping its *generation*) before appending new ones.
"""

from __future__ import annotations

import hashlib
import heapq
import math
from typing import Any, Callable, Iterable, List

from repro.core.exceptions import InvalidObjectError
from repro.core.oracle import DistanceOracle


class DynamicObjectSet:
    """Metric space over payload objects that supports runtime churn.

    Parameters
    ----------
    objects:
        Initial payloads; object ``i`` is ``objects[i]``.
    metric:
        Symmetric, non-negative distance over *payloads*.
    diameter:
        Optional upper bound on any pairwise distance (``inf`` unknown).
    """

    def __init__(
        self,
        objects: Iterable[Any],
        metric: Callable[[Any, Any], float],
        *,
        diameter: float = math.inf,
    ) -> None:
        self._payloads: List[Any] = list(objects)
        if not self._payloads:
            raise ValueError("a dynamic object set needs at least one object")
        self._metric = metric
        self._diameter = float(diameter)
        count = len(self._payloads)
        self._alive: List[bool] = [True] * count
        self._generation: List[int] = [0] * count
        self._free: List[int] = []  # min-heap of tombstoned slots
        self._mutations = 0

    # -- MetricSpace protocol ----------------------------------------------

    @property
    def n(self) -> int:
        """Total slot count (live objects plus tombstones)."""
        return len(self._payloads)

    def __len__(self) -> int:
        return len(self._payloads)

    def distance(self, i: int, j: int) -> float:
        """Metric distance between live objects ``i`` and ``j``."""
        self._check_alive(i)
        self._check_alive(j)
        if i == j:
            return 0.0
        return float(self._metric(self._payloads[i], self._payloads[j]))

    def diameter_bound(self) -> float:
        """Upper bound on any pairwise distance (``inf`` when unknown)."""
        return self._diameter

    def oracle(self, cost_per_call: float = 0.0, budget: int | None = None) -> DistanceOracle:
        """Wrap this set in a counting :class:`DistanceOracle`."""
        return DistanceOracle(
            self.distance, self.n, cost_per_call=cost_per_call, budget=budget
        )

    def weak_oracle(self):
        """No sound cheap estimator is known for an arbitrary payload metric."""
        return None

    # -- mutation -----------------------------------------------------------

    def insert(self, obj: Any) -> int:
        """Add a payload, recycling the lowest tombstoned slot if any.

        Returns the assigned id.  A recycled slot's generation bumps so the
        new incarnation is distinguishable from the dead one.
        """
        if self._free:
            slot = heapq.heappop(self._free)
            self._payloads[slot] = obj
            self._alive[slot] = True
            self._generation[slot] += 1
        else:
            slot = len(self._payloads)
            self._payloads.append(obj)
            self._alive.append(True)
            self._generation.append(0)
        self._mutations += 1
        return slot

    def remove(self, obj_id: int) -> None:
        """Tombstone object ``obj_id`` and queue its slot for recycling."""
        self._check_alive(obj_id)
        self._alive[obj_id] = False
        self._payloads[obj_id] = None
        heapq.heappush(self._free, obj_id)
        self._mutations += 1

    # -- introspection -------------------------------------------------------

    def is_alive(self, obj_id: int) -> bool:
        """True while ``obj_id`` names a live object."""
        if not 0 <= obj_id < len(self._payloads):
            raise InvalidObjectError(obj_id, len(self._payloads))
        return self._alive[obj_id]

    def alive_ids(self) -> List[int]:
        """Sorted ids of all live objects."""
        return [i for i, alive in enumerate(self._alive) if alive]

    @property
    def num_alive(self) -> int:
        """Number of live objects."""
        return len(self._payloads) - len(self._free)

    def generation(self, obj_id: int) -> int:
        """How many times slot ``obj_id`` has been recycled."""
        if not 0 <= obj_id < len(self._payloads):
            raise InvalidObjectError(obj_id, len(self._payloads))
        return self._generation[obj_id]

    def payload(self, obj_id: int) -> Any:
        """The live payload stored in slot ``obj_id``."""
        self._check_alive(obj_id)
        return self._payloads[obj_id]

    @property
    def mutation_count(self) -> int:
        """Total inserts and removes applied so far."""
        return self._mutations

    def fingerprint(self, probes: int = 4) -> str:
        """Deterministic digest of the *current* live state.

        Derived from the slot count, the live id/generation map, and a few
        probed distances — so two state-equivalent sets (identical live
        objects, however they got there) agree, and any mutation changes
        the digest.
        """
        digest = hashlib.sha256()
        digest.update(f"dynamic|n={self.n}".encode())
        alive = self.alive_ids()
        for i in alive:
            digest.update(f"|{i}:{self._generation[i]}".encode())
        if len(alive) >= 2:
            step = max(1, len(alive) // max(1, probes))
            for k in range(0, len(alive) - 1, step):
                d = self.distance(alive[k], alive[k + 1])
                digest.update(f"|d={d!r}".encode())
        return f"dynamic:{digest.hexdigest()[:16]}"

    # -- construction helpers ------------------------------------------------

    @classmethod
    def wrap(cls, space, initial: int | None = None) -> "DynamicObjectSet":
        """Wrap a frozen space, treating its ids as payloads.

        ``initial`` keeps only the first ``initial`` ids live at first; the
        remaining ids form a reserve of insertable payloads (pass them to
        :meth:`insert` later).  This is how the CLI and harness turn any
        dataset space into a churnable one without payload plumbing.
        """
        count = space.n if initial is None else initial
        if not 1 <= count <= space.n:
            raise ValueError(f"initial must be in [1, {space.n}]; got {count}")
        return cls(
            range(count),
            lambda a, b: space.distance(a, b),
            diameter=space.diameter_bound(),
        )

    def _check_alive(self, obj_id: int) -> None:
        if not 0 <= obj_id < len(self._payloads):
            raise InvalidObjectError(obj_id, len(self._payloads))
        if not self._alive[obj_id]:
            raise InvalidObjectError(obj_id, len(self._payloads))
