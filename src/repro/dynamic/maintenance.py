"""Bound-provider invalidation dispatch for mutation batches.

Each mutable provider patches its own state (``apply_mutations`` on SPLUB,
LAESA and the sketch); stateless schemes (Tri, the trivial bounder) read
everything from the shared graph and need no maintenance at all.  Providers
holding per-pair state that cannot be patched soundly (AESA's full matrix,
ADM's anchor structures, DFT, TLAESA's tree) are rejected up front — a
dynamic engine must be configured with a provider from
:data:`MUTABLE_PROVIDERS`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.core.exceptions import ConfigurationError

#: ``make_provider`` names whose schemes survive mutation batches soundly.
MUTABLE_PROVIDERS = frozenset({"none", "tri", "splub", "laesa", "sketch"})

#: Provider ``name`` attributes that are stateless beyond the shared graph.
_STATELESS_NAMES = frozenset({"none", "tri"})


def apply_provider_mutations(
    provider,
    inserted: Iterable[int],
    removed: Iterable[int],
    resolver=None,
) -> Dict[str, int]:
    """Run one provider's incremental maintenance; return its counters.

    Dispatches structurally: a provider exposing ``apply_mutations`` patches
    itself; an intersection fans out to its members and merges counters; a
    stateless scheme is a no-op.  Anything else raises
    :class:`~repro.core.exceptions.ConfigurationError` — silently serving
    stale per-pair state for a recycled id would be unsound.
    """
    inserted = list(inserted)
    removed = list(removed)
    members: Optional[list] = getattr(provider, "providers", None)
    if members is not None:
        merged: Dict[str, int] = {}
        for member in members:
            for key, value in apply_provider_mutations(
                member, inserted, removed, resolver
            ).items():
                merged[key] = merged.get(key, 0) + value
        return merged
    patch = getattr(provider, "apply_mutations", None)
    if patch is not None:
        return patch(inserted, removed, resolver)
    name = str(getattr(provider, "name", "")).lower()
    if name in _STATELESS_NAMES:
        return {}
    raise ConfigurationError(
        f"bound provider {getattr(provider, 'name', type(provider).__name__)!r} "
        "does not support mutation batches; configure the engine with one of "
        f"{sorted(MUTABLE_PROVIDERS)}"
    )
