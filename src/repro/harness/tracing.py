"""Resolution tracing: observe *when* and *why* oracle calls happen.

A :class:`TracingOracle` wraps any oracle and records every charged call
as a :class:`CallEvent` (sequence number, pair, value, wall-clock offset,
the active phase label, and — for charges committed by the batched
execution pipeline — the batch id).  Traces answer the questions the
aggregate counters cannot: how calls cluster over an algorithm's lifetime,
how the bootstrap/algorithm phases split, and how quickly the call rate
decays as the shared graph warms up — the paper's compounding effect, per
run.

Phase labelling is delegated to a thread-local
:class:`~repro.obs.spans.SpanTracer`, so concurrent engine workers nest
spans independently instead of interleaving on one shared stack.
"""

from __future__ import annotations

import csv
import os
import time
from dataclasses import dataclass
from typing import List, Optional

from repro.core.oracle import DistanceOracle, Pair
from repro.obs.spans import SpanTracer


@dataclass(frozen=True)
class CallEvent:
    """One charged oracle call."""

    sequence: int
    i: int
    j: int
    distance: float
    elapsed_seconds: float
    phase: str
    #: Batch id when the charge was committed by repro.exec; None for
    #: inline synchronous resolutions.
    batch: Optional[int] = None


class TracingOracle(DistanceOracle):
    """Oracle wrapper that records every charged call.

    Use :meth:`phase` to label sections of a run::

        oracle = TracingOracle(space.distance, space.n)
        with oracle.phase("bootstrap"):
            bootstrap_with_landmarks(resolver)
        with oracle.phase("prim"):
            prim_mst(resolver)

    Phases nest, and the stack behind them is **thread-local** (a
    :class:`~repro.obs.spans.SpanTracer`): each engine worker's spans nest
    independently, so calls committed by concurrent jobs are attributed to
    the committing thread's own phase instead of whatever another worker
    pushed last.

    The oracle is itself a context manager when constructed with
    ``csv_path``: the trace flushes to that file on exit, even when the
    traced run raises; nested re-entry flushes once, at the outermost
    exit::

        with TracingOracle(space.distance, space.n, csv_path="trace.csv") as oracle:
            run_experiment(oracle)
    """

    def __init__(
        self,
        distance_fn,
        n,
        cost_per_call: float = 0.0,
        budget=None,
        csv_path=None,
        tracer: Optional[SpanTracer] = None,
    ) -> None:
        super().__init__(distance_fn, n, cost_per_call=cost_per_call, budget=budget)
        self.events: List[CallEvent] = []
        self.csv_path = csv_path
        self.tracer = tracer if tracer is not None else SpanTracer(root="default")
        self._cm_depth = 0
        self._start = time.perf_counter()

    @property
    def _phase(self) -> str:
        return self.tracer.current

    def _on_charged(self, key: Pair, value: float) -> None:
        # One hook covers both resolution paths: inline __call__ and the
        # batched pipeline's record() commits (the latter carry a batch id).
        self.events.append(
            CallEvent(
                sequence=len(self.events),
                i=key[0],
                j=key[1],
                distance=value,
                elapsed_seconds=time.perf_counter() - self._start,
                phase=self._phase,
                batch=self.active_batch,
            )
        )

    # -- phases -------------------------------------------------------------

    def phase(self, label: str) -> "_PhaseContext":
        """Context manager labelling subsequent calls with ``label``."""
        return _PhaseContext(self, label)

    @property
    def current_phase(self) -> str:
        """The calling thread's innermost active phase label."""
        return self._phase

    # -- analysis -------------------------------------------------------------

    def calls_per_phase(self) -> dict:
        """Charged-call count per phase label."""
        out: dict = {}
        for event in self.events:
            out[event.phase] = out.get(event.phase, 0) + 1
        return out

    def call_rate_halves(self) -> tuple:
        """Calls in the first vs second half of the event sequence's span.

        A decaying rate (first > second) is the compounding signature.
        """
        if not self.events:
            return (0, 0)
        midpoint = len(self.events) // 2
        return (midpoint, len(self.events) - midpoint)

    def write_csv(self, path) -> None:
        """Dump the trace as CSV (sequence, i, j, distance, t, phase, batch).

        The file is replaced atomically (temp file + rename), so repeated
        flushes are idempotent: exactly one header, never a torn or
        double-written file — even when flushed from ``__exit__`` more
        than once over the oracle's lifetime.
        """
        path = os.fspath(path)
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                ["sequence", "i", "j", "distance", "elapsed_seconds", "phase", "batch"]
            )
            for e in self.events:
                writer.writerow(
                    [
                        e.sequence,
                        e.i,
                        e.j,
                        e.distance,
                        e.elapsed_seconds,
                        e.phase,
                        "" if e.batch is None else e.batch,
                    ]
                )
        os.replace(tmp_path, path)

    def flush(self) -> None:
        """Write the trace to ``csv_path`` now (idempotent)."""
        if self.csv_path is None:
            raise ValueError("TracingOracle.flush needs csv_path")
        self.write_csv(self.csv_path)

    def reset(self) -> None:
        """Clear events and phase state in addition to the oracle cache."""
        super().reset()
        self.events = []
        self.tracer.reset()
        self._start = time.perf_counter()

    # -- context manager ------------------------------------------------------

    def __enter__(self) -> "TracingOracle":
        if self.csv_path is None:
            raise ValueError(
                "TracingOracle used as a context manager needs csv_path "
                "(where to flush the trace on exit)"
            )
        self._cm_depth += 1
        return self

    def __exit__(self, *exc_info) -> None:
        # Flush even when the traced run raised: a partial trace of a
        # failed experiment is exactly when you want the evidence.  Nested
        # re-entry flushes once, when the outermost context exits.
        self._cm_depth = max(0, self._cm_depth - 1)
        if self._cm_depth == 0:
            self.flush()


class _PhaseContext:
    def __init__(self, oracle: TracingOracle, label: str) -> None:
        self._oracle = oracle
        self._span = oracle.tracer.span(label)

    def __enter__(self) -> TracingOracle:
        self._span.__enter__()
        return self._oracle

    def __exit__(self, *exc_info) -> None:
        self._span.__exit__(*exc_info)


def load_trace(path) -> List[CallEvent]:
    """Read a CSV trace written by :meth:`TracingOracle.write_csv`."""
    events: List[CallEvent] = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            batch = row.get("batch")  # absent in pre-batching traces
            events.append(
                CallEvent(
                    sequence=int(row["sequence"]),
                    i=int(row["i"]),
                    j=int(row["j"]),
                    distance=float(row["distance"]),
                    elapsed_seconds=float(row["elapsed_seconds"]),
                    phase=row["phase"],
                    batch=int(batch) if batch else None,
                )
            )
    return events
