"""Provider factory shared by the harness, examples, and benchmarks."""

from __future__ import annotations

import math
from typing import Optional

from repro.bounds import (
    Adm,
    AdmIncremental,
    Aesa,
    DirectFeasibilityTest,
    Laesa,
    SketchBoundProvider,
    Splub,
    Tlaesa,
    TriScheme,
)
from repro.core.bounds import BoundProvider, TrivialBounder
from repro.core.partial_graph import PartialDistanceGraph
from repro.core.resolver import SmartResolver

#: Provider names accepted by :func:`make_provider`.
PROVIDER_NAMES = (
    "none",
    "tri",
    "splub",
    "adm",
    "adm-inc",
    "laesa",
    "tlaesa",
    "aesa",
    "dft",
    "sketch",
)

#: Providers whose bootstrap step spends oracle calls up front.
LANDMARK_PROVIDERS = ("laesa", "tlaesa", "aesa", "sketch")


def make_provider(
    name: str,
    graph: PartialDistanceGraph,
    max_distance: float = math.inf,
    num_landmarks: Optional[int] = None,
) -> BoundProvider:
    """Instantiate a bound provider by its short name.

    ``num_landmarks`` only applies to the landmark schemes ("laesa",
    "tlaesa"); call :meth:`bootstrap` on the returned provider (or use
    :func:`attach_provider`) to spend the landmark budget.
    """
    name = name.lower()
    if name == "none":
        return TrivialBounder(graph, max_distance)
    if name == "tri":
        return TriScheme(graph, max_distance)
    if name == "splub":
        return Splub(graph, max_distance)
    if name == "adm":
        return Adm(graph, max_distance)
    if name == "adm-inc":
        return AdmIncremental(graph, max_distance)
    if name == "laesa":
        return Laesa(graph, max_distance, num_landmarks)
    if name == "tlaesa":
        return Tlaesa(graph, max_distance, num_landmarks)
    if name == "aesa":
        return Aesa(graph, max_distance)
    if name == "dft":
        return DirectFeasibilityTest(graph, max_distance=min(max_distance, 1e9))
    if name == "sketch":
        return SketchBoundProvider(graph, max_distance, num_landmarks)
    raise ValueError(f"unknown provider {name!r}; choose from {PROVIDER_NAMES}")


def attach_provider(
    resolver: SmartResolver,
    name: str,
    max_distance: float = math.inf,
    num_landmarks: Optional[int] = None,
    bootstrap: bool = True,
) -> tuple[BoundProvider, int]:
    """Create a provider, attach it to the resolver, run any bootstrap.

    Returns ``(provider, bootstrap_calls)`` where ``bootstrap_calls`` is the
    number of oracle calls spent before the host algorithm starts.
    """
    provider = make_provider(name, resolver.graph, max_distance, num_landmarks)
    resolver.bounder = provider
    bootstrap_calls = 0
    if bootstrap and name.lower() in LANDMARK_PROVIDERS:
        bootstrap_calls = provider.bootstrap(resolver)
    return provider, bootstrap_calls
