"""Reusable experiment definitions behind every table and figure.

Each function reproduces the measurement protocol of one (or one family of)
paper artifact(s); the ``benchmarks/`` tree wires them to concrete sizes and
prints the resulting rows.  DESIGN.md §4 maps artifacts to functions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.bounds.landmarks import default_num_landmarks
from repro.core.resolver import SmartResolver
from repro.harness.providers import make_provider
from repro.harness.runner import ExperimentRecord, percentage_save, run_experiment
from repro.spaces.base import MetricSpace


# ---------------------------------------------------------------------------
# Bound quality (Figures 3a, 3b, 3c, 5a)
# ---------------------------------------------------------------------------

@dataclass
class BoundQualityResult:
    """Per-provider bound tightness, query-time, and update-time measurements."""

    provider: str
    mean_lower: float
    mean_upper: float
    mean_gap: float
    rel_err_lower_vs_adm: float
    rel_err_upper_vs_adm: float
    mean_query_seconds: float
    update_seconds: float
    queries: int


def bounds_quality_experiment(
    space: MetricSpace,
    num_edges: int,
    num_queries: int = 200,
    providers: Sequence[str] = ("splub", "tri", "laesa", "tlaesa", "adm"),
    num_landmarks: Optional[int] = None,
    seed: int = 0,
) -> List[BoundQualityResult]:
    """Measure bound tightness, query time, and update time per provider.

    Protocol (mirrors Figures 3a/3c/5a): the graph providers (SPLUB, Tri,
    ADM) share a partial graph of ``num_edges`` random resolutions — the
    state a proximity algorithm leaves behind — while the landmark providers
    (LAESA, TLAESA) hold their own separately resolved ``L × n`` matrix,
    exactly the information structure each scheme maintains in a real run.
    Relative errors are measured against ADM's exact tightest bounds.
    Update time is the cost of replaying all ``num_edges`` resolutions
    through the provider's ``notify_resolved`` (Problem 2 of the paper).
    """
    from repro.core.partial_graph import PartialDistanceGraph

    n = space.n
    num_landmarks = num_landmarks or default_num_landmarks(n)
    max_distance = space.diameter_bound()

    # Ground state: the landmark bootstrap plus random algorithm-style
    # resolutions — the graph a bootstrapped proximity-algorithm run holds.
    from repro.bounds.landmarks import select_landmarks_maxmin, resolve_landmark_matrix

    rng = np.random.default_rng(seed)
    base_oracle = space.oracle()
    base = SmartResolver(base_oracle)
    landmarks = select_landmarks_maxmin(base, min(num_landmarks, n))
    matrix = resolve_landmark_matrix(base, landmarks)
    limit = n * (n - 1) // 2
    while base.graph.num_edges < min(num_edges, limit):
        i = int(rng.integers(n))
        j = int(rng.integers(n))
        if i != j:
            base.distance(i, j)
    edge_list = list(base.graph.edges())

    instances = {}
    update_times = {}
    for name in providers:
        if name in ("laesa", "tlaesa"):
            # Landmark schemes: empty graph + adopted matrix; their update
            # cost is the (cheap) matrix-cell refresh over the same edges.
            graph = PartialDistanceGraph(n)
            provider = make_provider(name, graph, max_distance)
            provider.adopt(landmarks, matrix.copy())
            start = time.perf_counter()
            for i, j, w in edge_list:
                graph.add_edge(i, j, w)
                provider.notify_resolved(i, j, w)
            update_times[name] = time.perf_counter() - start
        else:
            # Graph schemes: replay the resolutions through notify_resolved.
            graph = PartialDistanceGraph(n)
            provider = make_provider(name, graph, max_distance)
            start = time.perf_counter()
            for i, j, w in edge_list:
                graph.add_edge(i, j, w)
                provider.notify_resolved(i, j, w)
            update_times[name] = time.perf_counter() - start
        instances[name] = provider
    if "adm" in instances:
        reference = instances["adm"]
    else:
        reference = make_provider("adm", base.graph, max_distance)

    query_rng = np.random.default_rng(seed + 1)
    queries: List[tuple[int, int]] = []
    attempts = 0
    while len(queries) < num_queries and attempts < 100 * num_queries:
        attempts += 1
        i = int(query_rng.integers(n))
        j = int(query_rng.integers(n))
        if i != j and not base.graph.has_edge(i, j):
            queries.append((i, j))

    reference_bounds = [reference.bounds(i, j) for i, j in queries]
    results = []
    for name, provider in instances.items():
        start = time.perf_counter()
        produced = [provider.bounds(i, j) for i, j in queries]
        elapsed = time.perf_counter() - start
        lowers = np.array([b.lower for b in produced])
        uppers = np.array([min(b.upper, max_distance) for b in produced])
        ref_low = np.array([b.lower for b in reference_bounds])
        ref_up = np.array([b.upper for b in reference_bounds])
        scale = np.maximum(ref_up.mean(), 1e-12)
        results.append(
            BoundQualityResult(
                provider=name,
                mean_lower=float(lowers.mean()),
                mean_upper=float(uppers.mean()),
                mean_gap=float((uppers - lowers).mean()),
                rel_err_lower_vs_adm=float(np.abs(lowers - ref_low).mean() / scale),
                rel_err_upper_vs_adm=float(np.abs(uppers - ref_up).mean() / scale),
                mean_query_seconds=elapsed / max(len(queries), 1),
                update_seconds=update_times[name],
                queries=len(queries),
            )
        )
    return results


def tri_gap_vs_edges(
    space: MetricSpace,
    edge_counts: Sequence[int],
    num_queries: int = 200,
    seed: int = 0,
) -> List[dict]:
    """Figure 3b: Tri Scheme LB/UB gap as the known-edge count grows."""
    rows = []
    for num_edges in edge_counts:
        results = bounds_quality_experiment(
            space,
            num_edges,
            num_queries=num_queries,
            providers=("tri",),
            seed=seed,
        )
        tri = results[0]
        rows.append(
            {
                "edges": num_edges,
                "mean_lb": tri.mean_lower,
                "mean_ub": tri.mean_upper,
                "gap": tri.mean_gap,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Prim oracle-call tables (Tables 2 and 3) and generic size sweeps (Fig 6-7)
# ---------------------------------------------------------------------------

@dataclass
class PrimTableRow:
    """One size row of Table 2/3."""

    num_edges: int
    without_plug: int
    ts_nb: int
    bootstrap: int
    tri_scheme: int
    laesa: int
    tlaesa: int
    num_landmarks: int

    @property
    def save_vs_laesa(self) -> float:
        """Paper convention: LAESA total vs Tri's algorithm-phase calls."""
        return percentage_save(self.laesa, self.tri_scheme)

    @property
    def save_vs_tlaesa(self) -> float:
        """Paper convention: TLAESA total vs Tri's algorithm-phase calls."""
        return percentage_save(self.tlaesa, self.tri_scheme)


def prim_call_table(
    space_factory: Callable[[int], MetricSpace],
    sizes: Sequence[int],
    algorithm: str = "prim",
    algorithm_kwargs: Optional[Dict[str, Any]] = None,
) -> List[PrimTableRow]:
    """Tables 2/3: oracle calls of Prim's under every scheme, per size.

    ``space_factory(n)`` builds the dataset at each size; landmark budgets
    follow the paper's ``log2(n)``.
    """
    rows = []
    for n in sizes:
        space = space_factory(n)
        landmarks = default_num_landmarks(n)
        without = run_experiment(space, algorithm, "none", algorithm_kwargs=algorithm_kwargs)
        ts_nb = run_experiment(space, algorithm, "tri", algorithm_kwargs=algorithm_kwargs)
        tri_boot = run_experiment(
            space,
            algorithm,
            "tri",
            landmark_bootstrap=True,
            num_landmarks=landmarks,
            algorithm_kwargs=algorithm_kwargs,
        )
        laesa = run_experiment(
            space, algorithm, "laesa", num_landmarks=landmarks, algorithm_kwargs=algorithm_kwargs
        )
        tlaesa = run_experiment(
            space, algorithm, "tlaesa", num_landmarks=landmarks, algorithm_kwargs=algorithm_kwargs
        )
        rows.append(
            PrimTableRow(
                num_edges=n * (n - 1) // 2,
                without_plug=without.total_calls,
                ts_nb=ts_nb.total_calls,
                bootstrap=tri_boot.bootstrap_calls,
                tri_scheme=tri_boot.algorithm_calls,
                laesa=laesa.total_calls,
                tlaesa=tlaesa.total_calls,
                num_landmarks=landmarks,
            )
        )
    return rows


def size_sweep(
    space_factory: Callable[[int], MetricSpace],
    sizes: Sequence[int],
    algorithm: str,
    providers: Sequence[str] = ("tri", "laesa", "tlaesa"),
    algorithm_kwargs: Optional[Dict[str, Any]] = None,
    landmark_bootstrap_for: Sequence[str] = ("tri",),
) -> Dict[str, List[ExperimentRecord]]:
    """Figures 6a-6d, 7a-7c: total oracle calls per provider across sizes."""
    out: Dict[str, List[ExperimentRecord]] = {p: [] for p in providers}
    for n in sizes:
        space = space_factory(n)
        for provider in providers:
            record = run_experiment(
                space,
                algorithm,
                provider,
                landmark_bootstrap=provider in landmark_bootstrap_for,
                algorithm_kwargs=algorithm_kwargs,
            )
            out[provider].append(record)
    return out


# ---------------------------------------------------------------------------
# Completion time under priced oracles (Figures 7d, 8a, 8b)
# ---------------------------------------------------------------------------

def oracle_cost_sweep(
    space: MetricSpace,
    algorithm: str,
    oracle_costs: Sequence[float],
    providers: Sequence[str] = ("tri", "laesa", "tlaesa"),
    algorithm_kwargs: Optional[Dict[str, Any]] = None,
    landmark_bootstrap_for: Sequence[str] = ("tri",),
) -> Dict[str, List[float]]:
    """Completion time (CPU + priced oracle) as the per-call cost grows.

    Each provider runs once; completion times at every price point are
    reconstructed from the measured CPU time and call count — the identical
    arithmetic behind the paper's wall-clock figures.
    """
    out: Dict[str, List[float]] = {}
    for provider in providers:
        record = run_experiment(
            space,
            algorithm,
            provider,
            landmark_bootstrap=provider in landmark_bootstrap_for,
            algorithm_kwargs=algorithm_kwargs,
        )
        out[provider] = [record.completion_at(cost) for cost in oracle_costs]
    return out


# ---------------------------------------------------------------------------
# Parameter sweeps (Figures 8c, 8d, 9a-9d)
# ---------------------------------------------------------------------------

def parameter_sweep(
    space: MetricSpace,
    algorithm: str,
    param_name: str,
    param_values: Sequence[Any],
    providers: Sequence[str] = ("tri", "laesa", "tlaesa"),
    base_kwargs: Optional[Dict[str, Any]] = None,
    landmark_bootstrap_for: Sequence[str] = ("tri",),
) -> Dict[str, List[ExperimentRecord]]:
    """Vary one host-algorithm parameter (``l`` or ``k``) per provider."""
    out: Dict[str, List[ExperimentRecord]] = {p: [] for p in providers}
    for value in param_values:
        kwargs = dict(base_kwargs or {})
        kwargs[param_name] = value
        for provider in providers:
            record = run_experiment(
                space,
                algorithm,
                provider,
                landmark_bootstrap=provider in landmark_bootstrap_for,
                algorithm_kwargs=kwargs,
            )
            out[provider].append(record)
    return out


# ---------------------------------------------------------------------------
# Landmark-count sensitivity (Figure 5b)
# ---------------------------------------------------------------------------

def landmark_count_sweep(
    space: MetricSpace,
    algorithm: str,
    landmark_counts: Sequence[int],
    providers: Sequence[str] = ("laesa", "tlaesa"),
    algorithm_kwargs: Optional[Dict[str, Any]] = None,
) -> Dict[str, List[ExperimentRecord]]:
    """Figure 5b: total calls as a function of the landmark budget."""
    out: Dict[str, List[ExperimentRecord]] = {p: [] for p in providers}
    for count in landmark_counts:
        for provider in providers:
            record = run_experiment(
                space,
                algorithm,
                provider,
                num_landmarks=count,
                landmark_bootstrap=provider not in ("laesa", "tlaesa"),
                algorithm_kwargs=algorithm_kwargs,
            )
            out[provider].append(record)
    return out


# ---------------------------------------------------------------------------
# DFT (Figures 4a, 4b)
# ---------------------------------------------------------------------------

def dft_experiment(
    space_factory: Callable[[int], MetricSpace],
    sizes: Sequence[int],
    providers: Sequence[str] = ("dft", "adm", "adm-inc", "none"),
    algorithm: str = "prim-cmp",
) -> Dict[str, List[ExperimentRecord]]:
    """Figure 4: DFT vs ADM on comparison-driven Prim over tiny graphs."""
    out: Dict[str, List[ExperimentRecord]] = {p: [] for p in providers}
    for n in sizes:
        space = space_factory(n)
        for provider in providers:
            out[provider].append(run_experiment(space, algorithm, provider))
    return out
