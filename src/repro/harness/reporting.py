"""ASCII table/series rendering for experiment output.

The benchmarks print the same row/series structure the paper's tables and
figures report; these helpers keep that output consistent and legible.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_value(value: Any) -> str:
    """Human formatting: thousands separators for ints, 4 sig-figs for floats."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table (right-aligned numeric columns)."""
    rendered_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[idx]) for idx, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_line(row) for row in rendered_rows)
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> None:
    """Print :func:`render_table` output (with a leading blank line)."""
    print()
    print(render_table(headers, rows, title))


def render_series(
    x_label: str,
    xs: Sequence[Any],
    series: dict[str, Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render figure-style data: one x column plus one column per series."""
    headers = [x_label, *series.keys()]
    rows = [[x, *(vals[idx] for vals in series.values())] for idx, x in enumerate(xs)]
    return render_table(headers, rows, title)


def print_series(
    x_label: str,
    xs: Sequence[Any],
    series: dict[str, Sequence[Any]],
    title: str | None = None,
) -> None:
    """Print :func:`render_series` output (with a leading blank line)."""
    print()
    print(render_series(x_label, xs, series, title))
